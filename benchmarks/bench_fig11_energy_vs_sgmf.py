"""Paper Figure 11: energy efficiency of VGIW over SGMF (mappable subset).

Paper result: average 1.33x, varying by kernel; SGMF is better on small
low-divergence kernels (passing live values through the LVC costs more
than keeping them in the fabric), VGIW wins on divergent kernels where
SGMF burns energy pumping predicated-off tokens.
"""

from repro.evalharness.experiments import fig11_energy_vs_sgmf


def bench_fig11(benchmark, suite_runs):
    table = benchmark(fig11_energy_vs_sgmf, suite_runs)
    print()
    print(table.render())

    effs = {
        row[0]: row[3]
        for row in table.rows
        if row[0] not in ("GEOMEAN", "ARITHMEAN")
    }
    assert len(effs) >= 8
    # Both directions exist, as in the paper's figure.
    assert min(effs.values()) < 1.0, "SGMF must win some small kernel"
    assert max(effs.values()) > 1.1, "VGIW must win some divergent kernel"
