"""Tests for the flat memory image and its region allocator."""

import numpy as np
import pytest

from repro.memory import MemoryImage
from repro.memory.image import MemoryError_


def test_alloc_and_rw():
    mem = MemoryImage(64)
    a = mem.alloc("a", 8)
    b = mem.alloc("b", 8)
    assert b == a + 8
    mem.write(a, 1.5)
    assert mem.read(a) == 1.5
    assert mem.region("b") == range(8, 16)


def test_alloc_array_roundtrip():
    mem = MemoryImage(64)
    vals = np.array([1.0, 2.0, 3.0])
    base = mem.alloc_array("v", vals)
    np.testing.assert_array_equal(mem.read_region("v"), vals)
    np.testing.assert_array_equal(mem.read_block(base, 3), vals)


def test_duplicate_region_rejected():
    mem = MemoryImage(64)
    mem.alloc("a", 4)
    with pytest.raises(MemoryError_):
        mem.alloc("a", 4)


def test_out_of_memory():
    mem = MemoryImage(8)
    with pytest.raises(MemoryError_):
        mem.alloc("big", 9)


def test_out_of_bounds_access():
    mem = MemoryImage(8)
    with pytest.raises(MemoryError_):
        mem.read(8)
    with pytest.raises(MemoryError_):
        mem.write(-1, 0.0)


def test_clone_is_deep_and_comparable():
    mem = MemoryImage(16)
    a = mem.alloc("a", 4)
    mem.write(a, 7.0)
    copy = mem.clone()
    assert copy == mem
    copy.write(a, 8.0)
    assert copy != mem
    assert mem.read(a) == 7.0
    # Clone keeps allocator state.
    assert copy.region("a") == mem.region("a")


def test_byte_address_geometry():
    mem = MemoryImage(16)
    assert mem.byte_address(0) == 0
    assert mem.byte_address(32) == 128  # one 128-byte line = 32 words


def test_invalid_size():
    with pytest.raises(MemoryError_):
        MemoryImage(0)
