"""The VGIW processor core (paper §3, Figure 4).

``VGIWCore.run`` executes a kernel launch end to end:

1. the kernel is compiled (unless a :class:`CompiledKernel` is given);
2. threads are *tiled* so the CVT can track them
   (``tile = CVT bits / #basic blocks``, paper §3.2);
3. for each tile, the entry vector (block ID 0) is fully set, and the
   BBS loop runs: pick the smallest non-empty block ID, reconfigure the
   fabric (34 cycles for the 108-unit grid; skipped when the grid
   already holds that block), stream the block's thread vector through
   the MT-CGRF, and OR the terminator batches back into the CVT;
4. the run result carries cycle counts and every event counter the
   energy model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.arch.config import VGIWConfig
from repro.compiler.pipeline import CompiledKernel, compile_kernel
from repro.engine import CheckpointMixin, Checkpointer, EngineRunResult
from repro.ir.kernel import Kernel
from repro.memory.cache import CacheStats
from repro.memory.dram import DRAMStats
from repro.memory.hierarchy import LiveValueCache, MemorySystem
from repro.memory.image import MemoryImage
from repro.obs.metrics import Metrics, record_shared_run_metrics
from repro.resilience.errors import SimulationHangError
from repro.resilience.faults import FaultInjector
from repro.resilience.watchdog import ForwardProgressWatchdog, WatchdogConfig
from repro.vgiw.bbs import BBSStats, iter_batch_tids, terminator_batches
from repro.vgiw.cvt import ControlVectorTable, CVTStats
from repro.vgiw.mtcgrf import FabricStats, MTCGRFExecutor

Number = Union[int, float, bool]


@dataclass
class BlockExecution:
    """Profile record of one scheduled block execution."""

    block: str
    block_id: int
    n_threads: int
    start: float
    end: float
    replicas: int

    @property
    def span(self) -> float:
        return self.end - self.start

    @property
    def inject_cycles(self) -> float:
        """The injection-limited lower bound for this execution."""
        return self.n_threads / self.replicas


@dataclass
class VGIWRunResult(EngineRunResult):
    """Everything measured during one kernel launch on a VGIW core.

    Shares the :class:`~repro.engine.EngineRunResult` contract
    (``kernel_name``/``n_threads``/``cycles``/``l1``/``l2``/``dram``
    plus the ``trace``/``metrics`` observability attachments) with the
    Fermi and SGMF results; every historical field keeps its name and
    position.
    """

    engine = "vgiw"

    kernel_name: str
    n_threads: int
    cycles: float
    fabric: FabricStats
    bbs: BBSStats
    cvt: CVTStats
    lvc_reads: int
    lvc_writes: int
    lvc_bank_accesses: int
    lvc_buffered: int
    lvc_stats: CacheStats
    l1: CacheStats
    l2: CacheStats
    dram: DRAMStats
    n_blocks: int
    n_live_values: int
    tiles: int
    #: per-execution profile records (populated when profiling is on)
    block_profile: List[BlockExecution] = field(default_factory=list)

    @property
    def lvc_accesses(self) -> int:
        """Total live value cache accesses (reads + writes)."""
        return self.lvc_reads + self.lvc_writes

    @property
    def config_overhead(self) -> float:
        """Reconfiguration cycles / total cycles (paper §3.2: ~0.18%)."""
        return self.bbs.config_overhead(self.cycles)

    def profile_by_block(self) -> Dict[str, Dict[str, float]]:
        """Aggregate the profile per static block: executions, threads,
        total span, and the injection-limited lower bound."""
        agg: Dict[str, Dict[str, float]] = {}
        for rec in self.block_profile:
            entry = agg.setdefault(
                rec.block,
                {"executions": 0, "threads": 0, "span": 0.0, "inject": 0.0},
            )
            entry["executions"] += 1
            entry["threads"] += rec.n_threads
            entry["span"] += rec.span
            entry["inject"] += rec.inject_cycles
        return agg


class VGIWCore(CheckpointMixin):
    """A single VGIW core attached to the standard memory hierarchy."""

    engine = "vgiw"

    def __init__(self, config: Optional[VGIWConfig] = None):
        self.config = config or VGIWConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Union[Kernel, CompiledKernel],
        memory: MemoryImage,
        params: Dict[str, Number],
        n_threads: int,
        max_block_executions: int = 1_000_000,
        profile: bool = False,
        watchdog: Optional[WatchdogConfig] = None,
        faults: Optional[FaultInjector] = None,
        tracer=None,
        metrics: Optional[Metrics] = None,
        compile_cache=None,
        checkpoint_every: Optional[float] = None,
        checkpoint_sink=None,
    ) -> VGIWRunResult:
        """Execute ``n_threads`` of ``kernel`` against ``memory``.

        ``watchdog`` arms the forward-progress watchdog (deadlock and
        cycle-budget detection, raising
        :class:`~repro.resilience.errors.SimulationHangError` with a
        diagnostic snapshot); ``faults`` threads a deterministic fault
        injector through the fabric and the memory hierarchy;
        ``tracer`` (a :class:`repro.obs.Tracer`) records BBS
        reconfiguration windows, block-vector executions, cache misses
        and DRAM row activations as timeline events; ``metrics`` (a
        :class:`repro.obs.Metrics`) receives the run's counters under
        the ``vgiw/`` scope.  Both attach to the returned result.
        ``compile_cache`` (a :class:`repro.compiler.CompileCache`)
        memoises the place-&-route result per kernel × fabric config —
        see ``docs/performance.md``.

        ``checkpoint_every`` arms periodic state snapshots: every N
        simulated cycles (measured at block-execution boundaries) an
        :class:`~repro.engine.EngineSnapshot` is kept on
        ``self.last_snapshot`` and passed to ``checkpoint_sink`` when
        given — see ``docs/resilience.md`` §7.
        """
        config = self.config
        # Disabled-mode fast path: one local None-test per hook site.
        trace = tracer if (tracer is not None and tracer.enabled) else None
        if isinstance(kernel, CompiledKernel):
            compiled = kernel
        elif compile_cache is not None:
            from repro.compiler.cache import cached_compile_kernel

            compiled = cached_compile_kernel(
                kernel, config.fabric, cache=compile_cache
            )
        else:
            compiled = compile_kernel(kernel, config.fabric)
        kernel_obj = compiled.kernel
        params = {
            name: (
                float(params[name])
                if kernel_obj.param_dtypes[name].value == "float"
                else int(params[name])
            )
            for name in kernel_obj.params
        }

        memsys = MemorySystem(
            config.memory, l1_write_back=config.l1_write_back, faults=faults,
            tracer=trace,
        )
        lvc = LiveValueCache(
            size_bytes=config.lvc_size_bytes,
            line_bytes=config.lvc_line_bytes,
            ways=config.lvc_ways,
            banks=config.lvc_banks,
            hit_latency=config.lvc_hit_latency,
            l2=memsys.l2,
            tracer=trace,
        )
        executor = MTCGRFExecutor(
            config, memsys, lvc, memory, params,
            faults=faults, fabric=compiled.fabric,
        )
        wd = ForwardProgressWatchdog(watchdog, "vgiw", kernel_obj.name)
        wd.start(0.0)

        n_blocks = compiled.n_blocks
        # Thread tiling (paper section 3.2): the CVT bounds how many
        # threads can be tracked, and — the reason the paper says tiling
        # "generally prevents" LVC spills to memory — the tile's live-
        # value footprint must stay within what the LVC + L2 can hold.
        cvt_tile = config.cvt_bits // max(1, n_blocks)
        lv_words = 4 * max(1, compiled.n_live_values)
        # Leave half the L2 for kernel data.
        lvc_tile = config.memory.l2_size_bytes // (2 * lv_words)
        tile_size = max(64, min(cvt_tile, lvc_tile))

        # Every piece of mutable run state lives in this dict: one
        # pickle of it is a complete checkpoint (shared references —
        # executor ↔ memsys ↔ lvc ↔ trace — survive as one object
        # graph), and ``_drive`` below advances it to completion.
        state = {
            "kernel_name": kernel_obj.name,
            "clock": 0.0,
            "config": config,
            "compiled": compiled,
            "params": params,
            "n_threads": n_threads,
            "memory": memory,
            "memsys": memsys,
            "lvc": lvc,
            "executor": executor,
            "bbs": BBSStats(),
            "cvt_stats_total": CVTStats(),
            "wd": wd,
            "trace": trace,
            "tracer": tracer,
            "metrics": metrics,
            "profile": profile,
            "profile_records": [],
            "max_block_executions": max_block_executions,
            "n_blocks": n_blocks,
            "tile_size": tile_size,
            "tiles": 0,
            "tile_base": 0,
            "tile_threads": 0,
            # Intra-tile scheduling state (``cvt is None`` ⇔ between
            # tiles, which is also a valid checkpoint boundary).
            "cvt": None,
            "configured_block": None,
            "last_block": None,
            "executions": 0,
        }
        self._state = state
        ck = None
        if checkpoint_every is not None:
            ck = Checkpointer(checkpoint_every, checkpoint_sink, start=0.0)
        return self._drive(state, ck)

    # ------------------------------------------------------------------
    def _select(self, st) -> Optional[int]:
        cvt = st["cvt"]
        policy = st["config"].bbs_policy
        if policy == "largest_vector":
            return cvt.largest_vector()
        if policy == "round_robin":
            return cvt.next_nonempty(st["last_block"])
        return cvt.first_nonempty()

    def _diag_snapshot(self, st, now: float):
        compiled, trace = st["compiled"], st["trace"]
        snap = st["executor"].diagnostic_snapshot(
            now, sim="vgiw", kernel=st["kernel_name"],
        )
        snap.detail["tile"] = st["tiles"]
        cvt = st["cvt"]
        if cvt is not None:
            snap.detail["cvt_pending"] = {
                compiled.schedule.name_of(bid): cvt.pending_count(bid)
                for bid in range(st["n_blocks"])
                if cvt.pending_count(bid)
            }
        if trace is not None:
            # Hang forensics: the last N timeline events show what the
            # machine did just before it stopped.
            snap.detail["recent_trace"] = [
                ev.brief() for ev in trace.tail(16)
            ]
            trace.instant(
                "snapshot", "watchdog", now, pid="vgiw",
                tile=st["tiles"],
            )
        return snap

    # ------------------------------------------------------------------
    def _drive(self, st, ck: Optional[Checkpointer]) -> VGIWRunResult:
        """Advance the state dict to completion (run and resume share
        this loop, so a restored run replays the exact scheduling
        sequence an uninterrupted one would)."""
        config = st["config"]
        compiled = st["compiled"]
        executor = st["executor"]
        bbs = st["bbs"]
        wd = st["wd"]
        trace = st["trace"]
        n_blocks = st["n_blocks"]
        kernel_name = st["kernel_name"]

        def snapshot(now: float):
            return self._diag_snapshot(st, now)

        while True:
            if st["cvt"] is None:
                # Between tiles: start the next one, or finish the run.
                if st["tile_base"] >= st["n_threads"]:
                    break
                st["tiles"] += 1
                st["tile_threads"] = min(
                    st["tile_size"], st["n_threads"] - st["tile_base"]
                )
                cvt = ControlVectorTable(
                    n_blocks, st["tile_threads"], config.cvt_banks,
                    config.cvt_word_bits,
                )
                cvt.activate_all(0)
                st["cvt"] = cvt
                st["configured_block"] = None
                st["last_block"] = None
                st["executions"] = 0

            cvt = st["cvt"]
            tile_base = st["tile_base"]
            block_id = self._select(st)
            if block_id is None:
                # Tile drained: fold its CVT stats, advance.
                st["cvt_stats_total"].word_reads += cvt.stats.word_reads
                st["cvt_stats_total"].word_writes += cvt.stats.word_writes
                st["cvt"] = None
                st["tile_base"] += st["tile_size"]
                continue

            st["last_block"] = block_id
            st["executions"] += 1
            time = st["clock"]
            if st["executions"] > st["max_block_executions"]:
                raise SimulationHangError(
                    f"kernel {kernel_name}: runaway block scheduling "
                    f"(> {st['max_block_executions']} block executions)",
                    snapshot=snapshot(time),
                    kernel=kernel_name,
                    block=compiled.schedule.name_of(block_id),
                    block_id=block_id,
                    tile=st["tiles"],
                    threads_retired=wd.events_retired,
                )
            cb = compiled.block_by_id(block_id)

            # Reconfigure unless the grid already holds this block.
            if st["configured_block"] != block_id:
                bbs.reconfigurations += 1
                bbs.config_cycles += config.fabric.config_cycles
                if trace is not None:
                    trace.complete(
                        f"reconfigure:{cb.name}", "vgiw.bbs", time,
                        config.fabric.config_cycles, pid="vgiw",
                        block=cb.name, tile=st["tiles"],
                    )
                time += config.fabric.config_cycles
                st["configured_block"] = block_id

            batches = list(cvt.pop_batches(block_id))
            tids: List[int] = []
            for base, bitmap in batches:
                bbs.batches_sent += 1
                tids.extend(
                    tile_base + t for t in iter_batch_tids(base, bitmap)
                )
            bbs.threads_streamed += len(tids)
            bbs.blocks_executed += 1

            outcomes, end_time = executor.execute_block(cb, tids, time)
            retired = sum(1 for oc in outcomes if oc.next_block is None)
            if trace is not None:
                trace.complete(
                    f"block:{cb.name}", "vgiw.block", time,
                    end_time - time, pid="vgiw",
                    block=cb.name, threads=len(tids),
                    replicas=cb.n_replicas, retired=retired,
                    tile=st["tiles"],
                )
            if retired:
                wd.progress(end_time, retired)
            wd.check(end_time, snapshot)
            if st["profile"]:
                st["profile_records"].append(BlockExecution(
                    block=cb.name, block_id=block_id,
                    n_threads=len(tids), start=time, end=end_time,
                    replicas=cb.n_replicas,
                ))
            st["clock"] = end_time

            # Each replica's terminator CVU assembles batch packets
            # in completion order with two open batches per target
            # (paper section 3.5); out-of-order completion flushes
            # partial batches, which cost extra CVT writes.
            per_replica: Dict[int, List] = {}
            for oc in outcomes:
                per_replica.setdefault(oc.replica, []).append(oc)
            for replica_outcomes in per_replica.values():
                for target, base, bitmap in terminator_batches(
                    replica_outcomes, tid_offset=tile_base
                ):
                    bbs.batches_received += 1
                    cvt.or_batch(
                        compiled.schedule.id_of(target), base, bitmap
                    )
            cvt.check_invariant()

            # Block-execution boundary: no replica state is in flight,
            # so this is a quiescent point to checkpoint at.
            if ck is not None and ck.due(st["clock"]):
                self._emit_checkpoint(ck)

        return self._finish(st)

    # ------------------------------------------------------------------
    def _finish(self, st) -> VGIWRunResult:
        memsys, lvc, executor = st["memsys"], st["lvc"], st["executor"]
        bbs, cvt_stats_total = st["bbs"], st["cvt_stats_total"]
        metrics = st["metrics"]
        time = st["clock"]
        if metrics is not None:
            scope = metrics.scope("vgiw")
            record_shared_run_metrics(
                scope, cycles=time, n_threads=st["n_threads"],
                l1=memsys.l1_stats, l2=memsys.l2_stats,
                dram=memsys.dram.stats,
            )
            scope.inc("bbs.reconfigurations", bbs.reconfigurations)
            scope.inc("bbs.config_cycles", bbs.config_cycles)
            scope.inc("bbs.blocks_executed", bbs.blocks_executed)
            scope.inc("bbs.threads_streamed", bbs.threads_streamed)
            scope.inc("bbs.batches_sent", bbs.batches_sent)
            scope.inc("bbs.batches_received", bbs.batches_received)
            scope.inc("cvt.word_reads", cvt_stats_total.word_reads)
            scope.inc("cvt.word_writes", cvt_stats_total.word_writes)
            scope.inc("lvc.word_requests", lvc.accesses)
            scope.inc("lvc.bank_accesses", lvc.bank_accesses)
            scope.inc("lvc.buffered", lvc.buffered)
            scope.inc("fabric.node_fires", executor.stats.node_fires)
            scope.inc("fabric.token_hops", executor.stats.token_hops)
            scope.gauge("run.tiles", st["tiles"])

        self.last_memory = st["memory"]
        self._state = None
        return VGIWRunResult(
            kernel_name=st["kernel_name"],
            n_threads=st["n_threads"],
            cycles=time,
            fabric=executor.stats,
            bbs=bbs,
            cvt=cvt_stats_total,
            lvc_reads=lvc.reads,
            lvc_writes=lvc.writes,
            lvc_bank_accesses=lvc.bank_accesses,
            lvc_buffered=lvc.buffered,
            lvc_stats=lvc.stats,
            l1=memsys.l1_stats,
            l2=memsys.l2_stats,
            dram=memsys.dram.stats,
            n_blocks=st["n_blocks"],
            n_live_values=st["compiled"].n_live_values,
            tiles=st["tiles"],
            block_profile=st["profile_records"],
        ).attach_obs(st["tracer"], metrics)
