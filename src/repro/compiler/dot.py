"""Graphviz (DOT) export for kernels and dataflow graphs.

Debugging and documentation aid: render a kernel's CFG, a basic block's
dataflow graph (with unit assignments), or the fabric occupancy of a
placed configuration.  Output is plain DOT text — feed it to ``dot -Tsvg``
or any Graphviz viewer.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.compiler.dfg import BlockDFG, NodeKind
from repro.compiler.placement import Fabric, PlacedReplica
from repro.ir.kernel import Kernel

_KIND_STYLE: Dict[NodeKind, str] = {
    NodeKind.INIT: 'shape=invhouse, style=filled, fillcolor="#cde7ff"',
    NodeKind.TERM: 'shape=house, style=filled, fillcolor="#cde7ff"',
    NodeKind.OP: "shape=ellipse",
    NodeKind.LOAD: 'shape=box, style=filled, fillcolor="#ffe3c0"',
    NodeKind.STORE: 'shape=box, style=filled, fillcolor="#ffd0a0"',
    NodeKind.LVLOAD: 'shape=box, style=filled, fillcolor="#d8f5d0"',
    NodeKind.LVSTORE: 'shape=box, style=filled, fillcolor="#c0eeb5"',
    NodeKind.SPLIT: "shape=triangle",
    NodeKind.JOIN: "shape=invtriangle",
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def cfg_to_dot(kernel: Kernel, block_ids: Optional[Dict[str, int]] = None
               ) -> str:
    """The kernel's control flow graph as DOT."""
    lines = [f'digraph "{_escape(kernel.name)}" {{', "  node [shape=box];"]
    for name, block in kernel.blocks.items():
        bid = f" (id {block_ids[name]})" if block_ids and name in block_ids else ""
        label = f"{name}{bid}\\n{len(block.instrs)} instrs"
        shape = ', style=filled, fillcolor="#e8e8ff"' if name == kernel.entry else ""
        lines.append(f'  "{_escape(name)}" [label="{_escape(label)}"{shape}];')
    for name, block in kernel.blocks.items():
        targets = block.successors()
        if len(targets) == 2:
            lines.append(f'  "{_escape(name)}" -> "{_escape(targets[0])}" '
                         f'[label="T", color=darkgreen];')
            lines.append(f'  "{_escape(name)}" -> "{_escape(targets[1])}" '
                         f'[label="F", color=firebrick];')
        else:
            for t in targets:
                lines.append(f'  "{_escape(name)}" -> "{_escape(t)}";')
    lines.append("}")
    return "\n".join(lines)


def dfg_to_dot(dfg: BlockDFG, placed: Optional[PlacedReplica] = None) -> str:
    """One block's dataflow graph as DOT (optionally with unit IDs)."""
    lines = [f'digraph "{_escape(dfg.block_name)}" {{', "  rankdir=TB;"]
    for node in dfg.nodes:
        style = _KIND_STYLE.get(node.kind, "shape=ellipse")
        label = node.kind.value if node.op is None else node.op.value
        if node.out_reg:
            label += f"\\n%{node.out_reg}"
        if node.lv_id is not None:
            label += f"\\nlv{node.lv_id}"
        if placed is not None and node.nid in placed.unit_of:
            label += f"\\nu{placed.unit_of[node.nid]}"
        lines.append(f'  n{node.nid} [label="{_escape(label)}", {style}];')
    for node in dfg.nodes:
        for src in node.srcs:
            if hasattr(src, "node"):
                lines.append(f"  n{src.node} -> n{node.nid};")
        for up in node.ctrl:
            lines.append(f"  n{up} -> n{node.nid} [style=dashed];")
    lines.append("}")
    return "\n".join(lines)


def fabric_to_dot(fabric: Fabric,
                  placed: Optional[PlacedReplica] = None) -> str:
    """The physical grid as a DOT layout; occupied units are filled."""
    occupied = set(placed.unit_of.values()) if placed else set()
    lines = ['graph "fabric" {', "  node [shape=square, fixedsize=true];"]
    for unit in fabric.units:
        fill = ', style=filled, fillcolor="#ffd27f"' if unit.uid in occupied \
            else ""
        lines.append(
            f'  u{unit.uid} [label="{unit.kind.value[:4]}\\n{unit.uid}", '
            f'pos="{unit.x},{-unit.y}!"{fill}];'
        )
    lines.append("}")
    return "\n".join(lines)
