"""Structured builder DSL for constructing kernels.

The builder plays the role of the CUDA-to-SSA frontend in the original
toolchain (paper section 4): kernels are written as Python code using
operator-overloaded :class:`Val` handles and structured control flow
(``if_``/``else_``/``loop``/``for_range``), and the builder emits the
basic-block CFG the compiler consumes.

Example::

    kb = KernelBuilder("saxpy", params=["a", "x", "y", "out", "n"])
    i = kb.tid()
    with kb.if_(i < kb.param("n")):
        xv = kb.load(kb.param("x") + i)
        yv = kb.load(kb.param("y") + i)
        kb.store(kb.param("out") + i, kb.fparam("a") * xv + yv)
    kernel = kb.build()
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, List, Optional, Union

from repro.ir.block import BasicBlock
from repro.ir.instr import Instr, Op, Terminator
from repro.ir.kernel import Kernel
from repro.ir.types import DType, Imm, Operand, Reg, TID_REG, param_reg
from repro.ir.validate import validate_kernel
from repro.resilience.errors import CompileError

Number = Union[int, float, bool]


class BuildError(CompileError):
    """Raised on misuse of the builder API."""


class Val:
    """A value handle bound to a builder.

    Arithmetic and comparison operators emit instructions into the
    builder's current basic block and return new handles.  Integer and
    float operands may be mixed; integers are promoted to float.
    """

    __slots__ = ("builder", "operand", "dtype")

    def __init__(self, builder: "KernelBuilder", operand: Operand, dtype: DType):
        self.builder = builder
        self.operand = operand
        self.dtype = dtype

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other):
        return self.builder._binop(Op.ADD, Op.FADD, self, other)

    def __radd__(self, other):
        return self.builder._binop(Op.ADD, Op.FADD, other, self)

    def __sub__(self, other):
        return self.builder._binop(Op.SUB, Op.FSUB, self, other)

    def __rsub__(self, other):
        return self.builder._binop(Op.SUB, Op.FSUB, other, self)

    def __mul__(self, other):
        return self.builder._binop(Op.MUL, Op.FMUL, self, other)

    def __rmul__(self, other):
        return self.builder._binop(Op.MUL, Op.FMUL, other, self)

    def __truediv__(self, other):
        return self.builder._binop(Op.DIV, Op.FDIV, self, other)

    def __rtruediv__(self, other):
        return self.builder._binop(Op.DIV, Op.FDIV, other, self)

    def __floordiv__(self, other):
        return self.builder._binop(Op.DIV, None, self, other)

    def __mod__(self, other):
        return self.builder._binop(Op.REM, None, self, other)

    def __lshift__(self, other):
        return self.builder._binop(Op.SHL, None, self, other)

    def __rshift__(self, other):
        return self.builder._binop(Op.SHR, None, self, other)

    def __and__(self, other):
        return self.builder._binop(Op.AND, None, self, other)

    def __or__(self, other):
        return self.builder._binop(Op.OR, None, self, other)

    def __xor__(self, other):
        return self.builder._binop(Op.XOR, None, self, other)

    def __neg__(self):
        op = Op.FNEG if self.dtype is DType.FLOAT else Op.NEG
        return self.builder._emit(op, [self], self.dtype)

    def __invert__(self):
        return self.builder._emit(Op.NOT, [self], self.dtype)

    # -- comparisons (produce PRED) -------------------------------------
    def __lt__(self, other):
        return self.builder._cmp(Op.LT, self, other)

    def __le__(self, other):
        return self.builder._cmp(Op.LE, self, other)

    def __gt__(self, other):
        return self.builder._cmp(Op.GT, self, other)

    def __ge__(self, other):
        return self.builder._cmp(Op.GE, self, other)

    def __eq__(self, other):  # type: ignore[override]
        return self.builder._cmp(Op.EQ, self, other)

    def __ne__(self, other):  # type: ignore[override]
        return self.builder._cmp(Op.NE, self, other)

    __hash__ = None  # Val equality builds IR; handles are not hashable.

    def __repr__(self) -> str:
        return f"Val({self.operand!r}:{self.dtype.value})"


class _IfCtx:
    """Context manager for the true arm of a conditional."""

    def __init__(self, builder: "KernelBuilder", cond: Val):
        self.builder = builder
        self.cond = cond
        self.cond_block: Optional[BasicBlock] = None
        self.merge_name: Optional[str] = None

    def __enter__(self):
        kb = self.builder
        kb._pending_else = None
        then_name = kb._fresh_block_name("then")
        self.merge_name = kb._fresh_block_name("endif")
        self.cond_block = kb._current
        kb._terminate(Terminator.br(self.cond.operand, then_name, self.merge_name))
        kb._open_block(then_name)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            return False
        kb = self.builder
        if not kb._is_terminated():
            kb._terminate(Terminator.jmp(self.merge_name))
        kb._open_block(self.merge_name)
        kb._pending_else = self
        return False


class _ElseCtx:
    """Context manager for the false arm; must directly follow the if."""

    def __init__(self, builder: "KernelBuilder"):
        self.builder = builder
        self.merge_name: Optional[str] = None

    def __enter__(self):
        kb = self.builder
        frame = kb._pending_else
        if frame is None:
            raise BuildError("else_() must immediately follow an if_() block")
        kb._pending_else = None
        self.merge_name = frame.merge_name
        else_name = kb._fresh_block_name("else")
        # Retarget the false edge of the conditional from the merge block
        # to the new else block; the merge block stays (currently empty).
        frame.cond_block.terminator.false_target = else_name
        kb._open_block(else_name)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            return False
        kb = self.builder
        if not kb._is_terminated():
            kb._terminate(Terminator.jmp(self.merge_name))
        kb._open_block(self.merge_name)
        return False


class _LoopCtx:
    """Context manager for a loop region.

    On entry the builder moves to a fresh *header* block.  The loop body
    begins when :meth:`break_unless` (or :meth:`break_if`) terminates the
    header with the loop condition.  At context exit control jumps back
    to the header and the builder continues in the loop's exit block.
    """

    def __init__(self, builder: "KernelBuilder"):
        self.builder = builder
        self.header_name: Optional[str] = None
        self.exit_name: Optional[str] = None

    def __enter__(self):
        kb = self.builder
        kb._pending_else = None
        self.header_name = kb._fresh_block_name("loop")
        self.exit_name = kb._fresh_block_name("endloop")
        kb._terminate(Terminator.jmp(self.header_name))
        kb._open_block(self.header_name)
        return self

    def break_unless(self, cond: Val) -> None:
        """Continue into the body while ``cond`` holds; exit otherwise."""
        kb = self.builder
        body_name = kb._fresh_block_name("body")
        kb._terminate(Terminator.br(cond.operand, body_name, self.exit_name))
        kb._open_block(body_name)

    def break_if(self, cond: Val) -> None:
        """Exit the loop when ``cond`` holds; continue into the body otherwise."""
        kb = self.builder
        body_name = kb._fresh_block_name("body")
        kb._terminate(Terminator.br(cond.operand, self.exit_name, body_name))
        kb._open_block(body_name)

    def break_(self) -> None:
        """Unconditionally exit the loop (code after this is unreachable)."""
        kb = self.builder
        kb._terminate(Terminator.jmp(self.exit_name))
        kb._open_block(kb._fresh_block_name("dead"))

    def continue_(self) -> None:
        """Jump back to the loop header (code after this is unreachable)."""
        kb = self.builder
        kb._terminate(Terminator.jmp(self.header_name))
        kb._open_block(kb._fresh_block_name("dead"))

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            return False
        kb = self.builder
        if not kb._is_terminated():
            kb._terminate(Terminator.jmp(self.header_name))
        kb._open_block(self.exit_name)
        return False


class KernelBuilder:
    """Builds a :class:`~repro.ir.kernel.Kernel` through structured calls.

    Parameters
    ----------
    name:
        Kernel name (used in reports).
    params:
        Launch-parameter names.  Parameters are INT by default; reading
        one through :meth:`fparam` declares it FLOAT.
    """

    def __init__(self, name: str, params: Iterable[str] = ()):  # noqa: D107
        self.name = name
        self.params: List[str] = list(params)
        self.param_dtypes: Dict[str, DType] = {p: DType.INT for p in self.params}
        self._blocks: Dict[str, BasicBlock] = {}
        self._tmp_counter = 0
        self._block_counter = 0
        self._current: Optional[BasicBlock] = None
        self._pending_else: Optional[_IfCtx] = None
        self._built = False
        self._open_block("entry")

    # ------------------------------------------------------------------
    # Low-level plumbing
    # ------------------------------------------------------------------
    def _fresh_block_name(self, hint: str) -> str:
        self._block_counter += 1
        return f"{hint}.{self._block_counter}"

    def _fresh_reg(self) -> str:
        self._tmp_counter += 1
        return f"t{self._tmp_counter}"

    def _open_block(self, name: str) -> None:
        if name in self._blocks:
            block = self._blocks[name]
        else:
            block = BasicBlock(name)
            self._blocks[name] = block
        self._current = block

    def _is_terminated(self) -> bool:
        return self._current.terminator is not None

    def _terminate(self, term: Terminator) -> None:
        if self._is_terminated():
            raise BuildError(f"block {self._current.name} already terminated")
        self._current.terminator = term

    def _wrap(self, x: Union[Val, Number], dtype_hint: Optional[DType] = None) -> Val:
        if isinstance(x, Val):
            return x
        if isinstance(x, bool):
            return Val(self, Imm(x, DType.PRED), DType.PRED)
        if isinstance(x, int):
            if dtype_hint is DType.FLOAT:
                return Val(self, Imm(float(x), DType.FLOAT), DType.FLOAT)
            return Val(self, Imm(x, DType.INT), DType.INT)
        if isinstance(x, float):
            return Val(self, Imm(x, DType.FLOAT), DType.FLOAT)
        raise BuildError(f"cannot use {x!r} as an operand")

    def _emit(self, op: Op, srcs: List[Union[Val, Number]], dtype: DType,
              dst: Optional[str] = None) -> Optional[Val]:
        """Append an instruction to the current block, return its result."""
        self._pending_else = None
        if self._is_terminated():
            raise BuildError(
                f"emitting into terminated block {self._current.name}; "
                "did code escape an if_/loop context?"
            )
        operands = tuple(self._wrap(s).operand for s in srcs)
        if op is Op.STORE:
            self._current.append(Instr(op, None, operands, dtype))
            return None
        if dst is None:
            dst = self._fresh_reg()
        self._current.append(Instr(op, dst, operands, dtype))
        return Val(self, Reg(dst), dtype)

    def _promote_pair(self, a: Union[Val, Number], b: Union[Val, Number]):
        """Wrap and, if needed, int→float promote a pair of operands."""
        av, bv = self._wrap(a), self._wrap(b)
        if av.dtype is DType.FLOAT or bv.dtype is DType.FLOAT:
            av = self._to_float(av)
            bv = self._to_float(bv)
        return av, bv

    def _to_float(self, v: Val) -> Val:
        if v.dtype is DType.FLOAT:
            return v
        if isinstance(v.operand, Imm):
            return Val(self, Imm(float(v.operand.value), DType.FLOAT), DType.FLOAT)
        return self._emit(Op.I2F, [v], DType.FLOAT)

    def _binop(self, int_op: Optional[Op], float_op: Optional[Op],
               a: Union[Val, Number], b: Union[Val, Number]) -> Val:
        av, bv = self._promote_pair(a, b)
        if av.dtype is DType.FLOAT:
            if float_op is None:
                raise BuildError(f"operation {int_op} not defined for floats")
            return self._emit(float_op, [av, bv], DType.FLOAT)
        if int_op is None:
            raise BuildError(f"operation {float_op} not defined for ints")
        return self._emit(int_op, [av, bv], DType.INT)

    def _cmp(self, op: Op, a: Union[Val, Number], b: Union[Val, Number]) -> Val:
        av, bv = self._promote_pair(a, b)
        return self._emit(op, [av, bv], DType.PRED)

    # ------------------------------------------------------------------
    # Leaf values
    # ------------------------------------------------------------------
    def tid(self) -> Val:
        """The thread index (CUDA ThreadIDX), provided by the initiator CVU."""
        return Val(self, TID_REG, DType.INT)

    def param(self, name: str) -> Val:
        """Read integer kernel parameter ``name``."""
        if name not in self.param_dtypes:
            raise BuildError(f"unknown parameter {name!r}")
        return Val(self, param_reg(name), self.param_dtypes[name])

    def fparam(self, name: str) -> Val:
        """Read kernel parameter ``name``, declaring it FLOAT."""
        if name not in self.param_dtypes:
            raise BuildError(f"unknown parameter {name!r}")
        self.param_dtypes[name] = DType.FLOAT
        return Val(self, param_reg(name), DType.FLOAT)

    def const(self, value: Number, dtype: Optional[DType] = None) -> Val:
        """An immediate value."""
        v = self._wrap(value, dtype)
        if dtype is not None and v.dtype is not dtype:
            v = Val(self, Imm(v.operand.value, dtype), dtype)
        return v

    # ------------------------------------------------------------------
    # Mutable variables
    # ------------------------------------------------------------------
    def var(self, name: str, init: Union[Val, Number, None] = None,
            dtype: Optional[DType] = None) -> Val:
        """Declare a mutable named register, optionally initialising it.

        Returns a handle that always denotes the register's current
        value; use :meth:`assign` to update it.
        """
        reg = Reg(name)
        if init is not None:
            iv = self._wrap(init, dtype)
            dtype = dtype or iv.dtype
            self._emit(Op.MOV, [iv], dtype, dst=name)
        elif dtype is None:
            raise BuildError(f"var {name!r} needs an init value or a dtype")
        return Val(self, reg, dtype)

    def assign(self, var: Val, value: Union[Val, Number]) -> None:
        """Assign ``value`` to the register behind ``var``."""
        if not isinstance(var.operand, Reg):
            raise BuildError("assignment target must be a register-backed Val")
        val = self._wrap(value, var.dtype)
        if var.dtype is DType.FLOAT and val.dtype is not DType.FLOAT:
            val = self._to_float(val)
        self._emit(Op.MOV, [val], var.dtype, dst=var.operand.name)

    # ------------------------------------------------------------------
    # Operations beyond the operator overloads
    # ------------------------------------------------------------------
    def select(self, pred: Val, if_true: Union[Val, Number],
               if_false: Union[Val, Number]) -> Val:
        tv, fv = self._promote_pair(if_true, if_false)
        return self._emit(Op.SELECT, [pred, tv, fv], tv.dtype)

    def min_(self, a, b) -> Val:
        return self._binop(Op.MIN, Op.FMIN, a, b)

    def max_(self, a, b) -> Val:
        return self._binop(Op.MAX, Op.FMAX, a, b)

    def abs_(self, a) -> Val:
        v = self._wrap(a)
        op = Op.FABS if v.dtype is DType.FLOAT else Op.ABS
        return self._emit(op, [v], v.dtype)

    def fma(self, a, b, c) -> Val:
        vals = [self._to_float(self._wrap(x)) for x in (a, b, c)]
        return self._emit(Op.FMA, vals, DType.FLOAT)

    def sqrt(self, a) -> Val:
        return self._emit(Op.FSQRT, [self._to_float(self._wrap(a))], DType.FLOAT)

    def rsqrt(self, a) -> Val:
        return self._emit(Op.FRSQRT, [self._to_float(self._wrap(a))], DType.FLOAT)

    def exp(self, a) -> Val:
        return self._emit(Op.FEXP, [self._to_float(self._wrap(a))], DType.FLOAT)

    def log(self, a) -> Val:
        return self._emit(Op.FLOG, [self._to_float(self._wrap(a))], DType.FLOAT)

    def sin(self, a) -> Val:
        return self._emit(Op.FSIN, [self._to_float(self._wrap(a))], DType.FLOAT)

    def cos(self, a) -> Val:
        return self._emit(Op.FCOS, [self._to_float(self._wrap(a))], DType.FLOAT)

    def floor(self, a) -> Val:
        return self._emit(Op.FFLOOR, [self._to_float(self._wrap(a))], DType.FLOAT)

    def i2f(self, a) -> Val:
        return self._to_float(self._wrap(a))

    def f2i(self, a) -> Val:
        return self._emit(Op.F2I, [self._wrap(a)], DType.INT)

    def not_(self, p: Val) -> Val:
        return self._emit(Op.NOT, [p], DType.PRED)

    def and_(self, a: Val, b: Val) -> Val:
        return self._emit(Op.AND, [a, b], DType.PRED)

    def or_(self, a: Val, b: Val) -> Val:
        return self._emit(Op.OR, [a, b], DType.PRED)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(self, addr: Union[Val, Number], dtype: DType = DType.FLOAT) -> Val:
        """Load ``mem[addr]`` (word-addressed)."""
        return self._emit(Op.LOAD, [self._wrap(addr)], dtype)

    def store(self, addr: Union[Val, Number], value: Union[Val, Number]) -> None:
        """Store ``value`` to ``mem[addr]`` (word-addressed)."""
        v = self._wrap(value)
        self._emit(Op.STORE, [self._wrap(addr), v], v.dtype)

    # ------------------------------------------------------------------
    # Structured control flow
    # ------------------------------------------------------------------
    def if_(self, cond: Val) -> _IfCtx:
        """``with kb.if_(cond): ...`` — execute the body when ``cond`` holds."""
        return _IfCtx(self, cond)

    def else_(self) -> _ElseCtx:
        """``with kb.else_(): ...`` — must directly follow an ``if_`` block."""
        return _ElseCtx(self)

    def loop(self) -> _LoopCtx:
        """``with kb.loop() as lp: ...`` — a loop; see :class:`_LoopCtx`."""
        return _LoopCtx(self)

    @contextlib.contextmanager
    def for_range(self, start: Union[Val, Number], stop: Union[Val, Number],
                  step: int = 1, name: Optional[str] = None):
        """Counted loop: yields the induction variable.

        ``step`` must be a non-zero Python integer; the loop runs while
        ``i < stop`` (or ``i > stop`` for negative steps).
        """
        if step == 0:
            raise BuildError("for_range step must be non-zero")
        name = name or self._fresh_reg() + ".i"
        i = self.var(name, start)
        with self.loop() as lp:
            cond = (i < stop) if step > 0 else (i > stop)
            lp.break_unless(cond)
            yield i
            self.assign(i, i + step)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> Kernel:
        """Terminate, prune unreachable blocks, validate, and return the kernel."""
        if self._built:
            raise BuildError("build() called twice")
        self._built = True
        if not self._is_terminated():
            self._terminate(Terminator.ret())

        # Prune blocks unreachable from the entry (created by break_ /
        # continue_ dead paths or by else-retargeting).
        reachable = {"entry"}
        stack = ["entry"]
        while stack:
            block = self._blocks[stack.pop()]
            if block.terminator is None:
                # An unterminated reachable block is a fall-off-the-end
                # merge block; control leaving it exits the kernel.
                block.terminator = Terminator.ret()
            for succ in block.terminator.targets():
                if succ not in reachable:
                    reachable.add(succ)
                    stack.append(succ)
        blocks = {n: b for n, b in self._blocks.items() if n in reachable}

        kernel = Kernel(
            name=self.name,
            params=self.params,
            blocks=blocks,
            entry="entry",
            param_dtypes=dict(self.param_dtypes),
        )
        validate_kernel(kernel)
        return kernel
