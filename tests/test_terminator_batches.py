"""Tests for the terminator CVU batch-assembly protocol (paper §3.5)."""

from repro.vgiw import ThreadOutcome, terminator_batches
from repro.vgiw.bbs import iter_batch_tids


def _oc(tid, target, completion, replica=0):
    return ThreadOutcome(tid=tid, next_block=target, completion=completion,
                         replica=replica)


def _unpack(packets):
    """(target, tid) pairs encoded by a packet list."""
    out = []
    for target, base, bitmap in packets:
        out.extend((target, t) for t in iter_batch_tids(base, bitmap))
    return sorted(out)


def test_in_order_completion_packs_full_batches():
    outcomes = [_oc(t, "next", completion=float(t)) for t in range(128)]
    packets = terminator_batches(outcomes)
    assert len(packets) == 2  # two full 64-thread batches
    assert _unpack(packets) == sorted(("next", t) for t in range(128))


def test_out_of_order_completion_flushes_partial_batches():
    # Threads complete interleaved across three 64-aligned batches: with
    # only two open batch registers, the oldest is flushed partially.
    outcomes = []
    for i in range(16):
        for base in (0, 64, 128):
            tid = base + i
            outcomes.append(_oc(tid, "next", completion=float(i * 3 + base / 64)))
    packets = terminator_batches(outcomes)
    assert len(packets) > 3  # more packets than perfect batching
    assert _unpack(packets) == sorted(
        ("next", base + i) for i in range(16) for base in (0, 64, 128)
    )


def test_multiple_targets_have_separate_batches():
    outcomes = [
        _oc(0, "a", 1.0), _oc(1, "b", 2.0), _oc(2, "a", 3.0), _oc(3, "b", 4.0),
    ]
    packets = terminator_batches(outcomes)
    assert _unpack(packets) == [("a", 0), ("a", 2), ("b", 1), ("b", 3)]
    # In-order, same word: one packet per target.
    assert len(packets) == 2


def test_exited_threads_produce_no_packets():
    outcomes = [_oc(0, None, 1.0), _oc(1, None, 2.0)]
    assert terminator_batches(outcomes) == []


def test_tid_offset_makes_bases_tile_local():
    outcomes = [_oc(1000 + t, "n", float(t)) for t in range(4)]
    packets = terminator_batches(outcomes, tid_offset=1000)
    assert packets == [("n", 0, 0b1111)]


def test_no_thread_lost_under_any_interleaving():
    import random

    rng = random.Random(5)
    tids = list(range(300))
    outcomes = [
        _oc(t, "x" if t % 3 else "y", completion=rng.random()) for t in tids
    ]
    packets = terminator_batches(outcomes)
    got = _unpack(packets)
    want = sorted(("x" if t % 3 else "y", t) for t in tids)
    assert got == want
