"""Tests for the host-side convenience API."""

import numpy as np
import pytest

from repro.host import Device, DeviceArray, HostError
from repro.kernels import saxpy_kernel


def _saxpy_on(backend):
    dev = Device(backend, memory_words=1 << 14)
    n = 128
    x = dev.array(np.arange(float(n)))
    y = dev.array(np.ones(n))
    out = dev.empty(n)
    result = dev.launch(
        saxpy_kernel(), n, a=2.0, x=x, y=y, out=out, n=n
    )
    np.testing.assert_allclose(out.to_numpy(), 2.0 * np.arange(n) + 1.0)
    return result


@pytest.mark.parametrize("backend", ["interp", "vgiw", "fermi", "sgmf"])
def test_saxpy_on_every_backend(backend):
    result = _saxpy_on(backend)
    if backend != "interp":
        assert result.cycles > 0


def test_array_roundtrip_and_write():
    dev = Device("interp")
    a = dev.array([1.0, 2.0, 3.0], name="a")
    assert len(a) == 3
    np.testing.assert_array_equal(a.to_numpy(), [1.0, 2.0, 3.0])
    a.write([4.0, 5.0, 6.0])
    np.testing.assert_array_equal(a.to_numpy(), [4.0, 5.0, 6.0])
    with pytest.raises(HostError, match="holds 3 words"):
        a.write([1.0])


def test_unknown_backend_rejected():
    with pytest.raises(HostError, match="unknown backend"):
        Device("tpu")


def test_unknown_backend_lists_registry_and_suggests():
    """The registry's diagnosis — every registered name plus a
    nearest-match hint — surfaces unchanged through Device."""
    from repro.engine import UnknownEngineError, create_engine

    with pytest.raises(UnknownEngineError) as excinfo:
        create_engine("vgwi")
    message = str(excinfo.value)
    for name in ("vgiw", "fermi", "sgmf", "interp"):
        assert name in message
    assert "did you mean 'vgiw'?" in message

    with pytest.raises(HostError) as host_excinfo:
        Device("vgwi")
    assert str(host_excinfo.value) == message


def test_missing_params_rejected():
    dev = Device("interp")
    with pytest.raises(HostError, match="missing kernel parameters"):
        dev.launch(saxpy_kernel(), 8, a=1.0)


def test_foreign_array_rejected():
    dev1, dev2 = Device("interp"), Device("interp")
    a = dev1.array([1.0])
    out = dev1.empty(1)
    with pytest.raises(HostError, match="another device"):
        dev2.launch(saxpy_kernel(), 1, a=1.0, x=a, y=a, out=out, n=1)


def test_last_result_is_kept():
    dev = Device("vgiw", memory_words=1 << 12)
    n = 32
    x = dev.array(np.zeros(n))
    y = dev.array(np.zeros(n))
    out = dev.empty(n)
    result = dev.launch(saxpy_kernel(), n, a=0.0, x=x, y=y, out=out, n=n)
    assert dev.last_result is result
    assert result.bbs.reconfigurations >= 1


def test_optimize_can_be_disabled():
    dev = Device("interp", optimize=False)
    n = 16
    x = dev.array(np.ones(n))
    y = dev.array(np.zeros(n))
    out = dev.empty(n)
    dev.launch(saxpy_kernel(), n, a=3.0, x=x, y=y, out=out, n=n)
    np.testing.assert_array_equal(out.to_numpy(), 3.0 * np.ones(n))
