"""SRAD — speckle-reducing anisotropic diffusion (Rodinia).

*Beyond Table 2*: the paper's evaluation list does not include SRAD, but
it is a Rodinia staple (and appears in the SGMF paper's suite), so it
ships as an extra workload: a border-clamped stencil like HOTSPOT but
far heavier on divisions — an SCU stress test with real divergence.

``srad_kernel`` is Rodinia's first kernel: per cell, four directional
derivatives (border-clamped through if/else chains), the instantaneous
coefficient of variation, and the clamped diffusion coefficient.
"""

from __future__ import annotations

import numpy as np

from repro.ir import Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage

Q0 = 0.05  # speckle scale (host-computed in Rodinia; a launch constant)


def srad_kernel() -> Kernel:
    kb = KernelBuilder(
        "srad_kernel", params=["image", "coeff", "rows", "cols"]
    )
    t = kb.tid()
    rows = kb.param("rows")
    cols = kb.param("cols")
    with kb.if_(t < rows * cols):
        r = t // cols
        c = t % cols
        jc = kb.load(kb.param("image") + t)

        north = kb.var("north", 0.0)
        with kb.if_(r == 0):
            kb.assign(north, jc)
        with kb.else_():
            kb.assign(north, kb.load(kb.param("image") + t - cols))
        south = kb.var("south", 0.0)
        with kb.if_(r == rows - 1):
            kb.assign(south, jc)
        with kb.else_():
            kb.assign(south, kb.load(kb.param("image") + t + cols))
        west = kb.var("west", 0.0)
        with kb.if_(c == 0):
            kb.assign(west, jc)
        with kb.else_():
            kb.assign(west, kb.load(kb.param("image") + t - 1))
        east = kb.var("east", 0.0)
        with kb.if_(c == cols - 1):
            kb.assign(east, jc)
        with kb.else_():
            kb.assign(east, kb.load(kb.param("image") + t + 1))

        dn = north - jc
        ds = south - jc
        dw = west - jc
        de = east - jc
        g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc)
        l = (dn + ds + dw + de) / jc
        num = 0.5 * g2 - 0.0625 * (l * l)
        den_t = 1.0 + 0.25 * l
        qsqr = num / (den_t * den_t)
        cval = kb.var("cval", 0.0)
        kb.assign(
            cval, 1.0 / (1.0 + (qsqr - Q0) / (Q0 * (1.0 + Q0)))
        )
        # Clamp the diffusion coefficient to [0, 1] (Rodinia's saturation
        # branches — more divergence on top of the border chains).
        with kb.if_(cval < 0.0):
            kb.assign(cval, 0.0)
        with kb.else_():
            with kb.if_(cval > 1.0):
                kb.assign(cval, 1.0)
        kb.store(kb.param("coeff") + t, cval)
    return kb.build()


def srad_reference(image: np.ndarray) -> np.ndarray:
    rows, cols = image.shape
    north = np.vstack([image[0:1, :], image[:-1, :]])
    south = np.vstack([image[1:, :], image[-1:, :]])
    west = np.hstack([image[:, 0:1], image[:, :-1]])
    east = np.hstack([image[:, 1:], image[:, -1:]])
    dn, ds, dw, de = (x - image for x in (north, south, west, east))
    g2 = (dn**2 + ds**2 + dw**2 + de**2) / image**2
    l = (dn + ds + dw + de) / image
    num = 0.5 * g2 - 0.0625 * l**2
    den = (1.0 + 0.25 * l) ** 2
    qsqr = num / den
    c = 1.0 / (1.0 + (qsqr - Q0) / (Q0 * (1.0 + Q0)))
    return np.clip(c, 0.0, 1.0)


def make_workload(scale: str = "small", seed: int = 131) -> Workload:
    side = pick(scale, 16, 64, 128)
    rows = cols = side
    rng = np.random.default_rng(seed)
    image = rng.uniform(0.5, 1.5, (rows, cols))

    mem = MemoryImage(2 * rows * cols + 64)
    b_img = mem.alloc_array("image", image.ravel())
    b_coe = mem.alloc("coeff", rows * cols)

    return Workload(
        name="srad/srad_kernel",
        app="SRAD",
        kernel=srad_kernel(),
        memory=mem,
        params={"image": b_img, "coeff": b_coe, "rows": rows, "cols": cols},
        n_threads=rows * cols,
        expected={"coeff": srad_reference(image).ravel()},
        paper_blocks=0,  # beyond Table 2
    )
