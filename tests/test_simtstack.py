"""Tests for the SIMT reconvergence stack."""

import pytest

from repro.compiler import immediate_post_dominators
from repro.kernels import fig1_kernel
from repro.simt import EXIT, SIMTStack, SIMTStackError


def _stack_for(kernel, mask=0xFF):
    ipdom = immediate_post_dominators(kernel)
    return SIMTStack(kernel.entry, mask, ipdom)


def test_uniform_branch_no_divergence():
    k = fig1_kernel()
    st = _stack_for(k)
    t, _f = k.blocks["entry"].terminator.targets()
    st.advance("entry", {t: 0xFF})
    assert st.peek_block() == t
    assert st.divergences == 0


def test_divergent_branch_serialises_paths():
    k = fig1_kernel()
    st = _stack_for(k)
    t, f = k.blocks["entry"].terminator.targets()
    st.advance("entry", {t: 0x0F, f: 0xF0})
    assert st.divergences == 1
    first = st.peek_block()
    assert first in (t, f)
    assert st.current().mask in (0x0F, 0xF0)


def test_reconvergence_restores_full_mask():
    k = fig1_kernel()
    ipdom = immediate_post_dominators(k)
    st = _stack_for(k)
    t, f = k.blocks["entry"].terminator.targets()
    reconv = ipdom["entry"]
    st.advance("entry", {t: 0x0F, f: 0xF0})
    # Execute both serialised sides; each jumps to the reconv point.
    for _ in range(2):
        block = st.peek_block()
        mask = st.current().mask
        target = k.blocks[block].successors()
        # Walk the side until it reaches the reconvergence block.
        while block != reconv:
            succs = k.blocks[block].successors()
            # Take the uniform path for this test's simple sides.
            st.advance(block, {succs[0]: mask})
            block = st.peek_block()
            if block == reconv and st.current().mask == 0xFF:
                break
            if st.current().mask != mask:
                break
    assert st.peek_block() == reconv
    assert st.current().mask == 0xFF


def test_exit_pops_and_finishes():
    k = fig1_kernel()
    st = _stack_for(k, mask=0b11)
    # Drive all lanes through a uniform path to completion.
    block = st.peek_block()
    while block is not None:
        term = k.blocks[block].terminator
        succs = k.blocks[block].successors()
        if not succs:
            st.advance(block, {EXIT: st.current().mask})
        else:
            st.advance(block, {succs[0]: st.current().mask})
        block = st.peek_block()
    assert st.done or st.peek_block() is None


def test_mask_partition_enforced():
    k = fig1_kernel()
    st = _stack_for(k, mask=0b1111)
    t, f = k.blocks["entry"].terminator.targets()
    with pytest.raises(SIMTStackError, match="cover"):
        st.advance("entry", {t: 0b0011})  # lanes 2,3 unaccounted
    st2 = _stack_for(k, mask=0b1111)
    with pytest.raises(SIMTStackError, match="two branch targets"):
        st2.advance("entry", {t: 0b0011, f: 0b0110})


def test_wrong_block_rejected():
    k = fig1_kernel()
    st = _stack_for(k)
    with pytest.raises(SIMTStackError, match="top of stack"):
        st.advance("nonexistent", {EXIT: 0xFF})


def test_max_depth_tracks_nesting():
    k = fig1_kernel()
    st = _stack_for(k)
    t, f = k.blocks["entry"].terminator.targets()
    st.advance("entry", {t: 0x0F, f: 0xF0})
    assert st.max_depth >= 2
