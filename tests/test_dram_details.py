"""Detail tests for the DRAM bank/channel calendars."""

import pytest

from repro.arch import MemoryConfig
from repro.memory import DRAM


def test_same_bank_back_to_back_serialises():
    cfg = MemoryConfig()
    dram = DRAM(cfg)
    lines_per_cycle = cfg.dram_channels * cfg.dram_banks_per_channel
    same_bank_stride = lines_per_cycle  # same channel & bank, next row set
    t1 = dram.access(0.0, 0, False)
    t2 = dram.access(0.0, 0, False)  # identical line: bank busy
    assert t2 > t1


def test_row_hit_faster_than_miss():
    cfg = MemoryConfig()
    dram = DRAM(cfg)
    first = dram.access(0.0, 0, False)           # opens the row (miss)
    second = dram.access(first, 0, False)        # same row: hit
    assert (second - first) == cfg.dram_row_hit_latency + 0 or \
           (second - first) <= cfg.dram_row_miss_latency
    assert dram.stats.row_hits >= 1
    assert dram.stats.row_misses >= 1


def test_out_of_order_backfill():
    cfg = MemoryConfig()
    dram = DRAM(cfg)
    # A request recorded far in the future must not block one in the past
    # on a *different* bank/channel.
    late = dram.access(10_000.0, 0, False)
    early = dram.access(0.0, 1, False)  # different channel
    assert early < late


def test_writes_counted():
    dram = DRAM(MemoryConfig())
    dram.access(0.0, 0, True)
    dram.access(0.0, 1, False)
    assert dram.stats.writes == 1
    assert dram.stats.reads == 1
    assert dram.stats.accesses == 2


def test_bank_intervals_sorted():
    dram = DRAM(MemoryConfig())
    for t in (50.0, 0.0, 100.0, 25.0):
        dram.access(t, 0, False)  # all to one bank
    for bank in dram._banks.values():
        starts = [s for s, _, _ in bank.intervals]
        assert starts == sorted(starts)
