"""Property-based tests for the SIMT stack under random divergence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt import EXIT, SIMTStack

#: A tiny synthetic CFG used by the property:
#:
#:    entry -> {a, b};  a -> {c, merge};  b -> merge;  c -> merge;
#:    merge -> exit
_SUCCS = {
    "entry": ("a", "b"),
    "a": ("c", "merge"),
    "b": ("merge",),
    "c": ("merge",),
    "merge": (),
}
_IPDOM = {
    "entry": "merge",
    "a": "merge",
    "b": "merge",
    "c": "merge",
    "merge": None,
}


@given(st.lists(st.booleans(), min_size=8, max_size=8),
       st.lists(st.booleans(), min_size=8, max_size=8))
@settings(max_examples=100, deadline=None)
def test_every_lane_executes_its_own_path_exactly_once(outer, inner):
    """Whatever the per-lane branch outcomes, each lane visits exactly the
    blocks on its path, in order, and the warp terminates."""
    full = 0xFF
    stack = SIMTStack("entry", full, _IPDOM)
    visits = {lane: [] for lane in range(8)}

    steps = 0
    while True:
        block = stack.peek_block()
        if block is None:
            break
        steps += 1
        assert steps < 64, "warp failed to terminate"
        mask = stack.current().mask
        for lane in range(8):
            if mask >> lane & 1:
                visits[lane].append(block)
        succs = _SUCCS[block]
        if not succs:
            targets = {EXIT: mask}
        elif len(succs) == 1:
            targets = {succs[0]: mask}
        else:
            t_mask = 0
            decider = outer if block == "entry" else inner
            for lane in range(8):
                if mask >> lane & 1 and decider[lane]:
                    t_mask |= 1 << lane
            targets = {succs[0]: t_mask, succs[1]: mask & ~t_mask}
        stack.advance(block, targets)

    for lane in range(8):
        expected = ["entry"]
        expected.append("a" if outer[lane] else "b")
        if outer[lane]:
            expected.append("c" if inner[lane] else None)
        expected.append("merge")
        expected = [b for b in expected if b is not None]
        assert visits[lane] == expected, f"lane {lane} path mismatch"


@given(st.integers(1, 255))
@settings(max_examples=50, deadline=None)
def test_partial_warps_terminate(mask):
    stack = SIMTStack("entry", mask, _IPDOM)
    steps = 0
    while stack.peek_block() is not None:
        steps += 1
        assert steps < 64
        block = stack.peek_block()
        m = stack.current().mask
        succs = _SUCCS[block]
        if not succs:
            stack.advance(block, {EXIT: m})
        elif len(succs) == 1:
            stack.advance(block, {succs[0]: m})
        else:
            # Alternate lanes diverge.
            t = m & 0x55
            stack.advance(block, {succs[0]: t, succs[1]: m & ~t})
