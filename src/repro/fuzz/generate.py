"""Seeded structured kernel generator.

``generate_case(seed)`` deterministically produces a :class:`FuzzCase`:
an arbitrary-but-valid kernel built through the
:class:`~repro.ir.builder.KernelBuilder` DSL, a launch-parameter
assignment, and a deterministic initial memory image.  The same seed
always yields the byte-identical case, in any process (no dependence on
hash randomisation: the generator draws only from ``random.Random`` and
indexes lists, never sets or dicts).

Generated kernels exercise, by construction:

* **nested divergent control flow** — ``if``/``if-else`` regions keyed
  on data-dependent predicates, nested up to ``max_depth``;
* **loops with data-dependent trip counts** — counted ``for_range``
  loops and condition-tested ``while`` loops whose bounds derive from
  loaded data or parameters, masked so every loop terminates;
* **mixed int/float arithmetic** including the SCU ops (``DIV``,
  ``REM``, ``FDIV``, ``FSQRT``, ...) whose edge cases are pinned in
  :mod:`repro.ir.instr`, and ``I2F``/``F2I`` conversions;
* **cross-block live values** — mutable variables initialised in the
  entry block and reassigned inside divergent arms and loop bodies,
  stressing liveness analysis, LVU placement, and replication;
* **coalesced and scattered memory traffic** — loads from a shared
  read-only input region (stride-1 or data-dependent scatter) and
  stores into a per-thread output stripe or a coalesced slot layout.

Safety invariants (what makes every generated kernel a *valid*
differential testcase rather than UB soup):

* every load address lands in the read-only input region (power-of-two
  masked), so no thread ever observes another thread's stores — final
  memory is independent of thread interleaving and the sequential
  interpreter is a sound golden model;
* every store address lands in the storing thread's private output
  stripe or its private coalesced slots — no data races;
* loop trip counts are masked to small bounds, so every kernel
  terminates on every input;
* integer values are masked at assignment/store boundaries, so values
  stay within the float64-exact range the memory image can hold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.ir.builder import KernelBuilder, Val
from repro.ir.kernel import Kernel
from repro.ir.types import DType
from repro.memory.image import MemoryImage

__all__ = ["FuzzCase", "GenConfig", "generate_case"]

#: mask applied to loop-carried variables and integer store values so
#: values stay exactly representable in the float64 memory image.
_VAR_MASK = 0xFFFFFFFF          # 32-bit
_STORE_MASK = 0xFFFFFFFFFFF     # 44-bit (< 2**53, float64-exact)


@dataclass(frozen=True)
class GenConfig:
    """Size knobs of the generator (all bounds, not exact sizes —
    each case draws its own dimensions below these caps)."""

    #: launch width cap (cases draw 1..max_threads threads)
    max_threads: int = 12
    #: maximum nesting depth of if/loop regions
    max_depth: int = 3
    #: maximum statements per region body
    max_stmts: int = 5
    #: maximum straight-line arithmetic instructions per statement
    max_exprs: int = 3
    #: cross-block mutable int variables (live values)
    max_vars: int = 4
    #: words in the shared read-only input region (power of two)
    input_words: int = 64
    #: words in each thread's private output stripe (power of two)
    stripe_words: int = 8
    #: loop trip counts are masked to [0, trip_mask]
    trip_mask: int = 7
    #: allow loop regions at all
    allow_loops: bool = True
    #: allow SCU opcodes (DIV/REM/FDIV/FSQRT/FEXP/...)
    allow_special: bool = True

    def __post_init__(self):
        for name in ("input_words", "stripe_words"):
            v = getattr(self, name)
            if v & (v - 1) or v <= 0:
                raise ValueError(f"{name} must be a power of two, got {v}")


@dataclass
class FuzzCase:
    """One differential testcase: kernel + launch + initial memory."""

    seed: int
    kernel: Kernel
    params: Dict[str, float]
    n_threads: int
    mem_words: int
    input_base: int
    input_values: Tuple[float, ...]
    config: GenConfig = field(default_factory=GenConfig)

    def build_memory(self) -> MemoryImage:
        """A fresh initial memory image (call once per substrate)."""
        mem = MemoryImage(self.mem_words)
        if self.input_values:
            mem.write_block(self.input_base, list(self.input_values))
        return mem

    def with_kernel(self, kernel: Kernel) -> "FuzzCase":
        """The same case running a different (e.g. reduced) kernel."""
        return replace(self, kernel=kernel)

    def with_threads(self, n_threads: int) -> "FuzzCase":
        """The same case at a different launch width (``n`` tracks it —
        the coalesced slot layout is keyed on the launch width)."""
        params = dict(self.params)
        params["n"] = n_threads
        return replace(self, n_threads=n_threads, params=params)


# ----------------------------------------------------------------------
# Generator internals
# ----------------------------------------------------------------------
class _Gen:
    """Holds the builder, the RNG, and the scoped value pools."""

    def __init__(self, rng: random.Random, kb: KernelBuilder,
                 cfg: GenConfig, n_threads: int):
        self.rng = rng
        self.kb = kb
        self.cfg = cfg
        self.n_threads = n_threads
        self.ints: List[Val] = []
        self.floats: List[Val] = []
        self.preds: List[Val] = []
        self.vars: List[Val] = []      # mutable int vars (stable handles)
        self.fvars: List[Val] = []     # mutable float vars
        self.n_stores = 0
        self.loop_counter = 0

    # -- pools ----------------------------------------------------------
    def int_val(self) -> Val:
        return self.rng.choice(self.ints)

    def float_val(self) -> Val:
        return self.rng.choice(self.floats)

    def pred_val(self) -> Val:
        if self.preds and self.rng.random() < 0.6:
            return self.rng.choice(self.preds)
        return self.gen_pred()

    def _snapshot(self):
        return (len(self.ints), len(self.floats), len(self.preds))

    def _restore(self, snap):
        ni, nf, np_ = snap
        del self.ints[ni:]
        del self.floats[nf:]
        del self.preds[np_:]

    # -- expressions ----------------------------------------------------
    def gen_int(self) -> Val:
        kb, rng = self.kb, self.rng
        a = self.int_val()
        kind = rng.randrange(14 if self.cfg.allow_special else 11)
        if kind == 0:
            v = a + self.int_val()
        elif kind == 1:
            v = a - self.int_val()
        elif kind == 2:
            v = a * self.int_val()
        elif kind == 3:
            v = a & self.int_val()
        elif kind == 4:
            v = a | self.int_val()
        elif kind == 5:
            v = a ^ self.int_val()
        elif kind == 6:
            v = a << rng.randint(0, 70)   # out-of-range on purpose
        elif kind == 7:
            v = a >> rng.randint(0, 70)
        elif kind == 8:
            v = kb.min_(a, self.int_val())
        elif kind == 9:
            v = kb.max_(a, self.int_val())
        elif kind == 10:
            v = kb.f2i(self.float_val())
        elif kind == 11:
            v = a // self.int_val()       # divisor may be 0 (pinned)
        elif kind == 12:
            v = a % self.int_val()
        else:
            v = kb.select(self.pred_val(), a, self.int_val())
        self.ints.append(v)
        return v

    def gen_float(self) -> Val:
        kb, rng = self.kb, self.rng
        a = self.float_val()
        kind = rng.randrange(12 if self.cfg.allow_special else 6)
        if kind == 0:
            v = a + self.float_val()
        elif kind == 1:
            v = a - self.float_val()
        elif kind == 2:
            v = a * self.float_val()
        elif kind == 3:
            v = kb.fma(a, self.float_val(), self.float_val())
        elif kind == 4:
            v = kb.i2f(self.int_val())
        elif kind == 5:
            v = kb.select(self.pred_val(), a, self.float_val())
        elif kind == 6:
            v = a / self.float_val()      # divisor may be 0.0 (pinned)
        elif kind == 7:
            v = kb.sqrt(a)                # operand may be < 0 (pinned)
        elif kind == 8:
            v = kb.rsqrt(a)
        elif kind == 9:
            v = kb.log(kb.abs_(a))
        elif kind == 10:
            v = kb.sin(a) if rng.random() < 0.5 else kb.cos(a)
        else:
            v = kb.floor(a)
        self.floats.append(v)
        return v

    def gen_pred(self) -> Val:
        kb, rng = self.kb, self.rng
        kind = rng.randrange(6)
        if kind == 0:
            v = self.int_val() < self.int_val()
        elif kind == 1:
            v = self.int_val() >= self.int_val()
        elif kind == 2:
            v = self.float_val() < self.float_val()
        elif kind == 3:
            v = self.int_val() == self.int_val()
        elif kind == 4:
            v = kb.not_(self.pred_val() if self.preds
                        else (self.int_val() < self.int_val()))
        else:
            v = self.int_val() != self.int_val()
        self.preds.append(v)
        return v

    # -- memory ---------------------------------------------------------
    def gen_load(self) -> Val:
        """Load from the shared read-only input region."""
        kb, rng, cfg = self.kb, self.rng, self.cfg
        base = kb.param("in_")
        if rng.random() < 0.4:
            addr = base + (kb.tid() & (cfg.input_words - 1))  # coalesced
        else:
            addr = base + (self.int_val() & (cfg.input_words - 1))
        dtype = DType.FLOAT if rng.random() < 0.5 else DType.INT
        v = kb.load(addr, dtype)
        (self.floats if dtype is DType.FLOAT else self.ints).append(v)
        return v

    def gen_store(self) -> None:
        """Store into the storing thread's private output words."""
        kb, rng, cfg = self.kb, self.rng, self.cfg
        out = kb.param("out")
        if rng.random() < 0.5:
            # Scattered within the thread's private stripe.
            addr = (out + kb.tid() * cfg.stripe_words
                    + (self.int_val() & (cfg.stripe_words - 1)))
        else:
            # Coalesced slot layout *above* every stripe: the stripes
            # end at out + n*stripe_words, and slot s then covers
            # [out + (stripe_words+s)*n, out + (stripe_words+s+1)*n).
            # Thread t only touches offset t of a slot, so slots are
            # race-free too, and the two families never overlap.
            slot = rng.randrange(cfg.stripe_words)
            addr = (out + kb.param("n") * (cfg.stripe_words + slot)
                    + kb.tid())
        if rng.random() < 0.5:
            kb.store(addr, self.float_val())
        else:
            kb.store(addr, self.int_val() & _STORE_MASK)
        self.n_stores += 1

    # -- statements -----------------------------------------------------
    def gen_assign(self) -> None:
        kb, rng = self.kb, self.rng
        if self.fvars and rng.random() < 0.3:
            kb.assign(rng.choice(self.fvars), self.gen_float())
        elif self.vars:
            kb.assign(rng.choice(self.vars), self.gen_int() & _VAR_MASK)

    def gen_if(self, depth: int) -> None:
        kb = self.kb
        cond = self.pred_val()
        snap = self._snapshot()
        with kb.if_(cond):
            self.gen_region(depth + 1)
        self._restore(snap)  # arm-local values must not leak across arms
        if self.rng.random() < 0.5:
            with kb.else_():
                self.gen_region(depth + 1)
            self._restore(snap)

    def gen_for(self, depth: int) -> None:
        kb, rng, cfg = self.kb, self.rng, self.cfg
        self.loop_counter += 1
        stop = self.int_val() & cfg.trip_mask   # data-dependent, bounded
        name = f"i{self.loop_counter}"
        snap = self._snapshot()
        with kb.for_range(0, stop, name=name) as i:
            self.ints.append(i)
            self.gen_region(depth + 1)
        self._restore(snap)

    def gen_while(self, depth: int) -> None:
        kb, rng, cfg = self.kb, self.rng, self.cfg
        self.loop_counter += 1
        bound = self.int_val() & cfg.trip_mask
        c = kb.var(f"c{self.loop_counter}", 0)
        snap = self._snapshot()
        with kb.loop() as lp:
            if rng.random() < 0.5:
                lp.break_unless(c < bound)
            else:
                lp.break_if(c >= bound)
            kb.assign(c, c + 1)
            self.ints.append(c)
            self.gen_region(depth + 1)
        self._restore(snap)

    def gen_region(self, depth: int) -> None:
        rng, cfg = self.rng, self.cfg
        n_stmts = rng.randint(1, cfg.max_stmts)
        for _ in range(n_stmts):
            snap = self._snapshot()
            roll = rng.random()
            if roll < 0.30:
                for _ in range(rng.randint(1, cfg.max_exprs)):
                    if rng.random() < 0.5:
                        self.gen_int()
                    else:
                        self.gen_float()
                continue  # keep the new values visible in this region
            if roll < 0.45:
                self.gen_load()
                continue
            if roll < 0.60:
                self.gen_store()
            elif roll < 0.75:
                self.gen_assign()
            elif depth < cfg.max_depth and roll < 0.88:
                self.gen_if(depth)
            elif depth < cfg.max_depth and cfg.allow_loops:
                if rng.random() < 0.5:
                    self.gen_for(depth)
                else:
                    self.gen_while(depth)
            else:
                self.gen_store()
            self._restore(snap)


def generate_case(seed: int, config: Optional[GenConfig] = None) -> FuzzCase:
    """Deterministically generate the :class:`FuzzCase` for ``seed``."""
    cfg = config or GenConfig()
    rng = random.Random(seed)
    n_threads = rng.randint(1, cfg.max_threads)

    kb = KernelBuilder(f"fuzz_{seed & 0xFFFFFFFFFFFF:012x}",
                       params=["in_", "out", "n", "k1", "k2", "f1"])
    gen = _Gen(rng, kb, cfg, n_threads)

    # Leaf values: tid, params, a few immediates.
    gen.ints += [kb.tid(), kb.param("k1"), kb.param("k2"), kb.param("n")]
    gen.ints += [kb.const(rng.randint(-8, 64)) for _ in range(3)]
    gen.floats += [kb.fparam("f1")]
    gen.floats += [kb.const(round(rng.uniform(-4.0, 4.0), 3))
                   for _ in range(3)]

    # Mutable cross-block live values, initialised in the entry block.
    n_vars = rng.randint(1, cfg.max_vars)
    for v in range(n_vars):
        gen.vars.append(kb.var(f"v{v}", gen.gen_int() & _VAR_MASK))
    if rng.random() < 0.7:
        gen.fvars.append(kb.var("w0", gen.gen_float()))
    gen.ints += gen.vars
    gen.floats += gen.fvars

    # The body.
    gen.gen_region(0)

    # Checksum epilogue: fold every live variable into the stripe so
    # divergence in *any* live value is observable in final memory.
    acc = kb.const(0)
    for v in gen.vars:
        acc = acc ^ v
    kb.store(kb.param("out") + kb.tid() * cfg.stripe_words,
             acc & _STORE_MASK)
    for w in gen.fvars:
        kb.store(kb.param("out") + kb.tid() * cfg.stripe_words + 1, w)
    gen.n_stores += 1

    kernel = kb.build()

    # Deterministic memory image and launch parameters (independent RNG
    # stream so structural tweaks don't reshuffle the data).
    drng = random.Random((seed ^ 0x9E3779B97F4A7C15) & ((1 << 64) - 1))
    input_values = tuple(
        float(drng.randint(0, 255)) if drng.random() < 0.5
        else round(drng.uniform(-16.0, 16.0), 4)
        for _ in range(cfg.input_words)
    )
    input_base = 0
    output_base = cfg.input_words
    # Output region: n stripes of ``stripe_words`` followed by
    # ``stripe_words`` coalesced slots of n words each — 2*S*n words,
    # sized for the config maximum so ``with_threads`` stays in bounds.
    mem_words = cfg.input_words + 2 * cfg.stripe_words * max(
        n_threads, cfg.max_threads
    ) + 16
    params = {
        "in_": input_base,
        "out": output_base,
        "n": n_threads,
        "k1": drng.randint(-4, 100),
        "k2": drng.randint(0, 7),
        "f1": round(drng.uniform(-2.0, 2.0), 4),
    }
    return FuzzCase(
        seed=seed,
        kernel=kernel,
        params=params,
        n_threads=n_threads,
        mem_words=mem_words,
        input_base=input_base,
        input_values=input_values,
        config=cfg,
    )
