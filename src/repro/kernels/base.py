"""Common infrastructure for benchmark workloads.

A :class:`Workload` bundles everything one kernel launch needs — the
kernel, an initialised memory image, parameter values, the launch size —
plus a numpy golden model used by the test suite to validate the IR
implementation itself (the timing simulators are separately validated
against the reference interpreter).

Rodinia kernels synchronise through kernel-launch boundaries and
``__syncthreads`` barriers.  The virtual ISA has no barriers, so every
workload here is written *race-free within one launch*: no thread reads
a location another thread of the same launch writes.  Where the original
kernel relied on intra-launch synchronisation (LUD's tile factorisation,
NW's anti-diagonal sweep), the workload either privatises the
computation or models a single launch of the host-side loop; the
control-flow *shape* — which is what the architectures respond to — is
preserved.  Each substitution is documented on the kernel function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.ir.kernel import Kernel
from repro.memory.image import MemoryImage

Number = Union[int, float]

#: Scale presets: tests use "tiny", benchmarks use "small"; "medium" is
#: for the final EXPERIMENTS.md runs (slower, closer to amortised
#: steady-state behaviour).
SCALES = ("tiny", "small", "medium")


@dataclass
class Workload:
    """One ready-to-run kernel launch with its golden model."""

    name: str                 # e.g. "bfs/Kernel"
    app: str                  # application (Table 2 row), e.g. "BFS"
    kernel: Kernel
    memory: MemoryImage
    params: Dict[str, Number]
    n_threads: int
    #: region name -> expected contents after the launch
    expected: Dict[str, np.ndarray] = field(default_factory=dict)
    #: reference block count from the paper's Table 2 (for reporting)
    paper_blocks: Optional[int] = None

    def check(self, atol: float = 1e-9, rtol: float = 1e-9) -> None:
        """Assert the memory image matches the golden model."""
        for region, want in self.expected.items():
            got = self.memory.read_region(region)
            np.testing.assert_allclose(
                got, want, atol=atol, rtol=rtol,
                err_msg=f"{self.name}: region {region!r} mismatch",
            )


def scale_index(scale: str) -> int:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick one of {SCALES}")
    return SCALES.index(scale)


def pick(scale: str, tiny, small, medium):
    """Select a size parameter by scale preset."""
    return (tiny, small, medium)[scale_index(scale)]
