"""Live-value ID allocation.

Every register that is live across a block boundary gets a *live value
ID*: a row index into the memory-resident live-value matrix that the LVC
caches (paper §3.4 — the matrix is indexed by ⟨live value ID, thread
ID⟩).  The mapping process is analogous to register allocation; here we
use a straightforward interference-based reuse so the matrix stays
compact: two registers may share an ID when no block has both live-out
(their memory rows never hold meaningful data for the same thread at
the same time... conservatively approximated by live-range overlap at
block granularity).

Per block, the allocation also records which live values the block must
*fetch* (live-in registers it actually reads) and which it must *spill*
(registers it defines that are live-out).  Registers that are merely
live *through* a block cost nothing: their rows simply stay resident in
the LVC/memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro.compiler.liveness import LivenessResult, analyze_liveness
from repro.ir.kernel import Kernel
from repro.ir.types import Reg, is_reserved_reg


@dataclass
class LiveValueMap:
    """Result of live-value allocation for one kernel."""

    #: register name -> live value ID
    ids: Dict[str, int]
    #: per block: live-in registers the block reads (LVU load nodes)
    fetches: Dict[str, FrozenSet[str]]
    #: per block: registers defined here and live-out (LVU store nodes)
    spills: Dict[str, FrozenSet[str]]
    liveness: LivenessResult = None

    @property
    def n_live_values(self) -> int:
        return 1 + max(self.ids.values()) if self.ids else 0

    def lv_id(self, reg: str) -> int:
        return self.ids[reg]


def allocate_live_values(kernel: Kernel, liveness: LivenessResult = None) -> LiveValueMap:
    """Assign live value IDs and per-block fetch/spill sets."""
    liveness = liveness or analyze_liveness(kernel)
    crossing = liveness.crossing_registers()

    # Interference: registers simultaneously live at some block boundary
    # must not share an ID.
    interference: Dict[str, Set[str]] = {r: set() for r in crossing}
    for name in kernel.blocks:
        for live_set in (liveness.live_in[name], liveness.live_out[name]):
            group = sorted(live_set)
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    interference[a].add(b)
                    interference[b].add(a)

    # Greedy colouring in order of decreasing degree.
    ids: Dict[str, int] = {}
    for reg in sorted(crossing, key=lambda r: (-len(interference[r]), r)):
        taken = {ids[n] for n in interference[reg] if n in ids}
        color = 0
        while color in taken:
            color += 1
        ids[reg] = color

    fetches: Dict[str, FrozenSet[str]] = {}
    spills: Dict[str, FrozenSet[str]] = {}
    for name, block in kernel.blocks.items():
        reads = {
            r
            for r in block.uses_before_def()
            if not is_reserved_reg(Reg(r)) and r in liveness.live_in[name]
        }
        writes = {r for r in block.defs() if r in liveness.live_out[name]}
        fetches[name] = frozenset(reads)
        spills[name] = frozenset(writes)

    return LiveValueMap(ids=ids, fetches=fetches, spills=spills, liveness=liveness)
