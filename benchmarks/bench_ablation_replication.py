"""Ablation: basic-block replication (paper sections 2 and 3.1).

Replicating a small block's dataflow graph multiplies the core's
injection throughput.  This ablation runs the same workloads with
replication enabled (up to 8 replicas) and disabled (one replica) and
reports the speedup replication buys — one of the two key contributors
the paper credits for VGIW's performance.
"""

from repro.compiler import compile_kernel
from repro.evalharness.tables import ExperimentTable, geomean
from repro.kernels import make_fig1_workload, saxpy_kernel
from repro.kernels.registry import make_workload
from repro.vgiw import VGIWCore


def _run(compiled, workload):
    mem = workload.memory.clone()
    return VGIWCore().run(compiled, mem, workload.params, workload.n_threads)


def bench_ablation_replication(benchmark):
    table = ExperimentTable(
        "Ablation", "Block replication on vs. off",
        ["Kernel", "1 replica [cyc]", "replicated [cyc]", "Gain"],
    )
    gains = []

    def run_ablation():
        table.rows.clear()
        for name in ("kmeans/invert_mapping", "nn/euclid",
                     "gaussian/Fan2", "hotspot/hotspot_kernel"):
            w = make_workload(name, "tiny")
            on = _run(compile_kernel(w.kernel, replicate=True), w)
            off = _run(compile_kernel(w.kernel, replicate=False), w)
            gain = off.cycles / on.cycles
            gains.append(gain)
            table.add(name, off.cycles, on.cycles, gain)
        return table

    benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(table.render())
    assert geomean(gains) > 1.3, "replication must pay off on small blocks"
