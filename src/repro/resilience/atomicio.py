"""Atomic, durable file writes shared by the crash-safe paths.

Three subsystems must never leave a torn file behind a crash: the
compile cache's on-disk tier (corrupt entries would at best cost a
recompile, at worst poison every ``--jobs`` worker that maps the same
key), the evaluation harness's run journal (a half-written journal
line would make ``--resume`` silently drop a finished kernel), and the
Chrome-trace export (a truncated JSON file looks empty to Perfetto,
which reads as "the run produced no events").

All of them use the same POSIX recipe, extracted here so it is written
once and tested once:

1. create a unique temp file *in the destination directory* (same
   filesystem, so the final rename cannot degrade to a copy);
2. write the payload and ``fsync`` the file descriptor, so the data is
   on the platter before the name exists;
3. ``os.replace`` onto the destination — atomic on POSIX, so readers
   see either the old complete file or the new complete file, never a
   prefix.

``fsync=False`` skips step 2 for throwaway artifacts (tests, tmpfs)
where durability across power loss is not worth the flush.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_pickle",
]


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + rename).

    The destination directory is created on demand.  On any failure the
    temp file is removed and the original ``path`` (if it existed) is
    left untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)  # atomic under POSIX
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, fsync: bool = True,
                      encoding: str = "utf-8") -> None:
    """:func:`atomic_write_bytes` for str payloads."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_pickle(path: str, value: Any, fsync: bool = True) -> None:
    """Atomically pickle ``value`` to ``path``.

    The pickle happens *before* the temp file exists, so an unpicklable
    value raises without leaving any file behind.
    """
    data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    atomic_write_bytes(path, data, fsync=fsync)
