"""Architecture configuration (paper Table 1)."""

from repro.arch.config import (
    DEFAULT_OP_LATENCY,
    FabricSpec,
    FermiConfig,
    MemoryConfig,
    SGMFConfig,
    UnitKind,
    VGIWConfig,
    op_latency_for,
)

__all__ = [
    "DEFAULT_OP_LATENCY",
    "FabricSpec",
    "FermiConfig",
    "MemoryConfig",
    "SGMFConfig",
    "UnitKind",
    "VGIWConfig",
    "op_latency_for",
]
