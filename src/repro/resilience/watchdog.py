"""Forward-progress watchdog for the event-driven simulator loops.

Dataflow/CGRA machines are notoriously deadlock-prone under buffer
back-pressure: a token buffer of depth 1 feeding a cyclic dependency, a
dropped memory response, or a runaway basic-block scheduling loop will
silently spin the simulator forever (or until a bare recursion/counter
guard kills the whole process).  The watchdog turns both failure shapes
into a structured :class:`~repro.resilience.errors.SimulationHangError`:

* **livelock / budget** — the simulated clock passes a hard
  ``max_cycles`` budget;
* **deadlock / stall** — no *event retires* (thread completes, warp
  finishes) for ``stall_cycles`` simulated cycles even though the clock
  is still advancing.

The error carries a :class:`DiagnosticSnapshot` — in-flight tokens per
replica, reservation-buffer and MSHR occupancy, a stalled-unit
histogram, and the oldest in-flight thread's age — so a hang in a long
sweep is attributable without re-running under a debugger.

The checks are two float comparisons when armed and a single attribute
test when not, so leaving a (generous) watchdog on costs well under 5 %
of simulator wall-clock (see ``benchmarks/bench_watchdog_overhead.py``).
"""

from __future__ import annotations

import contextlib
import signal
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.resilience.errors import SimulationHangError


@dataclass(frozen=True)
class WatchdogConfig:
    """Knobs for :class:`ForwardProgressWatchdog`.

    ``None`` disables the corresponding check; the default config is
    fully disarmed (zero-overhead pass-through).
    """

    #: hard budget on the simulated clock (cycles since ``start``).
    max_cycles: Optional[float] = None
    #: max simulated cycles without any retirement event.
    stall_cycles: Optional[float] = None

    @property
    def armed(self) -> bool:
        return self.max_cycles is not None or self.stall_cycles is not None

    def scaled(self, factor: float) -> "WatchdogConfig":
        """Budget backoff for retries: both limits scaled by ``factor``."""
        return replace(
            self,
            max_cycles=None if self.max_cycles is None
            else max(1.0, self.max_cycles * factor),
            stall_cycles=None if self.stall_cycles is None
            else max(1.0, self.stall_cycles * factor),
        )


@dataclass
class DiagnosticSnapshot:
    """Machine state at the moment a watchdog fired."""

    sim: str                     # "vgiw" | "sgmf" | "fermi"
    kernel: str
    cycle: float
    events_retired: int
    last_progress_cycle: float
    #: in-flight threads (tokens in virtual channels) per replica label
    in_flight: Dict[str, int] = field(default_factory=dict)
    #: outstanding entries per LDST/LVU reservation buffer
    reservation_occupancy: Dict[str, int] = field(default_factory=dict)
    #: outstanding L1 misses held in MSHRs (Fermi) / memory responses
    mshr_outstanding: int = 0
    #: accumulated issue-stall cycles per unit label (largest = culprit)
    stalled_units: Dict[str, float] = field(default_factory=dict)
    #: age (cycles) of the oldest thread still in flight
    oldest_thread_age: Optional[float] = None
    #: free-form extra diagnostics (CVT pending counts, pipe backlogs, ...)
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def stalled_unit(self) -> Optional[str]:
        """The unit with the largest accumulated stall (the likely
        head-of-line blocker), or ``None`` when nothing stalled."""
        if not self.stalled_units:
            return None
        return max(self.stalled_units.items(), key=lambda kv: kv[1])[0]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sim": self.sim,
            "kernel": self.kernel,
            "cycle": self.cycle,
            "events_retired": self.events_retired,
            "last_progress_cycle": self.last_progress_cycle,
            "in_flight": dict(self.in_flight),
            "reservation_occupancy": dict(self.reservation_occupancy),
            "mshr_outstanding": self.mshr_outstanding,
            "stalled_units": dict(self.stalled_units),
            "stalled_unit": self.stalled_unit,
            "oldest_thread_age": self.oldest_thread_age,
            "detail": {k: str(v) for k, v in self.detail.items()},
        }

    def format(self) -> str:
        """Human-readable multi-line rendering (goes into failure logs)."""
        lines = [
            f"hang snapshot: sim={self.sim} kernel={self.kernel} "
            f"cycle={self.cycle:.0f}",
            f"  events retired: {self.events_retired} "
            f"(last progress at cycle {self.last_progress_cycle:.0f})",
        ]
        if self.in_flight:
            pairs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.in_flight.items())
            )
            lines.append(f"  in-flight threads: {pairs}")
        if self.reservation_occupancy:
            pairs = ", ".join(
                f"{k}={v}"
                for k, v in sorted(self.reservation_occupancy.items())
            )
            lines.append(f"  reservation buffers: {pairs}")
        if self.mshr_outstanding:
            lines.append(f"  MSHR outstanding: {self.mshr_outstanding}")
        if self.stalled_units:
            ranked = sorted(
                self.stalled_units.items(), key=lambda kv: -kv[1]
            )[:8]
            pairs = ", ".join(f"{k}:{v:.0f}" for k, v in ranked)
            lines.append(f"  stalled units (cycles): {pairs}")
            lines.append(f"  suspected blocker: {self.stalled_unit}")
        if self.oldest_thread_age is not None:
            lines.append(
                f"  oldest in-flight thread age: "
                f"{self.oldest_thread_age:.0f} cycles"
            )
        for key, value in sorted(self.detail.items()):
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


class ForwardProgressWatchdog:
    """Tracks retirement events against a simulated clock.

    Usage pattern inside a simulator main loop::

        wd = ForwardProgressWatchdog(config, sim="vgiw", kernel=name)
        wd.start(0.0)
        while ...:
            ... advance `time`, retire events ...
            if retired:
                wd.progress(time, retired)
            wd.check(time, snapshot_fn)    # may raise SimulationHangError

    ``snapshot_fn(now)`` is only invoked when the watchdog actually
    fires, so building the snapshot may be arbitrarily expensive.
    """

    __slots__ = (
        "config", "sim", "kernel", "armed",
        "origin", "last_progress", "events_retired",
    )

    def __init__(self, config: Optional[WatchdogConfig], sim: str,
                 kernel: str):
        self.config = config or WatchdogConfig()
        self.sim = sim
        self.kernel = kernel
        self.armed = self.config.armed
        self.origin = 0.0
        self.last_progress = 0.0
        self.events_retired = 0

    def start(self, at: float) -> None:
        self.origin = at
        self.last_progress = at

    def progress(self, now: float, retired: int = 1) -> None:
        """Record ``retired`` retirement events at cycle ``now``."""
        self.events_retired += retired
        if now > self.last_progress:
            self.last_progress = now

    def check(
        self,
        now: float,
        snapshot_fn: Optional[Callable[[float], DiagnosticSnapshot]] = None,
    ) -> None:
        """Raise :class:`SimulationHangError` if a limit is exceeded."""
        if not self.armed:
            return
        cfg = self.config
        if cfg.max_cycles is not None and now - self.origin > cfg.max_cycles:
            self._fire(
                f"simulation exceeded its {cfg.max_cycles:.0f}-cycle budget",
                now, snapshot_fn,
            )
        if (
            cfg.stall_cycles is not None
            and now - self.last_progress > cfg.stall_cycles
        ):
            self._fire(
                f"no event retired for "
                f"{now - self.last_progress:.0f} cycles "
                f"(stall budget {cfg.stall_cycles:.0f})",
                now, snapshot_fn,
            )

    def _fire(self, reason: str, now: float,
              snapshot_fn) -> None:
        snapshot = None
        if snapshot_fn is not None:
            snapshot = snapshot_fn(now)
            snapshot.events_retired = self.events_retired
            snapshot.last_progress_cycle = self.last_progress
        message = f"{self.sim}: {reason}"
        if snapshot is not None and snapshot.stalled_unit is not None:
            message += f"; suspected blocker {snapshot.stalled_unit}"
        raise SimulationHangError(
            message,
            snapshot=snapshot,
            sim=self.sim,
            kernel=self.kernel,
            cycle=round(now, 3),
            events_retired=self.events_retired,
        )


@contextlib.contextmanager
def wall_clock_limit(seconds: Optional[float], sim: str, kernel: str):
    """Bound a simulator run by *host* wall-clock time.

    The simulated-cycle watchdog cannot catch a hang whose simulated
    clock advances arbitrarily slowly per host second (for example a
    pathological event storm), so the harness's per-kernel ``timeout``
    arms this guard around each attempt.  It raises the same
    :class:`~repro.resilience.errors.SimulationHangError` the watchdog
    uses, so the existing retry/degraded-row machinery applies
    unchanged.

    Implemented with ``SIGALRM`` (``signal.setitimer``), which is the
    only way to interrupt a tight pure-Python loop without cooperation
    from the loop body.  Outside the main thread, or on platforms
    without ``SIGALRM``, the guard degrades to a no-op — the
    simulated-cycle watchdog remains the backstop there.

    ``seconds`` of ``None`` or ``<= 0`` disables the guard.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _fire(signum, frame):
        raise SimulationHangError(
            f"{sim}: wall-clock timeout after {seconds:g}s",
            sim=sim,
            kernel=kernel,
            wall_clock_limit_s=seconds,
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def snapshot_from_replicas(
    sim: str,
    kernel: str,
    now: float,
    replicas,
    unit_name: Optional[Callable[[int], str]] = None,
    block: Optional[str] = None,
    detail: Optional[Dict[str, Any]] = None,
) -> DiagnosticSnapshot:
    """Build a snapshot from :class:`repro.vgiw.mtcgrf._ReplicaState`-
    shaped objects (shared by the VGIW and SGMF engines).

    * in-flight = injected threads whose completion lies in the future;
    * reservation occupancy = outstanding memory responses per LDST/LVU;
    * stalled units = accumulated issue-wait cycles per unit plus each
      replica's token-buffer injection wait (the back-pressure signal).
    """
    label = unit_name or (lambda uid: f"unit{uid}")
    prefix = f"{block}/" if block else ""
    in_flight: Dict[str, int] = {}
    reservation: Dict[str, int] = {}
    stalled: Dict[str, float] = {}
    oldest: Optional[float] = None
    for ridx, rep in enumerate(replicas):
        rname = f"{prefix}replica{ridx}"
        flying = 0
        for i, completion in enumerate(rep.window):
            if completion > now:
                flying += 1
                injected = (
                    rep.inject_times[i]
                    if i < len(rep.inject_times) else None
                )
                if injected is not None:
                    age = now - injected
                    if oldest is None or age > oldest:
                        oldest = age
        in_flight[rname] = flying
        for uid, heap_entries in rep.ldst_outstanding.items():
            pending = sum(1 for t in heap_entries if t > now)
            if pending:
                reservation[f"{prefix}{label(uid)}"] = pending
        for uid, waited in rep.unit_wait.items():
            if waited > 0:
                key = f"{prefix}{label(uid)}"
                stalled[key] = stalled.get(key, 0.0) + waited
        if rep.inject_wait > 0:
            stalled[f"{rname}/token_buffer"] = rep.inject_wait
    return DiagnosticSnapshot(
        sim=sim,
        kernel=kernel,
        cycle=now,
        events_retired=0,
        last_progress_cycle=0.0,
        in_flight=in_flight,
        reservation_occupancy=reservation,
        stalled_units=stalled,
        oldest_thread_age=oldest,
        detail=dict(detail or {}),
    )
