"""Table-driven semantics tests covering every opcode in the ISA.

The EVAL table is shared by the interpreter and all three timing
simulators, so these tests pin the ISA's arithmetic contract in one
place.
"""

import math

import pytest

from repro.ir import EVAL, Op
from repro.ir.instr import result_dtype, unit_class, UnitClass
from repro.ir.types import DType

CASES = [
    (Op.ADD, (7, 5), 12),
    (Op.SUB, (7, 5), 2),
    (Op.MUL, (7, 5), 35),
    (Op.MIN, (7, 5), 5),
    (Op.MAX, (7, 5), 7),
    (Op.AND, (0b1100, 0b1010), 0b1000),
    (Op.OR, (0b1100, 0b1010), 0b1110),
    (Op.XOR, (0b1100, 0b1010), 0b0110),
    (Op.SHL, (3, 2), 12),
    (Op.SHR, (12, 2), 3),
    (Op.NEG, (7,), -7),
    (Op.ABS, (-7,), 7),
    (Op.FADD, (1.5, 2.25), 3.75),
    (Op.FSUB, (1.5, 2.25), -0.75),
    (Op.FMUL, (1.5, 2.0), 3.0),
    (Op.FMIN, (1.5, 2.0), 1.5),
    (Op.FMAX, (1.5, 2.0), 2.0),
    (Op.FNEG, (1.5,), -1.5),
    (Op.FABS, (-1.5,), 1.5),
    (Op.FMA, (2.0, 3.0, 1.0), 7.0),
    (Op.EQ, (3, 3), True),
    (Op.NE, (3, 4), True),
    (Op.LT, (3, 4), True),
    (Op.LE, (4, 4), True),
    (Op.GT, (5, 4), True),
    (Op.GE, (4, 4), True),
    (Op.I2F, (3,), 3.0),
    (Op.F2I, (3.9,), 3),       # truncation toward zero
    (Op.F2I, (-3.9,), -3),
    (Op.MOV, (42,), 42),
    (Op.SELECT, (True, 1, 2), 1),
    (Op.SELECT, (False, 1, 2), 2),
    (Op.DIV, (7, 2), 3),       # floor division
    (Op.DIV, (-7, 2), -4),
    (Op.REM, (7, 3), 1),
    (Op.REM, (-7, 3), 2),      # Python semantics: sign follows divisor
    (Op.FDIV, (7.0, 2.0), 3.5),
    (Op.FSQRT, (16.0,), 4.0),
    (Op.FRSQRT, (4.0,), 0.5),
    (Op.FEXP, (0.0,), 1.0),
    (Op.FLOG, (1.0,), 0.0),
    (Op.FSIN, (0.0,), 0.0),
    (Op.FCOS, (0.0,), 1.0),
    (Op.FFLOOR, (1.9,), 1.0),
    (Op.FFLOOR, (-1.1,), -2.0),
]


@pytest.mark.parametrize("op,args,expected", CASES)
def test_eval_semantics(op, args, expected):
    got = EVAL[op](*args)
    if isinstance(expected, float):
        assert got == pytest.approx(expected)
    else:
        assert got == expected


def test_every_non_memory_op_has_eval():
    for op in Op:
        if op in (Op.LOAD, Op.STORE):
            assert op not in EVAL
        else:
            assert op in EVAL, f"{op} missing from EVAL"


def test_not_is_logical_on_bools_bitwise_on_ints():
    assert EVAL[Op.NOT](True) is False
    assert EVAL[Op.NOT](False) is True
    assert EVAL[Op.NOT](0) == -1  # bitwise complement


@pytest.mark.parametrize("op", [Op.DIV, Op.REM, Op.FDIV, Op.FSQRT,
                                Op.FRSQRT, Op.FEXP, Op.FLOG, Op.FSIN,
                                Op.FCOS, Op.FFLOOR])
def test_special_ops_map_to_scu(op):
    assert unit_class(op) is UnitClass.SPECIAL


@pytest.mark.parametrize("op", [Op.ADD, Op.FMUL, Op.SELECT, Op.MOV, Op.LT])
def test_compute_ops_map_to_alu_fpu(op):
    assert unit_class(op) is UnitClass.COMPUTE


def test_memory_ops_map_to_ldst():
    assert unit_class(Op.LOAD) is UnitClass.MEMORY
    assert unit_class(Op.STORE) is UnitClass.MEMORY


def test_result_dtypes():
    assert result_dtype(Op.FADD) is DType.FLOAT
    assert result_dtype(Op.LT) is DType.PRED
    assert result_dtype(Op.ADD) is DType.INT
    assert result_dtype(Op.MOV, DType.FLOAT) is DType.FLOAT
    assert result_dtype(Op.LOAD, DType.INT) is DType.INT
