"""HOTSPOT — thermal simulation stencil (Rodinia), paper Table 2:
27 basic blocks.

One simulation step of the 2-D heat equation: each thread updates one
grid cell from its four neighbours, the power dissipation, and the
ambient sink.  Boundary cells clamp the missing neighbour to the centre
value through explicit if/else chains (matching Rodinia's boundary
handling, which is where the kernel's control flow comes from).  Our
single-launch version reads ``temp_in`` and writes ``temp_out``
(Rodinia's pyramid-tiling and intra-kernel time loop rely on
``__syncthreads``; the per-step dataflow and branch structure are
preserved — see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.ir import DType, Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage

#: Physical coefficients (Rodinia defaults, folded into three constants).
RX, RY, RZ = 0.1, 0.1, 0.05
AMB_TEMP = 80.0
STEP_DIV_CAP = 0.5


def hotspot_kernel() -> Kernel:
    kb = KernelBuilder(
        "hotspot_kernel",
        params=["temp_in", "power", "temp_out", "rows", "cols"],
    )
    t = kb.tid()
    rows = kb.param("rows")
    cols = kb.param("cols")
    with kb.if_(t < rows * cols):
        r = t // cols
        c = t % cols
        center = kb.load(kb.param("temp_in") + t)

        north = kb.var("north", 0.0)
        with kb.if_(r == 0):
            kb.assign(north, center)
        with kb.else_():
            kb.assign(north, kb.load(kb.param("temp_in") + t - cols))

        south = kb.var("south", 0.0)
        with kb.if_(r == rows - 1):
            kb.assign(south, center)
        with kb.else_():
            kb.assign(south, kb.load(kb.param("temp_in") + t + cols))

        west = kb.var("west", 0.0)
        with kb.if_(c == 0):
            kb.assign(west, center)
        with kb.else_():
            kb.assign(west, kb.load(kb.param("temp_in") + t - 1))

        east = kb.var("east", 0.0)
        with kb.if_(c == cols - 1):
            kb.assign(east, center)
        with kb.else_():
            kb.assign(east, kb.load(kb.param("temp_in") + t + 1))

        p = kb.load(kb.param("power") + t)
        delta = STEP_DIV_CAP * (
            p
            + (north + south - 2.0 * center) * RY
            + (east + west - 2.0 * center) * RX
            + (AMB_TEMP - center) * RZ
        )
        kb.store(kb.param("temp_out") + t, center + delta)
    return kb.build()


def hotspot_reference(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    """Numpy golden model of one hotspot step."""
    north = np.vstack([temp[0:1, :], temp[:-1, :]])
    south = np.vstack([temp[1:, :], temp[-1:, :]])
    west = np.hstack([temp[:, 0:1], temp[:, :-1]])
    east = np.hstack([temp[:, 1:], temp[:, -1:]])
    delta = STEP_DIV_CAP * (
        power
        + (north + south - 2.0 * temp) * RY
        + (east + west - 2.0 * temp) * RX
        + (AMB_TEMP - temp) * RZ
    )
    return temp + delta


def make_workload(scale: str = "small", seed: int = 61) -> Workload:
    side = pick(scale, 16, 64, 128)
    rows = cols = side
    rng = np.random.default_rng(seed)
    temp = rng.uniform(70.0, 90.0, (rows, cols))
    power = rng.uniform(0.0, 1.0, (rows, cols))

    mem = MemoryImage(3 * rows * cols + 64)
    b_in = mem.alloc_array("temp_in", temp.ravel())
    b_pow = mem.alloc_array("power", power.ravel())
    b_out = mem.alloc("temp_out", rows * cols)

    return Workload(
        name="hotspot/hotspot_kernel",
        app="HOTSPOT",
        kernel=hotspot_kernel(),
        memory=mem,
        params={
            "temp_in": b_in, "power": b_pow, "temp_out": b_out,
            "rows": rows, "cols": cols,
        },
        n_threads=rows * cols,
        expected={"temp_out": hotspot_reference(temp, power).ravel()},
        paper_blocks=27,
    )
