"""Docs-as-tests: every fenced ``python`` block in the docs must run.

The documentation's code blocks are executable specifications, not
decoration — when an API drifts, its docs must fail CI.  This module
extracts every ```` ```python ```` fenced block from ``README.md`` and
``docs/*.md`` and executes them.

Semantics:

* Blocks within one file run **in order, in one shared namespace** —
  docs are narratives, and later blocks legitimately build on earlier
  ones (the README's host-API block reuses the quickstart's kernel).
* Each file executes in a **temporary working directory**, so blocks
  that write artifacts (``tracer.dump("trace.json")``) stay hermetic.
* Non-``python`` fences (``bash``, plain CLI transcripts) are ignored
  here; the CI workflow smoke-tests the CLI lines separately.
* Failures carry the markdown file name and the block's first line
  number, so a drifted doc is a one-click fix.

Keep doc blocks cheap: this file is part of tier-1, so a block that
sweeps the full suite at ``--scale small`` belongs in prose or in
``benchmarks/``, not in a fence.
"""

from __future__ import annotations

import io
from contextlib import redirect_stdout
from pathlib import Path
from typing import List, Tuple

import pytest

ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]


def extract_python_blocks(path: Path) -> List[Tuple[int, str]]:
    """``(first_line_number, source)`` for every ```` ```python ````
    fence in ``path`` (fence lines excluded)."""
    blocks: List[Tuple[int, str]] = []
    in_block = False
    start = 0
    buf: List[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        stripped = line.strip()
        if not in_block and stripped == "```python":
            in_block, start, buf = True, lineno + 1, []
        elif in_block and stripped == "```":
            in_block = False
            blocks.append((start, "\n".join(buf)))
        elif in_block:
            buf.append(line)
    assert not in_block, f"{path.name}: unterminated ```python fence"
    return blocks


def _params():
    for path in DOC_FILES:
        blocks = extract_python_blocks(path)
        if blocks:
            yield pytest.param(path, blocks, id=str(path.relative_to(ROOT)))


def test_docs_were_scanned():
    """The collector sees the doc set (guards against a silent rename
    emptying the parametrisation)."""
    names = {p.name for p in DOC_FILES}
    assert "README.md" in names
    for expected in ("observability.md", "performance.md", "resilience.md",
                     "api.md", "extending.md", "fuzzing.md"):
        assert expected in names, f"docs/{expected} disappeared"
    assert any(extract_python_blocks(p) for p in DOC_FILES)


@pytest.mark.parametrize("path,blocks", list(_params()))
def test_doc_python_blocks_execute(path, blocks, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # artifact writes stay out of the repo
    namespace: dict = {"__name__": f"docsnippet_{path.stem}"}
    for lineno, source in blocks:
        try:
            code = compile(source, f"{path}:{lineno}", "exec")
        except SyntaxError as exc:
            pytest.fail(
                f"{path.relative_to(ROOT)} block at line {lineno} does not "
                f"parse: {exc}"
            )
        stdout = io.StringIO()
        try:
            with redirect_stdout(stdout):
                exec(code, namespace)  # noqa: S102 — that's the point
        except Exception as exc:  # noqa: BLE001 — report with location
            pytest.fail(
                f"{path.relative_to(ROOT)} block at line {lineno} raised "
                f"{type(exc).__name__}: {exc}"
            )
