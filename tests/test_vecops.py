"""Batch-kernel semantics tests: ``repro.ir.vecops`` vs. scalar ``EVAL``.

``vecops`` is the numpy batch twin of the scalar opcode table — the
vectorized engines are only allowed to exist because the two agree
bit-for-bit.  This module pins that agreement three ways:

1. the table-driven cases from ``tests/test_instr_semantics.py``
   (including the pinned edge-case table) replayed through
   ``vec_eval`` / ``vec_eval_raw`` on whole batches;
2. randomized operand sweeps per opcode, elementwise-compared against
   mapping ``EVAL`` over the batch (NaN-aware, signed-zero-aware);
3. whole-kernel parity: fuzz-generated kernels and engine launches run
   identically with ``REPRO_SCALAR_EXEC=1`` and without it (cycles and
   final memory both).
"""

import math
import random

import numpy as np
import pytest

from repro.ir import EVAL, Op
from repro.ir.instr import INT64_MAX, INT64_MIN, coerce_i64, result_dtype
from repro.ir.types import DType
from repro.ir.vecops import (
    VEVAL,
    addr_batch,
    as_value_array,
    coerce_array,
    f2i_array,
    f64_batch,
    hazard_key,
    scalar_exec_requested,
    stores_after_loads,
    vec_eval,
    vec_eval_raw,
)
from tests.test_instr_semantics import CASES, EDGE_CASES

NAN = float("nan")
INF = float("inf")

_DT = {DType.INT: 1, DType.FLOAT: 2, DType.PRED: 0}


def _dt_for(op, args):
    if op is Op.MOV:
        return 1 if isinstance(args[0], (bool, int)) else 2
    if op is Op.SELECT:
        return 1 if isinstance(args[1], (bool, int)) else 2
    return _DT[result_dtype(op)]


def _expect_scalar(op, args, dt):
    v = EVAL[op](*args)
    if dt == 1:
        return coerce_i64(v)
    if dt == 2:
        return float(v)
    return bool(v)


def _same(a, b):
    """Bit-level scalar equality: NaN == NaN, +0.0 != -0.0."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        if a == 0.0 and b == 0.0:
            return math.copysign(1.0, a) == math.copysign(1.0, b)
    return a == b and type(a) is type(b) or (
        a == b and isinstance(a, (bool, int)) == isinstance(b, (bool, int))
    )


def _batchify(args, n):
    """Each operand becomes an n-long array of its own dtype."""
    out = []
    for a in args:
        out.append(as_value_array([a] * n, n))
    return tuple(out)


@pytest.mark.parametrize("op,args,expected", CASES + EDGE_CASES)
def test_vec_eval_matches_scalar_table(op, args, expected):
    n = 5
    dt = _dt_for(op, args)
    want = _expect_scalar(op, args, dt)
    got = vec_eval(op, _batchify(args, n), dt, n)
    assert isinstance(got, np.ndarray) and got.shape == (n,)
    for v in got.tolist():
        assert _same(v, want), (op, args, v, want)


@pytest.mark.parametrize("op,args,expected", CASES + EDGE_CASES)
def test_vec_eval_raw_matches_uncoerced_eval(op, args, expected):
    n = 3
    want = EVAL[op](*args)
    got = vec_eval_raw(op, _batchify(args, n), n)
    for v in np.asarray(got).tolist():
        if isinstance(want, float) and math.isnan(want):
            assert isinstance(v, float) and math.isnan(v)
        else:
            assert v == want, (op, args, v, want)


def test_mixed_lane_batches_take_scalar_fallback():
    """An object-dtype batch (differently typed lanes) must still give
    the per-element scalar answer — the fast path never changes it."""
    a = np.array([3, 2.5, True, NAN], dtype=object)
    b = np.array([2, 2, 2, 2], dtype=object)
    got = vec_eval(Op.ADD, (a, b), 1, 4)
    want = [coerce_i64(EVAL[Op.ADD](x, y)) for x, y in zip(a, b)]
    assert got.tolist() == want


def test_select_preserves_int64_precision():
    """SELECT must not round int64 arms through float64."""
    big = (1 << 62) + 1
    p = np.array([True, False])
    a = np.array([big, big], dtype=np.int64)
    b = np.array([7, 7], dtype=np.int64)
    got = vec_eval(Op.SELECT, (p, a, b), 1, 2)
    assert got.tolist() == [big, 7]


def test_shift_amounts_masked_on_batches():
    a = np.array([123, -9, 1, 3], dtype=np.int64)
    s = np.array([70, 64, 63, 63], dtype=np.int64)
    assert vec_eval(Op.SHL, (a, s), 1, 4).tolist() == [
        EVAL[Op.SHL](x, y) for x, y in zip(a.tolist(), s.tolist())
    ]
    assert vec_eval(Op.SHR, (a, s), 1, 4).tolist() == [
        EVAL[Op.SHR](x, y) for x, y in zip(a.tolist(), s.tolist())
    ]


def test_division_poles_on_batches():
    a = np.array([7, -7, 0, INT64_MIN], dtype=np.int64)
    b = np.array([0, 0, 0, -1], dtype=np.int64)
    assert vec_eval(Op.DIV, (a, b), 1, 4).tolist() == [0, 0, 0, INT64_MIN]
    assert vec_eval(Op.REM, (a, b), 1, 4).tolist() == [0, 0, 0, 0]


def test_f2i_array_saturation_rule():
    a = np.array([NAN, INF, -INF, 1e30, -1e30, 3.9, -3.9, 0.0])
    assert f2i_array(a).tolist() == [
        0, INT64_MAX, INT64_MIN, INT64_MAX, INT64_MIN, 3, -3, 0
    ]


def test_nan_propagation_through_float_ops():
    a = np.array([NAN, 1.0, NAN])
    b = np.array([1.0, NAN, NAN])
    for op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMIN, Op.FMAX):
        got = vec_eval(op, (a, b), 2, 3)
        want = [EVAL[op](x, y) for x, y in zip(a.tolist(), b.tolist())]
        for g, w in zip(got.tolist(), want):
            assert _same(g, w), (op, g, w)


def test_addr_batch_validates_and_falls_back():
    assert addr_batch(np.arange(4), 4, 16).tolist() == [0, 1, 2, 3]
    assert addr_batch(np.array([0.0, 3.0]), 2, 16).tolist() == [0, 3]
    assert addr_batch(np.array([0, 16]), 2, 16) is None       # OOB
    assert addr_batch(np.array([-1, 0]), 2, 16) is None       # negative
    assert addr_batch(np.array([NAN, 0.0]), 2, 16) is None    # non-finite
    assert addr_batch(np.array([1, "x"], dtype=object), 2, 16) is None


def test_f64_batch_matches_float_builtin():
    assert f64_batch(np.array([1, 2], dtype=np.int64), 2).tolist() == [1.0, 2.0]
    assert f64_batch(True, 3).tolist() == [1.0, 1.0, 1.0]
    assert f64_batch(np.array(["x"], dtype=object), 1) is None


def test_coerce_array_matches_scalar_coercions():
    f = np.array([3.9, -3.9, NAN, 1e30])
    assert coerce_array(f, 1, 4).tolist() == [coerce_i64(v) for v in f.tolist()]
    i = np.array([0, 2, -1], dtype=np.int64)
    assert coerce_array(i, 0, 3).tolist() == [bool(v) for v in i.tolist()]
    assert coerce_array(i, 2, 3).dtype == np.float64


def test_scalar_exec_requested_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR_EXEC", raising=False)
    assert not scalar_exec_requested()
    monkeypatch.setenv("REPRO_SCALAR_EXEC", "1")
    assert scalar_exec_requested()
    monkeypatch.setenv("REPRO_SCALAR_EXEC", "0")
    assert not scalar_exec_requested()


# ----------------------------------------------------------------------
# Randomized per-opcode parity sweeps
# ----------------------------------------------------------------------
_INT_POOL = [0, 1, -1, 2, 7, -7, 63, 64, 70, 1 << 40, -(1 << 40),
             INT64_MAX, INT64_MIN, INT64_MAX - 1, INT64_MIN + 1]
_FLT_POOL = [0.0, -0.0, 1.0, -1.5, 2.5, 1e-300, 1e300, -1e300,
             NAN, INF, -INF, 0.5, 3.9, -3.9, 1e30, 800.0, -800.0]
_PRED_POOL = [True, False]


def _pool_for(op, slot):
    int_ops = {Op.ADD, Op.SUB, Op.MUL, Op.MIN, Op.MAX, Op.AND, Op.OR,
               Op.XOR, Op.SHL, Op.SHR, Op.NEG, Op.ABS, Op.DIV, Op.REM,
               Op.NOT, Op.I2F}
    if op in int_ops:
        return _INT_POOL
    if op is Op.SELECT and slot == 0:
        return _PRED_POOL
    if op in (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE):
        return _INT_POOL + _FLT_POOL
    return _FLT_POOL


_ARITY = {Op.FMA: 3, Op.SELECT: 3}
_UNARY = {Op.NEG, Op.ABS, Op.NOT, Op.FNEG, Op.FABS, Op.I2F, Op.F2I,
          Op.FSQRT, Op.FRSQRT, Op.FEXP, Op.FLOG, Op.FSIN, Op.FCOS,
          Op.FFLOOR, Op.MOV}


@pytest.mark.parametrize("op", sorted(VEVAL, key=lambda o: o.value))
def test_random_batches_match_scalar_eval(op):
    rng = random.Random(hash(op.value) & 0xFFFF)
    n = 64
    arity = _ARITY.get(op, 1 if op in _UNARY else 2)
    cols = [[rng.choice(_pool_for(op, s)) for _ in range(n)]
            for s in range(arity)]
    args = tuple(as_value_array(c, n) for c in cols)
    dt = _DT[result_dtype(op, DType.FLOAT if op is Op.MOV else None)] \
        if op not in (Op.MOV, Op.SELECT) else 2
    got = vec_eval(op, args, dt, n).tolist()
    for i in range(n):
        want = _expect_scalar(op, tuple(c[i] for c in cols), dt)
        assert _same(got[i], want), (op, [c[i] for c in cols], got[i], want)


# ----------------------------------------------------------------------
# Whole-kernel parity: scalar engines vs. vectorized engines
# ----------------------------------------------------------------------
def _run_everything(case):
    from repro.fuzz import run_case

    report = run_case(case)
    return [(o.engine, o.status) for o in report.outcomes], report.divergent


@pytest.mark.parametrize("seed", [2, 11, 29])
def test_fuzz_kernels_identical_scalar_vs_vector(seed, monkeypatch):
    """The engine-level property: a fuzz-generated kernel produces the
    same oracle outcome under REPRO_SCALAR_EXEC=1 and the default
    vectorized paths (the scalar run is the reference oracle)."""
    from repro.fuzz import generate_case

    case = generate_case(seed)
    monkeypatch.setenv("REPRO_SCALAR_EXEC", "1")
    scalar_out, scalar_div = _run_everything(case)
    monkeypatch.delenv("REPRO_SCALAR_EXEC")
    vector_out, vector_div = _run_everything(case)
    assert scalar_out == vector_out
    assert scalar_div == vector_div == False  # noqa: E712


@pytest.mark.parametrize("engine_name", ["vgiw", "sgmf", "fermi"])
def test_engine_batch_path_cycle_identical(engine_name, monkeypatch):
    """One real workload per engine: cycles and memory are bit-identical
    with and without the vectorized batch paths."""
    from repro.engine import create_engine
    from repro.kernels.registry import make_workload

    wl = make_workload("nn/euclid", scale="tiny")

    def launch():
        mem = wl.memory.clone()
        eng = create_engine(engine_name)
        res = eng.run(wl.kernel, mem, wl.params, wl.n_threads)
        return res.cycles, mem.data.copy()

    monkeypatch.setenv("REPRO_SCALAR_EXEC", "1")
    c_scalar, m_scalar = launch()
    monkeypatch.delenv("REPRO_SCALAR_EXEC")
    c_vector, m_vector = launch()
    assert c_scalar == c_vector
    assert np.array_equal(m_scalar, m_vector, equal_nan=True)


# ----------------------------------------------------------------------
# Hazard ordering: the batch path's load/store alias check
# ----------------------------------------------------------------------
def _keys(threads, seq):
    return hazard_key(np.asarray(threads, np.int64), seq)


def _a(addrs):
    return np.asarray(addrs, np.int64)


def test_hazard_disjoint_addresses_are_benign():
    assert stores_after_loads(_a([1, 2]), _keys([0, 1], 1),
                              _a([3, 4]), _keys([0, 1], 2))


def test_hazard_empty_sides_are_benign():
    e = np.empty(0, np.int64)
    assert stores_after_loads(e, e, _a([5]), _keys([0], 1))
    assert stores_after_loads(_a([5]), _keys([0], 1), e, e)


def test_hazard_private_rmw_is_benign():
    # Every thread loads its own word, then stores it: the batch loads
    # against initial memory reproduce the scalar thread-major walk.
    threads = [0, 1, 2, 3]
    addrs = [10, 11, 12, 13]
    assert stores_after_loads(_a(addrs), _keys(threads, 1),
                              _a(addrs), _keys(threads, 2))


def test_hazard_store_then_load_same_thread_falls_back():
    # A thread re-reading its own store must see the stored value; the
    # batch would hand it the initial memory instead.
    assert not stores_after_loads(_a([7]), _keys([0], 2),
                                  _a([7]), _keys([0], 1))


def test_hazard_earlier_thread_store_falls_back():
    # Thread 0 stores an address thread 1 loads: in thread-major order
    # the load observes the store, so the batch must not claim it.
    assert not stores_after_loads(_a([9]), _keys([1], 1),
                                  _a([9]), _keys([0], 2))


def test_hazard_later_thread_store_is_benign():
    # Thread 0 loads what only thread 1 stores: the scalar load runs
    # before the store and sees initial memory, same as the batch.
    assert stores_after_loads(_a([9]), _keys([0], 2),
                              _a([9]), _keys([1], 1))


def test_hazard_one_bad_address_among_many():
    loads = _a([1, 2, 3])
    lkeys = _keys([0, 0, 0], 5)
    stores = _a([3, 4])
    assert stores_after_loads(loads, lkeys, stores, _keys([1, 1], 1))
    assert not stores_after_loads(loads, lkeys, stores, _keys([0, 0], 1))


def test_hazard_key_orders_thread_major():
    # Keys compare lexicographically by (thread, seq) as one int64.
    assert int(_keys([0], 999)[0]) < int(_keys([1], 1)[0])
    assert int(_keys([2], 3)[0]) < int(_keys([2], 4)[0])


@pytest.mark.parametrize("engine_name", ["vgiw", "sgmf"])
def test_rmw_kernel_stays_batch_and_cycle_identical(engine_name,
                                                    monkeypatch):
    """lud_internal is an in-place read-modify-write kernel — the kind
    the hazard check exists for.  Cycles and memory must match the
    scalar walk exactly."""
    from repro.engine import create_engine
    from repro.kernels.registry import make_workload

    wl = make_workload("lud/lud_internal", scale="tiny")

    def launch():
        mem = wl.memory.clone()
        eng = create_engine(engine_name)
        res = eng.run(wl.kernel, mem, wl.params, wl.n_threads)
        return res.cycles, mem.data.copy()

    monkeypatch.setenv("REPRO_SCALAR_EXEC", "1")
    c_scalar, m_scalar = launch()
    monkeypatch.delenv("REPRO_SCALAR_EXEC")
    c_vector, m_vector = launch()
    assert c_scalar == c_vector
    assert np.array_equal(m_scalar, m_vector, equal_nan=True)
