"""Scaling trend: VGIW speedup vs. thread count.

The paper evaluates with full-size tiles (its CVT tracks ~35k threads
per tile), where each basic block's fixed costs — 34 reconfiguration
cycles plus one pipeline drain — are amortised over tens of thousands of
injections.  A pure-Python simulator runs reduced-scale launches, which
systematically *understates* VGIW's advantage (DESIGN.md section 5.0).

This benchmark makes that bridge explicit: speedup over Fermi must rise
monotonically-ish with thread count on a divergent kernel, which is the
trend that connects our reduced-scale numbers to the paper's 3x regime.
"""

from repro.compiler.optimize import optimize_kernel
from repro.evalharness.tables import ExperimentTable
from repro.kernels import make_fig1_workload
from repro.simt import FermiSM
from repro.vgiw import VGIWCore

SIZES = (256, 1024, 4096, 16384)


def bench_scaling_trend(benchmark):
    table = ExperimentTable(
        "Scaling", "VGIW/Fermi speedup vs. launch size (fig1 kernel)",
        ["Threads", "Fermi cycles", "VGIW cycles", "Speedup",
         "Config overhead %"],
    )

    def run_sweep():
        table.rows.clear()
        speedups = []
        for n in SIZES:
            kernel, mem, params = make_fig1_workload(n_threads=n)
            kernel = optimize_kernel(kernel, params=params)
            mem_v = mem.clone()
            fermi = FermiSM().run(kernel, mem, params, n)
            vgiw = VGIWCore().run(kernel, mem_v, params, n)
            sp = fermi.cycles / vgiw.cycles
            speedups.append(sp)
            table.add(n, fermi.cycles, vgiw.cycles, sp,
                      100 * vgiw.config_overhead)
        return speedups

    speedups = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(table.render())
    # The amortisation trend: bigger launches must favour VGIW.
    assert speedups[-1] > speedups[0] * 1.2, (
        "speedup must grow with thread count as fixed costs amortise"
    )
