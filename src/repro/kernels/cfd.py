"""CFD — Rodinia's ``euler3d`` solver kernels, paper Table 2.

Four kernels over ``nelr`` mesh elements with five conserved variables
each (density, momentum x/y/z, energy), stored structure-of-arrays:

* ``initialize_variables`` (1 block) — straight-line far-field fill;
* ``compute_step_factor``  (2 blocks) — per-element time-step bound
  (divisions and square roots: SCU-heavy);
* ``time_step``            (1 block) — the RK update that "simply moves
  data from one array to another": the paper's canonical memory-bound
  kernel, where VGIW's lack of memory coalescing shows (§5);
* ``compute_flux``         (12 blocks) — the flux gather over four
  neighbours with three-way boundary divergence (interior / far-field /
  wall), the app's compute core.

The flux formula is a simplified (but op-mix-faithful) central scheme;
the numpy golden model in :func:`_flux_reference` mirrors it term for
term.  The mesh is synthetic: random neighbour lists with ~10 % far-
field (-1) and ~5 % wall (-2) faces to produce the original's branch
divergence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ir import DType, Kernel, KernelBuilder, Val
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage

GAMMA = 1.4
NNB = 4  # neighbours per element
FF_VALUES = (1.4, 0.5, 0.1, 0.0, 2.5)  # far-field conserved variables


def initialize_variables_kernel() -> Kernel:
    """Straight-line far-field initialisation (1 basic block)."""
    kb = KernelBuilder("initialize_variables", params=["vars", "ff", "nelr"])
    i = kb.tid()
    for j in range(5):
        v = kb.load(kb.param("ff") + j)
        kb.store(kb.param("vars") + j * kb.param("nelr") + i, v)
    return kb.build()


def compute_step_factor_kernel() -> Kernel:
    kb = KernelBuilder(
        "compute_step_factor", params=["vars", "areas", "step", "nelr"]
    )
    i = kb.tid()
    nelr = kb.param("nelr")
    with kb.if_(i < nelr):
        density = kb.load(kb.param("vars") + i)
        mx = kb.load(kb.param("vars") + nelr + i)
        my = kb.load(kb.param("vars") + 2 * nelr + i)
        mz = kb.load(kb.param("vars") + 3 * nelr + i)
        energy = kb.load(kb.param("vars") + 4 * nelr + i)
        speed_sqd = (mx * mx + my * my + mz * mz) / (density * density)
        pressure = (GAMMA - 1.0) * (energy - 0.5 * density * speed_sqd)
        sos = kb.sqrt(GAMMA * pressure / density)
        denom = kb.sqrt(kb.load(kb.param("areas") + i)) * (
            kb.sqrt(speed_sqd) + sos
        )
        kb.store(kb.param("step") + i, 0.5 / denom)
    return kb.build()


def time_step_kernel() -> Kernel:
    """RK update: pure streaming (1 basic block, no guard — launched with
    exactly ``nelr`` threads, as Rodinia does)."""
    kb = KernelBuilder(
        "time_step", params=["vars", "old", "fluxes", "step", "nelr", "rk"]
    )
    i = kb.tid()
    nelr = kb.param("nelr")
    factor = kb.load(kb.param("step") + i) / kb.i2f(kb.param("rk"))
    for j in range(5):
        old = kb.load(kb.param("old") + j * nelr + i)
        flux = kb.load(kb.param("fluxes") + j * nelr + i)
        kb.store(kb.param("vars") + j * nelr + i, old + factor * flux)
    return kb.build()


def _element_quantities(kb, vars_base, nelr, idx):
    """Load an element's conserved variables and derive velocity,
    pressure (shared helper for own and neighbour elements)."""
    density = kb.load(vars_base + idx)
    mx = kb.load(vars_base + nelr + idx)
    my = kb.load(vars_base + 2 * nelr + idx)
    mz = kb.load(vars_base + 3 * nelr + idx)
    energy = kb.load(vars_base + 4 * nelr + idx)
    vx = mx / density
    vy = my / density
    vz = mz / density
    speed_sqd = vx * vx + vy * vy + vz * vz
    pressure = (GAMMA - 1.0) * (energy - 0.5 * density * speed_sqd)
    return density, mx, my, mz, energy, vx, vy, vz, pressure


def compute_flux_kernel() -> Kernel:
    kb = KernelBuilder(
        "compute_flux",
        params=["vars", "neighbors", "normals", "fluxes", "ff", "nelr"],
    )
    i = kb.tid()
    nelr = kb.param("nelr")
    with kb.if_(i < nelr):
        vars_base = kb.param("vars")
        (density_i, mx_i, my_i, mz_i, energy_i,
         vx_i, vy_i, vz_i, p_i) = _element_quantities(kb, vars_base, nelr, i)

        f_density = kb.var("f_density", 0.0)
        f_mx = kb.var("f_mx", 0.0)
        f_my = kb.var("f_my", 0.0)
        f_mz = kb.var("f_mz", 0.0)
        f_energy = kb.var("f_energy", 0.0)

        ff_density = kb.load(kb.param("ff"))
        ff_mx = kb.load(kb.param("ff") + 1)
        ff_my = kb.load(kb.param("ff") + 2)
        ff_energy = kb.load(kb.param("ff") + 4)

        with kb.for_range(0, NNB, name="nbj") as j:
            nb = kb.load(kb.param("neighbors") + i * NNB + j, DType.INT)
            nbase = kb.param("normals") + (i * NNB + j) * 3
            nx = kb.load(nbase)
            ny = kb.load(nbase + 1)
            nz = kb.load(nbase + 2)
            with kb.if_(nb >= 0):
                # Interior face: central average of the two elements.
                (density_n, mx_n, my_n, mz_n, energy_n,
                 vx_n, vy_n, vz_n, p_n) = _element_quantities(
                    kb, vars_base, nelr, nb
                )
                mass = 0.5 * (
                    nx * (mx_i + mx_n) + ny * (my_i + my_n) + nz * (mz_i + mz_n)
                )
                p_avg = 0.5 * (p_i + p_n)
                kb.assign(f_density, f_density + mass)
                kb.assign(
                    f_mx, f_mx + mass * 0.5 * (vx_i + vx_n) + p_avg * nx
                )
                kb.assign(
                    f_my, f_my + mass * 0.5 * (vy_i + vy_n) + p_avg * ny
                )
                kb.assign(
                    f_mz, f_mz + mass * 0.5 * (vz_i + vz_n) + p_avg * nz
                )
                kb.assign(
                    f_energy,
                    f_energy
                    + mass * 0.5 * (
                        (energy_i + p_i) / density_i
                        + (energy_n + p_n) / density_n
                    ),
                )
            with kb.else_():
                with kb.if_(nb == -1):
                    # Far-field face: free-stream contribution.
                    mass = nx * ff_mx + ny * ff_my
                    kb.assign(f_density, f_density + mass)
                    kb.assign(f_mx, f_mx + mass * ff_mx / ff_density)
                    kb.assign(f_my, f_my + mass * ff_my / ff_density)
                    kb.assign(
                        f_energy, f_energy + mass * ff_energy / ff_density
                    )
                with kb.else_():
                    # Wall face (-2): pressure force only.
                    kb.assign(f_mx, f_mx + p_i * nx)
                    kb.assign(f_my, f_my + p_i * ny)
                    kb.assign(f_mz, f_mz + p_i * nz)

        kb.store(kb.param("fluxes") + i, f_density)
        kb.store(kb.param("fluxes") + nelr + i, f_mx)
        kb.store(kb.param("fluxes") + 2 * nelr + i, f_my)
        kb.store(kb.param("fluxes") + 3 * nelr + i, f_mz)
        kb.store(kb.param("fluxes") + 4 * nelr + i, f_energy)
    return kb.build()


# ----------------------------------------------------------------------
# Synthetic mesh + numpy golden models
# ----------------------------------------------------------------------
def _make_mesh(nelr: int, seed: int):
    rng = np.random.default_rng(seed)
    density = rng.uniform(1.0, 2.0, nelr)
    mx = rng.uniform(-0.5, 0.5, nelr)
    my = rng.uniform(-0.5, 0.5, nelr)
    mz = rng.uniform(-0.5, 0.5, nelr)
    # Keep internal energy positive and pressure well-defined.
    kinetic = 0.5 * (mx**2 + my**2 + mz**2) / density
    energy = kinetic + rng.uniform(1.0, 2.0, nelr)
    variables = np.stack([density, mx, my, mz, energy])

    kinds = rng.choice([0, -1, -2], size=(nelr, NNB), p=[0.85, 0.10, 0.05])
    neighbors = np.where(
        kinds == 0, rng.integers(0, nelr, (nelr, NNB)), kinds
    )
    normals = rng.uniform(-1.0, 1.0, (nelr, NNB, 3))
    areas = rng.uniform(0.5, 1.5, nelr)
    return variables, neighbors, normals, areas


def _derive(variables):
    density, mx, my, mz, energy = variables
    vx, vy, vz = mx / density, my / density, mz / density
    speed_sqd = vx**2 + vy**2 + vz**2
    pressure = (GAMMA - 1.0) * (energy - 0.5 * density * speed_sqd)
    return vx, vy, vz, speed_sqd, pressure


def _flux_reference(variables, neighbors, normals) -> np.ndarray:
    nelr = variables.shape[1]
    vx, vy, vz, _, p = _derive(variables)
    density, mx, my, mz, energy = variables
    ff_density, ff_mx, ff_my, _, ff_energy = FF_VALUES
    fluxes = np.zeros((5, nelr))
    for i in range(nelr):
        for j in range(NNB):
            nb = int(neighbors[i, j])
            nx, ny, nz = normals[i, j]
            if nb >= 0:
                mass = 0.5 * (
                    nx * (mx[i] + mx[nb]) + ny * (my[i] + my[nb])
                    + nz * (mz[i] + mz[nb])
                )
                p_avg = 0.5 * (p[i] + p[nb])
                fluxes[0, i] += mass
                fluxes[1, i] += mass * 0.5 * (vx[i] + vx[nb]) + p_avg * nx
                fluxes[2, i] += mass * 0.5 * (vy[i] + vy[nb]) + p_avg * ny
                fluxes[3, i] += mass * 0.5 * (vz[i] + vz[nb]) + p_avg * nz
                fluxes[4, i] += mass * 0.5 * (
                    (energy[i] + p[i]) / density[i]
                    + (energy[nb] + p[nb]) / density[nb]
                )
            elif nb == -1:
                mass = nx * ff_mx + ny * ff_my
                fluxes[0, i] += mass
                fluxes[1, i] += mass * ff_mx / ff_density
                fluxes[2, i] += mass * ff_my / ff_density
                fluxes[4, i] += mass * ff_energy / ff_density
            else:
                fluxes[1, i] += p[i] * nx
                fluxes[2, i] += p[i] * ny
                fluxes[3, i] += p[i] * nz
    return fluxes


# ----------------------------------------------------------------------
# Workload factories
# ----------------------------------------------------------------------
def make_initialize_workload(scale: str = "small", seed: int = 51) -> Workload:
    nelr = pick(scale, 256, 4096, 16384)
    mem = MemoryImage(5 * nelr + 64)
    b_vars = mem.alloc("vars", 5 * nelr)
    b_ff = mem.alloc_array("ff", FF_VALUES)
    expected = np.repeat(np.array(FF_VALUES), nelr)
    return Workload(
        name="cfd/initialize_variables",
        app="CFD",
        kernel=initialize_variables_kernel(),
        memory=mem,
        params={"vars": b_vars, "ff": b_ff, "nelr": nelr},
        n_threads=nelr,
        expected={"vars": expected},
        paper_blocks=1,
    )


def make_step_factor_workload(scale: str = "small", seed: int = 52) -> Workload:
    nelr = pick(scale, 256, 4096, 16384)
    variables, _, _, areas = _make_mesh(nelr, seed)
    mem = MemoryImage(7 * nelr + 64)
    b_vars = mem.alloc_array("vars", variables.ravel())
    b_areas = mem.alloc_array("areas", areas)
    b_step = mem.alloc("step", nelr)

    _, _, _, speed_sqd, pressure = _derive(variables)
    density = variables[0]
    sos = np.sqrt(GAMMA * pressure / density)
    expected = 0.5 / (np.sqrt(areas) * (np.sqrt(speed_sqd) + sos))

    return Workload(
        name="cfd/compute_step_factor",
        app="CFD",
        kernel=compute_step_factor_kernel(),
        memory=mem,
        params={"vars": b_vars, "areas": b_areas, "step": b_step, "nelr": nelr},
        n_threads=nelr,
        expected={"step": expected},
        paper_blocks=2,
    )


def make_time_step_workload(scale: str = "small", seed: int = 53) -> Workload:
    nelr = pick(scale, 256, 4096, 16384)
    rng = np.random.default_rng(seed)
    old = rng.normal(size=5 * nelr)
    fluxes = rng.normal(size=5 * nelr)
    step = rng.uniform(0.01, 0.1, nelr)
    rk = 3

    mem = MemoryImage(16 * nelr + 64)
    b_vars = mem.alloc("vars", 5 * nelr)
    b_old = mem.alloc_array("old", old)
    b_flux = mem.alloc_array("fluxes", fluxes)
    b_step = mem.alloc_array("step", step)

    factor = np.tile(step / rk, 5)
    expected = old + factor * fluxes

    return Workload(
        name="cfd/time_step",
        app="CFD",
        kernel=time_step_kernel(),
        memory=mem,
        params={
            "vars": b_vars, "old": b_old, "fluxes": b_flux,
            "step": b_step, "nelr": nelr, "rk": rk,
        },
        n_threads=nelr,
        expected={"vars": expected},
        paper_blocks=1,
    )


def make_compute_flux_workload(scale: str = "small", seed: int = 54) -> Workload:
    nelr = pick(scale, 128, 2048, 8192)
    variables, neighbors, normals, _ = _make_mesh(nelr, seed)

    mem = MemoryImage(5 * nelr + NNB * nelr + 3 * NNB * nelr + 5 * nelr + 64)
    b_vars = mem.alloc_array("vars", variables.ravel())
    b_nei = mem.alloc_array("neighbors", neighbors.ravel())
    b_nrm = mem.alloc_array("normals", normals.ravel())
    b_flux = mem.alloc("fluxes", 5 * nelr)
    b_ff = mem.alloc_array("ff", FF_VALUES)

    expected = _flux_reference(variables, neighbors, normals)

    return Workload(
        name="cfd/compute_flux",
        app="CFD",
        kernel=compute_flux_kernel(),
        memory=mem,
        params={
            "vars": b_vars, "neighbors": b_nei, "normals": b_nrm,
            "fluxes": b_flux, "ff": b_ff, "nelr": nelr,
        },
        n_threads=nelr,
        expected={"fluxes": expected.ravel()},
        paper_blocks=12,
    )
