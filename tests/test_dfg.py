"""Tests for per-block dataflow graph construction."""

import pytest

from repro.arch import UnitKind
from repro.compiler import (
    NodeKind,
    NodeSrc,
    allocate_live_values,
    build_block_dfg,
    build_kernel_dfgs,
)
from repro.ir import DType, KernelBuilder
from repro.kernels import fig1_kernel, loop_sum_kernel, saxpy_kernel


def _dfgs(kernel):
    lv = allocate_live_values(kernel)
    return build_kernel_dfgs(kernel, lv), lv


def test_every_block_has_init_and_term():
    for kf in (saxpy_kernel, fig1_kernel, loop_sum_kernel):
        k = kf()
        dfgs, _ = _dfgs(k)
        for name, dfg in dfgs.items():
            kinds = [n.kind for n in dfg.nodes]
            assert kinds.count(NodeKind.INIT) == 1
            assert kinds.count(NodeKind.TERM) == 1
            assert dfg.node(dfg.init_node).kind is NodeKind.INIT
            assert dfg.node(dfg.term_node).kind is NodeKind.TERM


def test_topo_order_is_valid():
    k = fig1_kernel()
    dfgs, _ = _dfgs(k)
    for dfg in dfgs.values():
        order = dfg.topo_order()
        pos = {nid: i for i, nid in enumerate(order)}
        for node in dfg.nodes:
            for up in node.input_nodes():
                assert pos[up] < pos[node.nid]


def test_lv_nodes_match_fetch_spill_sets():
    k = fig1_kernel()
    dfgs, lv = _dfgs(k)
    for name, dfg in dfgs.items():
        loads = {n.out_reg for n in dfg.nodes if n.kind is NodeKind.LVLOAD}
        stores = {n.out_reg for n in dfg.nodes if n.kind is NodeKind.LVSTORE}
        assert loads == set(lv.fetches[name])
        assert stores == set(lv.spills[name])
        for n in dfg.nodes:
            if n.kind in (NodeKind.LVLOAD, NodeKind.LVSTORE):
                assert n.lv_id == lv.ids[n.out_reg]


def test_branch_terminator_consumes_condition():
    k = saxpy_kernel()
    dfgs, _ = _dfgs(k)
    entry = dfgs["entry"]
    term = entry.node(entry.term_node)
    assert len(term.srcs) == 1
    assert isinstance(term.srcs[0], NodeSrc)
    cond = entry.node(term.srcs[0].node)
    assert cond.dtype is DType.PRED


def test_store_after_loads_gets_join():
    kb = KernelBuilder("war", params=["a", "out"])
    base = kb.param("a")
    # Three loads followed by a store: the store must wait on a join of
    # the loads (write-after-read, paper §3.5 example).
    s = kb.load(base) + kb.load(base + 1) + kb.load(base + 2)
    kb.store(kb.param("out"), s)
    k = kb.build()
    dfgs, _ = _dfgs(k)
    entry = dfgs["entry"]
    joins = [n for n in entry.nodes if n.kind is NodeKind.JOIN]
    assert len(joins) == 1
    assert len(joins[0].ctrl) == 3
    store = next(n for n in entry.nodes if n.kind is NodeKind.STORE)
    assert joins[0].nid in store.ctrl


def test_load_after_store_is_ordered():
    kb = KernelBuilder("raw", params=["a", "out"])
    kb.store(kb.param("a"), 1.0)
    v = kb.load(kb.param("a"))
    kb.store(kb.param("out"), v)
    k = kb.build()
    dfgs, _ = _dfgs(k)
    entry = dfgs["entry"]
    store0 = next(n for n in entry.nodes if n.kind is NodeKind.STORE)
    load = next(n for n in entry.nodes if n.kind is NodeKind.LOAD)
    assert store0.nid in load.ctrl


def test_split_inserted_for_wide_fanout():
    kb = KernelBuilder("fan", params=["out"])
    v = kb.load(kb.param("out"))  # one producer ...
    acc = v * 1.0
    for i in range(7):  # ... feeding 8 consumers
        acc = acc + v
    kb.store(kb.param("out"), acc)
    k = kb.build()
    dfgs, _ = _dfgs(k)
    entry = dfgs["entry"]
    splits = [n for n in entry.nodes if n.kind is NodeKind.SPLIT]
    assert splits, "a fanout-8 value must be split"
    consumers = entry.consumers()
    for nid, cons in consumers.items():
        assert len(cons) <= 4


def test_unit_demand_kinds():
    k = fig1_kernel()
    dfgs, _ = _dfgs(k)
    entry = dfgs["entry"]
    demand = entry.unit_demand()
    assert demand[UnitKind.CVU] == 2          # init + term
    assert demand[UnitKind.LDST] == 1         # the data load
    sqrt_block = next(
        d for d in dfgs.values()
        if any(n.kind is NodeKind.OP and n.op.value == "fsqrt" for n in d.nodes)
    )
    assert sqrt_block.unit_demand()[UnitKind.SPECIAL] == 1


def test_sinks_include_stores_and_term():
    k = saxpy_kernel()
    dfgs, _ = _dfgs(k)
    body = dfgs["then.1"]
    sinks = set(body.sink_nodes())
    store = next(n.nid for n in body.nodes if n.kind is NodeKind.STORE)
    assert store in sinks
    assert body.term_node in sinks
