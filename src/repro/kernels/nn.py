"""NN — ``euclid`` (Rodinia k-nearest-neighbours), paper Table 2:
2 basic blocks.

Each thread computes the Euclidean distance from one record's
(latitude, longitude) to the query point: a small, convergent,
FP-and-sqrt kernel — the archetype of SGMF/VGIW-friendly code.
"""

from __future__ import annotations

import numpy as np

from repro.ir import Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage


def euclid_kernel() -> Kernel:
    kb = KernelBuilder("euclid", params=["locations", "distances", "n", "lat", "lng"])
    t = kb.tid()
    with kb.if_(t < kb.param("n")):
        lat_v = kb.load(kb.param("locations") + 2 * t)
        lng_v = kb.load(kb.param("locations") + 2 * t + 1)
        dlat = kb.fparam("lat") - lat_v
        dlng = kb.fparam("lng") - lng_v
        kb.store(
            kb.param("distances") + t, kb.sqrt(dlat * dlat + dlng * dlng)
        )
    return kb.build()


def make_workload(scale: str = "small", seed: int = 31) -> Workload:
    n = pick(scale, 256, 4096, 16384)
    rng = np.random.default_rng(seed)
    lats = rng.uniform(0.0, 90.0, n)
    lngs = rng.uniform(0.0, 180.0, n)
    locations = np.column_stack([lats, lngs]).ravel()
    lat, lng = 30.0, 90.0

    mem = MemoryImage(3 * n + 64)
    b_loc = mem.alloc_array("locations", locations)
    b_dist = mem.alloc("distances", n)

    return Workload(
        name="nn/euclid",
        app="NN",
        kernel=euclid_kernel(),
        memory=mem,
        params={
            "locations": b_loc, "distances": b_dist,
            "n": n, "lat": lat, "lng": lng,
        },
        n_threads=n,
        expected={
            "distances": np.sqrt((lat - lats) ** 2 + (lng - lngs) ** 2)
        },
        paper_blocks=2,
    )
