"""The consolidated ``RunOptions`` surface and its deprecation adapter.

Contracts (``docs/api.md``):

* ``options=RunOptions(...)`` and the historical keyword surface
  produce identical results; the keywords emit one
  ``DeprecationWarning`` naming the names used (``scale`` stays
  first-class and silent);
* mixing the two styles, conflicting ``scale``, and unknown or
  wrong-entry-point keywords all raise ``TypeError``;
* ``fingerprint()`` keys batching: identical semantics → identical
  fingerprint, reporting/live knobs don't perturb it;
* the run journal stamps the options summary into its header;
* the ``repro.evalharness`` CLI constructs a ``RunOptions`` directly
  (no deprecation warnings on the migrated path).
"""

import json
import warnings

import pytest

from repro.evalharness import RunOptions, run_kernel, run_suite
from repro.evalharness.options import KERNEL_KWARGS, SUITE_KWARGS
from repro.obs import Metrics
from repro.serve import result_digest


# ----------------------------------------------------------------------
# The adapter: from_kwargs / to_kwargs
# ----------------------------------------------------------------------
def test_from_kwargs_roundtrip_and_warning():
    with pytest.warns(DeprecationWarning, match="verify"):
        opts = RunOptions.from_kwargs(scale="tiny", verify=False)
    assert opts == RunOptions(scale="tiny", verify=False)
    assert opts.to_kwargs() == {"scale": "tiny", "verify": False}
    # Round-trip: the minimal kwargs rebuild the same value object.
    assert RunOptions.from_kwargs(_warn=False, **opts.to_kwargs()) == opts


def test_scale_alone_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        opts = RunOptions.from_kwargs(scale="tiny")
    assert opts.scale == "tiny"


def test_unknown_keyword_raises_typeerror():
    with pytest.raises(TypeError, match="bogus"):
        RunOptions.from_kwargs(bogus=1)


def test_replace_returns_new_frozen_value():
    base = RunOptions(scale="tiny")
    other = base.replace(verify=False)
    assert base.verify and not other.verify
    with pytest.raises(Exception):  # frozen dataclass
        base.verify = False


# ----------------------------------------------------------------------
# run_kernel / run_suite front doors
# ----------------------------------------------------------------------
def test_run_kernel_options_equals_legacy_kwargs():
    opts = RunOptions(scale="tiny", verify=False)
    via_options = run_kernel("nn/euclid", options=opts)
    with pytest.warns(DeprecationWarning, match="verify"):
        via_legacy = run_kernel("nn/euclid", scale="tiny", verify=False)
    assert result_digest(via_options) == result_digest(via_legacy)


def test_run_kernel_rejects_mixed_styles():
    opts = RunOptions(scale="tiny")
    with pytest.raises(TypeError, match="not both"):
        run_kernel("nn/euclid", options=opts, verify=False)


def test_run_kernel_rejects_conflicting_scale():
    opts = RunOptions(scale="tiny")
    with pytest.raises(TypeError, match="conflicts"):
        run_kernel("nn/euclid", scale="small", options=opts)
    # A *matching* positional scale composes fine.
    run = run_kernel("nn/euclid", "tiny", options=opts)
    assert run.name == "nn/euclid"


def test_run_kernel_still_rejects_suite_only_keywords():
    assert "jobs" in SUITE_KWARGS and "jobs" not in KERNEL_KWARGS
    with pytest.raises(TypeError, match="jobs"):
        run_kernel("nn/euclid", scale="tiny", jobs=2)


def test_run_suite_options_path(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    opts = RunOptions(scale="tiny", journal=journal)
    runs = run_suite(["nn/euclid"], options=opts)
    assert runs.ok and "nn/euclid" in runs
    # The journal header carries the greppable options summary.
    header = json.loads(open(journal).readline())
    assert header["scale"] == "tiny"
    assert header["options"]["scale"] == "tiny"
    assert header["options"]["journal"] == journal


# ----------------------------------------------------------------------
# fingerprint(): the batching key
# ----------------------------------------------------------------------
def test_fingerprint_tracks_semantics_only():
    base = RunOptions(scale="tiny")
    assert base.fingerprint() == RunOptions(scale="tiny").fingerprint()
    assert base.fingerprint() != base.replace(scale="small").fingerprint()
    assert base.fingerprint() != base.replace(verify=False).fingerprint()
    # Reporting / persistence / live knobs never perturb the key.
    same = base.replace(jobs=4, trace_path="t.json", journal="j.jsonl",
                        cache_dir="/tmp/cc", metrics=Metrics())
    assert base.fingerprint() == same.fingerprint()


def test_live_fields_set_names_the_offenders():
    assert RunOptions().live_fields_set() == ()
    assert RunOptions(metrics=Metrics()).live_fields_set() == ("metrics",)


# ----------------------------------------------------------------------
# The migrated CLI constructs RunOptions directly (no deprecation)
# ----------------------------------------------------------------------
def test_evalharness_cli_emits_no_deprecation(tmp_path, capsys):
    from repro.evalharness.__main__ import main

    out = tmp_path / "report.md"
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        rc = main(["--scale", "tiny", "--kernels", "nn/euclid",
                   "--out", str(out)])
    assert rc == 0
    assert "nn/euclid" in out.read_text()
