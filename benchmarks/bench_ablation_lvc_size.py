"""Ablation: live value cache size (paper §3.4 fixes 64KB without a
design-space exploration; this bench provides one).

A live-value-heavy kernel (hotspot carries ~10 values across its
boundary diamonds) thrashes a small LVC — misses spill to the L2 —
while beyond the working set extra capacity buys nothing.
"""

from repro.arch import VGIWConfig
from repro.evalharness.tables import ExperimentTable
from repro.kernels.registry import make_workload
from repro.vgiw import VGIWCore


def bench_ablation_lvc_size(benchmark):
    table = ExperimentTable(
        "Ablation", "LVC size sweep (hotspot, live-value heavy)",
        ["LVC KB", "Cycles", "LVC miss rate", "L2 accesses"],
    )

    def run_sweep():
        table.rows.clear()
        out = {}
        for kb_size in (4, 16, 64, 256):
            w = make_workload("hotspot/hotspot_kernel", "small")
            cfg = VGIWConfig(lvc_size_bytes=kb_size * 1024)
            mem = w.memory.clone()
            r = VGIWCore(cfg).run(w.kernel, mem, w.params, w.n_threads)
            miss_rate = 1.0 - r.lvc_stats.hit_rate
            table.add(kb_size, r.cycles, miss_rate, r.l2.accesses)
            out[kb_size] = r.cycles
        return out

    cycles = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(table.render())
    assert cycles[4] > cycles[64], "a tiny LVC must thrash"
    assert cycles[256] <= cycles[16], "capacity beyond the working set is flat"
