"""Unified engine contracts: ``Engine`` protocol, ``EngineRunResult``
base, and the backend registry.

Before this module the three machines exposed three incompatible
``*RunResult`` shapes and the host :class:`~repro.host.Device` chose a
backend with an ``if/elif`` chain.  Now:

* :class:`Engine` is the structural protocol every execution backend
  satisfies: construct with an optional config, then
  ``run(kernel, memory, params, n_threads, *, watchdog=None,
  faults=None, tracer=None, metrics=None)``;
* :class:`EngineRunResult` is the common result base.  Subclasses
  (``VGIWRunResult``, ``FermiRunResult``, ``SGMFRunResult``) keep every
  historical field and field *order* — the base contributes the shared
  contract (``kernel_name``, ``n_threads``, ``cycles``, ``l1``/``l2``
  :class:`~repro.memory.cache.CacheStats`,
  :class:`~repro.memory.dram.DRAMStats` ``dram``) plus the
  observability attachments ``trace`` / ``metrics`` and shared derived
  properties;
* :func:`register_engine` / :func:`create_engine` form a registry keyed
  by backend name (``"vgiw"``, ``"fermi"``, ``"sgmf"``, ``"interp"``),
  so new backends plug into :class:`~repro.host.Device` without
  touching its dispatch.

The built-in engines register lazily (module-path strings) to keep this
module import-cycle-free: engine modules import ``repro.engine`` for
the result base.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any, Callable, Dict, Optional, Protocol, Tuple, Union, runtime_checkable

__all__ = [
    "Engine",
    "EngineRunResult",
    "UnknownEngineError",
    "create_engine",
    "engine_names",
    "register_engine",
]

Number = Union[int, float, bool]


# ----------------------------------------------------------------------
# Result base
# ----------------------------------------------------------------------
class EngineRunResult:
    """Common base of every timing engine's run result.

    Contract (every subclass provides these attributes):

    ``kernel_name``  the launched kernel's name
    ``n_threads``    launch width
    ``cycles``       end-to-end simulated cycles
    ``l1`` / ``l2``  :class:`~repro.memory.cache.CacheStats`
    ``dram``         :class:`~repro.memory.dram.DRAMStats`

    The base is deliberately *not* a dataclass: the concrete results
    are dataclasses whose historical field order (and therefore
    positional-construction surface) must not change, so the shared
    fields stay declared in the subclasses and the base contributes the
    contract, the observability attachments, and derived properties.

    ``trace`` / ``metrics`` default to ``None`` (class attributes) and
    are attached by the engine via :meth:`attach_obs` when a tracer or
    metrics registry was passed to ``run``.
    """

    #: engine name, overridden per subclass ("vgiw", "fermi", "sgmf")
    engine: str = "?"
    #: :class:`repro.obs.Tracer` used during the run (or None)
    trace = None
    #: :class:`repro.obs.Metrics` populated during the run (or None)
    metrics = None

    REQUIRED_ATTRS: Tuple[str, ...] = (
        "kernel_name", "n_threads", "cycles", "l1", "l2", "dram",
    )

    def attach_obs(self, tracer=None, metrics=None) -> "EngineRunResult":
        """Attach the run's tracer / metrics registry (chainable)."""
        if tracer is not None:
            self.trace = tracer
        if metrics is not None:
            self.metrics = metrics
        return self

    # -- shared derived properties -------------------------------------
    @property
    def dram_accesses(self) -> int:
        return self.dram.accesses

    @property
    def l1_hit_rate(self) -> float:
        return self.l1.hit_rate

    @property
    def l2_hit_rate(self) -> float:
        return self.l2.hit_rate

    def memory_summary(self) -> Dict[str, float]:
        """The shared memory-hierarchy counters as a flat dict (the
        same quantities :func:`repro.obs.record_shared_run_metrics`
        publishes into the shared counter namespace)."""
        return {
            "l1.accesses": self.l1.accesses,
            "l1.misses": self.l1.misses,
            "l2.accesses": self.l2.accesses,
            "l2.misses": self.l2.misses,
            "dram.reads": self.dram.reads,
            "dram.writes": self.dram.writes,
            "dram.row_activations": self.dram.row_misses,
        }

    def summary(self) -> Dict[str, Any]:
        """Engine-agnostic run summary (uniform across backends)."""
        out: Dict[str, Any] = {
            "engine": self.engine,
            "kernel": self.kernel_name,
            "n_threads": self.n_threads,
            "cycles": self.cycles,
        }
        out.update(self.memory_summary())
        return out


# ----------------------------------------------------------------------
# Engine protocol
# ----------------------------------------------------------------------
@runtime_checkable
class Engine(Protocol):
    """Structural protocol every execution backend satisfies.

    Engines are constructed with an optional architecture config
    (``VGIWCore(config)``, ``FermiSM(config)``, ...) and expose
    ``run`` with the uniform keyword surface below.  Extra
    engine-specific keywords (``profile=``, ``max_block_executions=``)
    are allowed; the protocol names the portable subset.
    """

    def run(
        self,
        kernel,
        memory,
        params: Dict[str, Number],
        n_threads: int,
        *,
        watchdog=None,
        faults=None,
        tracer=None,
        metrics=None,
    ):  # pragma: no cover - structural declaration only
        ...


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
class UnknownEngineError(KeyError):
    """Backend name not present in the engine registry."""


#: name -> factory(config) -> engine instance
_REGISTRY: Dict[str, Callable[[Optional[Any]], Any]] = {}

#: built-in backends, loaded lazily to avoid import cycles
_BUILTIN: Dict[str, Tuple[str, str]] = {
    "vgiw": ("repro.vgiw.core", "VGIWCore"),
    "fermi": ("repro.simt.sm", "FermiSM"),
    "sgmf": ("repro.sgmf.core", "SGMFCore"),
    "interp": ("repro.engine", "InterpEngine"),
}


def register_engine(name: str,
                    factory: Optional[Callable[[Optional[Any]], Any]] = None):
    """Register backend ``name``; usable as a decorator.

    ``factory(config)`` must return an object satisfying
    :class:`Engine`.  Classes whose ``__init__`` takes one optional
    config argument can be registered directly::

        @register_engine("mycore")
        class MyCore: ...
    """
    def _register(fac):
        _REGISTRY[name] = fac
        return fac

    if factory is None:
        return _register
    return _register(factory)


def engine_names() -> Tuple[str, ...]:
    """All registered backend names (built-ins included)."""
    return tuple(sorted(set(_BUILTIN) | set(_REGISTRY)))


def create_engine(name: str, config: Optional[Any] = None):
    """Instantiate the backend registered under ``name``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        builtin = _BUILTIN.get(name)
        if builtin is None:
            raise UnknownEngineError(
                f"unknown backend {name!r}; registered: {engine_names()}"
            )
        module, attr = builtin
        factory = getattr(import_module(module), attr)
        _REGISTRY[name] = factory
    return factory(config)


# ----------------------------------------------------------------------
# Interpreter adapter
# ----------------------------------------------------------------------
class InterpEngine:
    """Adapts the reference interpreter to the :class:`Engine` surface.

    The interpreter has no timing model, so ``watchdog`` and ``tracer``
    hooks are accepted-and-ignored (``faults`` too — the interpreter is
    the golden model and must stay exact).  The returned
    :class:`~repro.interp.interpreter.InterpResult` gains the
    ``trace`` / ``metrics`` attachments for a uniform launch surface.
    """

    def __init__(self, config: Optional[Any] = None):
        self.config = config

    def run(self, kernel, memory, params, n_threads, *,
            watchdog=None, faults=None, tracer=None, metrics=None):
        from repro.interp import interpret

        result = interpret(kernel, memory, params, n_threads)
        result.trace = tracer
        result.metrics = metrics
        if metrics is not None:
            scope = metrics.scope("interp")
            scope.inc("run.threads", n_threads)
            scope.inc("run.instructions", result.total_instructions)
        return result
