"""Host-side convenience API: allocate arrays, launch kernels, read back.

A thin CUDA-runtime-flavoured wrapper over the memory image and the four
execution engines, so application code reads like host code:

    from repro.host import Device

    dev = Device("vgiw")
    x = dev.array(np.arange(1024.0))
    y = dev.array(np.ones(1024))
    out = dev.empty(1024)
    stats = dev.launch(saxpy, 1024, a=2.0, x=x, y=y, out=out, n=1024)
    print(stats.cycles, out.to_numpy()[:4])

Array handles passed as launch parameters are transparently converted to
their base addresses.  ``device="interp"`` runs the reference
interpreter (no timing), which is handy for golden checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

import warnings

from repro.compiler.optimize import optimize_kernel
from repro.engine import create_engine, engine_names, unknown_engine_error
from repro.ir.kernel import Kernel
from repro.memory.image import MemoryImage
from repro.resilience.errors import ReproError

Number = Union[int, float]


class HostError(ReproError):
    """Misuse of the host API."""


class LaunchStats:
    """Unified per-launch wrapper returned by :meth:`Device.launch`.

    Exposes the same four attributes for every backend —

    * ``cycles`` — simulated end-to-end cycles (``None`` for the
      untimed interpreter backend);
    * ``result`` — the backend's native run result
      (:class:`~repro.engine.EngineRunResult` subclass or
      :class:`~repro.interp.interpreter.InterpResult`);
    * ``trace`` — the :class:`repro.obs.Tracer` used, or ``None``;
    * ``metrics`` — the :class:`repro.obs.Metrics` registry, or ``None``

    — plus explicit forwarded properties for the per-backend result
    attributes application code actually reaches for (``bbs``,
    ``fabric``, ``sm``, ``engine``, ``kernel_name``, ``n_threads``,
    ``n_blocks``), each raising the backend's natural
    ``AttributeError`` when the wrapped result has no such field.

    Any *other* attribute still falls through to the wrapped result as
    a deprecation shim, but the access emits a ``DeprecationWarning``
    naming the attribute — migrate such call sites to
    ``stats.result.<name>`` (or file the attribute for promotion to an
    explicit property) so the blanket fall-through can be retired.
    """

    __slots__ = ("result",)

    def __init__(self, result: Any):
        self.result = result

    @property
    def cycles(self) -> Optional[float]:
        return getattr(self.result, "cycles", None)

    @property
    def trace(self):
        return getattr(self.result, "trace", None)

    @property
    def metrics(self):
        return getattr(self.result, "metrics", None)

    # -- explicit forwarded result attributes (grep-driven: the set the
    # repository's own tests, docs, and examples rely on) --------------
    @property
    def engine(self) -> str:
        """Backend name of the result (``"vgiw"``, ``"fermi"``, ...)."""
        return self.result.engine

    @property
    def kernel_name(self) -> str:
        return self.result.kernel_name

    @property
    def n_threads(self) -> int:
        return self.result.n_threads

    @property
    def n_blocks(self) -> int:
        return self.result.n_blocks

    @property
    def bbs(self):
        """VGIW basic-block scheduler statistics (``BBSStats``)."""
        return self.result.bbs

    @property
    def fabric(self):
        """VGIW / SGMF fabric statistics (``FabricStats``)."""
        return self.result.fabric

    @property
    def sm(self):
        """Fermi streaming-multiprocessor statistics (``SMStats``)."""
        return self.result.sm

    def __getattr__(self, name: str):
        # Deprecation shim: fall through to the backend's native result.
        # Dunder/private lookups (pickle, copy, IPython protocols) pass
        # through silently; public names warn so the shim can be retired.
        value = getattr(self.result, name)
        if not name.startswith("_"):
            warnings.warn(
                f"LaunchStats.{name} resolves through the deprecated "
                f"attribute fall-through; use stats.result.{name} "
                f"instead",
                DeprecationWarning, stacklevel=2,
            )
        return value

    def __repr__(self) -> str:
        return f"LaunchStats(cycles={self.cycles}, result={self.result!r})"


@dataclass(frozen=True)
class DeviceArray:
    """A handle to a named region of device memory."""

    device: "Device"
    name: str
    base: int
    size: int

    def to_numpy(self) -> np.ndarray:
        """Copy the array's current contents back to the host."""
        return self.device.memory.read_block(self.base, self.size)

    def write(self, values: Sequence[Number]) -> None:
        """Overwrite the array's contents from the host."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) != self.size:
            raise HostError(
                f"array {self.name!r} holds {self.size} words, "
                f"got {len(values)}"
            )
        self.device.memory.write_block(self.base, values)

    def __len__(self) -> int:
        return self.size


class Device:
    """One simulated device with its own memory image.

    Parameters
    ----------
    backend:
        Any name in the engine registry
        (:func:`repro.engine.engine_names`): ``"vgiw"``, ``"fermi"``,
        ``"sgmf"``, ``"interp"``, or a backend registered via
        :func:`repro.engine.register_engine`.
    memory_words:
        Size of the device memory image.
    config:
        Optional architecture configuration matching the backend.
    optimize:
        Run the per-launch optimisation pipeline (parameter
        specialisation, unrolling, CSE, FMA contraction) before
        executing.  Applies to every backend identically.
    tracer / metrics:
        Optional :class:`repro.obs.Tracer` / :class:`repro.obs.Metrics`
        threaded through every launch on this device; both are exposed
        on the returned :class:`LaunchStats`.
    """

    def __init__(self, backend: str = "vgiw", memory_words: int = 1 << 20,
                 config=None, optimize: bool = True,
                 tracer=None, metrics=None):
        if backend not in engine_names():
            # Surface the registry's own diagnosis (registered names +
            # nearest match) unchanged, typed as a host-API error.
            exc = unknown_engine_error(backend)
            raise HostError(str(exc)) from exc
        self.backend = backend
        self.memory = MemoryImage(memory_words)
        self.config = config
        self.optimize = optimize
        self.tracer = tracer
        self.metrics = metrics
        self._array_counter = 0
        self.last_result = None

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def _fresh_name(self, hint: str) -> str:
        self._array_counter += 1
        return f"{hint}.{self._array_counter}"

    def array(self, values: Sequence[Number], name: Optional[str] = None
              ) -> DeviceArray:
        """Allocate and initialise a device array."""
        values = np.asarray(values, dtype=np.float64)
        name = name or self._fresh_name("array")
        base = self.memory.alloc_array(name, values)
        return DeviceArray(self, name, base, len(values))

    def empty(self, size: int, name: Optional[str] = None) -> DeviceArray:
        """Allocate an uninitialised (zeroed) device array."""
        name = name or self._fresh_name("array")
        base = self.memory.alloc(name, size)
        return DeviceArray(self, name, base, size)

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------
    def launch(self, kernel: Kernel, n_threads: int, **params) -> LaunchStats:
        """Launch ``kernel`` over ``n_threads`` threads.

        Keyword arguments supply the kernel parameters; ``DeviceArray``
        handles are converted to their base addresses.  Returns a
        :class:`LaunchStats` (also stored as ``last_result``) exposing
        ``cycles`` / ``result`` / ``trace`` / ``metrics`` uniformly
        across backends, with attribute fall-through to the backend's
        native run result.
        """
        missing = [p for p in kernel.params if p not in params]
        if missing:
            raise HostError(f"missing kernel parameters: {missing}")
        resolved: Dict[str, Number] = {}
        for name, value in params.items():
            if isinstance(value, DeviceArray):
                if value.device is not self:
                    raise HostError(
                        f"array {value.name!r} belongs to another device"
                    )
                resolved[name] = value.base
            else:
                resolved[name] = value

        run_kernel = kernel
        if self.optimize:
            run_kernel = optimize_kernel(kernel, params=resolved)

        # Registry dispatch: every backend satisfies the
        # repro.engine.Engine protocol, so one call site serves all.
        engine = create_engine(self.backend, self.config)
        result = engine.run(
            run_kernel, self.memory, resolved, n_threads,
            tracer=self.tracer, metrics=self.metrics,
        )
        stats = LaunchStats(result)
        self.last_result = stats
        return stats
