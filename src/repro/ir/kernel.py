"""Kernel container: a named CFG of basic blocks plus parameter list."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ir.block import BasicBlock
from repro.ir.instr import Op
from repro.ir.types import DType


@dataclass
class Kernel:
    """A data-parallel kernel: one CFG executed by every thread.

    ``params`` are launch-time scalars (array base addresses, sizes,
    coefficients); each thread additionally reads its thread index from
    the reserved ``tid`` register.  ``param_dtypes`` records the declared
    type of each parameter (INT unless declared otherwise).
    """

    name: str
    params: List[str]
    blocks: Dict[str, BasicBlock]
    entry: str
    param_dtypes: Dict[str, DType] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for p in self.params:
            self.param_dtypes.setdefault(p, DType.INT)

    # ------------------------------------------------------------------
    # CFG helpers
    # ------------------------------------------------------------------
    def block_names(self) -> List[str]:
        return list(self.blocks)

    def successors(self, name: str) -> Tuple[str, ...]:
        return self.blocks[name].successors()

    def predecessors(self) -> Dict[str, List[str]]:
        """Map each block name to the names of its CFG predecessors."""
        preds: Dict[str, List[str]] = {name: [] for name in self.blocks}
        for name, block in self.blocks.items():
            for succ in block.successors():
                preds[succ].append(name)
        return preds

    def exit_blocks(self) -> List[str]:
        """Names of blocks that terminate the kernel (RET)."""
        return [n for n, b in self.blocks.items() if not b.successors()]

    # ------------------------------------------------------------------
    # Statistics used by the evaluation harness and Table 2
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def instruction_count(self) -> int:
        return sum(len(b.instrs) for b in self.blocks.values())

    def memory_instruction_count(self) -> int:
        return sum(
            1
            for b in self.blocks.values()
            for i in b.instrs
            if i.op in (Op.LOAD, Op.STORE)
        )

    def __repr__(self) -> str:
        header = f"kernel {self.name}({', '.join(self.params)})"
        body = "\n".join(repr(self.blocks[n]) for n in self.blocks)
        return f"{header}\n{body}"
