"""``.kir`` reproducer files: found bugs stay fixed.

A corpus entry is one self-contained, human-readable file holding a
kernel in the :mod:`repro.ir.text` format plus the launch environment
needed to replay it, encoded in ``;`` comment *directives* that the
kernel parser already ignores::

    ; repro.fuzz reproducer
    ; seed: 1234
    ; engines: fermi vgiw
    ; status: mismatch
    ; note: shift-amount masking lost by the unroller
    ; n_threads: 2
    ; mem_words: 272
    ; input_base: 0
    ; input: 12 7.5 3 0.25 ...
    ; param in_: 0
    ; param out: 64
    kernel fuzz_... (in_, out, n, k1, k2, f1) float(f1)
    ...

Unknown ``key: value`` directives are preserved in ``ReplayCase.meta``,
so triage notes and campaign provenance travel with the reproducer.
The files live under ``tests/corpus/`` and are replayed against every
engine by ``tests/test_fuzz_corpus.py`` — committing a minimised
reproducer is how a fuzz finding becomes a permanent regression test.

:class:`ReplayCase` quacks like a :class:`~repro.fuzz.generate.FuzzCase`
(``kernel`` / ``params`` / ``n_threads`` / ``seed`` / ``build_memory``),
so :func:`repro.fuzz.oracle.run_case` replays it unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.kernel import Kernel
from repro.ir.text import ParseError, kernel_to_text, parse_kernel
from repro.memory.image import MemoryImage

__all__ = [
    "ReplayCase",
    "load_corpus_case",
    "load_corpus_dir",
    "save_corpus_case",
]

Number = Union[int, float]

#: Values per ``; input:`` line (keeps the files diff-friendly).
_INPUT_CHUNK = 8


@dataclass
class ReplayCase:
    """One corpus entry, ready to run through the differential oracle."""

    name: str
    kernel: Kernel
    params: Dict[str, Number]
    n_threads: int
    mem_words: int
    input_base: int = 0
    input_values: Tuple[float, ...] = ()
    seed: int = 0
    #: non-structural directives (engines, status, note, provenance...)
    meta: Dict[str, str] = field(default_factory=dict)

    def build_memory(self) -> MemoryImage:
        """The initial memory image for a replay."""
        memory = MemoryImage(self.mem_words)
        if self.input_values:
            memory.write_block(self.input_base, list(self.input_values))
        return memory


def _format_number(value: Number) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _parse_number(text: str) -> Number:
    try:
        return int(text)
    except ValueError:
        return float(text)


def save_corpus_case(path: str, case, meta: Optional[Dict[str, str]] = None,
                     ) -> None:
    """Write ``case`` (a FuzzCase or ReplayCase) as a ``.kir`` file.

    ``meta`` entries become extra directives; ``case.meta`` (when
    present) is merged underneath them.
    """
    directives: Dict[str, str] = {}
    directives.update(getattr(case, "meta", None) or {})
    directives.update(meta or {})

    lines: List[str] = ["; repro.fuzz reproducer"]
    lines.append(f"; seed: {int(getattr(case, 'seed', 0))}")
    for key, value in directives.items():
        lines.append(f"; {key}: {value}")
    lines.append(f"; n_threads: {int(case.n_threads)}")
    lines.append(f"; mem_words: {int(case.mem_words)}")
    lines.append(f"; input_base: {int(case.input_base)}")
    values = list(case.input_values)
    for start in range(0, len(values), _INPUT_CHUNK):
        chunk = values[start:start + _INPUT_CHUNK]
        lines.append(
            "; input: " + " ".join(_format_number(float(v)) for v in chunk)
        )
    for name in case.kernel.params:
        lines.append(f"; param {name}: {_format_number(case.params[name])}")
    lines.append(kernel_to_text(case.kernel).rstrip("\n"))
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    os.replace(tmp, path)


def load_corpus_case(path: str) -> ReplayCase:
    """Parse one ``.kir`` file back into a :class:`ReplayCase`."""
    with open(path) as fh:
        text = fh.read()

    seed = 0
    n_threads: Optional[int] = None
    mem_words: Optional[int] = None
    input_base = 0
    input_values: List[float] = []
    params: Dict[str, Number] = {}
    meta: Dict[str, str] = {}

    for line in text.splitlines():
        stripped = line.strip()
        if not stripped.startswith(";"):
            continue
        body = stripped[1:].strip()
        if ":" not in body:
            continue  # banner line
        key, _, value = body.partition(":")
        key, value = key.strip(), value.strip()
        if key == "seed":
            seed = int(value)
        elif key == "n_threads":
            n_threads = int(value)
        elif key == "mem_words":
            mem_words = int(value)
        elif key == "input_base":
            input_base = int(value)
        elif key == "input":
            input_values.extend(float(v) for v in value.split())
        elif key.startswith("param "):
            params[key[len("param "):].strip()] = _parse_number(value)
        else:
            meta[key] = value

    kernel = parse_kernel(text)
    name = os.path.splitext(os.path.basename(path))[0]
    if n_threads is None:
        raise ParseError(0, f"{path}: missing '; n_threads:' directive")
    if mem_words is None:
        raise ParseError(0, f"{path}: missing '; mem_words:' directive")
    missing = [p for p in kernel.params if p not in params]
    if missing:
        raise ParseError(
            0, f"{path}: missing '; param NAME:' directives for {missing}"
        )
    return ReplayCase(
        name=name,
        kernel=kernel,
        params=params,
        n_threads=n_threads,
        mem_words=mem_words,
        input_base=input_base,
        input_values=tuple(input_values),
        seed=seed,
        meta=meta,
    )


def load_corpus_dir(directory: str) -> List[ReplayCase]:
    """Load every ``*.kir`` under ``directory``, sorted by filename."""
    if not os.path.isdir(directory):
        return []
    cases = []
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".kir"):
            cases.append(load_corpus_case(os.path.join(directory, entry)))
    return cases
