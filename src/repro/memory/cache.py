"""Timing/tag model for banked set-associative caches.

Used for the L1 (32 banks), the L2 (6 banks) and the VGIW live value
cache (paper §3.4: "implemented as a banked cache, similar to a GPGPU
L1 design, and backed by the memory system").

The cache tracks tags, LRU state, dirty bits, bank occupancy and MSHRs —
but no data: functional values live in the flat
:class:`~repro.memory.image.MemoryImage`, so the timing model cannot
corrupt results.  Two write policies are supported, because that is the
single memory-system difference between VGIW and Fermi (paper §3.6):

* ``write_back=True`` — write-back, write-allocate (VGIW, SGMF);
* ``write_back=False`` — write-through, write-no-allocate (Fermi).

The model is a resource timeline: every access reserves its bank for one
cycle and returns its completion time; misses recurse into the next
level.  Same-line misses in flight are merged through the MSHRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from repro.memory.calendar import claim_slot


class NextLevel(Protocol):
    """Anything a cache can miss into (another cache or DRAM)."""

    def access(self, time: float, line_addr: int, is_write: bool) -> float: ...


@dataclass
class CacheStats:
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0
    mshr_merges: int = 0
    bank_wait_cycles: float = 0.0

    @property
    def accesses(self) -> int:
        return (
            self.read_hits + self.read_misses
            + self.write_hits + self.write_misses
        )

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return 1.0 - self.misses / total if total else 0.0


class Cache:
    """One level of banked, set-associative cache (timing only)."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int,
        ways: int,
        banks: int,
        hit_latency: int,
        next_level: Optional[NextLevel],
        write_back: bool = True,
        write_validate: bool = False,
        tracer=None,
    ):
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError(f"{name}: size not divisible by line*ways")
        self.name = name
        # Observability hook (repro.obs): when a Tracer is attached,
        # misses are emitted as instant timeline events.  The disabled
        # fast path is a single `is not None` test per miss.
        self.tracer = tracer
        self._trace_cat = f"mem.{name.lower()}"
        self.line_bytes = line_bytes
        self.ways = ways
        self.banks = banks
        self.hit_latency = hit_latency
        self.next_level = next_level
        self.write_back = write_back
        # write_validate: allocate write-miss lines without fetching them
        # (used by the LVC, whose backing matrix holds no meaningful data
        # until first spill — paper section 3.4).
        self.write_validate = write_validate
        self.n_sets = size_bytes // (line_bytes * ways)
        self.stats = CacheStats()
        # set index -> list of [tag, dirty] in LRU order (front = LRU)
        self._sets: Dict[int, List[List]] = {}
        # bank -> path-compressed next-free-pointer calendar
        # (repro.memory.calendar): requests arriving out of simulation
        # order backfill idle cycles instead of queueing behind
        # logically-later requests, at amortized O(1) per claim.
        self._bank_next: Dict[int, Dict[int, int]] = {}
        # line address -> in-flight fill completion time (MSHR)
        self._mshr: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _split(self, line_addr: int) -> Tuple[int, int, int]:
        # XOR set-index hashing (standard in GPU caches): arrays laid out
        # at power-of-two strides would otherwise collide in one set and
        # thrash a low-associativity cache.
        set_idx = (line_addr ^ (line_addr // self.n_sets)) % self.n_sets
        tag = line_addr // self.n_sets
        bank = line_addr % self.banks
        return set_idx, tag, bank

    def _bank_start(self, time: float, bank: int) -> float:
        """Claim the first free cycle of ``bank`` at or after ``time``
        (one access per bank per cycle)."""
        ti = int(time)
        t = ti if ti == time else ti + 1
        nf = self._bank_next.get(bank)
        if nf is None:
            nf = self._bank_next[bank] = {}
        start = claim_slot(nf, t)
        if start > t:
            self.stats.bank_wait_cycles += start - t
        return float(start)

    def _lookup(self, set_idx: int, tag: int) -> Optional[List]:
        ways = self._sets.get(set_idx)
        if not ways:
            return None
        for entry in ways:
            if entry[0] == tag:
                return entry
        return None

    def _touch(self, set_idx: int, entry: List) -> None:
        ways = self._sets[set_idx]
        ways.remove(entry)
        ways.append(entry)

    def _fill(self, time: float, line_addr: int, set_idx: int, tag: int,
              dirty: bool) -> None:
        ways = self._sets.setdefault(set_idx, [])
        if len(ways) >= self.ways:
            victim = ways.pop(0)
            if self.write_back and victim[1]:
                # Posted write-back of the dirty victim line (invert the
                # XOR set hash to recover the victim's line address).
                tag = victim[0]
                low = set_idx ^ (tag % self.n_sets)
                victim_line = tag * self.n_sets + low
                self.stats.writebacks += 1
                if self.next_level is not None:
                    self.next_level.access(time, victim_line, True)
        ways.append([tag, dirty])

    # ------------------------------------------------------------------
    def access(self, time: float, line_addr: int, is_write: bool,
               bank: Optional[int] = None) -> float:
        """Access one line; return the completion time.

        ``bank`` overrides the default line-interleaved bank selection —
        scalar (word-granularity) clients like the VGIW LDST units pass
        the word-interleaved bank so that consecutive words in one line
        hit different banks (paper §3.6: 32-bank L1).

        Writes complete at the L1 port (posted); reads complete when the
        data is available (after a fill on a miss).
        """
        set_idx, tag, default_bank = self._split(line_addr)
        start = self._bank_start(time, default_bank if bank is None else bank)
        entry = self._lookup(set_idx, tag)

        if entry is not None:
            self._touch(set_idx, entry)
            # A "hit" on a line whose fill is still in flight must wait
            # for the data to arrive (MSHR hit).
            pending = self._mshr.get(line_addr)
            if is_write:
                self.stats.write_hits += 1
                if self.write_back:
                    entry[1] = True
                elif self.next_level is not None:
                    # Write-through: propagate, completion stays local.
                    self.next_level.access(start, line_addr, True)
            else:
                self.stats.read_hits += 1
                if pending is not None and pending > start:
                    self.stats.mshr_merges += 1
                    return pending
            return start + self.hit_latency

        # Miss paths -----------------------------------------------------
        if self.tracer is not None:
            self.tracer.instant(
                "miss", self._trace_cat, start, pid="mem", tid=self.name,
                line=line_addr, write=is_write,
            )
        if is_write:
            self.stats.write_misses += 1
            if not self.write_back:
                # Write-no-allocate: forward the write, do not fill.
                if self.next_level is not None:
                    self.next_level.access(start, line_addr, True)
                return start + self.hit_latency
            if self.write_validate:
                # Allocate without fetching (no meaningful old data).
                self._fill(start, line_addr, set_idx, tag, dirty=True)
                return start + self.hit_latency
            # Write-allocate: fetch the line, then dirty it.
            ready = self._miss_fill(start, line_addr, set_idx, tag)
            entry = self._lookup(set_idx, tag)
            if entry is not None:
                entry[1] = True
            return ready

        self.stats.read_misses += 1
        return self._miss_fill(start, line_addr, set_idx, tag)

    def _miss_fill(self, start: float, line_addr: int, set_idx: int,
                   tag: int) -> float:
        pending = self._mshr.get(line_addr)
        if pending is not None and pending > start:
            self.stats.mshr_merges += 1
            return pending
        if self.next_level is not None:
            ready = self.next_level.access(start + self.hit_latency, line_addr, False)
        else:
            ready = start + self.hit_latency
        ready += self.hit_latency
        self._mshr[line_addr] = ready
        if len(self._mshr) > 4 * self.banks:
            # Lazy pruning of stale MSHR entries.
            self._mshr = {a: t for a, t in self._mshr.items() if t > start}
        self._fill(ready, line_addr, set_idx, tag, dirty=False)
        return ready

    # ------------------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        set_idx, tag, _ = self._split(line_addr)
        return self._lookup(set_idx, tag) is not None
