"""PATHFINDER — grid dynamic programming (Rodinia).

*Beyond Table 2*: another Rodinia staple.  Each thread owns one column;
one launch advances the DP one row (Rodinia's in-kernel pyramid loop
needs barriers, so the host loops over rows, as with NW):

    result[c] = wall[r, c] + min(prev[c-1], prev[c], prev[c+1])

with border clamps — three-way minimum through if/else chains, making
it a clean pure-int divergence microbenchmark.
"""

from __future__ import annotations

import numpy as np

from repro.ir import DType, Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage


def pathfinder_kernel() -> Kernel:
    kb = KernelBuilder(
        "dynproc_kernel", params=["wall_row", "prev", "result", "cols"]
    )
    c = kb.tid()
    cols = kb.param("cols")
    with kb.if_(c < cols):
        best = kb.var("best", dtype=DType.INT)
        kb.assign(best, kb.load(kb.param("prev") + c, DType.INT))
        with kb.if_(c > 0):
            left = kb.load(kb.param("prev") + c - 1, DType.INT)
            with kb.if_(left < best):
                kb.assign(best, left)
        with kb.if_(c < cols - 1):
            right = kb.load(kb.param("prev") + c + 1, DType.INT)
            with kb.if_(right < best):
                kb.assign(best, right)
        wall = kb.load(kb.param("wall_row") + c, DType.INT)
        kb.store(kb.param("result") + c, wall + best)
    return kb.build()


def pathfinder_row_reference(wall_row: np.ndarray,
                             prev: np.ndarray) -> np.ndarray:
    left = np.concatenate([prev[:1], prev[:-1]])
    right = np.concatenate([prev[1:], prev[-1:]])
    return wall_row + np.minimum(prev, np.minimum(left, right))


def make_workload(scale: str = "small", seed: int = 141) -> Workload:
    cols = pick(scale, 256, 4096, 16384)
    rng = np.random.default_rng(seed)
    wall_row = rng.integers(0, 10, cols)
    prev = rng.integers(0, 50, cols)

    mem = MemoryImage(3 * cols + 64)
    b_wall = mem.alloc_array("wall_row", wall_row)
    b_prev = mem.alloc_array("prev", prev)
    b_res = mem.alloc("result", cols)

    return Workload(
        name="pathfinder/dynproc_kernel",
        app="PATHFINDER",
        kernel=pathfinder_kernel(),
        memory=mem,
        params={"wall_row": b_wall, "prev": b_prev, "result": b_res,
                "cols": cols},
        n_threads=cols,
        expected={
            "result": pathfinder_row_reference(
                wall_row.astype(float), prev.astype(float)
            )
        },
        paper_blocks=0,  # beyond Table 2
    )
