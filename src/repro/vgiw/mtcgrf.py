"""MT-CGRF execution engine: streams thread vectors through a configured
basic-block dataflow graph.

The model is event-ordered per thread over the placed graph:

* threads are injected by the initiator CVUs, one per cycle per replica
  (paper §2: "a new thread can thus be injected into the computational
  fabric on every cycle");
* the token buffer bounds the threads in flight per replica (virtual
  execution channels, paper §3.5) — injection stalls until a window slot
  frees, which is exactly what back-pressure through full token buffers
  does;
* each node issues on its physical unit (one issue per cycle — the units
  are pipelined, II = 1), SCU operations additionally occupy one of the
  unit's non-pipelined instances for the operation latency, and LDST /
  LVU operations occupy a reservation-buffer entry until the memory
  system answers (this is what lets later threads overtake memory-stalled
  ones: dynamic, tagged-token dataflow);
* results travel to consumer units over the switched interconnect at one
  cycle per hop, with hop counts from the placement.

Functional values are computed alongside timing, so the executor is also
an exact functional model (asserted against the interpreter in tests).
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.arch.config import UnitKind, VGIWConfig, op_latency_for
from repro.compiler.dfg import (
    BlockDFG,
    ImmSrc,
    NodeKind,
    NodeSrc,
    ParamSrc,
    TidSrc,
)
from repro.compiler.pipeline import CompiledBlock
from repro.ir.instr import EVAL, Op, TermKind
from repro.ir.types import DType
from repro.memory.hierarchy import LiveValueCache, MemorySystem
from repro.memory.image import MemoryImage
from repro.resilience.errors import SimulationError
from repro.resilience.faults import FaultInjector
from repro.resilience.watchdog import (
    DiagnosticSnapshot,
    snapshot_from_replicas,
)

Number = Union[int, float, bool]


@dataclass
class FabricStats:
    """Event counts accumulated by the fabric (feeds the energy model)."""

    ops: Counter = field(default_factory=Counter)  # 'alu','fpu','scu',...
    tokens: int = 0        # token-buffer write+read pairs
    token_hops: int = 0    # switch traversals
    threads: int = 0
    node_fires: int = 0

    def merge(self, other: "FabricStats") -> None:
        self.ops.update(other.ops)
        self.tokens += other.tokens
        self.token_hops += other.token_hops
        self.threads += other.threads
        self.node_fires += other.node_fires

    def utilization(self, cycles: float, spec) -> Dict[str, float]:
        """Average per-kind unit utilisation over a run.

        Every node fire occupies its unit for one issue cycle (II = 1),
        so utilisation = fires / (cycles x units of that kind).  This is
        the quantity behind the paper's "the VGIW spatial design can
        operate all its 108 functional units concurrently" argument —
        and behind Figure 1c/1d's under-utilisation story.
        """
        from repro.arch.config import UnitKind

        kind_units = {
            "alu": spec.counts[UnitKind.COMPUTE],
            "fpu": spec.counts[UnitKind.COMPUTE],
            "scu": spec.counts[UnitKind.SPECIAL],
            "ldst": spec.counts[UnitKind.LDST],
            "lvu": spec.counts[UnitKind.LVU],
            "sju": spec.counts[UnitKind.SJU],
            "cvu": spec.counts[UnitKind.CVU],
        }
        if cycles <= 0:
            return {k: 0.0 for k in kind_units}
        out: Dict[str, float] = {}
        for kind, units in kind_units.items():
            out[kind] = self.ops.get(kind, 0) / (cycles * units)
        # The compute units serve both ALU and FPU fires.
        compute = (self.ops.get("alu", 0) + self.ops.get("fpu", 0)) / (
            cycles * spec.counts[UnitKind.COMPUTE]
        )
        out["compute"] = compute
        out["overall"] = self.node_fires / (cycles * spec.total_units)
        return out


@dataclass
class ThreadOutcome:
    """Result of streaming one thread through a block."""

    tid: int
    next_block: Optional[str]
    completion: float
    replica: int = 0  # which replica's terminator CVU produced this


_FLOAT_OPS_PREFIX = "f"


def _op_energy_class(node, op: Optional[Op]) -> str:
    kind = node.kind
    if kind in (NodeKind.INIT, NodeKind.TERM):
        return "cvu"
    if kind in (NodeKind.LVLOAD, NodeKind.LVSTORE):
        return "lvu"
    if kind in (NodeKind.LOAD, NodeKind.STORE):
        return "ldst"
    if kind in (NodeKind.SPLIT, NodeKind.JOIN):
        return "sju"
    if node.unit_kind is UnitKind.SPECIAL:
        return "scu"
    if op is not None and op.value.startswith(_FLOAT_OPS_PREFIX):
        return "fpu"
    return "alu"


class _ReplicaState:
    """Per-replica physical resource timelines.

    Units issue one operation per cycle (II = 1), modelled as per-unit
    *calendars* (occupied-cycle sets with backfill) rather than monotone
    free pointers: the simulators process whole threads sequentially, so
    a late-processed thread's early tokens must be able to claim idle
    unit cycles that logically preceded already-recorded traffic —
    exactly what tagged-token hardware does.
    """

    def __init__(self, config: VGIWConfig):
        self.unit_busy: Dict[int, set] = {}
        self.unit_high: Dict[int, int] = {}
        self.scu_pool: Dict[int, List[float]] = {}
        self.ldst_outstanding: Dict[int, List[float]] = {}
        self.config = config
        self.next_inject: float = 0.0
        self.window: List[float] = []  # completion times, injection order
        #: injection time per thread, parallel to ``window`` (lets the
        #: watchdog compute the oldest in-flight thread's age)
        self.inject_times: List[float] = []
        #: accumulated issue-stall cycles per unit (watchdog histogram)
        self.unit_wait: Dict[int, float] = {}
        #: cycles injection stalled on a full token-buffer window
        self.inject_wait: float = 0.0

    def _claim(self, busy_map: Dict[int, set], high_map: Dict[int, int],
               uid: int, ready: float) -> float:
        """Claim the first free cycle of a per-unit calendar."""
        t = int(ready) if ready == int(ready) else int(ready) + 1
        busy = busy_map.get(uid)
        if busy is None:
            busy = set()
            busy_map[uid] = busy
        start = t
        if start <= high_map.get(uid, -1):
            while start in busy:
                start += 1
        busy.add(start)
        if start > high_map.get(uid, -1):
            high_map[uid] = start
        if start > t:
            # Queueing delay behind earlier traffic on this unit — the
            # per-unit stall histogram the hang diagnostics report.
            self.unit_wait[uid] = self.unit_wait.get(uid, 0.0) + (start - t)
        return float(start)

    def issue(self, uid: int, ready: float) -> float:
        """Claim the unit's first free issue cycle at or after ``ready``.

        The issue port doubles as the output port: one result per cycle
        leaves the unit, and the switch replicates it to all consumers
        (the fanout bound is enforced statically by split insertion)."""
        return self._claim(self.unit_busy, self.unit_high, uid, ready)

    def issue_scu(self, uid: int, ready: float, latency: int) -> float:
        pool = self.scu_pool.setdefault(
            uid, [0.0] * self.config.scu_instances
        )
        earliest = heapq.heappop(pool)
        start = self.issue(uid, max(ready, earliest))
        heapq.heappush(pool, start + latency)
        return start

    def issue_mem(self, uid: int, ready: float, entries: int) -> float:
        out = self.ldst_outstanding.setdefault(uid, [])
        if len(out) >= entries:
            oldest = heapq.heappop(out)
            if oldest > ready:
                # Reservation buffer full: the unit is blocked waiting
                # for an outstanding memory response (this is where a
                # dropped response shows up in the stall histogram).
                self.unit_wait[uid] = (
                    self.unit_wait.get(uid, 0.0) + (oldest - ready)
                )
                ready = oldest
        return self.issue(uid, ready)

    def retire_mem(self, uid: int, completion: float) -> None:
        heapq.heappush(self.ldst_outstanding[uid], completion)


class MTCGRFExecutor:
    """Executes compiled blocks for vectors of threads."""

    def __init__(
        self,
        config: VGIWConfig,
        memsys: MemorySystem,
        lvc: LiveValueCache,
        memory: MemoryImage,
        params: Dict[str, Number],
        faults: Optional[FaultInjector] = None,
        fabric=None,
    ):
        self.config = config
        self.memsys = memsys
        self.lvc = lvc
        self.memory = memory
        self.params = params
        self.faults = faults
        self.fabric = fabric  # optional: names units in hang snapshots
        self.stats = FabricStats()
        #: functional live-value matrix: (lv_id, tid) -> value
        self.lv_values: Dict[Tuple[int, int], Number] = {}
        #: watchdog diagnostics: the block/replicas being streamed now
        self.last_block: Optional[CompiledBlock] = None
        self.last_replicas: List[_ReplicaState] = []

    # ------------------------------------------------------------------
    def unit_name(self, uid: int) -> str:
        """``unit{uid}[{kind}]`` when the fabric is known (snapshots)."""
        if self.fabric is not None and uid < len(self.fabric.units):
            kind = self.fabric.units[uid].kind
            return f"unit{uid}[{getattr(kind, 'name', kind).lower()}]"
        return f"unit{uid}"

    def diagnostic_snapshot(self, now: float, sim: str = "vgiw",
                            kernel: str = "?",
                            detail=None) -> DiagnosticSnapshot:
        """State of the block currently streaming through the fabric."""
        extra = dict(detail or {})
        if self.last_block is not None:
            extra.setdefault("current_block", self.last_block.name)
        extra.setdefault("lvc_word_requests", self.lvc.accesses)
        extra.setdefault("l1_misses", self.memsys.l1_stats.misses)
        return snapshot_from_replicas(
            sim=sim,
            kernel=kernel,
            now=now,
            replicas=self.last_replicas,
            unit_name=self.unit_name,
            block=None if self.last_block is None else self.last_block.name,
            detail=extra,
        )

    # ------------------------------------------------------------------
    def execute_block(
        self,
        cb: CompiledBlock,
        thread_ids: List[int],
        start_time: float,
    ) -> Tuple[List[ThreadOutcome], float]:
        """Stream ``thread_ids`` through block ``cb`` starting at
        ``start_time``; return per-thread outcomes and the cycle at
        which the whole vector has drained."""
        n_replicas = cb.n_replicas
        replicas = [_ReplicaState(self.config) for _ in range(n_replicas)]
        for r in replicas:
            r.next_inject = start_time
        self.last_block = cb
        self.last_replicas = replicas
        if self.faults is not None:
            self.faults.maybe_abort(f"vgiw/{cb.name}", start_time)

        outcomes: List[ThreadOutcome] = []
        end_time = start_time
        depth = self.config.token_buffer_depth
        order = cb.dfg.topo_order()
        sinks = cb.dfg.sink_nodes()

        for i, tid in enumerate(thread_ids):
            # The BBS hands out whole 64-thread batch packets to the
            # replicas' initiator CVUs (paper section 3.2), so replicas
            # see runs of consecutive thread IDs, not an interleave.
            ridx = (i // 64) % n_replicas
            rep = replicas[ridx]
            placed = cb.placement.replicas[ridx]
            inject = rep.next_inject
            if len(rep.window) >= depth:
                bound = rep.window[len(rep.window) - depth]
                if bound > inject:
                    # Token-buffer back-pressure: the virtual-channel
                    # window is full until an older thread drains.
                    rep.inject_wait += bound - inject
                    inject = bound
            rep.inject_times.append(inject)
            outcome, completion = self._run_thread(
                cb.dfg, order, sinks, placed, rep, tid, inject
            )
            outcome.replica = ridx
            rep.next_inject = inject + 1.0
            rep.window.append(completion)
            outcomes.append(outcome)
            end_time = max(end_time, completion)

        self.stats.threads += len(thread_ids)
        return outcomes, end_time

    # ------------------------------------------------------------------
    def _run_thread(
        self,
        dfg: BlockDFG,
        order: List[int],
        sinks: List[int],
        placed,
        rep: _ReplicaState,
        tid: int,
        inject: float,
    ) -> Tuple[ThreadOutcome, float]:
        config = self.config
        done: Dict[int, float] = {}
        value: Dict[int, Number] = {}
        next_block: Optional[str] = None
        stats = self.stats
        faults = self.faults

        def src_value(src) -> Number:
            if isinstance(src, NodeSrc):
                return value[src.node]
            if isinstance(src, ImmSrc):
                return src.value
            if isinstance(src, ParamSrc):
                return self.params[src.name]
            return tid  # TidSrc

        for nid in order:
            node = dfg.node(nid)
            uid = placed.unit_of[nid]
            # Arrival of the latest input token.  A producer's switch
            # replicates one token to all of its (fanout-bounded, see
            # the compiler's split insertion) consumers in the same
            # cycle, so delivery costs only the routed hop latency.
            ready = inject
            for up in node.input_nodes():
                ready = max(ready, done[up] + placed.edge_hops[(up, nid)])

            kind = node.kind
            if kind is NodeKind.INIT:
                done[nid] = inject
                value[nid] = tid
            elif kind is NodeKind.LVLOAD:
                start = rep.issue_mem(uid, ready, config.ldst_reservation_entries)
                completion = self.lvc.access(
                    start, node.lv_id, tid, False, port=uid
                )
                rep.retire_mem(uid, completion)
                done[nid] = completion
                try:
                    lv_value = self.lv_values[(node.lv_id, tid)]
                except KeyError:
                    raise SimulationError(
                        f"thread {tid} fetches live value {node.lv_id} "
                        f"(%{node.out_reg}) before any block stored it",
                        block=dfg.block_name,
                        thread=tid,
                        live_value=node.lv_id,
                    ) from None
                if faults is not None:
                    lv_value = faults.corrupt_lv(
                        node.lv_id, tid, completion, lv_value
                    )
                value[nid] = lv_value
            elif kind is NodeKind.LVSTORE:
                start = rep.issue_mem(uid, ready, config.ldst_reservation_entries)
                completion = self.lvc.access(
                    start, node.lv_id, tid, True, port=uid
                )
                rep.retire_mem(uid, completion)
                done[nid] = completion
                self.lv_values[(node.lv_id, tid)] = src_value(node.srcs[0])
            elif kind is NodeKind.LOAD:
                addr = int(src_value(node.srcs[0]))
                start = rep.issue_mem(uid, ready, config.ldst_reservation_entries)
                completion = self.memsys.access_word(start, addr, False)
                rep.retire_mem(uid, completion)
                done[nid] = completion
                raw = self.memory.read(addr)
                value[nid] = int(raw) if node.dtype is DType.INT else raw
            elif kind is NodeKind.STORE:
                addr = int(src_value(node.srcs[0]))
                start = rep.issue_mem(uid, ready, config.ldst_reservation_entries)
                completion = self.memsys.access_word(start, addr, True)
                rep.retire_mem(uid, completion)
                done[nid] = completion
                self.memory.write(addr, src_value(node.srcs[1]))
            elif kind is NodeKind.TERM:
                start = rep.issue(uid, ready)
                done[nid] = start + 1.0
                next_block = self._resolve_target(dfg, node, src_value)
            elif kind in (NodeKind.SPLIT, NodeKind.JOIN):
                start = rep.issue(uid, ready)
                done[nid] = start + config.op_latency["split"]
                if kind is NodeKind.SPLIT:
                    value[nid] = src_value(node.srcs[0])
            else:  # OP
                latency = op_latency_for(node.op, config.op_latency)
                if node.unit_kind is UnitKind.SPECIAL:
                    start = rep.issue_scu(uid, ready, latency)
                else:
                    start = rep.issue(uid, ready)
                done[nid] = start + latency
                args = [src_value(s) for s in node.srcs]
                result = EVAL[node.op](*args)
                if node.dtype is DType.INT:
                    result = int(result)
                elif node.dtype is DType.FLOAT:
                    result = float(result)
                if faults is not None:
                    result = faults.corrupt_token(
                        dfg.block_name, uid, tid, start, result
                    )
                value[nid] = result

            stats.node_fires += 1
            stats.tokens += 1
            stats.ops[_op_energy_class(node, node.op)] += 1
            for up in node.input_nodes():
                stats.token_hops += placed.edge_hops[(up, nid)]

        completion = max(done[s] for s in sinks)
        return ThreadOutcome(tid, next_block, completion), completion

    @staticmethod
    def _resolve_target(dfg: BlockDFG, node, src_value) -> Optional[str]:
        if dfg.term_kind is TermKind.RET:
            return None
        if dfg.term_kind is TermKind.JMP:
            return dfg.true_target
        taken = bool(src_value(node.srcs[0]))
        return dfg.true_target if taken else dfg.false_target
