"""Per-event energy table (GPUWattch-style accounting).

The original work obtained per-operation energies by synthesising the
VGIW components in RTL on a commercial 65 nm library and extrapolating
to 40 nm (paper §4), then fed event counts into a GPUWattch-derived
power model.  Neither the cell library nor GPUWattch is available
offline, so this table substitutes *published-magnitude* 40 nm energies
(GPUWattch/McPAT-flavoured values; cf. Leng et al., ISCA 2013 and Hong &
Kim, ISCA 2010).  All architectures are charged from the same table, so
the energy-efficiency *ratios* the paper reports are meaningful even if
absolute joules are not.

Key structural assumptions mirrored from the literature:

* a warp-wide vector register-file access moves 128 bytes through a
  large banked SRAM and costs far more than a scalar LVC word access;
* instruction fetch/decode/schedule is paid per warp instruction on the
  von Neumann core and not at all on the dataflow cores (their
  "instructions" are static configuration);  together these two are the
  ~30 % pipeline+RF overhead the paper cites [3, 4];
* datapath energy per lane-op is identical across architectures (the
  same arithmetic is performed);
* token buffers and switch hops are the dataflow cores' own overheads.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyTable:
    """All values in picojoules (pJ) unless noted."""

    # ---- shared datapath (per executed lane-op / node fire) ----------
    alu_op: float = 2.0          # integer ALU operation
    fpu_op: float = 6.0          # single-precision FP operation
    sfu_op: float = 25.0         # divide/sqrt/transcendental
    ldst_issue: float = 3.0      # address generation + unit control

    # ---- dataflow fabric overheads (VGIW, SGMF) -----------------------
    token_buffer: float = 0.8    # token buffer write+read per node fire
    switch_hop: float = 0.5      # one interconnect switch traversal
    sju_op: float = 1.0          # split/join fire
    cvu_op: float = 1.5          # initiator/terminator fire (per thread)
    unit_config: float = 40.0    # (re)configuring one functional unit

    # ---- von Neumann pipeline overheads (Fermi) -----------------------
    instr_issue: float = 45.0    # fetch + decode + scoreboard + schedule,
                                 # per warp instruction
    rf_access: float = 90.0     # one warp-wide (128B) register file access
    idle_lane: float = 1.0      # clocking a masked-off SIMD lane slot

    # ---- VGIW-specific storage ----------------------------------------
    lvc_access: float = 12.0     # one banked (64B line) access to the LVC
    lvu_buffer: float = 0.4      # one word served from an LVU line buffer
    cvt_word: float = 1.2        # one 64-bit CVT word read/write

    # ---- memory system (identical across architectures) ---------------
    l1_access: float = 30.0      # one 128B L1 access (coalesced warp segment)
    l1_word_access: float = 3.0  # one scalar word L1 bank access (VGIW/SGMF)
    l2_access: float = 80.0      # one L2 access
    noc_transfer: float = 40.0   # core<->L2 interconnect, per transfer
    dram_access: float = 640.0   # one 128B DRAM line transfer

    # ---- static/leakage power, pJ per core-clock cycle ----------------
    core_static: float = 35.0    # fabric or SM compute engine
    rf_static: float = 8.0       # Fermi register file (128KB)
    lvc_static: float = 4.0      # VGIW LVC (64KB) — half the RF's
    cvt_static: float = 1.0
    l1_static: float = 5.0
    l2_static: float = 12.0
    noc_static: float = 4.0
    dram_static: float = 30.0


#: The default table used by all experiments.
DEFAULT_ENERGY = EnergyTable()
