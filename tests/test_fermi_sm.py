"""Integration tests for the Fermi SIMT baseline."""

import numpy as np

from repro.arch import FermiConfig
from repro.interp import interpret
from repro.kernels import (
    fig1_kernel,
    loop_sum_kernel,
    make_fig1_workload,
    memcopy_kernel,
    saxpy_kernel,
)
from repro.memory import MemoryImage
from repro.simt import FermiSM


def _run_both(kernel, mem, params, n_threads, config=None):
    golden = mem.clone()
    interpret(kernel, golden, params, n_threads)
    result = FermiSM(config).run(kernel, mem, params, n_threads)
    assert np.array_equal(mem.data, golden.data), (
        f"Fermi final memory diverges from the interpreter for {kernel.name}"
    )
    return result


def test_saxpy_matches_interpreter():
    n = 256
    mem = MemoryImage(2048)
    bx = mem.alloc_array("x", np.arange(float(n)))
    by = mem.alloc_array("y", np.ones(n))
    bo = mem.alloc("out", n)
    r = _run_both(saxpy_kernel(), mem, {"a": 2.0, "x": bx, "y": by, "out": bo, "n": n}, n)
    assert r.sm.warps_launched == 8
    # saxpy does not diverge.
    assert r.sm.divergences == 0
    assert r.sm.simd_efficiency == 1.0


def test_fig1_diverges_and_wastes_lanes():
    kernel, mem, params = make_fig1_workload(n_threads=512)
    r = _run_both(kernel, mem, params, 512)
    assert r.sm.divergences > 0
    # Divergence disables lanes: SIMD efficiency strictly below 1.
    assert r.sm.simd_efficiency < 1.0
    assert r.sm.wasted_lane_slots > 0


def test_partial_last_warp():
    n = 40  # one full warp + one 8-lane partial warp
    mem = MemoryImage(512)
    bx = mem.alloc_array("x", np.arange(float(n)))
    by = mem.alloc_array("y", np.zeros(n))
    bo = mem.alloc("out", n)
    r = _run_both(saxpy_kernel(), mem, {"a": 1.0, "x": bx, "y": by, "out": bo, "n": n}, n)
    assert r.sm.warps_launched == 2
    np.testing.assert_array_equal(mem.read_region("out"), np.arange(float(n)))


def test_loop_kernel_matches():
    stride, nt = 4, 128
    rng = np.random.default_rng(5)
    data = rng.normal(size=stride * nt)
    count = rng.integers(0, stride + 1, size=nt)
    mem = MemoryImage(4096)
    bd = mem.alloc_array("data", data)
    bc = mem.alloc_array("count", count)
    bo = mem.alloc("out", nt)
    r = _run_both(
        loop_sum_kernel(), mem,
        {"data": bd, "count": bc, "out": bo, "stride": stride}, nt,
    )
    # Divergent trip counts force execution-mask waste.
    assert r.sm.simd_efficiency < 1.0


def test_rf_access_counting():
    n = 64
    mem = MemoryImage(512)
    bx = mem.alloc_array("x", np.arange(float(n)))
    by = mem.alloc_array("y", np.ones(n))
    bo = mem.alloc("out", n)
    r = _run_both(saxpy_kernel(), mem, {"a": 2.0, "x": bx, "y": by, "out": bo, "n": n}, n)
    # Every warp instruction writes a destination register; reads are
    # counted per general-purpose register operand.
    assert r.sm.rf_writes > 0
    assert r.sm.rf_reads > 0
    assert r.sm.rf_accesses == r.sm.rf_reads + r.sm.rf_writes


def test_coalescing_reduces_transactions():
    n = 512
    mem = MemoryImage(4096)
    bs = mem.alloc_array("src", np.arange(float(n)))
    bd = mem.alloc("dst", n)
    r = _run_both(memcopy_kernel(), mem, {"src": bs, "dst": bd, "n": n}, n)
    # 512 contiguous loads + 512 stores coalesce into ~32 transactions.
    lane_mem_ops = 2 * n
    assert r.sm.mem_transactions < lane_mem_ops / 8


def test_more_resident_warps_hide_latency():
    n = 2048

    def run(max_warps):
        mem = MemoryImage(3 * n + 64)
        bs = mem.alloc_array("src", np.arange(float(n)))
        bd = mem.alloc("dst", n)
        cfg = FermiConfig(max_resident_warps=max_warps)
        return FermiSM(cfg).run(
            memcopy_kernel(), mem, {"src": bs, "dst": bd, "n": n}, n
        ).cycles

    assert run(48) < run(2)


def test_instruction_issue_counts():
    kernel, mem, params = make_fig1_workload(n_threads=64)
    r = _run_both(kernel, mem, params, 64)
    total = (
        r.sm.alu_instructions + r.sm.sfu_instructions
        + r.sm.mem_instructions + r.sm.branch_instructions
    )
    assert total == r.sm.instructions_issued
    assert r.sm.sfu_instructions > 0  # the sqrt arm
