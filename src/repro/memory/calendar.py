"""Shared slot-calendar primitive for the timing models.

Every resource in the timing models that serves one request per cycle —
cache banks, DRAM channel burst slots, fabric unit issue ports — is a
*calendar*: a request arriving at time ``t`` claims the first free
integer slot at or after ``t``, backfilling idle slots that logically
preceded already-recorded traffic (the simulators process whole threads
sequentially, so a late-processed thread's early tokens must be able to
claim earlier idle cycles — exactly what tagged-token hardware does).

The naive occupied-slot set degenerates badly under contention: a
saturated resource makes every probe scan linearly across the occupied
region, and sweeps were measurably spending most of their cache-model
time in ``while slot in busy: slot += 1`` (tens of millions of probes
for the bank-heaviest kernels).  :func:`claim_slot` replaces the set
with a path-compressed next-free-pointer map — the classic union-find
"successor delete" structure — making each claim amortized near-O(1)
while picking the **identical** slot.

The map invariant: ``nf[s]`` exists iff slot ``s`` is occupied, and
every slot in ``(s, nf[s])`` is also occupied, so following pointers
from any occupied slot lands on the first free one.  After a claim the
whole traversed chain is re-pointed at the new frontier, which is what
keeps later probes short.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["claim_slot"]


def claim_slot(nf: Dict[int, int], q: int) -> int:
    """Claim and return the first free integer slot ``>= q``.

    ``nf`` is the resource's next-free-pointer map (one per cache bank /
    DRAM channel / fabric unit).  Equivalent to scanning an
    occupied-slot set upward from ``q``, including the choice of slot —
    only the cost differs.
    """
    s = nf.get(q)
    if s is None:
        nf[q] = q + 1
        return q
    j = nf.get(s)
    while j is not None:
        s = j
        j = nf.get(s)
    e = s + 1
    nf[s] = e
    p = q
    while p != s:
        pn = nf[p]
        nf[p] = e
        p = pn
    return s
