"""Core value types and operands of the virtual kernel ISA.

The ISA is a small RISC-style, three-address virtual instruction set that
stands in for the PTX/SSA form the original VGIW compiler consumed
(paper section 4, "Compiler": CUDA kernels compiled via LLVM to SSA).

Values carry one of three data types:

* ``INT`` — signed integers.  The simulators treat them as mathematical
  integers (no 32-bit wraparound); Rodinia-class kernels never rely on
  overflow, and words occupy 4 bytes for cache-geometry purposes.
* ``FLOAT`` — IEEE double precision floats used to model the 32-bit
  floats of the real hardware (exactness simplifies golden checks).
* ``PRED`` — booleans produced by comparisons and consumed by
  ``SELECT`` and conditional branches.

Instruction operands are either virtual registers (:class:`Reg`) or
immediates (:class:`Imm`).  Immediates, thread IDs and kernel parameters
are *configuration-time constants* for the dataflow fabric: they are baked
into functional-unit configuration registers and cost no token traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class DType(enum.Enum):
    """Data type of a value in the virtual ISA."""

    INT = "int"
    FLOAT = "float"
    PRED = "pred"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


@dataclass(frozen=True)
class Reg:
    """A virtual register operand, identified by name.

    Register names are kernel-unique storage locations (the IR is *not*
    SSA); the compiler's liveness analysis decides which registers cross
    basic-block boundaries and must become live values (paper section 3.1).
    """

    name: str

    def __repr__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand with an explicit data type."""

    value: Union[int, float, bool]
    dtype: DType

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Imm]

#: Reserved register holding the CUDA-style thread index.  It is produced
#: by the control vector unit acting as a thread initiator (paper Fig. 6)
#: and is readable, never writable, by kernel code.
TID_REG = Reg("tid")

#: Prefix for kernel-parameter registers.  Parameters are uniform across
#: threads and known at configuration time.
PARAM_PREFIX = "arg."


def param_reg(name: str) -> Reg:
    """Return the reserved register that holds kernel parameter ``name``."""
    return Reg(PARAM_PREFIX + name)


def is_param_reg(reg: Reg) -> bool:
    """True if ``reg`` is a kernel-parameter register."""
    return reg.name.startswith(PARAM_PREFIX)


def is_reserved_reg(reg: Reg) -> bool:
    """True if ``reg`` may not be written by kernel instructions."""
    return reg == TID_REG or is_param_reg(reg)
