"""ASCII timeline (Gantt) rendering of a profiled VGIW run.

``render_timeline`` turns ``VGIWRunResult.block_profile`` into the kind
of execution chart the paper's Figure 1d sketches: one row per block,
time left to right, `#` where the block occupies the fabric.
"""

from __future__ import annotations

from typing import Dict, List

from repro.vgiw.core import VGIWRunResult


def render_timeline(result: VGIWRunResult, width: int = 72,
                    max_rows: int = 24) -> str:
    """Render the run's block executions as an ASCII Gantt chart.

    Requires the run to have been made with ``profile=True``.  Rows are
    static blocks (schedule order); repeated executions of one block
    (loops, tiles) appear as repeated segments on its row.
    """
    profile = result.block_profile
    if not profile:
        return "(no profile: run with profile=True)"
    span = max(rec.end for rec in profile)
    if span <= 0:
        return "(empty run)"

    order: List[str] = []
    for rec in profile:
        if rec.block not in order:
            order.append(rec.block)
    truncated = len(order) > max_rows
    order = order[:max_rows]
    label_w = max(len(name) for name in order)

    rows: Dict[str, List[str]] = {
        name: [" "] * width for name in order
    }
    for rec in profile:
        if rec.block not in rows:
            continue
        lo = int(width * rec.start / span)
        hi = max(lo + 1, int(width * rec.end / span))
        row = rows[rec.block]
        for i in range(lo, min(hi, width)):
            row[i] = "#"

    lines = [
        f"VGIW timeline: {result.kernel_name} "
        f"({result.cycles:.0f} cycles, {len(profile)} block executions)"
    ]
    for name in order:
        lines.append(f"{name.ljust(label_w)} |{''.join(rows[name])}|")
    axis = f"{'cycle'.ljust(label_w)}  0{' ' * (width - 12)}{span:>10.0f}"
    lines.append(axis)
    if truncated:
        lines.append(f"... ({len(set(r.block for r in profile)) - max_rows} "
                     f"more blocks not shown)")
    return "\n".join(lines)
