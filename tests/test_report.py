"""Tests for the markdown report generator."""

import pytest

from repro.evalharness import generate_report, run_suite


@pytest.fixture(scope="module")
def report():
    runs = run_suite(["nn/euclid", "gaussian/Fan2", "bfs/Kernel"],
                     scale="tiny")
    return generate_report(runs, scale="tiny")


def test_report_contains_every_section(report):
    for section in ("Table 1", "Table 2", "Figure 3", "Figure 7",
                    "Figure 8", "Figure 9", "Figure 10", "Figure 11",
                    "Section 3.2", "Characterization"):
        assert section in report


def test_report_names_every_kernel(report):
    for name in ("nn/euclid", "gaussian/Fan2", "bfs/Kernel"):
        assert name in report


def test_report_has_bar_charts_and_framing(report):
    assert report.startswith("# EXPERIMENTS")
    assert "Reading the numbers." in report
    assert "#" * 5 in report  # some bar exists
    assert "```" in report


def test_report_states_paper_references(report):
    assert "average over 3x" in report       # fig 7 note
    assert "average 1.75x" in report         # fig 9 note
    assert "0.18%" in report                 # sec 3.2 note
