"""Textual kernel format: disassembler and assembler.

``kernel_to_text`` renders a kernel in a stable, fully-typed format;
``parse_kernel`` reads it back.  The round trip is structurally exact
(asserted over the whole benchmark suite in the tests), which makes the
format suitable for golden files, bug reports, and writing kernels
outside Python.

Format::

    kernel saxpy(a, x, y, out, n) float(a)
    entry:
      %t1 = lt %tid, %arg.n !pred
      br %t1, then.1, endif.2
    then.1:
      %t2 = add %arg.x, %tid !int
      %t3 = load %t2 !float
      store %t6, %t8 !float
      jmp endif.2
    endif.2:
      ret

Operands: ``%name`` registers (``%tid`` and ``%arg.<param>`` reserved),
``#<value>`` immediates (``#3`` int, ``#3.5`` float, ``#true``/``#false``
predicates).  Every instruction carries its result dtype after ``!``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.ir.block import BasicBlock
from repro.ir.instr import Instr, Op, TermKind, Terminator
from repro.ir.kernel import Kernel
from repro.ir.types import DType, Imm, Operand, Reg
from repro.ir.validate import validate_kernel
from repro.resilience.errors import CompileError


class ParseError(CompileError):
    """Malformed kernel text."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_DTYPE_NAMES = {d.value: d for d in DType}
_OP_NAMES = {op.value: op for op in Op}

# Names (kernels, blocks, registers) admit word characters, dots, and
# dashes — the dash keeps externally written reproducers (fuzz corpus
# entries named after their campaign) parseable.
_NAME = r"[\w.-]+"
_HEADER_RE = re.compile(
    rf"^kernel\s+(?P<name>{_NAME})\((?P<params>[^)]*)\)"
    r"(?:\s+float\((?P<floats>[^)]*)\))?$"
)
_LABEL_RE = re.compile(rf"^(?P<label>{_NAME}):$")
_ASSIGN_RE = re.compile(
    rf"^%(?P<dst>{_NAME})\s*=\s*(?P<op>\w+)\s*(?P<operands>.*?)"
    r"\s*!(?P<dtype>\w+)$"
)
_STORE_RE = re.compile(
    r"^store\s+(?P<operands>.*?)\s*!(?P<dtype>\w+)$"
)
_BR_RE = re.compile(
    rf"^br\s+(?P<cond>\S+),\s*(?P<true>{_NAME}),\s*(?P<false>{_NAME})$"
)
_JMP_RE = re.compile(rf"^jmp\s+(?P<target>{_NAME})$")


# ----------------------------------------------------------------------
# Disassembly
# ----------------------------------------------------------------------
def _operand_to_text(operand: Operand) -> str:
    if isinstance(operand, Reg):
        return f"%{operand.name}"
    value = operand.value
    if operand.dtype is DType.PRED:
        return "#true" if value else "#false"
    if operand.dtype is DType.FLOAT:
        text = repr(float(value))
        return f"#{text}"
    return f"#{int(value)}"


def kernel_to_text(kernel: Kernel) -> str:
    """Render ``kernel`` in the textual format."""
    float_params = [
        p for p in kernel.params if kernel.param_dtypes[p] is DType.FLOAT
    ]
    header = f"kernel {kernel.name}({', '.join(kernel.params)})"
    if float_params:
        header += f" float({', '.join(float_params)})"
    lines = [header]
    # Entry block first, the rest in declaration order.
    names = [kernel.entry] + [n for n in kernel.blocks if n != kernel.entry]
    for name in names:
        block = kernel.blocks[name]
        lines.append(f"{name}:")
        for instr in block.instrs:
            operands = ", ".join(_operand_to_text(s) for s in instr.srcs)
            dtype = f" !{instr.dtype.value}" if instr.dtype else " !int"
            if instr.op is Op.STORE:
                lines.append(f"  store {operands}{dtype}")
            else:
                lines.append(
                    f"  %{instr.dst} = {instr.op.value} {operands}{dtype}"
                )
        term = block.terminator
        if term.kind is TermKind.RET:
            lines.append("  ret")
        elif term.kind is TermKind.JMP:
            lines.append(f"  jmp {term.true_target}")
        else:
            lines.append(
                f"  br {_operand_to_text(term.cond)}, "
                f"{term.true_target}, {term.false_target}"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Structural equivalence
# ----------------------------------------------------------------------
def _operand_equal(a: Operand, b: Operand) -> bool:
    if isinstance(a, Reg) or isinstance(b, Reg):
        return a == b
    if a.dtype is not b.dtype:
        return False
    av, bv = a.value, b.value
    if av != av and bv != bv:  # NaN immediates compare equal
        return True
    return av == bv and type(av) is type(bv)


def kernels_equivalent(a: Kernel, b: Kernel) -> bool:
    """Structural equality of two kernels.

    This is the round-trip contract of the textual format:
    ``kernels_equivalent(k, parse_kernel(kernel_to_text(k)))`` holds for
    every valid kernel.  Unlike dataclass ``==`` it treats two NaN
    float immediates as equal (NaN never compares equal to itself, but
    a disassemble/assemble cycle reproduces it bit-for-bit) and ignores
    block *declaration* order beyond the entry block.
    """
    if (a.name, list(a.params), a.entry) != (b.name, list(b.params), b.entry):
        return False
    if a.param_dtypes != b.param_dtypes:
        return False
    if set(a.blocks) != set(b.blocks):
        return False
    for name in a.blocks:
        ba, bb = a.blocks[name], b.blocks[name]
        if len(ba.instrs) != len(bb.instrs):
            return False
        for ia, ib in zip(ba.instrs, bb.instrs):
            if (ia.op, ia.dst, ia.dtype, len(ia.srcs)) != (
                ib.op, ib.dst, ib.dtype, len(ib.srcs)
            ):
                return False
            if not all(_operand_equal(sa, sb)
                       for sa, sb in zip(ia.srcs, ib.srcs)):
                return False
        ta, tb = ba.terminator, bb.terminator
        if (ta.kind, ta.true_target, ta.false_target) != (
            tb.kind, tb.true_target, tb.false_target
        ):
            return False
        if (ta.cond is None) != (tb.cond is None):
            return False
        if ta.cond is not None and not _operand_equal(ta.cond, tb.cond):
            return False
    return True


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
def _parse_operand(text: str, line_no: int) -> Operand:
    text = text.strip()
    if text.startswith("%"):
        return Reg(text[1:])
    if text.startswith("#"):
        body = text[1:]
        if body == "true":
            return Imm(True, DType.PRED)
        if body == "false":
            return Imm(False, DType.PRED)
        if re.fullmatch(r"-?\d+", body):
            return Imm(int(body), DType.INT)
        try:
            return Imm(float(body), DType.FLOAT)
        except ValueError:
            raise ParseError(line_no, f"bad immediate {text!r}") from None
    raise ParseError(line_no, f"bad operand {text!r}")


def _split_operands(text: str, line_no: int) -> List[Operand]:
    text = text.strip()
    if not text:
        return []
    return [_parse_operand(part, line_no) for part in text.split(",")]


def parse_kernel(text: str) -> Kernel:
    """Parse the textual format back into a validated kernel."""
    lines = text.splitlines()
    header: Optional[re.Match] = None
    blocks: Dict[str, BasicBlock] = {}
    current: Optional[BasicBlock] = None
    entry: Optional[str] = None

    for idx, raw in enumerate(lines, start=1):
        line = raw.split(";")[0].strip()  # ';' starts a comment
        if not line:
            continue
        if header is None:
            header = _HEADER_RE.match(line)
            if header is None:
                raise ParseError(idx, "expected 'kernel name(params...)'")
            continue

        label = _LABEL_RE.match(line)
        if label:
            name = label.group("label")
            if name in blocks:
                raise ParseError(idx, f"duplicate block {name!r}")
            current = BasicBlock(name)
            blocks[name] = current
            if entry is None:
                entry = name
            continue

        if current is None:
            raise ParseError(idx, "instruction outside any block")
        if current.terminator is not None:
            raise ParseError(idx, f"block {current.name!r} already terminated")

        if line == "ret":
            current.terminator = Terminator.ret()
            continue
        m = _JMP_RE.match(line)
        if m:
            current.terminator = Terminator.jmp(m.group("target"))
            continue
        m = _BR_RE.match(line)
        if m:
            current.terminator = Terminator.br(
                _parse_operand(m.group("cond"), idx),
                m.group("true"), m.group("false"),
            )
            continue
        m = _STORE_RE.match(line)
        if m:
            dtype = _DTYPE_NAMES.get(m.group("dtype"))
            if dtype is None:
                raise ParseError(idx, f"unknown dtype {m.group('dtype')!r}")
            operands = _split_operands(m.group("operands"), idx)
            current.append(Instr(Op.STORE, None, tuple(operands), dtype))
            continue
        m = _ASSIGN_RE.match(line)
        if m:
            op = _OP_NAMES.get(m.group("op"))
            if op is None:
                raise ParseError(idx, f"unknown opcode {m.group('op')!r}")
            dtype = _DTYPE_NAMES.get(m.group("dtype"))
            if dtype is None:
                raise ParseError(idx, f"unknown dtype {m.group('dtype')!r}")
            operands = _split_operands(m.group("operands"), idx)
            current.append(Instr(op, m.group("dst"), tuple(operands), dtype))
            continue
        raise ParseError(idx, f"unrecognised line: {line!r}")

    if header is None:
        raise ParseError(len(lines), "empty input")
    if entry is None:
        raise ParseError(len(lines), "kernel has no blocks")

    params = [p.strip() for p in header.group("params").split(",") if p.strip()]
    float_params = {
        p.strip()
        for p in (header.group("floats") or "").split(",")
        if p.strip()
    }
    unknown = float_params - set(params)
    if unknown:
        raise ParseError(1, f"float() names unknown params: {sorted(unknown)}")
    kernel = Kernel(
        name=header.group("name"),
        params=params,
        blocks=blocks,
        entry=entry,
        param_dtypes={
            p: (DType.FLOAT if p in float_params else DType.INT)
            for p in params
        },
    )
    validate_kernel(kernel)
    return kernel
