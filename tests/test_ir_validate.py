"""Tests for kernel validation rules."""

import pytest

from repro.ir import (
    BasicBlock,
    DType,
    Imm,
    Instr,
    Kernel,
    Op,
    Reg,
    Terminator,
    ValidationError,
    validate_kernel,
)


def _ret_block(name, instrs=()):
    return BasicBlock(name, list(instrs), Terminator.ret())


def test_missing_entry_block():
    k = Kernel("k", [], {"a": _ret_block("a")}, entry="nope")
    with pytest.raises(ValidationError, match="entry"):
        validate_kernel(k)


def test_duplicate_params():
    k = Kernel("k", ["x", "x"], {"entry": _ret_block("entry")}, entry="entry")
    with pytest.raises(ValidationError, match="duplicate"):
        validate_kernel(k)


def test_unterminated_block():
    k = Kernel("k", [], {"entry": BasicBlock("entry")}, entry="entry")
    with pytest.raises(ValidationError, match="terminator"):
        validate_kernel(k)


def test_branch_to_unknown_block():
    b = BasicBlock("entry", [], Terminator.jmp("ghost"))
    k = Kernel("k", [], {"entry": b}, entry="entry")
    with pytest.raises(ValidationError, match="unknown block"):
        validate_kernel(k)


def test_unreachable_block_rejected():
    blocks = {
        "entry": _ret_block("entry"),
        "island": _ret_block("island"),
    }
    k = Kernel("k", [], blocks, entry="entry")
    with pytest.raises(ValidationError, match="unreachable"):
        validate_kernel(k)


def test_wrong_arity():
    bad = Instr(Op.ADD, "x", (Imm(1, DType.INT),), DType.INT)
    k = Kernel("k", [], {"entry": _ret_block("entry", [bad])}, entry="entry")
    with pytest.raises(ValidationError, match="expects 2 operands"):
        validate_kernel(k)


def test_store_with_dst_rejected():
    bad = Instr(Op.STORE, "x", (Imm(0, DType.INT), Imm(1.0, DType.FLOAT)), DType.FLOAT)
    k = Kernel("k", [], {"entry": _ret_block("entry", [bad])}, entry="entry")
    with pytest.raises(ValidationError, match="STORE"):
        validate_kernel(k)


def test_read_of_possibly_undefined_register():
    # entry branches on tid; only one arm defines %x, then both read it.
    entry = BasicBlock(
        "entry",
        [Instr(Op.LT, "c", (Reg("tid"), Imm(2, DType.INT)), DType.PRED)],
        Terminator.br(Reg("c"), "a", "merge"),
    )
    a = BasicBlock(
        "a",
        [Instr(Op.MOV, "x", (Imm(1, DType.INT),), DType.INT)],
        Terminator.jmp("merge"),
    )
    merge = BasicBlock(
        "merge",
        [Instr(Op.STORE, None, (Imm(0, DType.INT), Reg("x")), DType.INT)],
        Terminator.ret(),
    )
    k = Kernel("k", [], {"entry": entry, "a": a, "merge": merge}, entry="entry")
    with pytest.raises(ValidationError, match="read before definition"):
        validate_kernel(k)


def test_defined_on_both_arms_is_accepted():
    entry = BasicBlock(
        "entry",
        [Instr(Op.LT, "c", (Reg("tid"), Imm(2, DType.INT)), DType.PRED)],
        Terminator.br(Reg("c"), "a", "b"),
    )
    a = BasicBlock(
        "a",
        [Instr(Op.MOV, "x", (Imm(1, DType.INT),), DType.INT)],
        Terminator.jmp("merge"),
    )
    b = BasicBlock(
        "b",
        [Instr(Op.MOV, "x", (Imm(2, DType.INT),), DType.INT)],
        Terminator.jmp("merge"),
    )
    merge = BasicBlock(
        "merge",
        [Instr(Op.STORE, None, (Imm(0, DType.INT), Reg("x")), DType.INT)],
        Terminator.ret(),
    )
    k = Kernel(
        "k", [], {"entry": entry, "a": a, "b": b, "merge": merge}, entry="entry"
    )
    validate_kernel(k)  # must not raise


def test_no_exit_block_rejected():
    a = BasicBlock("entry", [], Terminator.jmp("b"))
    b = BasicBlock("b", [], Terminator.jmp("entry"))
    k = Kernel("k", [], {"entry": a, "b": b}, entry="entry")
    with pytest.raises(ValidationError, match="no exit"):
        validate_kernel(k)
