"""Tests for loop unrolling and per-launch kernel specialisation."""

import numpy as np
import pytest

from repro.compiler import natural_loops
from repro.compiler.optimize import (
    fold_constants,
    optimize_kernel,
    propagate_params,
)
from repro.compiler.unroll import MAX_UNROLLED_INSTRS, unroll_loops
from repro.interp import interpret
from repro.ir import DType, KernelBuilder
from repro.memory import MemoryImage


def _sum_kernel(bound_is_param: bool):
    params = ["out", "n"] if bound_is_param else ["out"]
    kb = KernelBuilder("sumk", params=params)
    acc = kb.var("acc", 0)
    stop = kb.param("n") if bound_is_param else kb.const(6)
    with kb.for_range(0, stop) as i:
        kb.assign(acc, acc + i)
    kb.store(kb.param("out") + kb.tid(), kb.i2f(acc))
    return kb.build()


def test_constant_bound_loop_unrolls():
    k = _sum_kernel(bound_is_param=False)
    assert natural_loops(k)
    k2 = unroll_loops(k)
    assert not natural_loops(k2)
    mem = MemoryImage(16)
    out = mem.alloc("out", 2)
    interpret(k2, mem, {"out": out}, 2)
    assert list(mem.read_region("out")) == [15.0, 15.0]


def test_param_bound_needs_specialisation():
    k = _sum_kernel(bound_is_param=True)
    # Without param values the bound is symbolic: no unrolling.
    assert natural_loops(unroll_loops(k))
    # With specialisation the loop disappears.
    k2 = unroll_loops(fold_constants(propagate_params(k, {"n": 5, "out": 0})))
    assert not natural_loops(k2)
    mem = MemoryImage(16)
    out = mem.alloc("out", 1)
    interpret(k2, mem, {"out": out, "n": 5}, 1)
    assert mem.read(out) == 10.0


def test_large_loops_stay_rolled():
    kb = KernelBuilder("big", params=["out"])
    acc = kb.var("acc", 0.0)
    with kb.for_range(0, MAX_UNROLLED_INSTRS) as i:
        # Body large enough that trips * len(body) exceeds the cap.
        v = kb.i2f(i)
        for _ in range(4):
            kb.assign(acc, acc + v * 2.0)
    kb.store(kb.param("out"), acc)
    k = kb.build()
    assert natural_loops(unroll_loops(k))


def test_multi_block_bodies_stay_rolled():
    kb = KernelBuilder("cond", params=["out"])
    acc = kb.var("acc", 0)
    with kb.for_range(0, 4) as i:
        with kb.if_(i == 2):
            kb.assign(acc, acc + 10)
    kb.store(kb.param("out"), kb.i2f(acc))
    k = kb.build()
    assert natural_loops(unroll_loops(k))  # if/else body: not a 2-block loop


def test_negative_step_unrolls():
    kb = KernelBuilder("down", params=["out"])
    acc = kb.var("acc", 0)
    with kb.for_range(5, 0, step=-1) as i:
        kb.assign(acc, acc + i)
    kb.store(kb.param("out"), kb.i2f(acc))
    k2 = unroll_loops(kb.build())
    assert not natural_loops(k2)
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    interpret(k2, mem, {"out": out}, 1)
    assert mem.read(out) == 15.0


def test_specialised_kernel_equivalence_random():
    # Randomised check: the fully optimised kernel computes the same
    # result as the original for a non-trivial loop nest.
    kb = KernelBuilder("nest", params=["data", "out", "m"])
    t = kb.tid()
    acc = kb.var("acc", 0.0)
    with kb.for_range(0, kb.param("m")) as i:
        kb.assign(acc, acc + kb.load(kb.param("data") + t * kb.param("m") + i))
    kb.store(kb.param("out") + t, acc)
    k = kb.build()

    rng = np.random.default_rng(3)
    m, n = 6, 8
    data = rng.normal(size=m * n)
    params = {"data": 0, "out": m * n, "m": m}
    k2 = optimize_kernel(k, params=params)
    results = []
    for kernel in (k, k2):
        mem = MemoryImage(m * n + n + 8)
        mem.write_block(0, data)
        interpret(kernel, mem, params, n)
        results.append(mem.read_block(m * n, n))
    np.testing.assert_array_equal(results[0], results[1])


def test_cse_removes_duplicate_address_math():
    from repro.compiler.optimize import local_cse, copy_propagate, eliminate_dead_code
    from repro.ir import Op

    kb = KernelBuilder("dup", params=["a", "out"])
    t = kb.tid()
    x = kb.load(kb.param("a") + t * 8)
    y = kb.load(kb.param("a") + t * 8 + 1)  # t*8 recomputed
    kb.store(kb.param("out") + t, x + y)
    k = kb.build()
    muls_before = sum(
        1 for b in k.blocks.values() for i in b.instrs if i.op is Op.MUL
    )
    k2 = eliminate_dead_code(copy_propagate(local_cse(k)))
    muls_after = sum(
        1 for b in k2.blocks.values() for i in b.instrs if i.op is Op.MUL
    )
    assert muls_before == 2
    assert muls_after == 1

    mem = MemoryImage(64)
    a = mem.alloc_array("a", np.arange(32.0))
    out = mem.alloc("out", 4)
    interpret(k2, mem, {"a": a, "out": out}, 4)
    expected = [np.arange(32.0)[t * 8] + np.arange(32.0)[t * 8 + 1] for t in range(4)]
    np.testing.assert_array_equal(mem.read_region("out"), expected)


def test_cse_respects_redefinition():
    from repro.compiler.optimize import local_cse
    from repro.ir import Op

    kb = KernelBuilder("redef", params=["out"])
    i = kb.var("i", 1)
    a = i + 1          # uses i = 1
    kb.assign(i, 5)
    b = i + 1          # uses i = 5: must NOT be CSE'd with a
    kb.store(kb.param("out"), kb.i2f(a + b))
    k = local_cse(kb.build())
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    interpret(k, mem, {"out": out}, 1)
    assert mem.read(out) == 8.0  # 2 + 6
