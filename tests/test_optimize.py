"""Tests for the IR optimisation passes (DCE, FMA contraction)."""

import numpy as np

from repro.compiler.optimize import (
    eliminate_dead_code,
    fuse_fma,
    optimize_kernel,
)
from repro.interp import interpret
from repro.ir import DType, KernelBuilder, Op
from repro.memory import MemoryImage


def _ops(kernel):
    return [i.op for b in kernel.blocks.values() for i in b.instrs]


def test_dce_removes_dead_instruction():
    kb = KernelBuilder("k", params=["out"])
    dead = kb.tid() * 99  # never used
    kb.store(kb.param("out"), kb.i2f(kb.tid()))
    k = kb.build()
    assert Op.MUL in _ops(k)
    k2 = eliminate_dead_code(k)
    assert Op.MUL not in _ops(k2)


def test_dce_keeps_stores_and_live_chains():
    kb = KernelBuilder("k", params=["out"])
    v = kb.tid() + 1
    kb.store(kb.param("out"), kb.i2f(v))
    k = eliminate_dead_code(kb.build())
    assert Op.ADD in _ops(k)
    assert Op.STORE in _ops(k)


def test_dce_is_transitive():
    kb = KernelBuilder("k", params=["out"])
    a = kb.tid() * 2
    b = a + 3
    c = b * 5  # dead chain: c unused, so b and a die too
    kb.store(kb.param("out"), 1.0)
    k = eliminate_dead_code(kb.build())
    assert _ops(k) == [Op.STORE]


def test_fma_fusion_basic():
    kb = KernelBuilder("k", params=["out"])
    x = kb.i2f(kb.tid())
    kb.store(kb.param("out"), x * 2.0 + 1.0)
    k = kb.build()
    k2 = fuse_fma(k)
    ops = _ops(k2)
    assert Op.FMA in ops
    assert Op.FMUL not in ops
    assert Op.FADD not in ops


def test_fma_not_fused_when_mul_reused():
    kb = KernelBuilder("k", params=["out"])
    x = kb.i2f(kb.tid())
    prod = x * 2.0
    kb.store(kb.param("out"), prod + 1.0)
    kb.store(kb.param("out") + 1, prod)  # second use of the multiply
    k = fuse_fma(kb.build())
    assert Op.FMA not in _ops(k)
    assert Op.FMUL in _ops(k)


def test_fma_fusion_preserves_semantics():
    kb = KernelBuilder("poly", params=["x", "out", "n"])
    i = kb.tid()
    with kb.if_(i < kb.param("n")):
        v = kb.load(kb.param("x") + i)
        acc = kb.const(0.0)
        for c in (3.0, -1.0, 0.5, 2.0):
            acc = acc * v + c  # Horner: prime fusion territory
        kb.store(kb.param("out") + i, acc)
    k = kb.build()
    k2 = optimize_kernel(k)
    assert _ops(k2).count(Op.FMA) >= 3

    n = 16
    rng = np.random.default_rng(0)
    x = rng.normal(size=n)
    results = []
    for kernel in (k, k2):
        mem = MemoryImage(256)
        bx = mem.alloc_array("x", x)
        bo = mem.alloc("out", n)
        interpret(kernel, mem, {"x": bx, "out": bo, "n": n}, n)
        results.append(mem.read_region("out"))
    np.testing.assert_array_equal(results[0], results[1])


def test_optimize_reduces_instruction_count():
    kb = KernelBuilder("k", params=["x", "out"])
    v = kb.load(kb.param("x"))
    dead = v * v + 1.0  # dead after DCE
    kb.store(kb.param("out"), v * 2.0 + 0.5)
    k = kb.build()
    k2 = optimize_kernel(k)
    assert k2.instruction_count() < k.instruction_count()


def test_optimize_keeps_cfg_shape():
    from repro.kernels import fig1_kernel

    k = fig1_kernel()
    k2 = optimize_kernel(k)
    assert set(k2.blocks) == set(k.blocks)
    for name in k.blocks:
        assert k2.blocks[name].successors() == k.blocks[name].successors()
