"""SGMF core execution: the dataflow-GPGPU baseline.

Threads stream through the whole-kernel resident graph with no
reconfiguration, no CVT bookkeeping, and no LVC traffic — block-crossing
values ride the interconnect directly.  The cost of this generality is
(1) the capacity limit (see :mod:`repro.sgmf.mapping`) and (2) wasted
fabric bandwidth: a thread pumps one predicated token through every
mapped node it does not actually need (paper §2, Figure 1c).

The timing machinery (unit issue, SCU pools, reservation buffers,
token-buffer windows, hop latencies) is shared with the VGIW MT-CGRF
model so the two architectures differ only where the designs differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.arch.config import SGMFConfig, UnitKind, op_latency_for
from repro.compiler.dfg import NodeKind, NodeSrc, ImmSrc, ParamSrc
from repro.engine import EngineRunResult
from repro.ir.instr import EVAL, TermKind
from repro.ir.kernel import Kernel
from repro.ir.types import DType
from repro.memory.cache import CacheStats
from repro.memory.dram import DRAMStats
from repro.memory.hierarchy import MemorySystem
from repro.memory.image import MemoryImage
from repro.obs.metrics import Metrics, record_shared_run_metrics
from repro.resilience.errors import SimulationHangError
from repro.resilience.faults import FaultInjector
from repro.resilience.watchdog import (
    ForwardProgressWatchdog,
    WatchdogConfig,
    snapshot_from_replicas,
)
from repro.sgmf.mapping import SGMFMapping, SGMFUnmappableError, map_kernel
from repro.vgiw.mtcgrf import FabricStats, _ReplicaState, _op_energy_class

Number = Union[int, float, bool]


@dataclass
class SGMFRunResult(EngineRunResult):
    """Result of one kernel launch on an SGMF core.

    Shares the :class:`~repro.engine.EngineRunResult` contract with the
    VGIW and Fermi results (``trace``/``metrics`` attachments included);
    every historical field keeps its name and position.
    """

    engine = "sgmf"

    kernel_name: str
    n_threads: int
    cycles: float
    fabric: FabricStats
    waste_fires: int
    n_replicas: int
    l1: CacheStats
    l2: CacheStats
    dram: DRAMStats

    @property
    def useful_fire_fraction(self) -> float:
        total = self.fabric.node_fires
        return 1.0 - self.waste_fires / total if total else 1.0


class SGMFCore:
    """A single SGMF core attached to the standard memory hierarchy."""

    def __init__(self, config: Optional[SGMFConfig] = None):
        self.config = config or SGMFConfig()
        self._faults: Optional[FaultInjector] = None

    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        memory: MemoryImage,
        params: Dict[str, Number],
        n_threads: int,
        max_block_visits: int = 1_000_000,
        watchdog: Optional[WatchdogConfig] = None,
        faults: Optional[FaultInjector] = None,
        tracer=None,
        metrics: Optional[Metrics] = None,
    ) -> SGMFRunResult:
        """Execute the kernel, or raise :class:`SGMFUnmappableError`.

        ``tracer`` records per-thread dataflow walks (span events,
        ``sgmf.thread``) plus cache-miss / DRAM row-activation events
        from the memory hierarchy; ``metrics`` receives the run's
        counters under the ``sgmf/`` scope.  Both attach to the
        returned result.
        """
        config = self.config
        # Disabled-mode fast path: one local None-test per hook site.
        trace = tracer if (tracer is not None and tracer.enabled) else None
        mapping = map_kernel(kernel, config.fabric)
        params = {
            name: (
                float(params[name])
                if kernel.param_dtypes[name] is DType.FLOAT
                else int(params[name])
            )
            for name in kernel.params
        }
        memsys = MemorySystem(
            config.memory, l1_write_back=config.l1_write_back, faults=faults,
            tracer=trace,
        )
        stats = FabricStats()
        self._waste_fires = 0
        self._faults = faults

        n_replicas = mapping.n_replicas
        reps = [_ReplicaState(config) for _ in range(n_replicas)]
        topo = {name: dfg.topo_order() for name, dfg in mapping.dfgs.items()}
        sinks = {name: dfg.sink_nodes() for name, dfg in mapping.dfgs.items()}
        depth = config.token_buffer_depth
        wd = ForwardProgressWatchdog(watchdog, "sgmf", kernel.name)
        wd.start(0.0)
        if faults is not None:
            faults.maybe_abort(f"sgmf/{kernel.name}", 0.0)

        def snapshot(now: float):
            snap = snapshot_from_replicas(
                sim="sgmf", kernel=kernel.name, now=now, replicas=reps,
            )
            if trace is not None:
                # Hang forensics: the last N timeline events show what
                # the machine did just before it stopped.
                snap.detail["recent_trace"] = [
                    ev.brief() for ev in trace.tail(16)
                ]
                trace.instant("snapshot", "watchdog", now, pid="sgmf")
            return snap

        end_time = 0.0
        for i in range(n_threads):
            ridx = i % n_replicas
            rep = reps[ridx]
            inject = rep.next_inject
            if len(rep.window) >= depth:
                bound = rep.window[len(rep.window) - depth]
                if bound > inject:
                    rep.inject_wait += bound - inject
                    inject = bound
            rep.inject_times.append(inject)
            completion = self._run_thread(
                mapping, topo, sinks, rep, mapping.replicas[ridx], i, inject,
                params, memory, memsys, stats, max_block_visits,
                wd, snapshot,
            )
            rep.next_inject = inject + 1.0
            rep.window.append(completion)
            end_time = max(end_time, completion)
            if trace is not None:
                trace.complete(
                    "thread", "sgmf.thread", inject, completion - inject,
                    pid="sgmf", tid=ridx, thread=i, replica=ridx,
                )
            wd.progress(completion)
            wd.check(end_time, snapshot)

        waste_fires = self._waste_fires
        stats.threads = n_threads
        if metrics is not None:
            scope = metrics.scope("sgmf")
            record_shared_run_metrics(
                scope, cycles=end_time, n_threads=n_threads,
                l1=memsys.l1_stats, l2=memsys.l2_stats,
                dram=memsys.dram.stats,
            )
            scope.inc("fabric.node_fires", stats.node_fires)
            scope.inc("fabric.token_hops", stats.token_hops)
            scope.inc("fabric.waste_fires", waste_fires)
            scope.gauge("fabric.replicas", n_replicas)

        return SGMFRunResult(
            kernel_name=kernel.name,
            n_threads=n_threads,
            cycles=end_time,
            fabric=stats,
            waste_fires=waste_fires,
            n_replicas=n_replicas,
            l1=memsys.l1_stats,
            l2=memsys.l2_stats,
            dram=memsys.dram.stats,
        ).attach_obs(tracer, metrics)

    # ------------------------------------------------------------------
    def _run_thread(
        self,
        mapping: SGMFMapping,
        topo: Dict[str, List[int]],
        sinks: Dict[str, List[int]],
        rep: _ReplicaState,
        placed: Dict[str, "PlacedReplica"],
        tid: int,
        inject: float,
        params: Dict[str, Number],
        memory: MemoryImage,
        memsys: MemorySystem,
        stats: FabricStats,
        max_block_visits: int,
        wd: Optional[ForwardProgressWatchdog] = None,
        snapshot=None,
    ) -> float:
        config = self.config
        faults = self._faults
        kernel = mapping.kernel
        regs_ready: Dict[str, float] = {}
        reg_vals: Dict[str, Number] = {}
        visited = set()
        completion = inject
        entry_time = inject
        current: Optional[str] = kernel.entry
        visits = 0

        while current is not None:
            visits += 1
            if visits > max_block_visits:
                raise SimulationHangError(
                    f"SGMF thread {tid} exceeded {max_block_visits} "
                    f"block visits",
                    snapshot=None if snapshot is None else snapshot(entry_time),
                    kernel=kernel.name,
                    block=current,
                    thread=tid,
                    visits=visits,
                )
            if wd is not None and not visits % 256:
                # Periodic budget check inside a (possibly unbounded)
                # per-thread control-flow walk.
                wd.check(entry_time, snapshot)
            visited.add(current)
            dfg = mapping.dfgs[current]
            pl = placed[current]
            done: Dict[int, Number] = {}
            value: Dict[int, Number] = {}

            def src_value(src):
                if isinstance(src, NodeSrc):
                    return value[src.node]
                if isinstance(src, ImmSrc):
                    return src.value
                if isinstance(src, ParamSrc):
                    return params[src.name]
                return tid

            next_block: Optional[str] = None
            for nid in topo[current]:
                node = dfg.node(nid)
                ready = entry_time
                for up in node.input_nodes():
                    ready = max(ready, done[up] + pl.edge_hops[(up, nid)])

                kind = node.kind
                if kind is NodeKind.INIT:
                    done[nid] = entry_time
                    value[nid] = tid
                elif kind is NodeKind.LVLOAD:
                    # Wired live value: arrives from the producing block.
                    done[nid] = max(entry_time, regs_ready[node.out_reg] + 1)
                    value[nid] = reg_vals[node.out_reg]
                elif kind is NodeKind.LVSTORE:
                    done[nid] = ready
                    regs_ready[node.out_reg] = ready
                    reg_vals[node.out_reg] = src_value(node.srcs[0])
                elif kind is NodeKind.LOAD:
                    addr = int(src_value(node.srcs[0]))
                    start = rep.issue_mem(
                        pl.unit_of[nid], ready, config.ldst_reservation_entries
                    )
                    fin = memsys.access_word(start, addr, False)
                    rep.retire_mem(pl.unit_of[nid], fin)
                    done[nid] = fin
                    raw = memory.read(addr)
                    value[nid] = int(raw) if node.dtype is DType.INT else raw
                elif kind is NodeKind.STORE:
                    addr = int(src_value(node.srcs[0]))
                    start = rep.issue_mem(
                        pl.unit_of[nid], ready, config.ldst_reservation_entries
                    )
                    fin = memsys.access_word(start, addr, True)
                    rep.retire_mem(pl.unit_of[nid], fin)
                    done[nid] = fin
                    memory.write(addr, src_value(node.srcs[1]))
                elif kind is NodeKind.TERM:
                    start = rep.issue(pl.unit_of[nid], ready)
                    done[nid] = start + 1.0
                    if dfg.term_kind is TermKind.RET:
                        next_block = None
                    elif dfg.term_kind is TermKind.JMP:
                        next_block = dfg.true_target
                    else:
                        taken = bool(src_value(node.srcs[0]))
                        next_block = (
                            dfg.true_target if taken else dfg.false_target
                        )
                elif kind in (NodeKind.SPLIT, NodeKind.JOIN):
                    start = rep.issue(pl.unit_of[nid], ready)
                    done[nid] = start + config.op_latency["split"]
                    if kind is NodeKind.SPLIT:
                        value[nid] = src_value(node.srcs[0])
                else:  # OP
                    latency = op_latency_for(node.op, config.op_latency)
                    if node.unit_kind is UnitKind.SPECIAL:
                        start = rep.issue_scu(pl.unit_of[nid], ready, latency)
                    else:
                        start = rep.issue(pl.unit_of[nid], ready)
                    done[nid] = start + latency
                    args = [src_value(s) for s in node.srcs]
                    result = EVAL[node.op](*args)
                    if node.dtype is DType.INT:
                        result = int(result)
                    elif node.dtype is DType.FLOAT:
                        result = float(result)
                    if faults is not None:
                        result = faults.corrupt_token(
                            current, pl.unit_of[nid], tid, start, result
                        )
                    value[nid] = result

                stats.node_fires += 1
                stats.tokens += 1
                if not node.pseudo:
                    stats.ops[_op_energy_class(node, node.op)] += 1
                for up in node.input_nodes():
                    stats.token_hops += pl.edge_hops[(up, nid)]

            completion = max(completion, max(done[s] for s in sinks[current]))
            term_done = done[dfg.term_node]
            entry_time = term_done + 1.0
            current = next_block

        # Predicated pass-through: one useless token through every node
        # of every block this thread never reached (paper Figure 1c).
        # The tokens flow while the thread is in flight, so they compete
        # for unit slots around the thread's mid-execution — charging
        # them at injection time would let them backfill long-idle
        # cycles and understate the utilisation loss.
        waste_time = inject + 0.5 * (completion - inject)
        for name, dfg in mapping.dfgs.items():
            if name in visited:
                continue
            pl = placed[name]
            for node in dfg.nodes:
                stats.node_fires += 1
                stats.tokens += 1
                self._waste_fires += 1
                if node.pseudo:
                    continue
                stats.ops[_op_energy_class(node, node.op)] += 1
                # Occupies an issue slot but performs no memory access.
                rep.issue(pl.unit_of[node.nid], waste_time)

        return completion

    def mapping_for(self, kernel: Kernel) -> SGMFMapping:
        """Expose the mapping (used by reports and tests)."""
        return map_kernel(kernel, self.config.fabric)
