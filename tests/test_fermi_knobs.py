"""Tests for the Fermi baseline-sensitivity knobs (MSHR limit, replay)."""

import numpy as np

from repro.arch import FermiConfig
from repro.interp import interpret
from repro.kernels import memcopy_kernel
from repro.memory import MemoryImage
from repro.simt import FermiSM


def _run(config, n=1024):
    mem = MemoryImage(3 * n + 64)
    src = mem.alloc_array("src", np.arange(float(n)))
    dst = mem.alloc("dst", n)
    params = {"src": src, "dst": dst, "n": n}
    golden = mem.clone()
    interpret(memcopy_kernel(), golden, params, n)
    result = FermiSM(config).run(memcopy_kernel(), mem, params, n)
    assert np.array_equal(mem.data, golden.data)
    return result


def test_mshr_limit_slows_streaming():
    ideal = _run(FermiConfig())
    tight = _run(FermiConfig(l1_mshr_limit=4))
    assert tight.cycles > ideal.cycles
    # Functional behaviour identical either way (checked in _run).


def test_more_mshrs_monotonically_help():
    c4 = _run(FermiConfig(l1_mshr_limit=4)).cycles
    c32 = _run(FermiConfig(l1_mshr_limit=32)).cycles
    unlimited = _run(FermiConfig()).cycles
    assert c4 >= c32 >= unlimited


def test_miss_replay_adds_pipe_occupancy():
    ideal = _run(FermiConfig())
    replay = _run(FermiConfig(miss_replay_cycles=8))
    assert replay.cycles > ideal.cycles


def test_knobs_do_not_affect_cache_hit_paths():
    # A tiny working set (all hits after warmup) should see ~no change.
    n = 64
    def run(cfg):
        mem = MemoryImage(256)
        src = mem.alloc_array("src", np.arange(float(n)))
        dst = mem.alloc("dst", n)
        return FermiSM(cfg).run(
            memcopy_kernel(), mem, {"src": src, "dst": dst, "n": n}, n
        ).cycles

    ideal = run(FermiConfig())
    constrained = run(FermiConfig(l1_mshr_limit=32, miss_replay_cycles=2))
    assert constrained <= ideal * 1.25
