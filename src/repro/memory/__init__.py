"""GPU memory hierarchy: flat image, banked caches, DRAM, coalescer."""

from repro.memory.cache import Cache, CacheStats
from repro.memory.coalescer import coalesce_word_addresses, line_address_of_word
from repro.memory.dram import DRAM, DRAMStats
from repro.memory.hierarchy import LiveValueCache, MemorySystem
from repro.memory.image import WORD_BYTES, MemoryImage

__all__ = [
    "Cache",
    "CacheStats",
    "DRAM",
    "DRAMStats",
    "LiveValueCache",
    "MemoryImage",
    "MemorySystem",
    "WORD_BYTES",
    "coalesce_word_addresses",
    "line_address_of_word",
]
