"""Reference (golden) interpreter for the virtual kernel ISA."""

from repro.interp.interpreter import (
    InterpResult,
    Interpreter,
    InterpreterError,
    ThreadTrace,
    interpret,
)

__all__ = [
    "InterpResult",
    "Interpreter",
    "InterpreterError",
    "ThreadTrace",
    "interpret",
]
