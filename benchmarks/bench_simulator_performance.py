"""Library performance: simulator throughput on the Figure 1a kernel.

Not a paper experiment — this measures the Python simulators themselves
(node-fires per second for the dataflow cores, warp-instructions per
second for the SIMT core) so regressions in the simulation engines are
caught.
"""

from repro.kernels import make_fig1_workload
from repro.sgmf import SGMFCore
from repro.simt import FermiSM
from repro.vgiw import VGIWCore

N_THREADS = 512


def bench_vgiw_simulator(benchmark):
    def run():
        kernel, mem, params = make_fig1_workload(n_threads=N_THREADS)
        return VGIWCore().run(kernel, mem, params, N_THREADS)

    result = benchmark(run)
    assert result.n_threads == N_THREADS


def bench_fermi_simulator(benchmark):
    def run():
        kernel, mem, params = make_fig1_workload(n_threads=N_THREADS)
        return FermiSM().run(kernel, mem, params, N_THREADS)

    result = benchmark(run)
    assert result.sm.warps_launched == N_THREADS // 32


def bench_sgmf_simulator(benchmark):
    def run():
        kernel, mem, params = make_fig1_workload(n_threads=N_THREADS)
        return SGMFCore().run(kernel, mem, params, N_THREADS)

    result = benchmark(run)
    assert result.n_threads == N_THREADS
