"""Warp state and lane-parallel functional execution.

A warp holds 32 lanes' architectural register state and executes one IR
instruction at a time under an active-lane mask.  Lane registers live in
numpy arrays and each instruction evaluates as one masked batch through
:mod:`repro.ir.vecops`, whose kernels are bit-identical to the scalar
:data:`repro.ir.instr.EVAL` semantics shared with the interpreter and
the MT-CGRF executor — all machines stay functionally identical.

The per-lane scalar walk is retained as ``_exec_prepared_scalar``: it is
the forced path under ``REPRO_SCALAR_EXEC=1`` (the differential fuzzer's
oracle mode) and the fallback the vector path drops into whenever it
cannot reproduce exact scalar behavior (undefined registers, invalid or
out-of-bounds addresses, mixed-type lanes), so error messages and error
ordering are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.ir.instr import EVAL, Instr, Op, TermKind, Terminator, coerce_i64
from repro.ir.types import DType, Imm, Reg, TID_REG, is_param_reg, PARAM_PREFIX
from repro.ir.vecops import (
    addr_batch,
    f2i_array,
    f64_batch,
    scalar_exec_requested,
    vec_eval,
)
from repro.memory.image import MemoryImage
from repro.simt.simtstack import EXIT

Number = Union[int, float, bool]

# Prepared-operand modes (see :func:`prepare_instr`).
_SRC_CONST = 0   # payload is the value itself (Imm or launch param)
_SRC_REG = 1     # payload is the register name
_SRC_TID = 2     # payload unused; value = base_tid + lane

#: mask -> tuple of active lane indices.  Warp masks repeat heavily
#: within (and across) kernels, so the decode is memoised.  Bounded so a
#: pathological mask sequence cannot grow it without limit.
_LANES_CACHE: Dict[int, tuple] = {}
_LANES_CACHE_CAP = 1 << 16

#: mask -> int64 index array of active lanes (the vector path's gather
#: and scatter index), memoised alongside the tuple cache.
_LANES_IDX_CACHE: Dict[int, np.ndarray] = {}


def _lanes_tuple(mask: int) -> tuple:
    lanes = _LANES_CACHE.get(mask)
    if lanes is None:
        lanes = tuple(Warp.lanes_of(mask))
        if len(_LANES_CACHE) < _LANES_CACHE_CAP:
            _LANES_CACHE[mask] = lanes
    return lanes


def _lanes_index(mask: int) -> np.ndarray:
    idx = _LANES_IDX_CACHE.get(mask)
    if idx is None:
        idx = np.array(_lanes_tuple(mask), dtype=np.int64)
        if len(_LANES_IDX_CACHE) < _LANES_CACHE_CAP:
            _LANES_IDX_CACHE[mask] = idx
    return idx


def prepare_instr(instr: Instr, params: Dict[str, Number]):
    """Precompile ``instr`` into a flat row for :meth:`Warp.exec_prepared`.

    Launch parameters are uniform across the launch, so parameter reads
    are folded into constants here (the SM builds one row per static
    instruction, once per kernel run).  Row layouts::

        (0, asrc, dst, dt)            LOAD
        (1, asrc, vsrc)               STORE
        (2, fn, srcs, dst, dt, op)    everything else

    where each source is a ``(mode, payload)`` pair (const value /
    register name / thread id) and ``dt`` selects the result coercion
    (1 = int, 2 = float, 0 = bool) — exactly the semantics of
    :meth:`Warp.exec_instr`, minus the per-lane operand dispatch.  The
    trailing ``op`` lets the vector path dispatch the same row through
    :func:`repro.ir.vecops.vec_eval`.
    """
    def prep(operand):
        if isinstance(operand, Imm):
            return (_SRC_CONST, operand.value)
        if operand == TID_REG:
            return (_SRC_TID, 0)
        if is_param_reg(operand):
            return (_SRC_CONST, params[operand.name[len(PARAM_PREFIX):]])
        return (_SRC_REG, operand.name)

    dt = (1 if instr.dtype is DType.INT
          else 2 if instr.dtype is DType.FLOAT else 0)
    if instr.op is Op.LOAD:
        return (0, prep(instr.srcs[0]), instr.dst, dt)
    if instr.op is Op.STORE:
        return (1, prep(instr.srcs[0]), prep(instr.srcs[1]))
    return (2, EVAL[instr.op], tuple(prep(s) for s in instr.srcs),
            instr.dst, dt, instr.op)


@dataclass
class LaneMemOp:
    """One lane's memory operation (for the coalescer)."""

    lane: int
    word_addr: int


class Warp:
    """32 data-parallel lanes executing in lockstep under a mask.

    Register state is one numpy array per architectural register
    (``n_lanes`` wide); unwritten registers read as integer zero, like
    the scalar model's default lanes.
    """

    def __init__(self, warp_id: int, base_tid: int, n_lanes: int,
                 valid_lanes: int, params: Dict[str, Number],
                 memory: MemoryImage):
        self.warp_id = warp_id
        self.base_tid = base_tid
        self.n_lanes = n_lanes
        #: lanes that correspond to real threads (last warp may be partial)
        self.valid_mask = (1 << valid_lanes) - 1
        self.params = params
        self.memory = memory
        self._vregs: Dict[str, np.ndarray] = {}
        self._tids = np.arange(base_tid, base_tid + n_lanes, dtype=np.int64)
        self._full_mask = (1 << n_lanes) - 1
        self._scalar = scalar_exec_requested()

    @property
    def _regs(self) -> Dict[str, List[Number]]:
        """Register file as plain per-lane lists (inspection/debugging;
        the executors use the internal numpy arrays directly)."""
        return {name: arr.tolist() for name, arr in self._vregs.items()}

    # ------------------------------------------------------------------
    def _read(self, operand, lane: int) -> Number:
        if isinstance(operand, Imm):
            return operand.value
        if operand == TID_REG:
            return self.base_tid + lane
        if is_param_reg(operand):
            return self.params[operand.name[len(PARAM_PREFIX):]]
        return self._vregs[operand.name][lane].item()

    def _write_lane(self, reg: str, lane: int, value: Number) -> None:
        """Scalar-path register write with dtype promotion (a lane value
        of a new type flips the whole register to ``object`` dtype, so
        mixed-type lanes survive exactly)."""
        want = ("b" if type(value) is bool
                else "i" if isinstance(value, int) else "f")
        arr = self._vregs.get(reg)
        if arr is None:
            dtype = (bool if want == "b"
                     else np.int64 if want == "i" else np.float64)
            arr = self._vregs[reg] = np.zeros(self.n_lanes, dtype)
        if arr.dtype.kind != want and arr.dtype.kind != "O":
            obj = np.empty(self.n_lanes, object)
            obj[:] = arr.tolist()
            arr = self._vregs[reg] = obj
        arr[lane] = value

    def _vwrite(self, dst: str, lanes_idx: Optional[np.ndarray],
                vals: np.ndarray) -> None:
        """Vector-path register write-back (``lanes_idx`` ``None`` means
        all lanes).  Promotes to ``object`` dtype on type conflicts."""
        regs = self._vregs
        arr = regs.get(dst)
        if arr is not None and arr.dtype == vals.dtype:
            if lanes_idx is None:
                arr[:] = vals
            else:
                arr[lanes_idx] = vals
            return
        if lanes_idx is None:
            regs[dst] = vals.copy()
            return
        if arr is None:
            arr = regs[dst] = np.zeros(self.n_lanes, vals.dtype)
            arr[lanes_idx] = vals
            return
        obj = np.empty(self.n_lanes, object)
        obj[:] = arr.tolist()
        obj[lanes_idx] = vals.tolist()
        regs[dst] = obj

    def _gather(self, mode: int, payload, lanes_idx: Optional[np.ndarray]):
        """Fetch one prepared operand for the vector path: an active-lane
        slice of a register array, a constant, or the lane tids.
        ``None`` means the register is undefined (fall back to the
        scalar walk, which raises the exact ``KeyError``)."""
        if mode == _SRC_REG:
            arr = self._vregs.get(payload)
            if arr is None:
                return None
            return arr if lanes_idx is None else arr[lanes_idx]
        if mode == _SRC_CONST:
            return payload
        return self._tids if lanes_idx is None else self._tids[lanes_idx]

    @staticmethod
    def lanes_of(mask: int):
        """Yield the lane indices set in a 32-bit active mask."""
        lane = 0
        while mask:
            if mask & 1:
                yield lane
            mask >>= 1
            lane += 1

    # ------------------------------------------------------------------
    def exec_instr(self, instr: Instr, mask: int) -> List[LaneMemOp]:
        """Execute one instruction on all lanes in ``mask``.

        Returns the lane memory operations (empty for non-memory ops) so
        the SM can coalesce and time them.
        """
        return self.exec_prepared(prepare_instr(instr, self.params), mask)

    def exec_prepared(self, prep, mask: int) -> List[LaneMemOp]:
        """Execute one :func:`prepare_instr` row on all lanes in ``mask``.

        The default path evaluates the whole active-lane batch with one
        :func:`repro.ir.vecops.vec_eval` call; results are identical to
        the per-lane walk, which handles the exceptional cases (and all
        execution under ``REPRO_SCALAR_EXEC=1``).
        """
        if self._scalar:
            return self._exec_prepared_scalar(prep, mask)
        full = mask == self._full_mask
        lanes_idx = None if full else _lanes_index(mask)
        n = self.n_lanes if full else lanes_idx.shape[0]
        tag = prep[0]
        if tag == 2:  # ALU / SFU
            srcs, dst, dt, op = prep[2], prep[3], prep[4], prep[5]
            args = []
            for m, p in srcs:
                v = self._gather(m, p, lanes_idx)
                if v is None and m == _SRC_REG:
                    return self._exec_prepared_scalar(prep, mask)
                args.append(v)
            vals = vec_eval(op, tuple(args), dt, n)
            self._vwrite(dst, lanes_idx, vals)
            return []
        if tag == 0:  # LOAD
            _, (am, ap), dst, dt = prep
            a = self._gather(am, ap, lanes_idx)
            if a is None and am == _SRC_REG:
                return self._exec_prepared_scalar(prep, mask)
            addrs = addr_batch(a, n, self.memory.size)
            if addrs is None:
                return self._exec_prepared_scalar(prep, mask)
            raw = self.memory.data[addrs]
            vals = (f2i_array(raw) if dt == 1
                    else raw if dt == 2 else raw != 0)
            self._vwrite(dst, lanes_idx, vals)
            return [LaneMemOp(lane, addr) for lane, addr
                    in zip(_lanes_tuple(mask), addrs.tolist())]
        # STORE
        _, (am, ap), (vm, vp) = prep
        a = self._gather(am, ap, lanes_idx)
        if a is None and am == _SRC_REG:
            return self._exec_prepared_scalar(prep, mask)
        addrs = addr_batch(a, n, self.memory.size)
        if addrs is None:
            return self._exec_prepared_scalar(prep, mask)
        v = self._gather(vm, vp, lanes_idx)
        if v is None and vm == _SRC_REG:
            return self._exec_prepared_scalar(prep, mask)
        fvals = f64_batch(v, n)
        if fvals is None:
            return self._exec_prepared_scalar(prep, mask)
        # Fancy assignment resolves duplicate addresses last-lane-wins,
        # matching the ascending-lane scalar store order.
        self.memory.data[addrs] = fvals
        return [LaneMemOp(lane, addr) for lane, addr
                in zip(_lanes_tuple(mask), addrs.tolist())]

    def _exec_prepared_scalar(self, prep, mask: int) -> List[LaneMemOp]:
        """Per-lane reference walk (exact scalar semantics and errors)."""
        mem_ops: List[LaneMemOp] = []
        regs = self._vregs
        base = self.base_tid
        tag = prep[0]
        if tag == 2:  # ALU / SFU
            fn, srcs = prep[1], prep[2]
            dst, dt = prep[3], prep[4]
            for lane in _lanes_tuple(mask):
                args = [
                    regs[p][lane].item() if m == _SRC_REG
                    else p if m == _SRC_CONST else base + lane
                    for m, p in srcs
                ]
                v = fn(*args)
                self._write_lane(dst, lane,
                                 coerce_i64(v) if dt == 1
                                 else float(v) if dt == 2 else bool(v))
        elif tag == 0:  # LOAD
            _, (am, ap), dst, dt = prep
            mem_read = self.memory.read
            for lane in _lanes_tuple(mask):
                addr = int(regs[ap][lane].item() if am == _SRC_REG
                           else ap if am == _SRC_CONST else base + lane)
                v = mem_read(addr)
                self._write_lane(dst, lane,
                                 coerce_i64(v) if dt == 1
                                 else float(v) if dt == 2 else bool(v))
                mem_ops.append(LaneMemOp(lane, addr))
        else:  # STORE
            _, (am, ap), (vm, vp) = prep
            mem_write = self.memory.write
            for lane in _lanes_tuple(mask):
                addr = int(regs[ap][lane].item() if am == _SRC_REG
                           else ap if am == _SRC_CONST else base + lane)
                mem_write(addr,
                          regs[vp][lane].item() if vm == _SRC_REG
                          else vp if vm == _SRC_CONST else base + lane)
                mem_ops.append(LaneMemOp(lane, addr))
        return mem_ops

    def exec_terminator(self, term: Terminator, mask: int) -> Dict[str, int]:
        """Resolve the block terminator per lane; returns target -> mask."""
        if term.kind is TermKind.RET:
            return {EXIT: mask}
        if term.kind is TermKind.JMP:
            return {term.true_target: mask}
        cond = term.cond
        if mask and not self._scalar and isinstance(cond, Reg) \
                and not is_param_reg(cond) and cond != TID_REG:
            arr = self._vregs.get(cond.name)
            if arr is not None and arr.dtype.kind in "bif":
                lanes_idx = _lanes_index(mask)
                cv = arr[lanes_idx]
                taken = cv if cv.dtype.kind == "b" else cv != 0
                tmask = int(np.where(taken, np.left_shift(
                    np.int64(1), lanes_idx), 0).sum())
                fmask = mask & ~tmask
                # Preserve the scalar dict insertion order: the lowest
                # active lane's target comes first.
                first_true = bool(taken[0])
                targets: Dict[str, int] = {}
                for target, m in (((term.true_target, tmask),
                                   (term.false_target, fmask))
                                  if first_true else
                                  ((term.false_target, fmask),
                                   (term.true_target, tmask))):
                    if m:
                        targets[target] = m
                return targets
        targets = {}
        for lane in self.lanes_of(mask):
            taken = bool(self._read(cond, lane))
            target = term.true_target if taken else term.false_target
            targets[target] = targets.get(target, 0) | (1 << lane)
        return targets
