"""Structural and semantic validation of kernels.

``validate_kernel`` raises :class:`ValidationError` on the first problem
found.  It is called by :meth:`KernelBuilder.build`, so every kernel that
reaches a simulator is well-formed.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.block import BasicBlock
from repro.ir.instr import Instr, Op, TermKind
from repro.ir.kernel import Kernel
from repro.ir.types import Imm, Reg, is_reserved_reg, param_reg
from repro.resilience.errors import CompileError

#: Expected operand count for each opcode.
_ARITY = {
    Op.ADD: 2, Op.SUB: 2, Op.MUL: 2, Op.MIN: 2, Op.MAX: 2,
    Op.AND: 2, Op.OR: 2, Op.XOR: 2, Op.SHL: 2, Op.SHR: 2,
    Op.NEG: 1, Op.NOT: 1, Op.ABS: 1,
    Op.FADD: 2, Op.FSUB: 2, Op.FMUL: 2, Op.FMIN: 2, Op.FMAX: 2,
    Op.FNEG: 1, Op.FABS: 1, Op.FMA: 3,
    Op.EQ: 2, Op.NE: 2, Op.LT: 2, Op.LE: 2, Op.GT: 2, Op.GE: 2,
    Op.I2F: 1, Op.F2I: 1, Op.MOV: 1, Op.SELECT: 3,
    Op.DIV: 2, Op.REM: 2, Op.FDIV: 2,
    Op.FSQRT: 1, Op.FRSQRT: 1, Op.FEXP: 1, Op.FLOG: 1,
    Op.FSIN: 1, Op.FCOS: 1, Op.FFLOOR: 1,
    Op.LOAD: 1, Op.STORE: 2,
}


class ValidationError(CompileError):
    """Raised when a kernel violates a structural or semantic rule."""


def _check_instr(kernel: Kernel, block: BasicBlock, instr: Instr) -> None:
    where = f"{kernel.name}/{block.name}: {instr!r}"
    arity = _ARITY.get(instr.op)
    if arity is None:
        raise ValidationError(f"unknown opcode in {where}")
    if len(instr.srcs) != arity:
        raise ValidationError(
            f"opcode {instr.op.value} expects {arity} operands, "
            f"got {len(instr.srcs)} in {where}"
        )
    if instr.op is Op.STORE:
        if instr.dst is not None:
            raise ValidationError(f"STORE must not define a register in {where}")
    elif instr.dst is None:
        raise ValidationError(f"{instr.op.value} must define a register in {where}")
    if instr.dst is not None and is_reserved_reg(Reg(instr.dst)):
        raise ValidationError(f"write to reserved register %{instr.dst} in {where}")


def _check_defined_on_all_paths(kernel: Kernel) -> None:
    """Reject reads of registers that may be undefined on some path.

    Forward may-be-undefined analysis: a register is *surely defined* at
    block entry if it is defined on every CFG path from the entry block.
    Reserved registers (``tid``, parameters) are always defined.
    """
    always: Set[str] = {param_reg(p).name for p in kernel.params}
    always.add("tid")

    defined_out: Dict[str, Set[str]] = {}
    preds = kernel.predecessors()
    order = list(kernel.blocks)
    changed = True
    while changed:
        changed = False
        for name in order:
            block = kernel.blocks[name]
            if name == kernel.entry:
                in_set = set(always)
            else:
                pred_outs = [defined_out[p] for p in preds[name] if p in defined_out]
                if not pred_outs:
                    # No processed predecessor yet; skip until one exists.
                    continue
                in_set = set.intersection(*pred_outs) | always
            out_set = in_set | block.defs()
            if defined_out.get(name) != out_set:
                defined_out[name] = out_set
                changed = True

    for name, block in kernel.blocks.items():
        if name not in defined_out:
            continue
        in_set = (
            set(always)
            if name == kernel.entry
            else set.intersection(
                *(defined_out[p] for p in preds[name] if p in defined_out)
            )
            | always
        )
        local = set(in_set)
        for instr in block.instrs:
            for src in instr.srcs:
                if isinstance(src, Reg) and src.name not in local:
                    raise ValidationError(
                        f"register %{src.name} may be read before definition "
                        f"in {kernel.name}/{name}: {instr!r}"
                    )
            if instr.dst is not None:
                local.add(instr.dst)
        cond = block.terminator.cond
        if isinstance(cond, Reg) and cond.name not in local:
            raise ValidationError(
                f"branch condition %{cond.name} may be undefined "
                f"in {kernel.name}/{name}"
            )


def validate_kernel(kernel: Kernel) -> None:
    """Validate ``kernel``; raise :class:`ValidationError` on any problem."""
    if kernel.entry not in kernel.blocks:
        raise ValidationError(f"entry block {kernel.entry!r} does not exist")
    if len(set(kernel.params)) != len(kernel.params):
        raise ValidationError("duplicate kernel parameter names")

    for name, block in kernel.blocks.items():
        if block.name != name:
            raise ValidationError(f"block registered as {name!r} is named {block.name!r}")
        if block.terminator is None:
            raise ValidationError(f"block {name!r} has no terminator")
        if block.terminator.kind is TermKind.BR and block.terminator.cond is None:
            raise ValidationError(f"conditional branch without condition in {name!r}")
        for target in block.successors():
            if target not in kernel.blocks:
                raise ValidationError(
                    f"block {name!r} branches to unknown block {target!r}"
                )
        for instr in block.instrs:
            _check_instr(kernel, block, instr)

    # Reachability: every block must be reachable from the entry.
    seen = {kernel.entry}
    stack = [kernel.entry]
    while stack:
        for succ in kernel.blocks[stack.pop()].successors():
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    unreachable = set(kernel.blocks) - seen
    if unreachable:
        raise ValidationError(f"unreachable blocks: {sorted(unreachable)}")

    if not kernel.exit_blocks():
        raise ValidationError("kernel has no exit (RET) block")

    _check_defined_on_all_paths(kernel)
