"""Ablation: BBS scheduling policy (paper section 3.1).

The compiler assigns block IDs in schedule order precisely so the
hardware scheduler can be trivial: "select the smallest block ID whose
thread vector is not empty".  This ablation compares that policy with
two naive alternatives — largest-vector-first (greedy amortisation) and
round-robin — on a divergent kernel and a loop kernel.  The paper's
policy executes each region once per convergence wave; greedy policies
can split thread vectors and pay extra reconfigurations.
"""

from repro.arch import VGIWConfig
from repro.evalharness.tables import ExperimentTable
from repro.kernels.registry import make_workload
from repro.vgiw import VGIWCore

POLICIES = ("smallest_id", "largest_vector", "round_robin")
KERNELS = ("hotspot/hotspot_kernel", "bfs/Kernel")


def bench_ablation_bbs_policy(benchmark):
    table = ExperimentTable(
        "Ablation", "BBS scheduling policy",
        ["Kernel", "Policy", "Cycles", "Block executions", "vs paper policy"],
    )

    def run_sweep():
        table.rows.clear()
        out = {}
        for name in KERNELS:
            base = None
            for policy in POLICIES:
                w = make_workload(name, "tiny")
                cfg = VGIWConfig(bbs_policy=policy)
                r = VGIWCore(cfg).run(
                    w.kernel, w.memory.clone(), w.params, w.n_threads,
                    profile=True,
                )
                if base is None:
                    base = r.cycles
                table.add(name, policy, r.cycles, len(r.block_profile),
                          base / r.cycles)
                out[(name, policy)] = r.cycles
        return out

    cycles = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(table.render())
    for name in KERNELS:
        paper = cycles[(name, "smallest_id")]
        others = [cycles[(name, p)] for p in POLICIES[1:]]
        # The paper's policy must be at least competitive with the
        # alternatives (within 2%) on every kernel.
        assert paper <= min(others) * 1.02, (
            f"{name}: smallest-ID scheduling lost to a naive policy"
        )
