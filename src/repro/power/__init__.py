"""GPUWattch-style energy model."""

from repro.power.accounting import (
    EnergyBreakdown,
    efficiency_ratio,
    energy_fermi,
    energy_sgmf,
    energy_vgiw,
)
from repro.power.energy_table import DEFAULT_ENERGY, EnergyTable

__all__ = [
    "DEFAULT_ENERGY",
    "EnergyBreakdown",
    "EnergyTable",
    "efficiency_ratio",
    "energy_fermi",
    "energy_sgmf",
    "energy_vgiw",
]
