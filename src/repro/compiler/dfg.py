"""Per-basic-block dataflow graph (the *graph instruction word*).

Each basic block is converted into a dataflow graph whose nodes map
one-to-one onto MT-CGRF functional units (paper §3.1, §3.5):

* one **initiator CVU** node that injects the thread ID,
* **LVU load** nodes for live-in registers the block reads,
* **op** nodes (compute / special / load / store),
* **split** nodes (SJUs) inserted for fanouts beyond the interconnect's
  degree, and **join** nodes (SJUs) that enforce intra-thread memory
  ordering (paper §3.5, "Split/join units"),
* **LVU store** nodes for defined registers that are live-out,
* one **terminator CVU** node that resolves the block's branch.

Data tokens carry values; control tokens carry only timing.  Immediates
and kernel parameters are configuration-time constants baked into unit
configuration registers, so they create no edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.arch.config import UnitKind
from repro.ir.block import BasicBlock
from repro.ir.instr import Instr, Op, TermKind, UnitClass, unit_class
from repro.ir.kernel import Kernel
from repro.ir.types import DType, Imm, Reg, TID_REG, is_param_reg, PARAM_PREFIX
from repro.resilience.errors import CompileError


class NodeKind(enum.Enum):
    INIT = "init"      # thread initiator CVU
    TERM = "term"      # thread terminator CVU
    OP = "op"          # compute or special op
    LOAD = "load"      # LDST unit
    STORE = "store"    # LDST unit
    LVLOAD = "lvload"  # LVU fetch of a live-in value
    LVSTORE = "lvstore"  # LVU spill of a live-out value
    SPLIT = "split"    # SJU fanout extension
    JOIN = "join"      # SJU memory-ordering join


# --- operand sources -------------------------------------------------------
@dataclass(frozen=True)
class NodeSrc:
    """Value produced by another node (a real dataflow edge)."""

    node: int


@dataclass(frozen=True)
class ImmSrc:
    """Configuration-time immediate."""

    value: Union[int, float, bool]


@dataclass(frozen=True)
class ParamSrc:
    """Configuration-time kernel parameter."""

    name: str


@dataclass(frozen=True)
class TidSrc:
    """The thread ID, delivered by the initiator CVU."""


Src = Union[NodeSrc, ImmSrc, ParamSrc, TidSrc]


@dataclass
class DFGNode:
    """One node of a block's dataflow graph."""

    nid: int
    kind: NodeKind
    op: Optional[Op] = None
    dtype: Optional[DType] = None
    srcs: List[Src] = field(default_factory=list)
    #: control-only dependencies (token timing, no value)
    ctrl: List[int] = field(default_factory=list)
    #: destination register (bookkeeping / debug)
    out_reg: Optional[str] = None
    #: live value ID for LVLOAD/LVSTORE nodes
    lv_id: Optional[int] = None
    #: pseudo nodes occupy no physical unit: SGMF wires live values and
    #: thread arrival directly between block subgraphs (paper §1: SGMF
    #: communicates intermediate values through the fabric, not an LVC).
    pseudo: bool = False

    @property
    def unit_kind(self) -> UnitKind:
        if self.kind in (NodeKind.INIT, NodeKind.TERM):
            return UnitKind.CVU
        if self.kind in (NodeKind.LVLOAD, NodeKind.LVSTORE):
            return UnitKind.LVU
        if self.kind in (NodeKind.LOAD, NodeKind.STORE):
            return UnitKind.LDST
        if self.kind in (NodeKind.SPLIT, NodeKind.JOIN):
            return UnitKind.SJU
        if unit_class(self.op) is UnitClass.SPECIAL:
            return UnitKind.SPECIAL
        return UnitKind.COMPUTE

    def input_nodes(self) -> List[int]:
        """All upstream node IDs (data and control)."""
        nodes = [s.node for s in self.srcs if isinstance(s, NodeSrc)]
        nodes.extend(self.ctrl)
        return nodes


@dataclass
class BlockDFG:
    """The dataflow graph of one basic block."""

    block_name: str
    nodes: List[DFGNode]
    init_node: int
    term_node: int
    #: branch metadata mirrored from the block terminator
    term_kind: TermKind = TermKind.RET
    true_target: Optional[str] = None
    false_target: Optional[str] = None

    def node(self, nid: int) -> DFGNode:
        return self.nodes[nid]

    def consumers(self) -> Dict[int, List[int]]:
        """Map node ID -> IDs of nodes consuming it (data or control)."""
        out: Dict[int, List[int]] = {n.nid: [] for n in self.nodes}
        for n in self.nodes:
            for up in n.input_nodes():
                out[up].append(n.nid)
        return out

    def unit_demand(self) -> Dict[UnitKind, int]:
        """Units of each kind one replica of this graph occupies."""
        demand: Dict[UnitKind, int] = {k: 0 for k in UnitKind}
        for n in self.nodes:
            if not n.pseudo:
                demand[n.unit_kind] += 1
        return demand

    def sink_nodes(self) -> List[int]:
        """Nodes with externally visible effects or no consumers.

        A thread has finished the block when all its sink tokens have
        fired; the BBS waits for that before reconfiguring.
        """
        consumed = {up for n in self.nodes for up in n.input_nodes()}
        sinks = [
            n.nid
            for n in self.nodes
            if n.kind in (NodeKind.STORE, NodeKind.LVSTORE, NodeKind.TERM)
            or n.nid not in consumed
        ]
        return sorted(set(sinks))

    def topo_order(self) -> List[int]:
        """Topological order over data+control edges (graphs are acyclic)."""
        indeg = {n.nid: len(n.input_nodes()) for n in self.nodes}
        ready = [nid for nid, d in indeg.items() if d == 0]
        consumers = self.consumers()
        order: List[int] = []
        while ready:
            nid = ready.pop()
            order.append(nid)
            for c in consumers[nid]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if len(order) != len(self.nodes):
            raise CompileError(
                f"cycle in DFG of block {self.block_name}",
                block=self.block_name,
            )
        return order


class DFGBuildError(CompileError):
    """Raised when a block cannot be converted to a dataflow graph."""


#: Maximum data fanout a node can drive directly; beyond this the
#: compiler inserts SJU split nodes (paper §3.5).
MAX_FANOUT = 4


def build_block_dfg(
    kernel: Kernel,
    block: BasicBlock,
    fetches,
    spills,
    lv_ids: Dict[str, int],
    max_fanout: int = MAX_FANOUT,
) -> BlockDFG:
    """Build the dataflow graph of ``block``.

    ``fetches``/``spills`` are the block's live-in reads and live-out
    definitions (from :mod:`repro.compiler.livevalues`); ``lv_ids`` maps
    crossing registers to live value IDs.
    """
    nodes: List[DFGNode] = []

    def new_node(**kw) -> DFGNode:
        node = DFGNode(nid=len(nodes), **kw)
        nodes.append(node)
        return node

    init = new_node(kind=NodeKind.INIT, dtype=DType.INT, out_reg="tid")

    # Live-in fetches. The LVU is triggered by the thread-ID token.
    cur_def: Dict[str, int] = {}
    for reg in sorted(fetches):
        lvload = new_node(
            kind=NodeKind.LVLOAD,
            dtype=None,
            ctrl=[init.nid],
            out_reg=reg,
            lv_id=lv_ids[reg],
        )
        cur_def[reg] = lvload.nid

    def resolve(operand) -> Src:
        if isinstance(operand, Imm):
            return ImmSrc(operand.value)
        if operand == TID_REG:
            return TidSrc()
        if is_param_reg(operand):
            return ParamSrc(operand.name[len(PARAM_PREFIX):])
        if operand.name in cur_def:
            return NodeSrc(cur_def[operand.name])
        raise DFGBuildError(
            f"operand %{operand.name} has no producer in block "
            f"{block.name} (liveness bug?)"
        )

    # Instruction scan with intra-thread memory ordering.
    last_store: Optional[int] = None
    loads_since_store: List[int] = []
    for instr in block.instrs:
        srcs = [resolve(s) for s in instr.srcs]
        if instr.op is Op.LOAD:
            node = new_node(
                kind=NodeKind.LOAD, op=instr.op, dtype=instr.dtype,
                srcs=srcs, out_reg=instr.dst,
            )
            if last_store is not None:
                node.ctrl.append(last_store)
            loads_since_store.append(node.nid)
            cur_def[instr.dst] = node.nid
        elif instr.op is Op.STORE:
            node = new_node(
                kind=NodeKind.STORE, op=instr.op, dtype=instr.dtype, srcs=srcs,
            )
            ordering = list(loads_since_store)
            if last_store is not None:
                ordering.append(last_store)
            if len(ordering) > 1:
                join = new_node(kind=NodeKind.JOIN, ctrl=ordering)
                node.ctrl.append(join.nid)
            elif ordering:
                node.ctrl.append(ordering[0])
            last_store = node.nid
            loads_since_store = []
        else:
            node = new_node(
                kind=NodeKind.OP, op=instr.op, dtype=instr.dtype,
                srcs=srcs, out_reg=instr.dst,
            )
            cur_def[instr.dst] = node.nid

    # Live-out spills.
    lvloads_by_id = {
        n.lv_id: n.nid for n in nodes if n.kind is NodeKind.LVLOAD
    }
    for reg in sorted(spills):
        if reg not in cur_def:
            raise DFGBuildError(
                f"live-out %{reg} not defined in block {block.name}"
            )
        store = new_node(
            kind=NodeKind.LVSTORE,
            srcs=[NodeSrc(cur_def[reg])],
            out_reg=reg,
            lv_id=lv_ids[reg],
        )
        # WAR hazard through the LVC: live-value colouring may assign this
        # slot to both a (dead-after-fetch) live-in and this spill.  The
        # spill must not overwrite the slot before the fetch has read it.
        fetch = lvloads_by_id.get(store.lv_id)
        if fetch is not None and fetch != store.nid:
            store.ctrl.append(fetch)

    # Terminator CVU.
    term = block.terminator
    term_srcs: List[Src] = []
    term_ctrl: List[int] = []
    if term.kind is TermKind.BR:
        term_srcs.append(resolve(term.cond))
    else:
        term_ctrl.append(init.nid)
    term_node = new_node(
        kind=NodeKind.TERM, dtype=DType.PRED, srcs=term_srcs, ctrl=term_ctrl,
    )

    dfg = BlockDFG(
        block_name=block.name,
        nodes=nodes,
        init_node=init.nid,
        term_node=term_node.nid,
        term_kind=term.kind,
        true_target=term.true_target,
        false_target=term.false_target,
    )
    _insert_splits(dfg, max_fanout)
    return dfg


def _insert_splits(dfg: BlockDFG, max_fanout: int) -> None:
    """Insert SJU split nodes wherever a node's fanout exceeds the
    interconnect degree.  Splits relay values (and thread-ID triggers)
    unchanged; a split itself is subject to the same fanout bound, so
    wide fanouts become split trees."""
    changed = True
    while changed:
        changed = False
        consumers = dfg.consumers()
        for nid, cons in consumers.items():
            if len(cons) <= max_fanout:
                continue
            changed = True
            producer = dfg.node(nid)
            # Leave max_fanout - 1 consumers on the producer and move the
            # rest behind a new split node.
            keep, move = cons[: max_fanout - 1], cons[max_fanout - 1:]
            split = DFGNode(
                nid=len(dfg.nodes),
                kind=NodeKind.SPLIT,
                dtype=producer.dtype,
                srcs=[NodeSrc(nid)],
                out_reg=producer.out_reg,
            )
            dfg.nodes.append(split)
            moved = set(move)
            for cid in moved:
                consumer = dfg.node(cid)
                consumer.srcs = [
                    NodeSrc(split.nid)
                    if isinstance(s, NodeSrc) and s.node == nid
                    else s
                    for s in consumer.srcs
                ]
                consumer.ctrl = [
                    split.nid if c == nid else c for c in consumer.ctrl
                ]
            break  # consumer map is stale; recompute


def build_kernel_dfgs(kernel: Kernel, lv_map) -> Dict[str, BlockDFG]:
    """Build the dataflow graph of every block in ``kernel``."""
    return {
        name: build_block_dfg(
            kernel,
            block,
            lv_map.fetches[name],
            lv_map.spills[name],
            lv_map.ids,
        )
        for name, block in kernel.blocks.items()
    }
