"""Corner cases of the builder DSL: nested control-flow interactions."""

import numpy as np
import pytest

from repro.interp import interpret
from repro.ir import BuildError, DType, KernelBuilder
from repro.memory import MemoryImage


def _run(kernel, params, n_threads=1, mem_words=64):
    mem = MemoryImage(mem_words)
    out = mem.alloc("out", max(4, n_threads))
    params = dict(params, out=out)
    interpret(kernel, mem, params, n_threads)
    return mem.read_region("out")


def test_break_inside_nested_if_leaves_loop():
    kb = KernelBuilder("k", params=["out"])
    acc = kb.var("acc", 0)
    with kb.loop() as lp:
        lp.break_unless(acc < 100)
        kb.assign(acc, acc + 1)
        with kb.if_(acc == 5):
            lp.break_()
    kb.store(kb.param("out"), kb.i2f(acc))
    out = _run(kb.build(), {})
    assert out[0] == 5.0


def test_continue_skips_rest_of_iteration():
    kb = KernelBuilder("k", params=["out"])
    i = kb.var("i", 0)
    hits = kb.var("hits", 0)
    with kb.loop() as lp:
        lp.break_unless(i < 6)
        kb.assign(i, i + 1)
        with kb.if_(i == 3):
            lp.continue_()
        kb.assign(hits, hits + 1)
    kb.store(kb.param("out"), kb.i2f(hits))
    out = _run(kb.build(), {})
    assert out[0] == 5.0  # iteration i==3 skipped the tail


def test_loop_inside_both_if_arms():
    kb = KernelBuilder("k", params=["out", "sel"])
    acc = kb.var("acc", 0)
    with kb.if_(kb.param("sel") == 1):
        with kb.for_range(0, 3) as i:
            kb.assign(acc, acc + i)
    with kb.else_():
        with kb.for_range(0, 4) as j:
            kb.assign(acc, acc + 10)
    kb.store(kb.param("out") + kb.tid(), kb.i2f(acc))
    k = kb.build()
    assert _run(k, {"sel": 1})[0] == 3.0
    assert _run(k, {"sel": 0})[0] == 40.0


def test_triple_nested_loops():
    kb = KernelBuilder("k", params=["out"])
    acc = kb.var("acc", 0)
    with kb.for_range(0, 2) as a:
        with kb.for_range(0, 3) as b:
            with kb.for_range(0, 4) as c:
                kb.assign(acc, acc + 1)
    kb.store(kb.param("out"), kb.i2f(acc))
    assert _run(kb.build(), {})[0] == 24.0


def test_divergent_store_counts_per_thread():
    kb = KernelBuilder("k", params=["out"])
    t = kb.tid()
    with kb.if_((t % 2) == 0):
        kb.store(kb.param("out") + t, 1.0)
    with kb.else_():
        kb.store(kb.param("out") + t, 2.0)
    out = _run(kb.build(), {}, n_threads=4)
    assert list(out) == [1.0, 2.0, 1.0, 2.0]


def test_empty_loop_body_is_legal():
    kb = KernelBuilder("k", params=["out"])
    i = kb.var("i", 0)
    with kb.loop() as lp:
        lp.break_unless(i < 3)
        kb.assign(i, i + 1)
    kb.store(kb.param("out"), kb.i2f(i))
    assert _run(kb.build(), {})[0] == 3.0


def test_if_condition_from_loop_variable_after_loop():
    kb = KernelBuilder("k", params=["out"])
    i = kb.var("i", 0)
    with kb.loop() as lp:
        lp.break_unless(i < 7)
        kb.assign(i, i + 2)
    # i == 8 after the loop; readable post-loop.
    with kb.if_(i == 8):
        kb.store(kb.param("out"), 99.0)
    assert _run(kb.build(), {})[0] == 99.0


def test_break_if_variant():
    kb = KernelBuilder("k", params=["out"])
    i = kb.var("i", 0)
    with kb.loop() as lp:
        lp.break_if(i >= 4)
        kb.assign(i, i + 1)
    kb.store(kb.param("out"), kb.i2f(i))
    assert _run(kb.build(), {})[0] == 4.0
