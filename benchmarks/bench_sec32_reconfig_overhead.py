"""Paper section 3.2: reconfiguration overhead.

Paper result: total configuration overhead averaged 0.18% of runtime
with a median below 0.1%.  The overhead shrinks with thread count
(reconfigurations per block are amortised over the whole thread
vector); our scaled-down runs therefore sit above the paper's figure,
and the bench additionally checks the scaling trend directly.
"""

from repro.evalharness.experiments import sec32_reconfiguration_overhead
from repro.kernels import make_fig1_workload
from repro.vgiw import VGIWCore


def bench_sec32(benchmark, suite_runs):
    table = benchmark(sec32_reconfiguration_overhead, suite_runs)
    print()
    print(table.render())

    mean_pct = table.rows[-2][-1]
    assert mean_pct < 8.0, f"mean reconfiguration overhead {mean_pct:.2f}%"

    # The paper's 0.18% is measured at full-scale tiles; check the trend
    # that takes us there: overhead strictly decreases with threads and
    # is already small at a 32k-thread launch.
    overheads = []
    for n in (512, 4096, 32768):
        kernel, mem, params = make_fig1_workload(n_threads=n)
        result = VGIWCore().run(kernel, mem, params, n)
        overheads.append(result.config_overhead)
    assert overheads[0] > overheads[1] > overheads[2]
    assert overheads[2] < 0.03
