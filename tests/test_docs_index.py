"""Docs index integrity: the README links every doc, and no doc links
to a file that does not exist.

`tests/test_docs_snippets.py` keeps the *code* in the docs honest;
this module keeps the *link graph* honest:

* every `docs/*.md` file appears in the README's documentation index,
  so a new page cannot be orphaned;
* every relative link or backtick-quoted path reference in the README
  and `docs/` resolves to a real file, so renames cannot leave dead
  pointers behind.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
README = ROOT / "README.md"
DOC_FILES = sorted((ROOT / "docs").glob("*.md"))

#: ``[text](target)`` markdown links (URLs filtered out below)
_MD_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)\)")
#: `docs/foo.md`-style backtick path references
_TICK_REF = re.compile(r"`((?:docs|examples|tests|benchmarks|src)/[^`]+?\.\w+)`")


def test_docs_dir_is_nonempty():
    assert len(DOC_FILES) >= 10, "docs/ unexpectedly small — bad glob?"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_readme_indexes_every_doc(doc):
    """Each docs/ page is mentioned in the README (its docs index table
    or prose), so no page is unreachable from the front door."""
    readme = README.read_text()
    assert f"docs/{doc.name}" in readme, (
        f"docs/{doc.name} is not linked from README.md — add it to the "
        "documentation index table"
    )


def _referenced_paths(path: Path):
    text = path.read_text()
    for match in _MD_LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        yield target
    for match in _TICK_REF.finditer(text):
        yield match.group(1)


@pytest.mark.parametrize("source", [README] + DOC_FILES,
                         ids=lambda p: str(p.relative_to(ROOT)))
def test_no_dead_relative_links(source):
    """Every relative link / path reference resolves against the repo
    root or the file's own directory."""
    dead = []
    for ref in _referenced_paths(source):
        if "*" in ref:
            # Glob-style references ("tests/corpus/*.kir") are live as
            # long as they match at least one file.
            if not (list(ROOT.glob(ref)) or list(source.parent.glob(ref))):
                dead.append(ref)
            continue
        candidates = (ROOT / ref, source.parent / ref)
        if not any(c.exists() for c in candidates):
            dead.append(ref)
    assert not dead, (
        f"{source.relative_to(ROOT)} references missing files: {dead}"
    )


def test_semantics_page_is_cross_linked():
    """docs/semantics.md is the normative opcode reference — the pages
    and module that lean on it must point at it."""
    for referrer in (ROOT / "docs" / "api.md",
                     ROOT / "docs" / "fuzzing.md",
                     ROOT / "src" / "repro" / "ir" / "vecops.py"):
        assert "docs/semantics.md" in referrer.read_text(), (
            f"{referrer.relative_to(ROOT)} should link docs/semantics.md"
        )
