"""Tests for static kernel statistics."""

import pytest

from repro.ir.stats import kernel_statistics
from repro.kernels import fig1_kernel, loop_sum_kernel, saxpy_kernel
from repro.kernels.registry import all_names, make_workload


def test_saxpy_statistics():
    s = kernel_statistics(saxpy_kernel())
    assert s.n_blocks == 3
    assert s.n_branches == 1
    assert s.n_loops == 0
    assert s.by_unit_class["memory"] == 3  # two loads + one store
    assert 0 < s.memory_fraction < 1
    assert s.mean_block_size > 0


def test_loop_statistics():
    s = kernel_statistics(loop_sum_kernel())
    assert s.n_loops == 1
    assert s.max_loop_depth == 1


def test_fig1_divergence_shape():
    s = kernel_statistics(fig1_kernel())
    assert s.n_branches == 2  # the two nested conditionals
    assert s.special_fraction > 0  # the sqrt arm


def test_render_is_readable():
    text = kernel_statistics(fig1_kernel()).render()
    assert "kernel fig1" in text
    assert "unit mix" in text
    assert "block sizes" in text


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_statistics_computable_for_all_benchmarks(name):
    w = make_workload(name, "tiny")
    s = kernel_statistics(w.kernel)
    assert s.n_instructions == w.kernel.instruction_count()
    assert sum(s.by_op.values()) == s.n_instructions
    assert sum(s.by_unit_class.values()) == s.n_instructions
    assert len(s.block_sizes) == s.n_blocks
