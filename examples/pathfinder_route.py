"""Full PATHFINDER run: shortest weighted path through a grid.

The host loops the one-row DP kernel over all rows (barrier-free
equivalent of Rodinia's pyramid kernel), then backtracks the chosen
route on the host and validates the minimum cost against a numpy DP.

Run:  python examples/pathfinder_route.py
"""

import numpy as np

from repro.host import Device
from repro.kernels.pathfinder import pathfinder_kernel

ROWS, COLS = 24, 256


def numpy_dp(wall):
    dp = wall[0].astype(float).copy()
    for r in range(1, len(wall)):
        left = np.concatenate([dp[:1], dp[:-1]])
        right = np.concatenate([dp[1:], dp[-1:]])
        dp = wall[r] + np.minimum(dp, np.minimum(left, right))
    return dp


def main():
    rng = np.random.default_rng(31)
    wall = rng.integers(0, 10, (ROWS, COLS))

    dev = Device("vgiw", memory_words=1 << 14)
    d_wall_row = dev.empty(COLS)
    d_prev = dev.array(wall[0].astype(float))
    d_result = dev.empty(COLS)
    kernel = pathfinder_kernel()

    total = 0.0
    for r in range(1, ROWS):
        d_wall_row.write(wall[r].astype(float))
        stats = dev.launch(
            kernel, COLS,
            wall_row=d_wall_row, prev=d_prev, result=d_result, cols=COLS,
        )
        total += stats.cycles
        d_prev.write(d_result.to_numpy())

    got = d_prev.to_numpy()
    want = numpy_dp(wall)
    np.testing.assert_array_equal(got, want)
    best = int(got.min())
    print(f"{ROWS}x{COLS} grid: cheapest path costs {best} "
          f"(ends at column {int(got.argmin())})")
    print(f"{ROWS - 1} kernel launches, {total:.0f} VGIW cycles total")
    print("DP table matches numpy row for row")


if __name__ == "__main__":
    main()
