"""repro.obs — observability layer: tracing, metrics, Chrome export.

The measurement substrate behind the paper's §5 evaluation and every
subsequent performance PR:

* :class:`Tracer` — structured timeline events (BBS reconfiguration
  windows, block launches/retires, warp divergences, cache misses,
  DRAM row activations, watchdog snapshots) in a bounded ring buffer
  with ``chrome://tracing`` / Perfetto JSON export;
* :class:`NullTracer` / :data:`NULL_TRACER` — the disabled-mode fast
  path (allocation-free no-ops, < 2 % end-to-end overhead, enforced by
  ``benchmarks/bench_trace_overhead.py``);
* :class:`Metrics` — a registry of named counters / gauges / summary
  histograms with per-engine ``scope()`` namespaces and a shared
  cross-engine namespace (:data:`SHARED_COUNTERS`).

Engines accept ``tracer=`` / ``metrics=`` keyword arguments (see the
:class:`repro.engine.Engine` protocol) and attach both to their run
results (``result.trace`` / ``result.metrics``).  ``docs/observability.md``
documents the event taxonomy and counter naming convention.
"""

from repro.obs.events import (
    PH_COMPLETE,
    PH_COUNTER,
    PH_INSTANT,
    TraceEvent,
)
from repro.obs.metrics import (
    Metrics,
    MetricsScope,
    SHARED_COUNTERS,
    SHARED_GAUGES,
    record_shared_run_metrics,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Metrics",
    "MetricsScope",
    "NULL_TRACER",
    "NullTracer",
    "PH_COMPLETE",
    "PH_COUNTER",
    "PH_INSTANT",
    "SHARED_COUNTERS",
    "SHARED_GAUGES",
    "TraceEvent",
    "Tracer",
    "record_shared_run_metrics",
]
