"""Small synthetic kernels used by tests, examples, and ablations.

``fig1_kernel`` reproduces the nested-conditional control flow of the
paper's Figure 1a — the running example used to illustrate control flow
coalescing (Figures 1 and 2).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir import DType, Kernel, KernelBuilder
from repro.memory import MemoryImage


def saxpy_kernel() -> Kernel:
    """``out[i] = a * x[i] + y[i]`` for ``i < n`` — the canonical quickstart."""
    kb = KernelBuilder("saxpy", params=["a", "x", "y", "out", "n"])
    i = kb.tid()
    with kb.if_(i < kb.param("n")):
        xv = kb.load(kb.param("x") + i)
        yv = kb.load(kb.param("y") + i)
        kb.store(kb.param("out") + i, kb.fparam("a") * xv + yv)
    return kb.build()


def fig1_kernel() -> Kernel:
    """The paper's Figure 1a control flow: a nested conditional.

    ::

        v = data[tid]
        if v < a:            # BB1 -> BB2
            r = 2 * v
        else:                # BB3
            if v < b:        # -> BB4
                r = v + 10
            else:            # -> BB5
                r = sqrt(v)
        out[tid] = r         # BB6
    """
    kb = KernelBuilder("fig1", params=["a", "b", "data", "out"])
    i = kb.tid()
    v = kb.load(kb.param("data") + i)
    r = kb.var("r", 0.0)
    with kb.if_(v < kb.fparam("a")):
        kb.assign(r, v * 2.0)
    with kb.else_():
        with kb.if_(v < kb.fparam("b")):
            kb.assign(r, v + 10.0)
        with kb.else_():
            kb.assign(r, kb.sqrt(v))
    kb.store(kb.param("out") + i, r)
    return kb.build()


def fig1_reference(data: np.ndarray, a: float, b: float) -> np.ndarray:
    """Numpy golden model of :func:`fig1_kernel`."""
    return np.where(data < a, 2 * data, np.where(data < b, data + 10, np.sqrt(data)))


def loop_sum_kernel() -> Kernel:
    """Each thread sums ``count[tid]`` consecutive values — a data-dependent
    loop that exercises back edges and divergent trip counts."""
    kb = KernelBuilder("loop_sum", params=["data", "count", "out", "stride"])
    t = kb.tid()
    n = kb.load(kb.param("count") + t, DType.INT)
    acc = kb.var("acc", 0.0)
    base = kb.param("data") + t * kb.param("stride")
    with kb.for_range(0, n) as j:
        kb.assign(acc, acc + kb.load(base + j))
    kb.store(kb.param("out") + t, acc)
    return kb.build()


def loop_sum_reference(data: np.ndarray, count: np.ndarray, stride: int) -> np.ndarray:
    out = np.zeros(len(count))
    for t, n in enumerate(count):
        out[t] = data[t * stride : t * stride + int(n)].sum()
    return out


def memcopy_kernel() -> Kernel:
    """Pure data movement (models the CFD3 ``time_step``-style kernel the
    paper singles out as memory-bound)."""
    kb = KernelBuilder("memcopy", params=["src", "dst", "n"])
    i = kb.tid()
    with kb.if_(i < kb.param("n")):
        kb.store(kb.param("dst") + i, kb.load(kb.param("src") + i))
    return kb.build()


def make_fig1_workload(
    n_threads: int = 64, seed: int = 7
) -> Tuple[Kernel, MemoryImage, Dict[str, float]]:
    """Kernel + memory + params for the Figure 1a example, ready to run."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 30.0, n_threads)
    mem = MemoryImage(4 * n_threads + 64)
    data_base = mem.alloc_array("data", data)
    out_base = mem.alloc("out", n_threads)
    params = {"a": 10.0, "b": 20.0, "data": data_base, "out": out_base}
    return fig1_kernel(), mem, params
