"""Reference interpreter for the virtual kernel ISA.

Executes a kernel thread-by-thread, sequentially, against a
:class:`~repro.memory.image.MemoryImage`.  It is the golden functional
model: every timing simulator's final memory image is asserted equal to
the interpreter's in the test suite.

The interpreter also records, per thread, the sequence of basic blocks
visited.  The SGMF model and several analyses consume these traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.ir.instr import EVAL, Op, TermKind
from repro.ir.kernel import Kernel
from repro.ir.types import DType, Imm, Operand, Reg, TID_REG, is_param_reg, PARAM_PREFIX
from repro.memory.image import MemoryImage
from repro.resilience.errors import SimulationError

Number = Union[int, float, bool]


class InterpreterError(SimulationError):
    """Raised on runaway or ill-behaved kernels."""


@dataclass
class ThreadTrace:
    """Per-thread execution record."""

    tid: int
    blocks: List[str] = field(default_factory=list)
    instructions: int = 0
    loads: int = 0
    stores: int = 0


@dataclass
class InterpResult:
    """Aggregate result of interpreting a kernel launch."""

    kernel: Kernel
    n_threads: int
    traces: List[ThreadTrace]
    block_visits: Counter = field(default_factory=Counter)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.traces)

    @property
    def total_loads(self) -> int:
        return sum(t.loads for t in self.traces)

    @property
    def total_stores(self) -> int:
        return sum(t.stores for t in self.traces)

    def visits_of(self, tid: int, block: str) -> int:
        return sum(1 for b in self.traces[tid].blocks if b == block)


def _coerce(value: Number, dtype: DType) -> Number:
    if dtype is DType.INT:
        return int(value)
    if dtype is DType.FLOAT:
        return float(value)
    return bool(value)


class Interpreter:
    """Sequential reference executor.

    Parameters
    ----------
    kernel:
        The kernel to run.
    memory:
        Memory image the kernel reads and writes.
    params:
        Launch-parameter values by name; must cover ``kernel.params``.
    max_block_visits:
        Per-thread safety bound against runaway loops.
    """

    def __init__(self, kernel: Kernel, memory: MemoryImage,
                 params: Dict[str, Number], max_block_visits: int = 1_000_000):
        missing = [p for p in kernel.params if p not in params]
        if missing:
            raise InterpreterError(f"missing parameter values: {missing}")
        self.kernel = kernel
        self.memory = memory
        self.params = {
            name: _coerce(params[name], kernel.param_dtypes[name])
            for name in kernel.params
        }
        self.max_block_visits = max_block_visits

    # ------------------------------------------------------------------
    def _fetch(self, regs: Dict[str, Number], tid: int, operand: Operand) -> Number:
        if isinstance(operand, Imm):
            return operand.value
        if operand == TID_REG:
            return tid
        if is_param_reg(operand):
            return self.params[operand.name[len(PARAM_PREFIX):]]
        try:
            return regs[operand.name]
        except KeyError:
            raise InterpreterError(
                f"read of undefined register %{operand.name} "
                f"in kernel {self.kernel.name}"
            ) from None

    def run_thread(self, tid: int) -> ThreadTrace:
        """Execute one thread to completion; return its trace."""
        kernel = self.kernel
        memory = self.memory
        regs: Dict[str, Number] = {}
        trace = ThreadTrace(tid)
        block_name: Optional[str] = kernel.entry
        visits = 0
        while block_name is not None:
            visits += 1
            if visits > self.max_block_visits:
                raise InterpreterError(
                    f"thread {tid} exceeded {self.max_block_visits} block visits "
                    f"in kernel {kernel.name} (runaway loop?)"
                )
            block = kernel.blocks[block_name]
            trace.blocks.append(block_name)
            for instr in block.instrs:
                trace.instructions += 1
                if instr.op is Op.LOAD:
                    addr = self._fetch(regs, tid, instr.srcs[0])
                    regs[instr.dst] = _coerce(memory.read(int(addr)), instr.dtype)
                    trace.loads += 1
                elif instr.op is Op.STORE:
                    addr = self._fetch(regs, tid, instr.srcs[0])
                    value = self._fetch(regs, tid, instr.srcs[1])
                    memory.write(int(addr), value)
                    trace.stores += 1
                else:
                    args = [self._fetch(regs, tid, s) for s in instr.srcs]
                    regs[instr.dst] = _coerce(EVAL[instr.op](*args), instr.dtype)
            term = block.terminator
            if term.kind is TermKind.RET:
                block_name = None
            elif term.kind is TermKind.JMP:
                block_name = term.true_target
            else:
                taken = bool(self._fetch(regs, tid, term.cond))
                block_name = term.true_target if taken else term.false_target
        return trace

    def run(self, n_threads: int) -> InterpResult:
        """Execute ``n_threads`` threads (TIDs 0..n-1) sequentially."""
        traces = [self.run_thread(tid) for tid in range(n_threads)]
        result = InterpResult(self.kernel, n_threads, traces)
        for t in traces:
            result.block_visits.update(t.blocks)
        return result


def interpret(kernel: Kernel, memory: MemoryImage, params: Dict[str, Number],
              n_threads: int, max_block_visits: int = 1_000_000) -> InterpResult:
    """Convenience wrapper: build an :class:`Interpreter` and run it."""
    return Interpreter(kernel, memory, params, max_block_visits).run(n_threads)
