"""Seeded load generator + throughput/latency report for the service.

Drives an :class:`~repro.serve.service.ExecutionService` with a
deterministic request stream (kernel choice drawn from
``random.Random(seed)``) in one of two classic modes:

* **closed loop** — ``concurrency`` clients, each submitting its next
  request only after its previous response lands.  Offered load adapts
  to service speed; measures best-case latency at a given concurrency.
* **open loop** — requests arrive on a fixed schedule (``rate`` per
  second) regardless of completions.  Offered load is constant, so
  queueing (and deadline shedding / queue-full rejection) appears as
  soon as the service falls behind — the honest way to measure tail
  latency under overload.

Request *identity* is deterministic either way: request ``i`` of a
given ``(seed, kernels, n_requests)`` stream always names the same
kernel, and ``run_kernel`` is deterministic, so per-request
``(kernel, status, digest)`` rows are reproducible across runs, worker
counts and batching decisions — which is exactly what the CI smoke job
goldens (``--golden-out``).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.evalharness.options import RunOptions
from repro.serve.api import LatencyStats, RunResponse, SubmitRequest
from repro.serve.service import ExecutionService

__all__ = ["LoadGen", "LoadReport"]


@dataclass
class LoadReport:
    """Everything a load run measured, JSON-able via :meth:`as_dict`."""

    mode: str
    n_requests: int
    wall_s: float
    responses: List[RunResponse] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for resp in self.responses:
            counts[resp.status] = counts.get(resp.status, 0) + 1
        return counts

    def latency(self, component: str = "total_s") -> LatencyStats:
        # Cache hits never queued or executed, so their (zero) component
        # splits would skew everything except the end-to-end total.
        statuses = (("ok", "cached", "degraded") if component == "total_s"
                    else ("ok", "degraded"))
        stats = LatencyStats()
        for resp in self.responses:
            if resp.status in statuses:
                stats.observe(getattr(resp, component))
        return stats

    def identities(self) -> List[Dict[str, Any]]:
        """Per-request ``(kernel, status, digest)`` rows in stream
        order — the deterministic identity a CI golden compares."""
        return [resp.identity() for resp in self.responses]

    def as_dict(self) -> Dict[str, Any]:
        sizes = [r.batch_size for r in self.responses if r.batch_size]
        return {
            "mode": self.mode,
            "requests": self.n_requests,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(self.throughput_rps, 3),
            "status_counts": self.status_counts,
            "latency": {
                name: self.latency(name).summary()
                for name in ("total_s", "queue_s", "compile_s",
                             "execute_s")
            },
            "batch": {
                "mean_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
                "max_size": max(sizes) if sizes else 0,
            },
        }


class LoadGen:
    """Deterministic request stream over a kernel set (see module doc).

    ``kernels`` is the candidate set; request ``i`` draws uniformly
    from it with ``random.Random(seed)``.  All requests share one
    ``options`` (so a small kernel set coalesces aggressively — vary
    the set to control batchability).
    """

    def __init__(self, kernels: Sequence[str], n_requests: int,
                 options: Optional[RunOptions] = None, seed: int = 0,
                 mode: str = "closed", concurrency: int = 4,
                 rate: float = 10.0, deadline_s: Optional[float] = None,
                 want_run: bool = False):
        if mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
        if not kernels:
            raise ValueError("need at least one kernel")
        self.kernels = list(kernels)
        self.n_requests = int(n_requests)
        self.options = options or RunOptions()
        self.seed = seed
        self.mode = mode
        self.concurrency = max(1, int(concurrency))
        self.rate = float(rate)
        self.deadline_s = deadline_s
        self.want_run = want_run

    def requests(self) -> List[SubmitRequest]:
        """The deterministic request stream (index ``i`` → request)."""
        rng = random.Random(self.seed)
        return [
            SubmitRequest(
                kernel=rng.choice(self.kernels), options=self.options,
                deadline_s=self.deadline_s, want_run=self.want_run,
                client=f"loadgen-{i}")
            for i in range(self.n_requests)
        ]

    # -- driving --------------------------------------------------------
    def run(self, service: ExecutionService) -> LoadReport:
        """Drive ``service`` with the stream; responses land in stream
        order in the returned :class:`LoadReport`."""
        stream = self.requests()
        responses: List[Optional[RunResponse]] = [None] * len(stream)
        t0 = time.monotonic()
        if self.mode == "closed":
            self._run_closed(service, stream, responses)
        else:
            self._run_open(service, stream, responses)
        wall = time.monotonic() - t0
        return LoadReport(mode=self.mode, n_requests=len(stream),
                          wall_s=wall,
                          responses=[r for r in responses if r is not None])

    def _run_closed(self, service, stream, responses) -> None:
        cursor = iter(range(len(stream)))
        cursor_lock = threading.Lock()

        def client() -> None:
            while True:
                with cursor_lock:
                    i = next(cursor, None)
                if i is None:
                    return
                ticket = service.submit(stream[i])
                responses[i] = service.wait(ticket)

        threads = [threading.Thread(target=client, daemon=True)
                   for _ in range(min(self.concurrency, len(stream)))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def _run_open(self, service, stream, responses) -> None:
        interval = 1.0 / self.rate if self.rate > 0 else 0.0
        start = time.monotonic()
        tickets = []
        for i, request in enumerate(stream):
            due = start + i * interval
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            tickets.append(service.submit(request))
        for i, ticket in enumerate(tickets):
            responses[i] = service.wait(ticket)
