"""LAVAMD — particle potential/force (Rodinia), paper Table 2:
21 basic blocks.

Particles live in boxes; each thread owns one particle, loops over its
box's neighbour list, and over every particle of each neighbour box,
accumulating a 4-component force with the Rodinia pairwise kernel
``fs = 2·exp(-a2·r²)``.  The two-level loop plus the neighbour-validity
branch give the kernel its deep control-flow nest; the exponential makes
it SCU-heavy — together the archetype of the "computational kernels"
where the paper reports the largest VGIW gains.
"""

from __future__ import annotations

import numpy as np

from repro.ir import DType, Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage

A2 = 0.5          # 2 * alpha^2 in Rodinia terms
NEIGHBORS = 8     # neighbour boxes per box (incl. self)


def lavamd_kernel() -> Kernel:
    kb = KernelBuilder(
        "kernel_gpu_cuda",
        params=["pos", "charge", "nei", "counts", "force", "n_particles",
                "per_box"],
    )
    t = kb.tid()
    per_box = kb.param("per_box")
    with kb.if_(t < kb.param("n_particles")):
        box = t // per_box
        px = kb.load(kb.param("pos") + 3 * t)
        py = kb.load(kb.param("pos") + 3 * t + 1)
        pz = kb.load(kb.param("pos") + 3 * t + 2)

        fx = kb.var("fx", 0.0)
        fy = kb.var("fy", 0.0)
        fz = kb.var("fz", 0.0)
        fw = kb.var("fw", 0.0)

        with kb.for_range(0, NEIGHBORS, name="nbox") as j:
            nb_box = kb.load(kb.param("nei") + box * NEIGHBORS + j, DType.INT)
            with kb.if_(nb_box >= 0):
                first = nb_box * per_box
                # The number of occupied slots varies per box, exactly as
                # in Rodinia (boxes are rarely full): a runtime loop bound.
                cnt = kb.load(kb.param("counts") + nb_box, DType.INT)
                with kb.for_range(0, cnt, name="pk") as k:
                    o = first + k
                    qx = kb.load(kb.param("pos") + 3 * o)
                    qy = kb.load(kb.param("pos") + 3 * o + 1)
                    qz = kb.load(kb.param("pos") + 3 * o + 2)
                    q = kb.load(kb.param("charge") + o)
                    dx = px - qx
                    dy = py - qy
                    dz = pz - qz
                    r2 = dx * dx + dy * dy + dz * dz
                    vij = kb.exp(-A2 * r2)
                    fs = 2.0 * vij * q
                    kb.assign(fw, fw + q * vij)
                    kb.assign(fx, fx + fs * dx)
                    kb.assign(fy, fy + fs * dy)
                    kb.assign(fz, fz + fs * dz)

        kb.store(kb.param("force") + 4 * t, fx)
        kb.store(kb.param("force") + 4 * t + 1, fy)
        kb.store(kb.param("force") + 4 * t + 2, fz)
        kb.store(kb.param("force") + 4 * t + 3, fw)
    return kb.build()


def lavamd_reference(pos, charge, nei, counts, per_box) -> np.ndarray:
    n = len(charge)
    force = np.zeros((n, 4))
    for t in range(n):
        box = t // per_box
        acc = np.zeros(4)
        for j in range(NEIGHBORS):
            nb_box = int(nei[box, j])
            if nb_box < 0:
                continue
            for k in range(int(counts[nb_box])):
                o = nb_box * per_box + k
                d = pos[t] - pos[o]
                r2 = float(d @ d)
                vij = np.exp(-A2 * r2)
                fs = 2.0 * vij * charge[o]
                acc[3] += charge[o] * vij
                acc[0] += fs * d[0]
                acc[1] += fs * d[1]
                acc[2] += fs * d[2]
        force[t] = acc[[0, 1, 2, 3]]
    return force


def make_workload(scale: str = "small", seed: int = 71) -> Workload:
    per_box = pick(scale, 4, 8, 16)
    n_boxes = pick(scale, 8, 128, 512)
    n = per_box * n_boxes
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0.0, 2.0, (n, 3))
    charge = rng.uniform(0.1, 1.0, n)
    # Each box sees ~NEIGHBORS-1 random other boxes plus itself; a few
    # entries are invalid (-1) to mirror edge boxes.
    nei = rng.integers(0, n_boxes, (n_boxes, NEIGHBORS))
    nei[:, 0] = np.arange(n_boxes)  # self
    invalid = rng.uniform(size=(n_boxes, NEIGHBORS)) < 0.2
    invalid[:, 0] = False
    nei = np.where(invalid, -1, nei)
    counts = rng.integers(max(1, per_box // 2), per_box + 1, n_boxes)

    mem = MemoryImage(3 * n + n + n_boxes * (NEIGHBORS + 1) + 4 * n + 64)
    b_pos = mem.alloc_array("pos", pos.ravel())
    b_q = mem.alloc_array("charge", charge)
    b_nei = mem.alloc_array("nei", nei.ravel())
    b_cnt = mem.alloc_array("counts", counts)
    b_force = mem.alloc("force", 4 * n)

    return Workload(
        name="lavamd/kernel_gpu_cuda",
        app="LAVAMD",
        kernel=lavamd_kernel(),
        memory=mem,
        params={
            "pos": b_pos, "charge": b_q, "nei": b_nei, "counts": b_cnt,
            "force": b_force, "n_particles": n, "per_box": per_box,
        },
        n_threads=n,
        expected={
            "force": lavamd_reference(pos, charge, nei, counts,
                                      per_box).ravel()
        },
        paper_blocks=21,
    )
