"""Integration tests for the VGIW core: functional equivalence with the
reference interpreter and first-order timing behaviours."""

import dataclasses

import numpy as np
import pytest

from repro.arch import FabricSpec, VGIWConfig
from repro.compiler import compile_kernel
from repro.interp import interpret
from repro.kernels import (
    fig1_kernel,
    loop_sum_kernel,
    make_fig1_workload,
    memcopy_kernel,
    saxpy_kernel,
)
from repro.memory import MemoryImage
from repro.vgiw import VGIWCore


def _saxpy_setup(n=128):
    mem = MemoryImage(2048)
    bx = mem.alloc_array("x", np.arange(float(n)))
    by = mem.alloc_array("y", np.ones(n))
    bo = mem.alloc("out", n)
    return mem, {"a": 2.0, "x": bx, "y": by, "out": bo, "n": n}


def _run_both(kernel, mem, params, n_threads, config=None):
    golden = mem.clone()
    interpret(kernel, golden, params, n_threads)
    result = VGIWCore(config).run(kernel, mem, params, n_threads)
    assert np.array_equal(mem.data, golden.data), (
        f"VGIW final memory diverges from the interpreter for {kernel.name}"
    )
    return result


def test_saxpy_matches_interpreter():
    mem, params = _saxpy_setup()
    result = _run_both(saxpy_kernel(), mem, params, 128)
    assert result.cycles > 0
    assert result.n_threads == 128


def test_fig1_divergent_matches_interpreter():
    kernel, mem, params = make_fig1_workload(n_threads=192)
    result = _run_both(kernel, mem, params, 192)
    # Each of the 7 blocks is configured exactly once: control flow
    # coalescing reconfigures per block, not per divergent path.
    assert result.bbs.reconfigurations == result.n_blocks


def test_loop_matches_interpreter_and_reschedules_blocks():
    stride, nt = 8, 96
    rng = np.random.default_rng(3)
    data = rng.normal(size=stride * nt)
    count = rng.integers(1, stride + 1, size=nt)
    mem = MemoryImage(8192)
    bd = mem.alloc_array("data", data)
    bc = mem.alloc_array("count", count)
    bo = mem.alloc("out", nt)
    params = {"data": bd, "count": bc, "out": bo, "stride": stride}
    result = _run_both(loop_sum_kernel(), mem, params, nt)
    # The loop header re-executes once per distinct remaining-trip-count
    # cohort: blocks executed must exceed the static block count.
    assert result.bbs.blocks_executed > result.n_blocks


def test_memcopy_runs():
    n = 64
    mem = MemoryImage(1024)
    src = mem.alloc_array("src", np.arange(float(n)))
    dst = mem.alloc("dst", n)
    result = _run_both(memcopy_kernel(), mem, {"src": src, "dst": dst, "n": n}, n)
    assert result.l1.accesses > 0


def test_config_overhead_shrinks_with_thread_count():
    overheads = []
    for n in (64, 512):
        kernel, mem, params = make_fig1_workload(n_threads=n)
        result = VGIWCore().run(kernel, mem, params, n)
        overheads.append(result.config_overhead)
    assert overheads[1] < overheads[0]


def test_lvc_accessed_only_for_crossing_values():
    # saxpy has no block-crossing values: its LVC traffic must be zero.
    mem, params = _saxpy_setup()
    result = VGIWCore().run(saxpy_kernel(), mem, params, 128)
    assert result.lvc_accesses == 0

    # fig1 carries 'v' and 'r' across blocks: LVC traffic is non-zero.
    kernel, mem, params = make_fig1_workload(n_threads=128)
    result = VGIWCore().run(kernel, mem, params, 128)
    assert result.lvc_accesses > 0


def test_replication_speeds_up_execution():
    mem1, params = _saxpy_setup(256)
    mem2 = mem1.clone()
    kernel = saxpy_kernel()
    spec = FabricSpec()
    with_rep = VGIWCore().run(
        compile_kernel(kernel, spec, replicate=True), mem1, params, 256
    )
    without_rep = VGIWCore().run(
        compile_kernel(kernel, spec, replicate=False), mem2, params, 256
    )
    assert with_rep.cycles < without_rep.cycles


def test_token_buffer_depth_limits_inflight():
    # A tiny token buffer throttles injection; cycles must not decrease.
    kernel, mem, params = make_fig1_workload(n_threads=256)
    mem2 = mem.clone()
    deep = VGIWCore(VGIWConfig(token_buffer_depth=64)).run(
        kernel, mem, params, 256
    )
    shallow = VGIWCore(VGIWConfig(token_buffer_depth=2)).run(
        kernel, mem2, params, 256
    )
    assert shallow.cycles >= deep.cycles


def test_fabric_stats_counts_are_consistent():
    kernel, mem, params = make_fig1_workload(n_threads=64)
    result = VGIWCore().run(kernel, mem, params, 64)
    # Every node fire produced a token-buffer event.
    assert result.fabric.tokens == result.fabric.node_fires
    assert result.fabric.threads == result.bbs.threads_streamed
    assert sum(result.fabric.ops.values()) == result.fabric.node_fires
    assert result.fabric.ops["cvu"] > 0  # initiators + terminators


def test_precompiled_kernel_accepted():
    mem, params = _saxpy_setup()
    ck = compile_kernel(saxpy_kernel())
    result = VGIWCore().run(ck, mem, params, 128)
    assert result.kernel_name == "saxpy"


def test_tiling_splits_large_launches():
    # Force tiny tiles via a small CVT.
    config = VGIWConfig(cvt_bits=64 * 3)  # 64 threads per tile for 3 blocks
    mem, params = _saxpy_setup(256)
    result = _run_both(saxpy_kernel(), mem, params, 256, config=config)
    assert result.tiles == 4
