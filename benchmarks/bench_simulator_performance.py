"""Simulator performance: micro throughput + the committed sweep baseline.

Two layers (``docs/performance.md`` is the narrative):

* **Micro benches** — simulator throughput on the Figure 1a kernel
  (node-fires / warp-instructions per second), catching engine-level
  regressions in isolation.
* **The committed baseline** — ``BENCH_simulator_performance.json`` at
  the repo root records the Table 2 ``small`` sweep's wall-clock
  trajectory (serial and ``--jobs 4``) per measured revision.
  ``bench_committed_baseline`` gates the recorded numbers (≥ 1.3×
  serial, ≥ 3× at ``jobs=4`` over the first entry, and — for records
  carrying ``"vectorized": true`` — ≥ 2× over the last scalar-execution
  record); ``bench_golden_cycles_byte_identical`` re-checks the suite's
  cycle counts against ``benchmarks/golden_cycles_small.json`` so a
  speedup can never silently change a reported number.

Re-measure and print a fresh trajectory record with::

    PYTHONPATH=src python benchmarks/bench_simulator_performance.py \
        --remeasure --jobs 4

Regenerate the golden cycle file (only legitimate when the timing
model itself changed — see ``docs/benchmarking.md`` §3) with::

    PYTHONPATH=src python benchmarks/bench_simulator_performance.py \
        --regen-golden
"""

import json
import os

from repro.kernels import make_fig1_workload
from repro.sgmf import SGMFCore
from repro.simt import FermiSM
from repro.vgiw import VGIWCore

N_THREADS = 512

_HERE = os.path.dirname(os.path.abspath(__file__))
GOLDEN_PATH = os.path.join(_HERE, "golden_cycles_small.json")
BASELINE_PATH = os.path.join(
    os.path.dirname(_HERE), "BENCH_simulator_performance.json"
)

#: Acceptance floors for the latest trajectory entry vs. the baseline.
MIN_SERIAL_SPEEDUP = 1.3
MIN_JOBS4_SPEEDUP = 3.0
#: Floor for ``"vectorized": true`` records vs. the last record without
#: the flag — the batch-execution engines must pay for their complexity
#: on the same workload (the PR 8 gate; ``docs/benchmarking.md`` §2).
MIN_VECTORIZED_SPEEDUP = 2.0


# ----------------------------------------------------------------------
# Micro benches: engine throughput on the Figure 1a kernel
# ----------------------------------------------------------------------
def bench_vgiw_simulator(benchmark):
    def run():
        kernel, mem, params = make_fig1_workload(n_threads=N_THREADS)
        return VGIWCore().run(kernel, mem, params, N_THREADS)

    result = benchmark(run)
    assert result.n_threads == N_THREADS


def bench_fermi_simulator(benchmark):
    def run():
        kernel, mem, params = make_fig1_workload(n_threads=N_THREADS)
        return FermiSM().run(kernel, mem, params, N_THREADS)

    result = benchmark(run)
    assert result.sm.warps_launched == N_THREADS // 32


def bench_sgmf_simulator(benchmark):
    def run():
        kernel, mem, params = make_fig1_workload(n_threads=N_THREADS)
        return SGMFCore().run(kernel, mem, params, N_THREADS)

    result = benchmark(run)
    assert result.n_threads == N_THREADS


# ----------------------------------------------------------------------
# The committed sweep baseline
# ----------------------------------------------------------------------
def load_trajectory():
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def check_golden(runs) -> int:
    """Compare a ``small``-scale SuiteResult against the golden cycle
    file; returns the number of (kernel, engine) pairs checked."""
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    checked = 0
    mismatches = []
    for name, engines in golden.items():
        run = runs.get(name)
        assert run is not None, f"golden kernel {name} missing from sweep"
        for eng, want in engines.items():
            got = getattr(run, eng, None)
            got_cycles = None if got is None else got.cycles
            checked += 1
            if got_cycles != want:
                mismatches.append((name, eng, got_cycles, want))
    assert not mismatches, (
        "cycle counts diverged from benchmarks/golden_cycles_small.json "
        f"(host-side optimisations must be cycle-identical): {mismatches}"
    )
    return checked


def bench_committed_baseline():
    """The recorded trajectory meets the PR's acceptance floors."""
    doc = load_trajectory()
    traj = doc["trajectory"]
    assert len(traj) >= 2, "need a baseline entry and at least one follow-up"
    base, latest = traj[0], traj[-1]
    serial_speedup = base["serial_s"] / latest["serial_s"]
    jobs4_speedup = base["serial_s"] / latest["jobs4_s"]
    assert serial_speedup >= MIN_SERIAL_SPEEDUP, (
        f"serial speedup {serial_speedup:.2f}x below "
        f"{MIN_SERIAL_SPEEDUP}x floor"
    )
    assert jobs4_speedup >= MIN_JOBS4_SPEEDUP, (
        f"--jobs 4 speedup {jobs4_speedup:.2f}x below "
        f"{MIN_JOBS4_SPEEDUP}x floor"
    )
    assert latest["golden"] == "byte-identical"
    # The recorded ratios stay consistent with the raw seconds.
    assert abs(latest["speedup_serial"] - serial_speedup) < 0.1
    assert abs(latest["speedup_jobs4"] - jobs4_speedup) < 0.1

    if latest.get("vectorized"):
        scalar = [e for e in traj if not e.get("vectorized")]
        assert scalar, "a vectorized record needs a scalar denominator"
        denom = scalar[-1]
        vec_speedup = denom["serial_s"] / latest["serial_s"]
        floor = doc["floors"].get(
            "speedup_vectorized", MIN_VECTORIZED_SPEEDUP
        )
        assert vec_speedup >= floor, (
            f"vectorized speedup {vec_speedup:.2f}x (vs. "
            f"{denom['label']!r}) below {floor}x floor"
        )
        assert abs(latest["speedup_vectorized"] - vec_speedup) < 0.1

    # The warm-stream floor: once a "resultcache" section is committed,
    # its record must keep clearing its own floor (the PR 10 gate;
    # benchmarks/bench_result_cache.py holds the full contract).
    if "resultcache" in doc:
        rc = doc["resultcache"]
        warm_speedup = rc["record"]["cold_s"] / rc["record"]["warm_s"]
        assert warm_speedup >= rc["floors"]["speedup_warm"], (
            f"warm-stream speedup {warm_speedup:.2f}x below the "
            f"{rc['floors']['speedup_warm']}x floor"
        )
        assert rc["record"]["golden"] == "byte-identical"


def bench_golden_cycles_byte_identical(suite_runs, scale):
    """The current sweep reproduces the golden cycles bit-for-bit.

    Uses the session-wide suite fixture (no extra sweep).  Only
    meaningful at the ``small`` scale the golden file was recorded at.
    """
    if scale != "small":
        import pytest

        pytest.skip("golden cycle file is recorded at --scale small")
    checked = check_golden(suite_runs)
    assert checked >= 60  # 21 kernels x 3 engines (unmappable SGMF = None)


# ----------------------------------------------------------------------
# --remeasure: time the sweep and print a fresh trajectory record
# ----------------------------------------------------------------------
def _remeasure(jobs: int) -> dict:
    import multiprocessing
    import platform
    import time

    from repro.evalharness.runner import run_suite

    t0 = time.time()
    runs = run_suite(None, scale="small")
    serial_s = time.time() - t0
    check_golden(runs)

    t0 = time.time()
    run_suite(None, scale="small", jobs=jobs)
    jobsn_s = time.time() - t0

    doc = load_trajectory()
    base = doc["trajectory"][0]
    scalar = [e for e in doc["trajectory"] if not e.get("vectorized")]
    record = {
        "label": "remeasure",
        "date": time.strftime("%Y-%m-%d"),
        "host": (f"{multiprocessing.cpu_count()} cores, "
                 f"python {platform.python_version()}"),
        "serial_s": round(serial_s, 2),
        "jobs4_s": round(jobsn_s, 2),
        "speedup_serial": round(base["serial_s"] / serial_s, 2),
        "speedup_jobs4": round(base["serial_s"] / jobsn_s, 2),
        "golden": "byte-identical",
    }
    from repro.ir.vecops import scalar_exec_requested

    if scalar and not scalar_exec_requested():
        record["vectorized"] = True
        record["speedup_vectorized"] = round(
            scalar[-1]["serial_s"] / serial_s, 2
        )
    return record


def _regen_golden() -> int:
    """Rewrite ``golden_cycles_small.json`` from a fresh sweep.

    Only legitimate when the timing model itself changed; the commit
    must say why the cycles moved (``docs/benchmarking.md`` §3)."""
    from repro.evalharness.runner import run_suite

    runs = run_suite(None, scale="small")
    golden = {}
    for name in sorted(runs):
        run = runs[name]
        engines = {}
        for eng in ("vgiw", "fermi", "sgmf"):
            res = getattr(run, eng, None)
            if res is not None:
                engines[eng] = res.cycles
        golden[name] = engines
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(golden, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return sum(len(v) for v in golden.values())


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser()
    ap.add_argument("--remeasure", action="store_true",
                    help="time the small sweep (serial + --jobs) and "
                         "print a trajectory record to append to "
                         "BENCH_simulator_performance.json")
    ap.add_argument("--regen-golden", action="store_true",
                    help="rewrite benchmarks/golden_cycles_small.json "
                         "from a fresh sweep (timing-model changes "
                         "only; see docs/benchmarking.md)")
    ap.add_argument("--jobs", type=int, default=4)
    opts = ap.parse_args()
    if opts.remeasure:
        print(json.dumps(_remeasure(opts.jobs), indent=2))
    elif opts.regen_golden:
        pairs = _regen_golden()
        print(f"rewrote {GOLDEN_PATH} ({pairs} kernel x engine pairs)")
    else:
        ap.error("nothing to do (did you mean --remeasure, "
                 "--regen-golden, or "
                 "`pytest benchmarks/bench_simulator_performance.py`?)")
