"""Vectorized (numpy) batch kernels for the virtual-ISA opcode semantics.

This module is the batch-execution twin of :data:`repro.ir.instr.EVAL`:
for every non-memory opcode it provides a masked numpy array kernel that
evaluates the instruction for a whole *batch* of lanes / tokens /
threads at once, with results **bit-identical** to mapping the scalar
``EVAL`` function over the batch.  The three timing simulators and the
reference interpreter all evaluate through these kernels by default
(``REPRO_SCALAR_EXEC=1`` restores the scalar path, which the
differential fuzzer uses as the oracle that the two implementations
agree — see ``docs/fuzzing.md``).

The semantics being vectorized are the *pinned edge-case semantics*
table in ``src/repro/ir/instr.py``, rendered as the normative reference
in ``docs/semantics.md``: a wrapping signed-64-bit integer datapath,
div/rem-by-zero -> 0, shift amounts masked to [0, 63], the F2I rule
(truncate toward zero, NaN -> 0, saturate to INT64_MIN/MAX) for every
float-to-int conversion, and NaN-aware float special functions.

Parity notes (each is covered by ``tests/test_vecops.py``):

* Integer ops run on ``int64`` arrays; numpy's wraparound is exactly
  the pinned two's-complement wrap.  ``INT64_MIN // -1`` wraps to
  ``INT64_MIN`` on both paths.
* ``FEXP``/``FLOG`` evaluate element-wise through :mod:`math` — on this
  class of hosts ``np.exp``/``np.log`` differ from the C library in the
  last ulp for some inputs, and bit-identity beats throughput here.
* Mixed int/float comparisons are evaluated in ``np.longdouble`` when
  the platform's long double carries a 64-bit mantissa (x86-64), which
  makes them exact like Python's arbitrary-precision comparisons; other
  platforms fall back to the element-wise scalar path.
* ``object``-dtype operands (a register whose lanes hold differently
  typed values) fall back to the scalar ``EVAL`` element-wise, so the
  fast path never changes a result.
"""

from __future__ import annotations

import math
import os
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.ir.instr import (
    EVAL,
    INT64_MAX,
    INT64_MIN,
    Op,
    _TWO63_F,
    _fexp,
    _flog,
    coerce_i64,
)

__all__ = [
    "VEVAL",
    "addr_batch",
    "as_value_array",
    "coerce_array",
    "f2i_array",
    "f64_batch",
    "hazard_key",
    "scalar_exec_requested",
    "stores_after_loads",
    "to_int_operand",
    "vec_eval",
    "vec_eval_raw",
]

#: True when the platform's ``np.longdouble`` mantissa is wide enough
#: (>= 63 bits) to represent every int64 exactly — the precondition for
#: the exact mixed int/float comparison path.
_LONGDOUBLE_EXACT = np.finfo(np.longdouble).nmant >= 63

_I64 = np.int64
_F64 = np.float64


def scalar_exec_requested() -> bool:
    """True when ``REPRO_SCALAR_EXEC=1`` asks for the scalar execution
    paths (the vectorized engines read this once per ``run()``)."""
    return os.environ.get("REPRO_SCALAR_EXEC", "") == "1"


# ----------------------------------------------------------------------
# Conversions (the pinned datapath rules, batched)
# ----------------------------------------------------------------------
def f2i_array(a: np.ndarray) -> np.ndarray:
    """The pinned F2I rule over a float64 array: truncate toward zero,
    NaN -> 0, out-of-range saturates to INT64_MIN/MAX."""
    with np.errstate(invalid="ignore"):
        t = np.trunc(a)
        out = np.empty(a.shape, _I64)
        nan = np.isnan(a)
        hi = t >= _TWO63_F
        lo = t <= -_TWO63_F
        safe = ~(nan | hi | lo)
        out[safe] = t[safe].astype(_I64)
        out[hi] = INT64_MAX
        out[lo] = INT64_MIN
        out[nan] = 0
    return out


def to_int_operand(a):
    """Integer-op operand conversion (:func:`repro.ir.instr._asi`,
    batched): int64 passes through, bool widens, float64 converts by
    the F2I rule.  ``object`` arrays return ``None`` (caller falls back
    to the scalar path)."""
    if isinstance(a, np.ndarray):
        k = a.dtype.kind
        if k == "i":
            return a
        if k == "b":
            return a.astype(_I64)
        if k == "f":
            return f2i_array(a)
        return None  # object dtype: scalar fallback
    # Python scalar constant (pre-wrapped by the plan builders).
    return coerce_i64(a)


def _as_float(a):
    if isinstance(a, np.ndarray):
        if a.dtype.kind == "f":
            return a
        if a.dtype.kind in "ib":
            return a.astype(_F64)
        return None
    return float(a)


def _as_bool(a):
    if isinstance(a, np.ndarray):
        if a.dtype.kind == "b":
            return a
        if a.dtype.kind in "if":
            # bool(x) per element; NaN != 0 is True, matching bool(nan).
            return a != 0
        return None
    return bool(a)


def as_value_array(values, n: int) -> np.ndarray:
    """Materialise a batch of Python values as the narrowest array that
    holds them exactly: int64 / float64 / bool when uniformly typed and
    in range, ``object`` otherwise (the scalar-fallback marker)."""
    first = values[0] if n else 0
    t = type(first)
    if t is bool:
        if all(type(v) is bool for v in values):
            return np.array(values, dtype=bool)
    elif t is int:
        if all(type(v) is int for v in values):
            # Datapath values are wrapped, but be safe against callers
            # handing raw Python ints.
            if all(INT64_MIN <= v <= INT64_MAX for v in values):
                return np.array(values, dtype=_I64)
    elif t is float:
        if all(type(v) is float for v in values):
            return np.array(values, dtype=_F64)
    return np.array(values, dtype=object)


def coerce_array(a, dt: int, n: int) -> np.ndarray:
    """Result coercion over a batch: ``dt`` is 1 = int (wrap ints, F2I
    floats), 2 = float, 0 = bool — the batched twin of the scalar
    ``int/float/bool`` row coercion."""
    if not isinstance(a, np.ndarray):
        # Broadcast a constant result (e.g. MOV of an immediate).
        if dt == 1:
            return np.full(n, coerce_i64(a), _I64)
        if dt == 2:
            return np.full(n, float(a), _F64)
        return np.full(n, bool(a), dtype=bool)
    k = a.dtype.kind
    if dt == 1:
        if k == "i":
            return a
        if k == "b":
            return a.astype(_I64)
        if k == "f":
            return f2i_array(a)
        return np.array([coerce_i64(v) for v in a], _I64)
    if dt == 2:
        if k == "f":
            return a
        if k in "ib":
            return a.astype(_F64)
        return np.array([float(v) for v in a], _F64)
    if k == "b":
        return a
    if k in "if":
        return a != 0
    return np.array([bool(v) for v in a], dtype=bool)


def addr_batch(a, n: int, size: int) -> Optional[np.ndarray]:
    """Normalize an operand batch into validated int64 word addresses
    for a ``size``-word memory.  Returns ``None`` whenever the batch
    cannot be proven safe (non-finite floats, values outside int64,
    out-of-bounds, mixed types) — callers fall back to their scalar
    walk, whose per-element ``int()`` + bounds check raises the exact
    errors in the exact order."""
    if isinstance(a, np.ndarray):
        k = a.dtype.kind
        if k == "b":
            a = a.astype(np.int64)
        elif k == "f":
            if not np.isfinite(a).all():
                return None
            t = np.trunc(a)
            if (np.abs(t) >= _TWO63_F).any():
                return None
            a = t.astype(np.int64)
        elif k == "O":
            return None
    else:
        try:
            a = np.full(n, int(a), np.int64)
        except (ValueError, TypeError, OverflowError):
            return None
    if a.min() < 0 or a.max() >= size:
        return None
    return a


def f64_batch(v, n: int) -> Optional[np.ndarray]:
    """Coerce a value batch to float64 (the memory cell type), exactly
    like per-element ``float()``; ``None`` requests scalar fallback."""
    if isinstance(v, np.ndarray):
        k = v.dtype.kind
        if k == "f":
            return v
        if k in "ib":
            return v.astype(np.float64)
        try:
            return np.array([float(x) for x in v.tolist()], np.float64)
        except (ValueError, TypeError, OverflowError):
            return None
    try:
        return np.full(n, float(v), np.float64)
    except (ValueError, TypeError, OverflowError):
        return None


#: Sequence numbers are packed into the low bits of the hazard keys —
#: ``key = thread << _SEQ_BITS | seq`` — so one int64 compare *is* the
#: lexicographic ``(thread, program position)`` compare.
_SEQ_BITS = 31


def hazard_key(threads: np.ndarray, seq: int) -> np.ndarray:
    """Pack per-element thread indices and one program-order sequence
    number into the int64 keys :func:`stores_after_loads` compares."""
    return (threads << _SEQ_BITS) | seq


def stores_after_loads(
    load_a: np.ndarray,
    load_k: np.ndarray,
    store_a: np.ndarray,
    store_k: np.ndarray,
) -> bool:
    """Decide whether a batch's load/store address overlap is benign.

    The batched engines evaluate every thread's loads against the
    *initial* memory image and buffer every store.  That reproduces the
    scalar thread-major walk exactly iff, for every address that is both
    loaded and stored within the batch, **every load of it precedes
    every store of it** in thread-major order — then the scalar walk's
    loads would have observed the initial image too, and last-wins
    commit reproduces the final image.  The classic private
    read-modify-write (``w[i] = w[i] + d``: load before store, same
    thread) passes; a flat address-set disjointness test would not.

    ``load_a``/``store_a`` are word addresses; ``load_k``/``store_k``
    are the matching :func:`hazard_key` values.  Returns ``True`` when
    the batch result is exactly the scalar result."""
    if not load_a.size or not store_a.size:
        return True
    hot = np.isin(store_a, load_a)
    if not hot.any():
        return True
    sa, sk = store_a[hot], store_k[hot]
    lm = np.isin(load_a, sa)
    la, lk = load_a[lm], load_k[lm]
    # Per-address extremes: the latest load key must still precede the
    # earliest store key.  Both unique-address lists are identical (the
    # overlap set), so the reduceat results align positionally.
    lo = np.argsort(la, kind="stable")
    la_s, lk_s = la[lo], lk[lo]
    l_starts = np.flatnonzero(np.r_[True, la_s[1:] != la_s[:-1]])
    l_max = np.maximum.reduceat(lk_s, l_starts)
    so = np.argsort(sa, kind="stable")
    sa_s, sk_s = sa[so], sk[so]
    s_starts = np.flatnonzero(np.r_[True, sa_s[1:] != sa_s[:-1]])
    s_min = np.minimum.reduceat(sk_s, s_starts)
    return bool((l_max < s_min).all())


# ----------------------------------------------------------------------
# Opcode kernels
# ----------------------------------------------------------------------
# Each kernel takes operand arrays (or Python scalar constants) and
# returns the raw (pre-coercion) result array; ``None`` means "use the
# scalar fallback" (object-dtype operands, or a platform without exact
# long-double comparisons).  ``np.errstate`` silences the warnings the
# pinned semantics intentionally lean on (int division by zero, float
# invalid/overflow).

def _int2(fn):
    def k(a, b):
        a = to_int_operand(a)
        b = to_int_operand(b)
        if a is None or b is None:
            return None
        with np.errstate(all="ignore"):
            return fn(a, b)
    return k


def _int1(fn):
    def k(a):
        a = to_int_operand(a)
        if a is None:
            return None
        with np.errstate(all="ignore"):
            return fn(a)
    return k


def _flt2(fn):
    def k(a, b):
        a = _as_float(a)
        b = _as_float(b)
        if a is None or b is None:
            return None
        with np.errstate(all="ignore"):
            return fn(a, b)
    return k


def _flt1(fn):
    def k(a):
        a = _as_float(a)
        if a is None:
            return None
        with np.errstate(all="ignore"):
            return fn(a)
    return k


def _vdiv(a, b):
    # floor division; b == 0 -> 0 (numpy already returns 0 there), and
    # INT64_MIN // -1 wraps to INT64_MIN exactly like the scalar wrap.
    return np.floor_divide(a, b)


def _vrem(a, b):
    return np.remainder(a, b)  # sign follows divisor; b == 0 -> 0


def _vshl(a, b):
    return np.left_shift(a, b & 63)


def _vshr(a, b):
    return np.right_shift(a, b & 63)


def _vnot(a):
    if isinstance(a, np.ndarray) and a.dtype.kind == "b":
        return ~a  # logical NOT on predicates
    if isinstance(a, bool):
        return not a
    a = to_int_operand(a)
    if a is None:
        return None
    return ~a


def _vfmin(a, b):
    # min(a, b) returns b only when b < a — NaN-ordering included.
    return np.where(b < a, b, a)


def _vfmax(a, b):
    return np.where(b > a, b, a)


def _vfrsqrt(a):
    with np.errstate(all="ignore"):
        out = 1.0 / np.sqrt(a)
        out = np.where(a == 0.0, math.inf, out)   # covers -0.0 -> +inf
        out = np.where(np.isnan(a) | (a < 0.0), math.nan, out)
    return out


def _vfsqrt(a):
    with np.errstate(invalid="ignore"):
        return np.where(a < 0.0, math.nan, np.sqrt(a))


def _vfexp(a):
    # np.exp differs from math.exp in the last ulp for some inputs;
    # bit-identity with the scalar path wins over throughput (SCU ops
    # are rare).
    if not isinstance(a, np.ndarray):
        return _fexp(a)
    return np.array([_fexp(x) for x in a.tolist()], _F64)


def _vflog(a):
    if not isinstance(a, np.ndarray):
        return _flog(a)
    return np.array([_flog(x) for x in a.tolist()], _F64)


def _vfsin(a):
    with np.errstate(invalid="ignore"):
        out = np.sin(a)
    return out


def _vfcos(a):
    with np.errstate(invalid="ignore"):
        out = np.cos(a)
    return out


def _vfdiv(a, b):
    return np.divide(a, b)  # IEEE poles match the pinned table


def _vffloor(a):
    # Scalar FFLOOR round-trips through int (math.floor), so -0.0
    # becomes +0.0; "+ 0.0" reproduces that. NaN/inf propagate.
    return np.floor(a) + 0.0


def _vi2f(a):
    if isinstance(a, np.ndarray):
        if a.dtype.kind in "ib":
            return a.astype(_F64)
        if a.dtype.kind == "f":
            # float(int(a)) == trunc(a) for finite a; NaN/inf propagate.
            # "+ 0.0" turns trunc's -0.0 into the +0.0 that int() gives.
            return np.trunc(a) + 0.0
        return None
    return EVAL[Op.I2F](a)


def _vf2i(a):
    a = _as_float(a)
    if a is None:
        return None
    if isinstance(a, np.ndarray):
        return f2i_array(a)
    return EVAL[Op.F2I](a)


def _cmp(fn):
    """Comparison kernel: exact across mixed int64/float64 operands."""
    def k(a, b):
        aa = isinstance(a, np.ndarray)
        bb = isinstance(b, np.ndarray)
        ak = a.dtype.kind if aa else ("b" if type(a) is bool
                                      else "i" if isinstance(a, int)
                                      else "f")
        bk = b.dtype.kind if bb else ("b" if type(b) is bool
                                      else "i" if isinstance(b, int)
                                      else "f")
        if ak == "O" or bk == "O":
            return None
        # A raw Python int constant outside int64 can't be represented
        # in any array dtype exactly — let the scalar path compare it.
        if not aa and ak == "i" and not INT64_MIN <= a <= INT64_MAX:
            return None
        if not bb and bk == "i" and not INT64_MIN <= b <= INT64_MAX:
            return None
        ai = ak in "ib"
        bi = bk in "ib"
        if ai != bi:
            # int-vs-float: promote both to long double so every int64
            # is represented exactly (Python compares these exactly).
            if not _LONGDOUBLE_EXACT:
                return None
            a = np.asarray(a).astype(np.longdouble)
            b = np.asarray(b).astype(np.longdouble)
        with np.errstate(invalid="ignore"):
            return fn(a, b)
    return k


def _vselect(p, a, b, dt: int, n: int):
    pb = _as_bool(p)
    if pb is None:
        return None
    # Coerce each arm *before* selecting: where() would otherwise
    # promote an int64 arm to float64 (lossy above 2**53) even for the
    # lanes that pick the other arm.
    ca = coerce_array(a, dt, n)
    cb = coerce_array(b, dt, n)
    if ca.dtype.kind == "O" or cb.dtype.kind == "O":
        return None
    if not isinstance(pb, np.ndarray):
        return ca if pb else cb
    return np.where(pb, ca, cb)


#: op -> batch kernel over operand arrays.  MOV/SELECT are handled in
#: :func:`vec_eval` (their semantics interact with result coercion).
VEVAL: Dict[Op, Callable] = {
    Op.ADD: _int2(np.add),
    Op.SUB: _int2(np.subtract),
    Op.MUL: _int2(np.multiply),
    Op.MIN: _int2(np.minimum),
    Op.MAX: _int2(np.maximum),
    Op.AND: _int2(np.bitwise_and),
    Op.OR: _int2(np.bitwise_or),
    Op.XOR: _int2(np.bitwise_xor),
    Op.SHL: _int2(_vshl),
    Op.SHR: _int2(_vshr),
    Op.NEG: _int1(np.negative),
    Op.NOT: _vnot,
    Op.ABS: _int1(np.abs),
    Op.FADD: _flt2(np.add),
    Op.FSUB: _flt2(np.subtract),
    Op.FMUL: _flt2(np.multiply),
    Op.FMIN: _flt2(_vfmin),
    Op.FMAX: _flt2(_vfmax),
    Op.FNEG: _flt1(np.negative),
    Op.FABS: _flt1(np.abs),
    Op.EQ: _cmp(np.equal),
    Op.NE: _cmp(np.not_equal),
    Op.LT: _cmp(np.less),
    Op.LE: _cmp(np.less_equal),
    Op.GT: _cmp(np.greater),
    Op.GE: _cmp(np.greater_equal),
    Op.I2F: _vi2f,
    Op.F2I: _vf2i,
    Op.DIV: _int2(_vdiv),
    Op.REM: _int2(_vrem),
    Op.FDIV: _flt2(_vfdiv),
    Op.FSQRT: _flt1(_vfsqrt),
    Op.FRSQRT: _flt1(_vfrsqrt),
    Op.FEXP: _flt1(_vfexp),
    Op.FLOG: _flt1(_vflog),
    Op.FSIN: _flt1(_vfsin),
    Op.FCOS: _flt1(_vfcos),
    Op.FFLOOR: _flt1(_vffloor),
}


def _vfma(a, b, c):
    fa, fb, fc = _as_float(a), _as_float(b), _as_float(c)
    if fa is None or fb is None or fc is None:
        return None
    with np.errstate(all="ignore"):
        return fa * fb + fc  # two roundings, exactly like the scalar


VEVAL[Op.FMA] = _vfma


def _scalar_fallback(op: Op, args, dt: int, n: int) -> np.ndarray:
    fn = EVAL[op]
    cols = [
        a.tolist() if isinstance(a, np.ndarray) else [a] * n for a in args
    ]
    out = [fn(*vals) for vals in zip(*cols)]
    if dt == 1:
        out = [coerce_i64(v) for v in out]
    elif dt == 2:
        out = [float(v) for v in out]
    else:
        out = [bool(v) for v in out]
    return as_value_array(out, n)


def vec_eval(op: Op, args: Tuple, dt: int, n: int) -> np.ndarray:
    """Evaluate ``op`` over a batch and apply the result coercion.

    ``args`` holds numpy arrays of length ``n`` (or Python scalar
    constants to broadcast); ``dt`` selects the coercion (1 = int,
    2 = float, 0 = bool).  The result is bit-identical to calling
    ``EVAL[op]`` plus the scalar coercion element-wise — object-dtype
    operands (mixed-type lanes) transparently take that scalar path.
    """
    if op is Op.MOV:
        return coerce_array(args[0], dt, n)
    if op is Op.SELECT:
        out = _vselect(args[0], args[1], args[2], dt, n)
        if out is None:
            return _scalar_fallback(op, args, dt, n)
        if not isinstance(out, np.ndarray) or out.shape == ():
            out = np.full(n, out.item() if hasattr(out, "item") else out)
        return out
    kern = VEVAL[op]
    raw = kern(*args)
    if raw is None:
        return _scalar_fallback(op, args, dt, n)
    if not isinstance(raw, np.ndarray) or raw.shape == ():
        # All-constant operands: broadcast the scalar result.
        v = raw.item() if hasattr(raw, "item") else raw
        return coerce_array(np.full(n, v), dt, n)
    return coerce_array(raw, dt, n)


def _materialize(a, n: int) -> np.ndarray:
    if isinstance(a, np.ndarray):
        return a
    return as_value_array([a] * n, n)


def _scalar_fallback_raw(op: Op, args, n: int) -> np.ndarray:
    fn = EVAL[op]
    cols = [
        a.tolist() if isinstance(a, np.ndarray) else [a] * n for a in args
    ]
    return as_value_array([fn(*vals) for vals in zip(*cols)], n)


def vec_eval_raw(op: Op, args: Tuple, n: int) -> np.ndarray:
    """Evaluate ``op`` over a batch with NO result coercion — the twin
    of consumers that store ``EVAL``'s raw result (the MT-CGRF plan
    interpreter's ``dt == 0`` rows).  MOV passes its operand through
    unchanged and SELECT picks between same-dtype arms; mixed-dtype
    arms and object batches take the scalar path element-wise.
    """
    if op is Op.MOV:
        return _materialize(args[0], n)
    if op is Op.SELECT:
        pb = _as_bool(args[0])
        a = _materialize(args[1], n)
        b = _materialize(args[2], n)
        if pb is None or a.dtype != b.dtype or a.dtype.kind == "O":
            return _scalar_fallback_raw(op, args, n)
        if not isinstance(pb, np.ndarray):
            return a if pb else b
        return np.where(pb, a, b)
    raw = VEVAL[op](*args)
    if raw is None:
        return _scalar_fallback_raw(op, args, n)
    if not isinstance(raw, np.ndarray) or raw.shape == ():
        v = raw.item() if hasattr(raw, "item") else raw
        return as_value_array([v] * n, n)
    return raw
