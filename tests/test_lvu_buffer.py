"""Tests for the LVU line buffers and LVC bank-access accounting."""

from repro.arch import MemoryConfig
from repro.memory import LiveValueCache, MemorySystem
from repro.vgiw import VGIWCore
from repro.kernels import make_fig1_workload


def _lvc():
    ms = MemorySystem(MemoryConfig(), l1_write_back=True)
    return LiveValueCache(64 * 1024, 64, 4, 16, 4, ms.l2)


def test_sequential_tids_hit_line_buffer():
    lvc = _lvc()
    t = 0.0
    for tid in range(32):  # 64B line = 16 words
        t = lvc.access(t, lv_id=0, tid=tid, is_write=True, port=1)
    assert lvc.writes == 32
    # 2 line openings + 1 dirty flush when crossing into the second line
    # (the final line stays buffered).
    assert lvc.bank_accesses == 3
    assert lvc.buffered == 30


def test_ports_are_independent():
    lvc = _lvc()
    lvc.access(0.0, 0, 0, True, port=1)
    lvc.access(0.0, 0, 100, True, port=2)  # different line, other port
    # Port 1's buffer is untouched by port 2's traffic.
    lvc.access(1.0, 0, 1, True, port=1)
    assert lvc.buffered == 1


def test_dirty_line_flushes_on_replacement():
    lvc = _lvc()
    for tid in range(16):
        lvc.access(float(tid), 0, tid, True, port=1)
    before = lvc.bank_accesses
    # Crossing into the next line flushes the dirty buffered line.
    lvc.access(20.0, 0, 16, True, port=1)
    assert lvc.bank_accesses >= before + 1


def test_no_port_means_no_buffering():
    lvc = _lvc()
    for tid in range(16):
        lvc.access(float(tid), 0, tid, False)
    assert lvc.buffered == 0
    assert lvc.bank_accesses == 16


def test_vgiw_counts_both_granularities():
    kernel, mem, params = make_fig1_workload(n_threads=256)
    result = VGIWCore().run(kernel, mem, params, 256)
    # Word requests exceed bank accesses thanks to the line buffers.
    assert result.lvc_accesses > result.lvc_bank_accesses
    assert result.lvc_buffered > 0
    # Bank accesses come from the same cache stats the energy model uses.
    assert result.lvc_bank_accesses == result.lvc_stats.accesses


def test_tiling_respects_live_value_footprint():
    from repro.arch import VGIWConfig
    from repro.compiler import compile_kernel

    kernel, mem, params = make_fig1_workload(n_threads=512)
    ck = compile_kernel(kernel)
    assert ck.n_live_values >= 1
    cfg = VGIWConfig()
    result = VGIWCore(cfg).run(ck, mem, params, 512)
    # fig1 has 1 live value: one tile suffices at this size.
    assert result.tiles == 1
