"""Full Gaussian-elimination solve on the VGIW core.

Drives the Rodinia GE kernel pair through the whole elimination
(the host loop launches ``Fan1`` then ``Fan2`` for every pivot step,
exactly like Rodinia's ``ForwardSub``), back-substitutes on the host,
and checks the solution against ``numpy.linalg.solve``.

Also prints how the two kernels' costs evolve over steps: ``Fan2``'s
thread count shrinks quadratically, so the fixed per-launch costs
matter more and more — a miniature of the paper's thread-count
amortisation story.

Run:  python examples/gaussian_solve.py
"""

import numpy as np

from repro.kernels.gaussian import fan1_kernel, fan2_kernel
from repro.memory import MemoryImage
from repro.vgiw import VGIWCore


def main():
    size = 48
    rng = np.random.default_rng(17)
    a = rng.uniform(1.0, 2.0, (size, size)) + np.eye(size) * size
    b = rng.uniform(0.0, 1.0, size)
    expected = np.linalg.solve(a, b)

    mem = MemoryImage(2 * size * size + 2 * size + 64)
    b_a = mem.alloc_array("a", a.ravel())
    b_b = mem.alloc_array("b", b)
    b_m = mem.alloc_array("m", np.zeros(size * size))

    core = VGIWCore()
    k1, k2 = fan1_kernel(), fan2_kernel()
    total = 0.0
    print(f"forward elimination of a {size}x{size} system")
    print(f"{'step':>4s} {'Fan1 thr':>9s} {'Fan1 cyc':>9s} "
          f"{'Fan2 thr':>9s} {'Fan2 cyc':>9s}")
    for t in range(size - 1):
        p1 = {"a": b_a, "m": b_m, "size": size, "t": t}
        n1 = size - 1 - t
        r1 = core.run(k1, mem, p1, n1)
        p2 = {"a": b_a, "b": b_b, "m": b_m, "size": size, "t": t}
        n2 = (size - 1 - t) * (size - t)
        r2 = core.run(k2, mem, p2, n2)
        total += r1.cycles + r2.cycles
        if t % 12 == 0 or t == size - 2:
            print(f"{t:4d} {n1:9d} {r1.cycles:9.0f} {n2:9d} {r2.cycles:9.0f}")

    # Host-side back substitution on the eliminated system.
    u = mem.read_region("a").reshape(size, size)
    rhs = mem.read_region("b")
    x = np.zeros(size)
    for i in range(size - 1, -1, -1):
        x[i] = (rhs[i] - u[i, i + 1:] @ x[i + 1:]) / u[i, i]

    np.testing.assert_allclose(x, expected, rtol=1e-9)
    print(f"\nsolved in {total:.0f} VGIW cycles over {2 * (size - 1)} launches")
    print("solution matches numpy.linalg.solve")


if __name__ == "__main__":
    main()
