"""Quickstart: build a kernel, run it on all three simulated machines.

The kernel is SAXPY with a bounds guard — the "hello world" of
data-parallel programming.  The script shows the full public API path:

1. write a kernel with :class:`repro.ir.KernelBuilder`,
2. lay out memory with :class:`repro.memory.MemoryImage`,
3. execute on the VGIW core, the Fermi-class SM, and the SGMF core,
4. verify against the reference interpreter and inspect the stats.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.interp import interpret
from repro.ir import KernelBuilder
from repro.memory import MemoryImage
from repro.power import energy_fermi, energy_vgiw
from repro.sgmf import SGMFCore
from repro.simt import FermiSM
from repro.vgiw import VGIWCore


def build_saxpy():
    kb = KernelBuilder("saxpy", params=["a", "x", "y", "out", "n"])
    i = kb.tid()
    with kb.if_(i < kb.param("n")):
        xv = kb.load(kb.param("x") + i)
        yv = kb.load(kb.param("y") + i)
        kb.store(kb.param("out") + i, kb.fparam("a") * xv + yv)
    return kb.build()


def main():
    n = 2048
    kernel = build_saxpy()
    print(kernel)
    print()

    rng = np.random.default_rng(0)
    x, y = rng.normal(size=n), rng.normal(size=n)

    def fresh_memory():
        mem = MemoryImage(4 * n + 64)
        bx = mem.alloc_array("x", x)
        by = mem.alloc_array("y", y)
        bo = mem.alloc("out", n)
        return mem, {"a": 2.5, "x": bx, "y": by, "out": bo, "n": n}

    # Golden run on the reference interpreter.
    golden, params = fresh_memory()
    interpret(kernel, golden, params, n)

    # The three machines.
    mem_v, params = fresh_memory()
    vgiw = VGIWCore().run(kernel, mem_v, params, n)
    mem_f, params = fresh_memory()
    fermi = FermiSM().run(kernel, mem_f, params, n)
    mem_s, params = fresh_memory()
    sgmf = SGMFCore().run(kernel, mem_s, params, n)

    for name, mem in (("VGIW", mem_v), ("Fermi", mem_f), ("SGMF", mem_s)):
        assert np.array_equal(mem.data, golden.data), f"{name} mismatch!"
    np.testing.assert_allclose(mem_v.read_region("out"), 2.5 * x + y)
    print("all three machines match the interpreter bit-for-bit")
    print()

    print(f"{'machine':8s} {'cycles':>10s}   notes")
    print(f"{'VGIW':8s} {vgiw.cycles:10.0f}   "
          f"{vgiw.bbs.reconfigurations} reconfigurations, "
          f"{vgiw.lvc_accesses} LVC accesses")
    print(f"{'Fermi':8s} {fermi.cycles:10.0f}   "
          f"{fermi.sm.instructions_issued} warp instructions, "
          f"{fermi.sm.rf_accesses} RF accesses")
    print(f"{'SGMF':8s} {sgmf.cycles:10.0f}   "
          f"{sgmf.n_replicas} whole-kernel replicas, "
          f"{sgmf.waste_fires} predicated-off fires")
    print()

    ev, ef = energy_vgiw(vgiw), energy_fermi(fermi)
    print(f"energy: VGIW {ev.system / 1e6:.1f} uJ vs "
          f"Fermi {ef.system / 1e6:.1f} uJ "
          f"(efficiency {ef.system / ev.system:.2f}x)")


if __name__ == "__main__":
    main()
