"""Fuzz campaign orchestration: generate → oracle → reduce → corpus.

A *campaign* runs ``count`` generated cases (per-case seeds drawn from
one master seed) through the differential oracle, optionally fanning
the work out over a process pool, then — serially, in the parent —
reduces every divergent case to a minimal reproducer and writes it to
a corpus directory.

Determinism is the contract that makes campaign output a regression
artifact:

* per-case seeds are fixed up front from the master seed, so case *i*
  is the same kernel no matter how many workers run the campaign;
* results are collected in input order (not completion order);
* the summary (:meth:`CampaignResult.summary`) contains no wall-clock
  or worker-count fields, so ``--jobs 4`` and ``--jobs 1`` produce
  byte-identical summary JSON for the same seed/count.

The time budget is a parent-side check between case collections: when
it expires, unfinished cases are *skipped* (counted, never partially
reported).  A budget-truncated summary is still deterministic for the
cases it covers, but which cases those are depends on wall-clock — so
CI smoke jobs pick budgets comfortably above the expected runtime.

Campaign counters land in the ``fuzz`` metrics scope
(:mod:`repro.obs`): ``cases.processed``, ``cases.skipped``,
``cases.divergent``, ``outcome.<status>``, ``reduce.attempted``,
``reduce.written``.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.cache import CompileCache
from repro.fuzz.corpus import save_corpus_case
from repro.fuzz.generate import FuzzCase, GenConfig, generate_case
from repro.fuzz.oracle import (
    DEFAULT_ENGINES,
    DEFAULT_WATCHDOG,
    CaseReport,
    run_case,
)
from repro.fuzz.reduce import reduce_case
from repro.obs import Metrics

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign"]


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignConfig:
    """Knobs for one fuzz campaign."""

    #: master seed; per-case seeds derive from it deterministically
    seed: int = 0
    #: number of cases to generate and run
    count: int = 100
    #: process fan-out (1 = run inline in this process)
    jobs: int = 1
    #: wall-clock budget in seconds (None = unbounded)
    time_budget: Optional[float] = None
    #: engines the oracle exercises
    engines: Tuple[str, ...] = DEFAULT_ENGINES
    #: generator size knobs
    gen: GenConfig = field(default_factory=GenConfig)
    #: reduce divergent cases to minimal reproducers
    reduce: bool = True
    #: where reduced reproducers are written (None = don't write)
    corpus_dir: Optional[str] = None

    def case_seeds(self) -> List[int]:
        rng = random.Random(self.seed)
        return [rng.getrandbits(48) for _ in range(self.count)]


# ----------------------------------------------------------------------
# Worker (module top level: picklable under every start method)
# ----------------------------------------------------------------------
#: per-process compile cache (each pool worker gets its own copy)
_WORKER_CACHE: Optional[CompileCache] = None


def _oracle_one(index: int, case_seed: int, config: CampaignConfig,
                cache: Optional[CompileCache]) -> Tuple[int, CaseReport]:
    case = generate_case(case_seed, config.gen)
    report = run_case(
        case,
        engines=config.engines,
        watchdog=DEFAULT_WATCHDOG,
        compile_cache=cache,
    )
    return index, report


def _campaign_worker(payload) -> Tuple[int, CaseReport]:
    index, case_seed, config = payload
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CompileCache()
    return _oracle_one(index, case_seed, config, _WORKER_CACHE)


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    config: CampaignConfig
    #: oracle verdicts in input order (budget-skipped cases absent)
    reports: List[CaseReport]
    #: cases skipped by the time budget
    skipped: int = 0
    #: corpus files written, ``{kernel_name: path}`` in input order
    reproducers: Dict[str, str] = field(default_factory=dict)

    @property
    def divergent_reports(self) -> List[CaseReport]:
        return [r for r in self.reports if r.divergent]

    @property
    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for report in self.reports:
            for outcome in report.outcomes:
                counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def summary(self) -> Dict[str, object]:
        """Deterministic campaign summary (no timing, no job count)."""
        return {
            "campaign": {
                "seed": self.config.seed,
                "count": self.config.count,
                "engines": list(self.config.engines),
            },
            "processed": len(self.reports),
            "skipped": self.skipped,
            "status_counts": dict(sorted(self.status_counts.items())),
            "divergent_count": len(self.divergent_reports),
            "divergent": [r.to_dict() for r in self.divergent_reports],
            "reproducers": list(self.reproducers),
        }


# ----------------------------------------------------------------------
# Reduction predicate
# ----------------------------------------------------------------------
def _signature(report: CaseReport) -> frozenset:
    """The non-benign ``(engine, status)`` pairs of a report."""
    return frozenset(
        (o.engine, o.status) for o in report.outcomes if not o.benign
    )


def _make_predicate(config: CampaignConfig, original: CaseReport,
                    cache: Optional[CompileCache]):
    """Interestingness: the candidate still shows at least one of the
    original's failing ``(engine, status)`` pairs."""
    wanted = _signature(original)

    def predicate(case: FuzzCase) -> bool:
        report = run_case(
            case,
            engines=config.engines,
            watchdog=DEFAULT_WATCHDOG,
            compile_cache=cache,
        )
        return bool(_signature(report) & wanted)

    return predicate


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
def run_campaign(config: CampaignConfig,
                 metrics: Optional[Metrics] = None,
                 progress=None) -> CampaignResult:
    """Run one campaign to completion (or to its time budget).

    ``progress`` is an optional callable ``(index, report)`` invoked in
    input order as each verdict lands (the CLI prints a line per case).
    """
    seeds = config.case_seeds()
    deadline = (time.monotonic() + config.time_budget
                if config.time_budget is not None else None)
    reports: List[CaseReport] = []
    skipped = 0

    def expired() -> bool:
        return deadline is not None and time.monotonic() > deadline

    if config.jobs <= 1:
        cache = CompileCache()
        for index, case_seed in enumerate(seeds):
            if expired():
                skipped = len(seeds) - index
                break
            _, report = _oracle_one(index, case_seed, config, cache)
            reports.append(report)
            if progress is not None:
                progress(index, report)
    else:
        payloads = [
            (index, case_seed, config)
            for index, case_seed in enumerate(seeds)
        ]
        with ProcessPoolExecutor(max_workers=config.jobs) as pool:
            futures = [
                pool.submit(_campaign_worker, payload)
                for payload in payloads
            ]
            # Input-order collection keeps reports (and therefore the
            # summary) independent of completion order.
            for index, future in enumerate(futures):
                if expired():
                    for pending in futures[index:]:
                        pending.cancel()
                    skipped = sum(
                        1 for pending in futures[index:]
                        if pending.cancelled()
                    )
                    # non-cancellable stragglers still finish; count
                    # them as skipped too — their reports are dropped
                    # so the cut is clean at ``index``.
                    skipped = len(seeds) - index
                    break
                _, report = future.result()
                reports.append(report)
                if progress is not None:
                    progress(index, report)

    # -- reduction + corpus (serial, parent-side, deterministic) -------
    reproducers: Dict[str, str] = {}
    reduce_attempted = 0
    if config.reduce and config.corpus_dir is not None:
        cache = CompileCache()
        os.makedirs(config.corpus_dir, exist_ok=True)
        for report in reports:
            if not report.divergent:
                continue
            reduce_attempted += 1
            case = generate_case(report.seed, config.gen)
            predicate = _make_predicate(config, report, cache)
            reduced = reduce_case(case, predicate)
            engines = sorted({e for e, _ in _signature(report)})
            statuses = sorted({s for _, s in _signature(report)})
            name = f"fuzz-seed-{report.seed:012x}"
            path = os.path.join(config.corpus_dir, f"{name}.kir")
            save_corpus_case(path, reduced, meta={
                "engines": " ".join(engines),
                "status": " ".join(statuses),
                "note": "auto-reduced campaign reproducer",
            })
            reproducers[name] = path

    result = CampaignResult(
        config=config,
        reports=reports,
        skipped=skipped,
        reproducers=reproducers,
    )

    if metrics is not None:
        scope = metrics.scope("fuzz")
        scope.inc("cases.processed", len(reports))
        scope.inc("cases.skipped", skipped)
        scope.inc("cases.divergent", len(result.divergent_reports))
        for status, count in result.status_counts.items():
            scope.inc(f"outcome.{status}", count)
        scope.inc("reduce.attempted", reduce_attempted)
        scope.inc("reduce.written", len(reproducers))
    return result
