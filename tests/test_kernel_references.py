"""Direct tests of the numpy reference models themselves.

The reference models are load-bearing (every workload's golden check
depends on them), so they get their own sanity tests against closed-form
or brute-force alternatives.
"""

import numpy as np

from repro.kernels.bfs import random_csr_graph
from repro.kernels.cfd import FF_VALUES, NNB, _flux_reference, _make_mesh
from repro.kernels.hotspot import AMB_TEMP, hotspot_reference
from repro.kernels.lud import diagonal_step_reference, perimeter_reference
from repro.kernels.nw import PENALTY, nw_reference_full
from repro.kernels.pathfinder import pathfinder_row_reference
from repro.kernels.srad import srad_reference


def test_bfs_graph_is_wellformed_csr():
    row_ptr, col = random_csr_graph(50, avg_degree=3, seed=1)
    assert len(row_ptr) == 51
    assert row_ptr[0] == 0
    assert np.all(np.diff(row_ptr) >= 0)
    assert len(col) == row_ptr[-1]
    assert col.min() >= 0 and col.max() < 50


def test_hotspot_reference_equilibrium():
    # A uniform field at ambient with no power must stay put.
    temp = np.full((8, 8), AMB_TEMP)
    power = np.zeros((8, 8))
    out = hotspot_reference(temp, power)
    np.testing.assert_allclose(out, temp)
    # Power injection heats the field.
    out2 = hotspot_reference(temp, np.ones((8, 8)))
    assert (out2 > temp).all()


def test_lud_diagonal_step_matches_full_lu():
    rng = np.random.default_rng(4)
    b = 6
    tile = rng.uniform(0.5, 1.5, (b, b)) + np.eye(b) * b
    # Apply all steps; the result must satisfy A = L @ U.
    work = tile.copy()
    for k in range(b):
        work = diagonal_step_reference(work, k)
    l = np.tril(work, -1) + np.eye(b)
    u = np.triu(work)
    np.testing.assert_allclose(l @ u, tile, rtol=1e-9)


def test_lud_perimeter_solves_triangular_systems():
    rng = np.random.default_rng(5)
    b = 5
    diag = rng.uniform(0.5, 1.5, (b, b)) + np.eye(b) * b
    # Factorise so diag holds L (unit lower) and U.
    work = diag.copy()
    for k in range(b):
        work = diagonal_step_reference(work, k)
    l = np.tril(work, -1) + np.eye(b)
    u = np.triu(work)
    rs = rng.normal(size=(b, b))
    cs = rng.normal(size=(b, b))
    e_rs, e_cs = perimeter_reference(work, rs, cs)
    np.testing.assert_allclose(l @ e_rs, rs, rtol=1e-9)   # L y = a
    np.testing.assert_allclose(e_cs @ u, cs, rtol=1e-9)   # x U = a


def test_nw_reference_greedy_bounds():
    rng = np.random.default_rng(6)
    ref = rng.integers(-5, 6, (9, 9)).astype(float)
    score = nw_reference_full(ref, PENALTY)
    # Boundary rows are the gap penalties.
    np.testing.assert_array_equal(score[0], -PENALTY * np.arange(9))
    # DP is monotone under better match scores.
    better = nw_reference_full(ref + 1.0, PENALTY)
    assert (better[1:, 1:] >= score[1:, 1:]).all()


def test_pathfinder_row_reference_brute_force():
    rng = np.random.default_rng(7)
    wall = rng.integers(0, 9, 16).astype(float)
    prev = rng.integers(0, 30, 16).astype(float)
    got = pathfinder_row_reference(wall, prev)
    for c in range(16):
        lo = max(0, c - 1)
        hi = min(15, c + 1)
        assert got[c] == wall[c] + prev[lo:hi + 1].min()


def test_srad_reference_uniform_image():
    # A perfectly uniform image has no gradients: q2 = 0, so the
    # coefficient saturates at its q0-driven constant.
    image = np.full((6, 6), 2.0)
    c = srad_reference(image)
    expected = 1.0 / (1.0 + (0.0 - 0.05) / (0.05 * 1.05))
    np.testing.assert_allclose(c, np.clip(expected, 0, 1))


def test_cfd_flux_conservation_shape():
    variables, neighbors, normals, _ = _make_mesh(32, seed=8)
    flux = _flux_reference(variables, neighbors, normals)
    assert flux.shape == (5, 32)
    assert np.isfinite(flux).all()
    # Wall-only elements produce zero mass flux.
    walls_only = np.full_like(neighbors, -2)
    flux2 = _flux_reference(variables, walls_only, normals)
    np.testing.assert_array_equal(flux2[0], np.zeros(32))
    np.testing.assert_array_equal(flux2[4], np.zeros(32))
