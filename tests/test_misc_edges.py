"""Edge-path tests for small utilities across the library."""

import pytest

from repro.compiler import PartitionError, split_block
from repro.ir import BasicBlock, Kernel, Terminator
from repro.kernels import saxpy_kernel
from repro.vgiw.bbs import BBSStats, batch_popcount


def test_split_block_refuses_single_instruction():
    blocks = {
        "entry": BasicBlock("entry", [], Terminator.ret()),
    }
    k = Kernel("k", [], blocks, entry="entry")
    with pytest.raises(PartitionError, match="cannot be split"):
        split_block(k, "entry")


def test_split_block_leaves_original_untouched():
    k = saxpy_kernel()
    before = {n: len(b.instrs) for n, b in k.blocks.items()}
    split_block(k, "then.1")
    after = {n: len(b.instrs) for n, b in k.blocks.items()}
    assert before == after


def test_split_names_do_not_collide():
    k = saxpy_kernel()
    k2 = split_block(k, "then.1")
    k3 = split_block(k2, "then.1")
    names = set(k3.blocks)
    assert len(names) == len(k.blocks) + 2
    assert "then.1.split1" in names
    assert "then.1.split2" in names


def test_bbs_stats_overhead():
    stats = BBSStats(config_cycles=50)
    assert stats.config_overhead(1000) == 0.05
    assert stats.config_overhead(0) == 0.0


def test_batch_popcount_edge():
    assert batch_popcount(0) == 0
    assert batch_popcount((1 << 64) - 1) == 64


def test_cache_hit_rate_empty():
    from repro.memory import Cache

    c = Cache("x", 1024, 128, 2, 2, 1, None)
    assert c.stats.hit_rate == 0.0
    c.access(0.0, 0, False)
    c.access(10.0, 0, False)
    assert c.stats.hit_rate == 0.5


def test_write_validate_line_becomes_resident_dirty():
    from repro.memory import Cache

    c = Cache("x", 1024, 128, 2, 2, 1, None, write_back=True,
              write_validate=True)
    c.access(0.0, 5, True)
    assert c.contains(5)
    # A read of the validated line hits.
    misses = c.stats.read_misses
    c.access(5.0, 5, False)
    assert c.stats.read_misses == misses


def test_fabric_spec_requires_perimeter_for_memory_units():
    from repro.arch import FabricSpec, UnitKind
    from repro.compiler import CapacityError, Fabric

    spec = FabricSpec(
        width=3, height=3,
        counts={UnitKind.LDST: 5, UnitKind.LVU: 4},
    )
    # 9 units, perimeter is 8: LDST+LVU = 9 > 8.
    with pytest.raises(CapacityError, match="perimeter"):
        Fabric(spec)
