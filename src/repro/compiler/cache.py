"""Content-hash-keyed compile cache.

Every evaluation sweep used to recompile each kernel once per engine
per run: the VGIW flow (liveness → DFGs → partitioning → place & route)
for the VGIW core, the whole-kernel mapping for SGMF, the CFG analyses
for the Fermi occupancy model, and the per-launch optimisation pipeline
before all of them.  None of those results depend on anything but the
kernel's IR and the architecture parameters, so they are perfectly
memoisable — this module is that memo.

Keys are **content hashes**: SHA-256 over the kernel's canonical
textual IR (:func:`repro.ir.text.kernel_to_text`), the ``repr`` of the
architecture config object (the arch dataclasses have stable,
value-complete reprs), and the compile options.  Changing a single
instruction, a fabric unit count, or an option therefore changes the
key; nothing is ever served stale.  A formatted ``CACHE_VERSION``
participates in every key so a schema change invalidates old disk
entries wholesale.

Two storage tiers:

* **in-memory** — a plain dict, always on.  This is what a single
  sweep (or a process-pool worker) hits when the same kernel×config
  pair recurs: retries of a degraded kernel, ablation sweeps that vary
  one machine's knob while the others recompile identically, and the
  double optimisation in ``run_kernel`` (the rolled SGMF variant
  shares its specialisation prefix with the unrolled one).
* **on-disk** (optional, ``cache_dir=``) — one pickle per entry named
  by its key hash, written atomically and durably through
  :func:`repro.resilience.atomicio.atomic_pickle` (tmp file + fsync +
  ``os.replace``, safe under concurrent ``--jobs`` workers).  A corrupt,
  truncated, or unreadable entry is treated as a miss and rebuilt —
  the cache can only ever cost a recompile, never correctness
  (``stats.disk_errors`` counts such falls-back).

Hit/miss counters are exported through :class:`repro.obs.Metrics`
(scope ``compile``) by :meth:`CompileCache.record_metrics`, which the
evaluation harness calls at the end of a sweep; ``docs/performance.md``
documents how to read them.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Callable, Dict, Optional

from repro.resilience.atomicio import atomic_pickle

__all__ = [
    "CACHE_VERSION",
    "CompileCache",
    "cached_compile_kernel",
    "cached_map_kernel",
    "cached_optimize_kernel",
    "kernel_fingerprint",
]

#: Bump when the pickled payload schema changes (invalidates all disk
#: entries at once — the version participates in every key).
CACHE_VERSION = 1


def kernel_fingerprint(kernel) -> str:
    """SHA-256 of the kernel's canonical textual IR.

    The textual format is a complete round-trippable serialisation of
    the IR (``parse_kernel(kernel_to_text(k))`` is identity), so two
    kernels share a fingerprint iff they are the same program.
    """
    from repro.ir.text import kernel_to_text

    return hashlib.sha256(kernel_to_text(kernel).encode()).hexdigest()


class CompileCache:
    """Content-addressed memo for pure kernel-level computations.

    Parameters
    ----------
    cache_dir:
        Optional directory for the persistent tier (created on
        demand).  ``None`` keeps the cache in-memory only.

    Counters (``hits`` / ``misses`` / ``disk_hits`` / ``disk_writes`` /
    ``disk_errors``) are plain attributes; :meth:`stats` returns them
    as a dict and :meth:`record_metrics` publishes them into a
    :class:`repro.obs.Metrics` registry under the ``compile`` scope.
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir
        self._mem: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_writes = 0
        self.disk_errors = 0

    # -- keys ----------------------------------------------------------
    @staticmethod
    def make_key(category: str, *parts: str) -> str:
        """Hash ``category`` + ``parts`` (with the cache version) into
        a hex key."""
        h = hashlib.sha256()
        h.update(f"repro-cache-v{CACHE_VERSION}|{category}".encode())
        for part in parts:
            h.update(b"|")
            h.update(part.encode())
        return h.hexdigest()

    # -- lookup --------------------------------------------------------
    def get_or_build(self, category: str, key: str,
                     builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``(category, key)``, building
        (and storing) it on a miss."""
        entry = self._mem.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        if self.cache_dir is not None:
            value = self._disk_load(key)
            if value is not None:
                self.disk_hits += 1
                self.hits += 1
                self._mem[key] = value
                return value
        self.misses += 1
        value = builder()
        self._mem[key] = value
        if self.cache_dir is not None:
            self._disk_store(key, value)
        return value

    # -- persistent tier -----------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _disk_load(self, key: str) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:  # corrupt / truncated / version-skewed entry
            self.disk_errors += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _disk_store(self, key: str, value: Any) -> None:
        try:
            atomic_pickle(self._path(key), value)
            self.disk_writes += 1
        except Exception:
            # Unpicklable payloads or an unwritable directory degrade
            # the cache to in-memory; they never fail the compile.
            self.disk_errors += 1

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "disk_errors": self.disk_errors,
            "entries": len(self._mem),
        }

    def record_metrics(self, metrics) -> None:
        """Publish the counters into ``metrics`` (scope ``compile``)."""
        if metrics is None:
            return
        scope = metrics.scope("compile")
        scope.inc("cache.hits", self.hits)
        scope.inc("cache.misses", self.misses)
        scope.inc("cache.disk_hits", self.disk_hits)
        scope.inc("cache.disk_writes", self.disk_writes)
        scope.inc("cache.disk_errors", self.disk_errors)
        scope.gauge("cache.entries", len(self._mem))

    def merge_counters(self, other: "CompileCache") -> None:
        """Fold another cache's counters into this one (the parent
        process aggregates its ``--jobs`` workers' caches)."""
        self.merge_stats(other.stats())

    def merge_stats(self, stats: Dict[str, int]) -> None:
        """Fold a :meth:`stats` dict into the counters (what a
        ``--jobs`` worker ships back across the process boundary)."""
        self.hits += stats.get("hits", 0)
        self.misses += stats.get("misses", 0)
        self.disk_hits += stats.get("disk_hits", 0)
        self.disk_writes += stats.get("disk_writes", 0)
        self.disk_errors += stats.get("disk_errors", 0)

    def __len__(self) -> int:
        return len(self._mem)

    def __repr__(self) -> str:
        tier = f", dir={self.cache_dir!r}" if self.cache_dir else ""
        return (f"CompileCache({len(self._mem)} entries, "
                f"{self.hits} hits, {self.misses} misses{tier})")


# ----------------------------------------------------------------------
# Cached front ends for the three per-kernel computations
# ----------------------------------------------------------------------
def cached_compile_kernel(kernel, spec=None, cache: Optional[CompileCache]
                          = None, replicate: bool = True,
                          replica_cap: int = 8):
    """:func:`repro.compiler.pipeline.compile_kernel` through ``cache``.

    The key covers the kernel IR, the fabric spec, and both options;
    with ``cache=None`` this is exactly ``compile_kernel``.
    """
    from repro.compiler.pipeline import compile_kernel

    if cache is None:
        return compile_kernel(kernel, spec, replicate=replicate,
                              replica_cap=replica_cap)
    key = cache.make_key(
        "vgiw-compile", kernel_fingerprint(kernel), repr(spec),
        f"replicate={replicate}", f"replica_cap={replica_cap}",
    )
    return cache.get_or_build(
        "vgiw-compile", key,
        lambda: compile_kernel(kernel, spec, replicate=replicate,
                               replica_cap=replica_cap),
    )


def cached_map_kernel(kernel, spec, cache: Optional[CompileCache] = None):
    """:func:`repro.sgmf.mapping.map_kernel` through ``cache``.

    ``SGMFUnmappableError`` is cached too (as a sentinel), so a sweep
    does not re-derive the capacity proof for every unmappable run.
    """
    from repro.sgmf.mapping import SGMFUnmappableError, map_kernel

    if cache is None:
        return map_kernel(kernel, spec)
    key = cache.make_key(
        "sgmf-map", kernel_fingerprint(kernel), repr(spec),
    )

    def build():
        try:
            return map_kernel(kernel, spec)
        except SGMFUnmappableError as exc:
            return _Unmappable(str(exc))

    result = cache.get_or_build("sgmf-map", key, build)
    if isinstance(result, _Unmappable):
        raise SGMFUnmappableError(result.message)
    return result


def cached_optimize_kernel(kernel, params=None, unroll: bool = True,
                           cache: Optional[CompileCache] = None):
    """:func:`repro.compiler.optimize.optimize_kernel` through ``cache``."""
    from repro.compiler.optimize import optimize_kernel

    if cache is None:
        return optimize_kernel(kernel, params=params, unroll=unroll)
    param_part = "None" if params is None else repr(sorted(params.items()))
    key = cache.make_key(
        "optimize", kernel_fingerprint(kernel), param_part,
        f"unroll={unroll}",
    )
    return cache.get_or_build(
        "optimize", key,
        lambda: optimize_kernel(kernel, params=params, unroll=unroll),
    )


class _Unmappable:
    """Pickle-friendly cached stand-in for ``SGMFUnmappableError``."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message
