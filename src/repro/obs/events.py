"""Structured timeline events (the tracer's unit of record).

One :class:`TraceEvent` is one box/marker on a timeline viewed in
``chrome://tracing`` / Perfetto.  The taxonomy (``cat`` values) is
documented in ``docs/observability.md``; the important categories are

========== ==================================================
``vgiw.bbs``    BBS reconfiguration windows
``vgiw.block``  block-vector executions through the MT-CGRF
``fermi.simt``  warp launches/retirements and IPDOM divergences
``sgmf.thread`` per-thread dataflow walks on the SGMF core
``mem.l1`` / ``mem.l2`` / ``mem.lvc``  cache misses
``mem.dram``    DRAM row activations
``watchdog``    diagnostic snapshots attached by the watchdog
========== ==================================================

Timestamps are simulated cycles.  The Chrome trace format wants
microseconds; the export uses 1 cycle == 1 us, which Perfetto renders
fine (``displayTimeUnit`` is advisory only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

#: Chrome trace phase codes this layer emits.
PH_COMPLETE = "X"   # a span: ts + dur
PH_INSTANT = "i"    # a point marker
PH_COUNTER = "C"    # a sampled counter track


@dataclass
class TraceEvent:
    """One timeline event (Chrome-trace-shaped, cycles for time)."""

    name: str
    cat: str
    ph: str
    ts: float
    dur: float = 0.0
    pid: str = "run"                 # process label (engine name)
    tid: Union[int, str] = 0         # track within the process
    args: Optional[Dict[str, Any]] = field(default=None)

    def to_chrome(self, pid_of) -> Dict[str, Any]:
        """Render as a Chrome trace event dict.

        ``pid_of`` maps the string process label to a stable integer
        pid (Chrome's JSON format wants numbers).
        """
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": round(float(self.ts), 3),
            "pid": pid_of(self.pid),
            "tid": self.tid if isinstance(self.tid, int) else 0,
        }
        if self.ph == PH_COMPLETE:
            out["dur"] = round(float(self.dur), 3)
        if self.ph == PH_INSTANT:
            out["s"] = "t"  # thread-scoped marker
        if self.args:
            out["args"] = dict(self.args)
        elif not isinstance(self.tid, int):
            out["args"] = {"track": self.tid}
        return out

    def brief(self) -> str:
        """Compact one-line rendering (watchdog snapshots embed these)."""
        span = f"+{self.dur:.0f}" if self.ph == PH_COMPLETE else ""
        return f"@{self.ts:.0f}{span} {self.cat}:{self.name}"
