"""Tests for the introspection tools: DOT export, profiling, policies."""

import numpy as np
import pytest

from repro.arch import VGIWConfig
from repro.compiler import Fabric, allocate_live_values, build_kernel_dfgs, compile_kernel
from repro.compiler.dot import cfg_to_dot, dfg_to_dot, fabric_to_dot
from repro.arch import FabricSpec
from repro.interp import interpret
from repro.kernels import fig1_kernel, make_fig1_workload
from repro.vgiw import VGIWCore


def test_cfg_dot_contains_all_blocks_and_edges():
    k = fig1_kernel()
    dot = cfg_to_dot(k)
    assert dot.startswith("digraph")
    for name in k.blocks:
        assert f'"{name}"' in dot
    # Conditional edges are labelled.
    assert '[label="T"' in dot
    assert '[label="F"' in dot


def test_dfg_dot_with_placement():
    from repro.kernels import saxpy_kernel

    ck = compile_kernel(saxpy_kernel())
    cb = ck.blocks["then.1"]  # two loads + store: has a memory-order join
    dot = dfg_to_dot(cb.dfg, cb.placement.replicas[0])
    assert "digraph" in dot
    # Unit assignments are annotated.
    assert "\\nu" in dot
    # Control (memory-ordering) edges render dashed.
    assert "style=dashed" in dot


def test_fabric_dot_occupancy():
    k = fig1_kernel()
    ck = compile_kernel(k)
    cb = ck.blocks["entry"]
    dot = fabric_to_dot(ck.fabric, cb.placement.replicas[0])
    assert dot.count("fillcolor") == len(cb.placement.replicas[0].unit_of)


def test_profile_records_every_execution():
    kernel, mem, params = make_fig1_workload(n_threads=256)
    r = VGIWCore().run(kernel, mem, params, 256, profile=True)
    assert len(r.block_profile) == r.bbs.blocks_executed
    total_threads = sum(rec.n_threads for rec in r.block_profile)
    assert total_threads == r.bbs.threads_streamed
    for rec in r.block_profile:
        assert rec.end >= rec.start
        assert rec.span >= rec.inject_cycles - 1  # injection is a lower bound

    agg = r.profile_by_block()
    assert set(agg) <= set(kernel.blocks)
    assert sum(v["executions"] for v in agg.values()) == len(r.block_profile)


def test_profile_off_by_default():
    kernel, mem, params = make_fig1_workload(n_threads=64)
    r = VGIWCore().run(kernel, mem, params, 64)
    assert r.block_profile == []


@pytest.mark.parametrize("policy", ["smallest_id", "largest_vector", "round_robin"])
def test_all_bbs_policies_are_correct(policy):
    kernel, mem, params = make_fig1_workload(n_threads=128)
    golden = mem.clone()
    interpret(kernel, golden, params, 128)
    r = VGIWCore(VGIWConfig(bbs_policy=policy)).run(kernel, mem, params, 128)
    assert np.array_equal(mem.data, golden.data)
    assert r.cycles > 0


def test_smallest_id_policy_is_competitive_on_divergence():
    results = {}
    for policy in ("smallest_id", "largest_vector"):
        kernel, mem, params = make_fig1_workload(n_threads=512)
        r = VGIWCore(VGIWConfig(bbs_policy=policy)).run(
            kernel, mem, params, 512
        )
        results[policy] = r.cycles
    assert results["smallest_id"] <= results["largest_vector"] * 1.02
