"""Every Table 2 workload: interpreter vs. numpy golden model.

These tests validate the IR implementations of the Rodinia-like kernels
themselves; the simulators are separately validated against the
interpreter in test_cross_simulator.py.
"""

import pytest

from repro.compiler.optimize import optimize_kernel
from repro.interp import interpret
from repro.kernels.registry import TABLE2, all_names, entry, make_workload


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_workload_matches_numpy_golden(name):
    w = make_workload(name, "tiny")
    interpret(w.kernel, w.memory, w.params, w.n_threads)
    w.check()


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_optimized_kernel_matches_numpy_golden(name):
    w = make_workload(name, "tiny")
    k = optimize_kernel(w.kernel)
    # DCE + FMA contraction must not change results.
    interpret(k, w.memory, w.params, w.n_threads)
    w.check()


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_workload_metadata(name):
    e = entry(name)
    w = make_workload(name, "tiny")
    assert w.app == e.app
    assert w.n_threads > 0
    assert w.expected, "every workload needs a golden model"
    assert w.paper_blocks == e.paper_blocks


def test_registry_covers_table2():
    assert len(TABLE2) == 21
    assert len({e.name for e in TABLE2}) == 21
    apps = {e.app for e in TABLE2}
    assert len(apps) == 12  # 12 applications (CFD contributes 4 kernels)


def test_scales_are_ordered():
    # Larger scales must launch at least as many threads.
    for name in ("nn/euclid", "hotspot/hotspot_kernel", "bfs/Kernel"):
        tiny = make_workload(name, "tiny").n_threads
        small = make_workload(name, "small").n_threads
        assert tiny < small
