"""Tests for the `python -m repro.evalharness` CLI."""

import json

import pytest

from repro.evalharness.__main__ import main


def test_cli_subset_to_files(tmp_path, capsys):
    out = tmp_path / "report.md"
    archive = tmp_path / "runs.json"
    rc = main([
        "--scale", "tiny",
        "--kernels", "nn/euclid,gaussian/Fan1",
        "--out", str(out),
        "--json", str(archive),
    ])
    assert rc == 0
    text = out.read_text()
    assert "Figure 7" in text
    assert "nn/euclid" in text
    data = json.loads(archive.read_text())
    assert set(data) == {"nn/euclid", "gaussian/Fan1"}


def test_cli_stdout(capsys):
    rc = main(["--scale", "tiny", "--kernels", "nn/euclid"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "EXPERIMENTS" in out
    assert "nn/euclid" in out


def test_cli_rejects_unknown_kernel():
    with pytest.raises(SystemExit):
        main(["--kernels", "not/a_kernel"])
