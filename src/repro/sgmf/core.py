"""SGMF core execution: the dataflow-GPGPU baseline.

Threads stream through the whole-kernel resident graph with no
reconfiguration, no CVT bookkeeping, and no LVC traffic — block-crossing
values ride the interconnect directly.  The cost of this generality is
(1) the capacity limit (see :mod:`repro.sgmf.mapping`) and (2) wasted
fabric bandwidth: a thread pumps one predicated token through every
mapped node it does not actually need (paper §2, Figure 1c).

The timing machinery (unit issue, SCU pools, reservation buffers,
token-buffer windows, hop latencies) is shared with the VGIW MT-CGRF
model so the two architectures differ only where the designs differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.arch.config import SGMFConfig
from repro.engine import CheckpointMixin, Checkpointer, EngineRunResult
from repro.ir.instr import TermKind
from repro.ir.kernel import Kernel
from repro.ir.types import DType
from repro.memory.cache import CacheStats
from repro.memory.dram import DRAMStats
from repro.memory.hierarchy import MemorySystem
from repro.memory.image import MemoryImage
from repro.obs.metrics import Metrics, record_shared_run_metrics
from repro.resilience.errors import SimulationHangError
from repro.resilience.faults import FaultInjector
from repro.resilience.watchdog import (
    ForwardProgressWatchdog,
    WatchdogConfig,
    snapshot_from_replicas,
)
from repro.sgmf.mapping import SGMFMapping, SGMFUnmappableError, map_kernel
from repro.vgiw.mtcgrf import (
    T_INIT,
    T_LOAD,
    T_LVLOAD,
    T_LVSTORE,
    T_OP,
    T_SCU,
    T_SJ,
    T_STORE,
    ExecPlan,
    FabricStats,
    _ReplicaState,
    build_exec_plan,
)

Number = Union[int, float, bool]


@dataclass
class SGMFRunResult(EngineRunResult):
    """Result of one kernel launch on an SGMF core.

    Shares the :class:`~repro.engine.EngineRunResult` contract with the
    VGIW and Fermi results (``trace``/``metrics`` attachments included);
    every historical field keeps its name and position.
    """

    engine = "sgmf"

    kernel_name: str
    n_threads: int
    cycles: float
    fabric: FabricStats
    waste_fires: int
    n_replicas: int
    l1: CacheStats
    l2: CacheStats
    dram: DRAMStats

    @property
    def useful_fire_fraction(self) -> float:
        total = self.fabric.node_fires
        return 1.0 - self.waste_fires / total if total else 1.0


class SGMFCore(CheckpointMixin):
    """A single SGMF core attached to the standard memory hierarchy."""

    engine = "sgmf"

    def __init__(self, config: Optional[SGMFConfig] = None):
        self.config = config or SGMFConfig()
        self._faults: Optional[FaultInjector] = None
        #: derived per-replica exec plans (rebuilt on restore — the
        #: plan rows hold function objects and cannot be pickled)
        self._plans: Optional[List[Dict[str, ExecPlan]]] = None
        self._waste_units: Optional[List[Dict[str, List[int]]]] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _build_plans(mapping: SGMFMapping, params: Dict[str, Number],
                     config: SGMFConfig):
        """Precompile every block once per replica: the per-thread walk
        then dispatches on flat tuples instead of re-inspecting DFG
        nodes (cycle-identical; see docs/performance.md).  Pseudo
        nodes (wired live values, non-entry initiators) are excluded
        from the energy accounting, matching the SGMF convention.

        Pure function of ``(mapping, converted params, config)``, all
        of which a snapshot carries, so a restore rebuilds identical
        plans."""
        plans: List[Dict[str, ExecPlan]] = []
        waste_units: List[Dict[str, List[int]]] = []
        for ridx in range(mapping.n_replicas):
            placed = mapping.replicas[ridx]
            plan_map: Dict[str, ExecPlan] = {}
            wu_map: Dict[str, List[int]] = {}
            for name, dfg in mapping.dfgs.items():
                pl = placed[name]
                plan_map[name] = build_exec_plan(
                    dfg, pl.unit_of, pl.edge_hops, params,
                    config.op_latency, count_pseudo_ops=False,
                )
                wu_map[name] = [
                    pl.unit_of[node.nid]
                    for node in dfg.nodes
                    if not node.pseudo
                ]
            plans.append(plan_map)
            waste_units.append(wu_map)
        return plans, waste_units

    def _after_restore(self, state) -> None:
        # ``_run_thread`` reads ``self.config``, so a fresh-process
        # restore must adopt the snapshot's config before resuming.
        self.config = state["config"]
        self._plans, self._waste_units = self._build_plans(
            state["mapping"], state["params"], state["config"]
        )

    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        memory: MemoryImage,
        params: Dict[str, Number],
        n_threads: int,
        max_block_visits: int = 1_000_000,
        watchdog: Optional[WatchdogConfig] = None,
        faults: Optional[FaultInjector] = None,
        tracer=None,
        metrics: Optional[Metrics] = None,
        compile_cache=None,
        checkpoint_every: Optional[float] = None,
        checkpoint_sink=None,
    ) -> SGMFRunResult:
        """Execute the kernel, or raise :class:`SGMFUnmappableError`.

        ``tracer`` records per-thread dataflow walks (span events,
        ``sgmf.thread``) plus cache-miss / DRAM row-activation events
        from the memory hierarchy; ``metrics`` receives the run's
        counters under the ``sgmf/`` scope.  Both attach to the
        returned result.  ``compile_cache`` memoises the whole-kernel
        mapping per kernel × fabric config (``SGMFUnmappableError``
        included — the capacity proof is derived once per sweep).
        ``checkpoint_every`` arms periodic state snapshots at
        thread-injection boundaries (see ``docs/resilience.md`` §7).
        """
        config = self.config
        # Disabled-mode fast path: one local None-test per hook site.
        trace = tracer if (tracer is not None and tracer.enabled) else None
        if compile_cache is not None:
            from repro.compiler.cache import cached_map_kernel

            mapping = cached_map_kernel(
                kernel, config.fabric, cache=compile_cache
            )
        else:
            mapping = map_kernel(kernel, config.fabric)
        params = {
            name: (
                float(params[name])
                if kernel.param_dtypes[name] is DType.FLOAT
                else int(params[name])
            )
            for name in kernel.params
        }
        memsys = MemorySystem(
            config.memory, l1_write_back=config.l1_write_back, faults=faults,
            tracer=trace,
        )

        n_replicas = mapping.n_replicas
        self._plans, self._waste_units = self._build_plans(
            mapping, params, config
        )
        wd = ForwardProgressWatchdog(watchdog, "sgmf", kernel.name)
        wd.start(0.0)
        if faults is not None:
            faults.maybe_abort(f"sgmf/{kernel.name}", 0.0)

        # The whole mutable run state: one pickle of this dict is a
        # complete checkpoint (thread-injection boundaries only — the
        # per-thread walk keeps no state across threads beyond ``reps``
        # and the fabric/memory objects held here).
        state = {
            "kernel_name": kernel.name,
            "clock": 0.0,
            "config": config,
            "kernel": kernel,
            "mapping": mapping,
            "params": params,
            "n_threads": n_threads,
            "memory": memory,
            "memsys": memsys,
            "stats": FabricStats(),
            "faults": faults,
            "wd": wd,
            "trace": trace,
            "tracer": tracer,
            "metrics": metrics,
            "max_block_visits": max_block_visits,
            "n_replicas": n_replicas,
            "reps": [_ReplicaState(config) for _ in range(n_replicas)],
            "next_thread": 0,
            "waste_fires": 0,
        }
        self._state = state
        ck = None
        if checkpoint_every is not None:
            ck = Checkpointer(checkpoint_every, checkpoint_sink, start=0.0)
        return self._drive(state, ck)

    # ------------------------------------------------------------------
    def _drive(self, st, ck: Optional[Checkpointer]) -> SGMFRunResult:
        """Advance the state dict to completion (run and resume share
        this loop)."""
        config = st["config"]
        kernel = st["kernel"]
        kernel_name = st["kernel_name"]
        memory = st["memory"]
        memsys = st["memsys"]
        stats = st["stats"]
        wd = st["wd"]
        trace = st["trace"]
        reps = st["reps"]
        n_replicas = st["n_replicas"]
        n_threads = st["n_threads"]
        max_block_visits = st["max_block_visits"]
        plans, waste_units = self._plans, self._waste_units
        depth = config.token_buffer_depth
        self._faults = st["faults"]
        self._waste_fires = st["waste_fires"]

        def snapshot(now: float):
            snap = snapshot_from_replicas(
                sim="sgmf", kernel=kernel_name, now=now, replicas=reps,
            )
            if trace is not None:
                # Hang forensics: the last N timeline events show what
                # the machine did just before it stopped.
                snap.detail["recent_trace"] = [
                    ev.brief() for ev in trace.tail(16)
                ]
                trace.instant("snapshot", "watchdog", now, pid="sgmf")
            return snap

        end_time = st["clock"]
        i = st["next_thread"]
        while i < n_threads:
            # Thread-injection boundary: a quiescent checkpoint point.
            if ck is not None and ck.due(end_time):
                st["next_thread"] = i
                st["clock"] = end_time
                st["waste_fires"] = self._waste_fires
                self._emit_checkpoint(ck)
            ridx = i % n_replicas
            rep = reps[ridx]
            inject = rep.next_inject
            if len(rep.window) >= depth:
                bound = rep.window[len(rep.window) - depth]
                if bound > inject:
                    rep.inject_wait += bound - inject
                    inject = bound
            rep.inject_times.append(inject)
            completion = self._run_thread(
                kernel, plans[ridx], waste_units[ridx], rep, i, inject,
                memory, memsys, stats, max_block_visits, wd, snapshot,
            )
            rep.next_inject = inject + 1.0
            rep.window.append(completion)
            end_time = max(end_time, completion)
            if trace is not None:
                trace.complete(
                    "thread", "sgmf.thread", inject, completion - inject,
                    pid="sgmf", tid=ridx, thread=i, replica=ridx,
                )
            wd.progress(completion)
            i += 1
            # Keep the state dict boundary-consistent before the
            # watchdog can raise: a hang then leaves ``_state`` (and
            # ``last_snapshot`` checkpoints) resumable as-is.
            st["next_thread"] = i
            st["clock"] = end_time
            st["waste_fires"] = self._waste_fires
            wd.check(end_time, snapshot)

        st["clock"] = end_time
        return self._finish(st)

    # ------------------------------------------------------------------
    def _finish(self, st) -> SGMFRunResult:
        memsys, stats = st["memsys"], st["stats"]
        metrics = st["metrics"]
        end_time = st["clock"]
        waste_fires = st["waste_fires"]
        n_threads = st["n_threads"]
        stats.threads = n_threads
        if metrics is not None:
            scope = metrics.scope("sgmf")
            record_shared_run_metrics(
                scope, cycles=end_time, n_threads=n_threads,
                l1=memsys.l1_stats, l2=memsys.l2_stats,
                dram=memsys.dram.stats,
            )
            scope.inc("fabric.node_fires", stats.node_fires)
            scope.inc("fabric.token_hops", stats.token_hops)
            scope.inc("fabric.waste_fires", waste_fires)
            scope.gauge("fabric.replicas", st["n_replicas"])

        self.last_memory = st["memory"]
        self._state = None
        return SGMFRunResult(
            kernel_name=st["kernel_name"],
            n_threads=n_threads,
            cycles=end_time,
            fabric=stats,
            waste_fires=waste_fires,
            n_replicas=st["n_replicas"],
            l1=memsys.l1_stats,
            l2=memsys.l2_stats,
            dram=memsys.dram.stats,
        ).attach_obs(st["tracer"], metrics)

    # ------------------------------------------------------------------
    def _run_thread(
        self,
        kernel: Kernel,
        plans: Dict[str, ExecPlan],
        waste_units: Dict[str, List[int]],
        rep: _ReplicaState,
        tid: int,
        inject: float,
        memory: MemoryImage,
        memsys: MemorySystem,
        stats: FabricStats,
        max_block_visits: int,
        wd: Optional[ForwardProgressWatchdog] = None,
        snapshot=None,
    ) -> float:
        """Walk one thread through the precompiled whole-kernel graph.

        Interprets :class:`~repro.vgiw.mtcgrf.ExecPlan` rows (shared
        with the VGIW fabric model) with the SGMF semantics for live
        values: LVLOAD/LVSTORE are direct wires between block subgraphs
        — no LVC unit issue, a fixed one-cycle wire hop on the load
        side.  Cycle counts are bit-identical to the historical direct
        DFG walk.
        """
        faults = self._faults
        config = self.config
        # Hoisted hot-loop locals (attribute lookups cost on this path).
        issue = rep.issue
        issue_mem = rep.issue_mem
        issue_scu = rep.issue_scu
        retire_mem = rep.retire_mem
        entries = config.ldst_reservation_entries
        mem_access = memsys.access_word
        mem_read = memory.read
        mem_write = memory.write
        ops = stats.ops

        regs_ready: Dict[str, float] = {}
        reg_vals: Dict[str, Number] = {}
        visited = set()
        completion = inject
        entry_time = inject
        current: Optional[str] = kernel.entry
        visits = 0

        while current is not None:
            visits += 1
            if visits > max_block_visits:
                raise SimulationHangError(
                    f"SGMF thread {tid} exceeded {max_block_visits} "
                    f"block visits",
                    snapshot=None if snapshot is None else snapshot(entry_time),
                    kernel=kernel.name,
                    block=current,
                    thread=tid,
                    visits=visits,
                )
            if wd is not None and not visits % 256:
                # Periodic budget check inside a (possibly unbounded)
                # per-thread control-flow walk.
                wd.check(entry_time, snapshot)
            visited.add(current)
            plan = plans[current]
            n = plan.n_nodes
            done: List[float] = [0.0] * n
            value: List[Optional[Number]] = [None] * n

            next_block: Optional[str] = None
            for row in plan.rows:
                tag = row[0]
                nid = row[1]
                if tag == T_INIT:
                    done[nid] = entry_time
                    value[nid] = tid
                    continue
                ready = entry_time
                for up, hop in row[3]:
                    t = done[up] + hop
                    if t > ready:
                        ready = t
                if tag == T_OP or tag == T_SCU:
                    latency = row[4]
                    if tag == T_SCU:
                        start = issue_scu(row[2], ready, latency)
                    else:
                        start = issue(row[2], ready)
                    done[nid] = start + latency
                    args = [
                        p if m == 0 else value[p] if m == 1 else tid
                        for m, p in row[6]
                    ]
                    result = row[5](*args)
                    dt = row[7]
                    if dt == 1:
                        result = int(result)
                    elif dt == 2:
                        result = float(result)
                    if faults is not None:
                        result = faults.corrupt_token(
                            current, row[2], tid, start, result
                        )
                    value[nid] = result
                elif tag == T_LVLOAD:
                    # Wired live value: arrives from the producing block.
                    reg = row[5].out_reg
                    t = regs_ready[reg] + 1
                    done[nid] = entry_time if entry_time >= t else t
                    value[nid] = reg_vals[reg]
                elif tag == T_LVSTORE:
                    reg = row[6].out_reg
                    done[nid] = ready
                    regs_ready[reg] = ready
                    m, p = row[5]
                    reg_vals[reg] = (
                        p if m == 0 else value[p] if m == 1 else tid
                    )
                elif tag == T_LOAD:
                    m, p = row[4]
                    addr = int(p if m == 0 else value[p] if m == 1 else tid)
                    start = issue_mem(row[2], ready, entries)
                    fin = mem_access(start, addr, False)
                    retire_mem(row[2], fin)
                    done[nid] = fin
                    raw = mem_read(addr)
                    value[nid] = int(raw) if row[5] else raw
                elif tag == T_STORE:
                    m, p = row[4]
                    addr = int(p if m == 0 else value[p] if m == 1 else tid)
                    start = issue_mem(row[2], ready, entries)
                    fin = mem_access(start, addr, True)
                    retire_mem(row[2], fin)
                    done[nid] = fin
                    m, p = row[5]
                    mem_write(
                        addr, p if m == 0 else value[p] if m == 1 else tid
                    )
                elif tag == T_SJ:
                    start = issue(row[2], ready)
                    done[nid] = start + row[4]
                    passthrough = row[5]
                    if passthrough is not None:
                        m, p = passthrough
                        value[nid] = (
                            p if m == 0 else value[p] if m == 1 else tid
                        )
                else:  # T_TERM
                    start = issue(row[2], ready)
                    done[nid] = start + 1.0
                    term_kind = plan.term_kind
                    if term_kind is TermKind.RET:
                        next_block = None
                    elif term_kind is TermKind.JMP:
                        next_block = plan.true_target
                    else:
                        m, p = row[4]
                        taken = bool(
                            p if m == 0 else value[p] if m == 1 else tid
                        )
                        next_block = (
                            plan.true_target if taken
                            else plan.false_target
                        )

            # Per-visit statistics, batched (O(op classes), not O(nodes)).
            stats.node_fires += n
            stats.tokens += n
            stats.token_hops += plan.total_hops
            for cls, count in plan.ops_counts.items():
                ops[cls] += count

            block_completion = max(done[s] for s in plan.sinks)
            if block_completion > completion:
                completion = block_completion
            entry_time = done[plan.term_nid] + 1.0
            current = next_block

        # Predicated pass-through: one useless token through every node
        # of every block this thread never reached (paper Figure 1c).
        # The tokens flow while the thread is in flight, so they compete
        # for unit slots around the thread's mid-execution — charging
        # them at injection time would let them backfill long-idle
        # cycles and understate the utilisation loss.
        waste_time = inject + 0.5 * (completion - inject)
        for name, plan in plans.items():
            if name in visited:
                continue
            n = plan.n_nodes
            stats.node_fires += n
            stats.tokens += n
            self._waste_fires += n
            for cls, count in plan.ops_counts.items():
                ops[cls] += count
            # Occupies an issue slot but performs no memory access.
            for uid in waste_units[name]:
                issue(uid, waste_time)

        return completion

    def mapping_for(self, kernel: Kernel) -> SGMFMapping:
        """Expose the mapping (used by reports and tests)."""
        return map_kernel(kernel, self.config.fabric)
