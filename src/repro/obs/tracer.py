"""Cycle-level tracer: a bounded ring buffer of timeline events.

Two implementations share one duck-typed surface:

* :class:`Tracer` — records :class:`~repro.obs.events.TraceEvent`\\ s
  into a ``collections.deque`` ring buffer (oldest events are dropped,
  ``dropped`` counts them) and exports Chrome ``chrome://tracing`` /
  Perfetto JSON;
* :class:`NullTracer` — the disabled-mode fast path.  Every method is a
  constant-return no-op that allocates nothing, so the only cost a
  simulator pays with tracing off is the ``tracer.enabled`` /
  ``tracer is not None`` guard at each hook point (benchmarked < 2 %
  end to end by ``benchmarks/bench_trace_overhead.py``).

Hook-point idiom inside an engine::

    trace = tracer if (tracer is not None and tracer.enabled) else None
    ...
    if trace is not None:
        trace.complete("block:body", "vgiw.block", ts=t0, dur=t1 - t0,
                       pid="vgiw", threads=64)

The ``pid`` label becomes a Chrome trace *process*, so the three
engines' timelines stack as separate swimlane groups in one export.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.events import PH_COMPLETE, PH_COUNTER, PH_INSTANT, TraceEvent

__all__ = ["NULL_TRACER", "NullTracer", "Tracer"]


class NullTracer:
    """Disabled-mode tracer: allocation-free constant no-ops.

    ``enabled`` is False so engines skip their emission sites entirely;
    even when called directly every method returns an existing constant
    (``None`` or the shared empty tuple) without building any object.
    """

    __slots__ = ()

    enabled = False
    dropped = 0

    _EMPTY: Tuple = ()

    def complete(self, name, cat, ts, dur, pid="run", tid=0, **args) -> None:
        return None

    def instant(self, name, cat, ts, pid="run", tid=0, **args) -> None:
        return None

    def counter(self, name, cat, ts, pid="run", **values) -> None:
        return None

    def emit(self, event) -> None:
        return None

    def tail(self, n: int = 16) -> Tuple:
        return self._EMPTY

    @property
    def events(self) -> Tuple:
        return self._EMPTY

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullTracer()"


#: Shared disabled tracer (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()


class Tracer:
    """Bounded ring buffer of timeline events with Chrome JSON export.

    Parameters
    ----------
    capacity:
        Ring size in events.  When full, the *oldest* events are
        evicted (``dropped`` counts evictions) — for hang forensics the
        most recent window is the valuable part.
    """

    __slots__ = ("_ring", "dropped", "capacity")

    enabled = True

    def __init__(self, capacity: int = 1 << 16):
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive: {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.dropped = 0

    # -- emission ------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append(event)

    def complete(self, name: str, cat: str, ts: float, dur: float,
                 pid: str = "run", tid: Union[int, str] = 0,
                 **args: Any) -> None:
        """A span: ``[ts, ts + dur]``."""
        self.emit(TraceEvent(name, cat, PH_COMPLETE, ts, max(0.0, dur),
                             pid, tid, args or None))

    def instant(self, name: str, cat: str, ts: float,
                pid: str = "run", tid: Union[int, str] = 0,
                **args: Any) -> None:
        """A point marker at ``ts``."""
        self.emit(TraceEvent(name, cat, PH_INSTANT, ts, 0.0,
                             pid, tid, args or None))

    def counter(self, name: str, cat: str, ts: float,
                pid: str = "run", **values: Any) -> None:
        """A sampled counter track (one series per keyword)."""
        self.emit(TraceEvent(name, cat, PH_COUNTER, ts, 0.0,
                             pid, 0, dict(values)))

    def merge(self, other: "Tracer") -> None:
        """Append another tracer's events (in its emission order).

        Used by ``run_suite --jobs`` to fold per-worker tracers into
        the caller's shared tracer, kernel by kernel in deterministic
        order.  Ring-buffer semantics still apply: if the combined
        stream exceeds ``capacity`` the oldest events are evicted, and
        the other tracer's ``dropped`` count carries over.
        """
        self.dropped += other.dropped
        emit = self.emit
        for ev in other._ring:
            emit(ev)

    # -- access --------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """Events in emission order (oldest first)."""
        return list(self._ring)

    def tail(self, n: int = 16) -> List[TraceEvent]:
        """The most recent ``n`` events (watchdog snapshots attach
        these, see ``docs/observability.md``)."""
        if n <= 0:
            return []
        ring = self._ring
        if len(ring) <= n:
            return list(ring)
        return list(ring)[-n:]

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (f"Tracer({len(self._ring)}/{self.capacity} events, "
                f"{self.dropped} dropped)")

    def categories(self) -> Dict[str, int]:
        """Event count per category (tests and report summaries)."""
        out: Dict[str, int] = {}
        for ev in self._ring:
            out[ev.cat] = out.get(ev.cat, 0) + 1
        return out

    # -- export --------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The full trace as a Chrome/Perfetto ``traceEvents`` dict.

        Events are sorted by timestamp and the string process labels
        are mapped to integer pids with ``process_name`` metadata
        records, so the file loads in ``chrome://tracing``, Perfetto,
        and ``json.load`` alike.
        """
        pids: Dict[str, int] = {}

        def pid_of(label: str) -> int:
            pid = pids.get(label)
            if pid is None:
                pid = pids[label] = len(pids) + 1
            return pid

        events = [ev.to_chrome(pid_of)
                  for ev in sorted(self._ring, key=lambda e: e.ts)]
        meta = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": label}}
            for label, pid in sorted(pids.items(), key=lambda kv: kv[1])
        ]
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ns",
            "otherData": {
                "clock": "simulated cycles (1 cycle == 1 us)",
                "dropped_events": self.dropped,
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent)

    def dump(self, path: str, indent: Optional[int] = None) -> None:
        """Write the Chrome trace JSON to ``path`` atomically.

        Routed through :func:`repro.resilience.atomicio` so a crash
        mid-export leaves either the previous complete trace or the new
        one — never a truncated JSON that loads as an empty timeline.
        """
        from repro.resilience.atomicio import atomic_write_text

        atomic_write_text(path, self.to_json(indent=indent))
