"""The execution service: a warm worker pool behind a batching queue.

:class:`ExecutionService` accepts :class:`~repro.serve.api.SubmitRequest`
submissions, coalesces compatible ones (same kernel, same
``RunOptions.fingerprint()``) into batches, executes each batch *once*
on a pool of persistent worker processes, and fans the result out to
every member request.  The workers stay warm: each keeps a module-level
:class:`~repro.compiler.CompileCache`, so after the first execution of
a (kernel, options) point the optimisation pipeline, VGIW place &
route, SGMF mapping and Fermi CFG analyses are all cache hits — on the
single-core hosts this simulator targets, batching + warm caches (not
parallelism) are what make the service beat a serial ``run_kernel``
loop.

Failure containment mirrors the sweep harness:

* a kernel that fails *in-process* (verification, hang, fault) comes
  back as a ``"degraded"`` response via the same
  :func:`~repro.evalharness.runner._run_one` retry machinery sweeps
  use;
* a worker that dies *hard* (SIGKILL, OOM, segfault) breaks the pool —
  the dispatcher respawns it and requeues every in-flight request
  under a bounded per-request crash budget, after which the request
  degrades with :class:`~repro.resilience.WorkerCrashError`;
* overload is shed, not raised: a full queue rejects at admission, and
  a request whose ``deadline_s`` expires while queued is dropped with
  status ``"deadline"`` (a dispatched request's execution is bounded
  by its remaining budget through
  :func:`~repro.resilience.wall_clock_limit`).

Observability: with a :class:`repro.obs.Metrics` registry attached the
service publishes counters, queue-depth gauges and latency histograms
under the ``serve/`` scope, keeps raw-sample
:class:`~repro.serve.api.LatencyStats` for true p50/p99, and (with a
:class:`repro.obs.Tracer`) emits one Chrome-trace span per request on
the ``serve`` process lane, so a load run opens directly in Perfetto.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional

from repro.compiler.cache import CompileCache, cached_optimize_kernel
from repro.evalharness.options import RunOptions
from repro.evalharness.runner import _maybe_kill_for_test, _run_one
from repro.kernels.registry import all_names, make_workload
from repro.resilience import RetryPolicy, WorkerCrashError
from repro.serve.api import (
    LatencyStats,
    RunResponse,
    SubmitRequest,
    Ticket,
    result_digest,
    run_summary,
)
from repro.serve.scheduler import Batch, BatchScheduler, QueueEntry

__all__ = ["ExecutionService"]


# ----------------------------------------------------------------------
# The pool worker (module top level: picklable under every start method)
# ----------------------------------------------------------------------
#: Per-worker-process warm compile caches, keyed by cache_dir.  This is
#: the "persistent worker" in persistent worker pool: the process (and
#: this cache) survives across batches, so repeat kernels skip the
#: whole compile pipeline.
_WARM_CACHES: Dict[str, CompileCache] = {}


def _warm_cache(cache_dir: Optional[str]) -> CompileCache:
    key = cache_dir or ""
    cache = _WARM_CACHES.get(key)
    if cache is None:
        cache = _WARM_CACHES[key] = CompileCache(cache_dir)
    return cache


def _serve_worker(payload):
    """Execute one batch's kernel once; ship back result + timing split.

    ``payload`` is ``(batch_id, kernel, opts, budget_s)`` where ``opts``
    is a pure, resolved :class:`RunOptions` (live fields ``None``,
    ``retry`` materialised, ``isolate=True``) and ``budget_s`` is the
    batch's tightest remaining deadline (bounds the execution through
    ``opts.timeout`` → :func:`~repro.resilience.wall_clock_limit`).

    Returns ``(batch_id, run, failure, compile_s, execute_s, digest,
    summary, cache_delta)`` — ``run``/``failure`` exactly as
    :func:`~repro.evalharness.runner._run_one` reports them, and
    ``cache_delta`` the compile-cache counter *increments* this batch
    caused (the parent folds them into its aggregate).
    """
    (batch_id, kernel, opts, budget_s) = payload
    _maybe_kill_for_test(kernel)
    cache = _warm_cache(opts.cache_dir)
    before = cache.stats()

    # Compile phase, timed separately: build the workload and warm the
    # optimisation pipeline through the cache (the execution below then
    # hits it, so execute_s measures simulation, not compilation).
    t0 = time.monotonic()
    workload = make_workload(kernel, opts.scale)
    if opts.optimize:
        cached_optimize_kernel(workload.kernel, params=workload.params,
                               cache=cache)
        cached_optimize_kernel(workload.kernel, params=workload.params,
                               unroll=False, cache=cache)
    compile_s = time.monotonic() - t0

    timeout = opts.timeout
    if budget_s is not None:
        timeout = budget_s if timeout is None else min(timeout, budget_s)

    t1 = time.monotonic()
    run, failure = _run_one(kernel, opts.replace(timeout=timeout), None,
                            cache)
    execute_s = time.monotonic() - t1

    digest = None if run is None else result_digest(run)
    summary = {} if run is None else run_summary(run)
    after = cache.stats()
    cache_delta = {k: after[k] - before.get(k, 0)
                   for k in after if k != "entries"}
    return (batch_id, run, failure, compile_s, execute_s, digest,
            summary, cache_delta)


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class ExecutionService:
    """Batched multi-device execution service (see module docstring).

    Parameters
    ----------
    workers:
        Worker-process pool width (also the in-flight batch bound).
    policy:
        Batch dispatch order: ``"fifo"`` or ``"sjf"``
        (:mod:`repro.serve.scheduler`).
    queue_limit:
        Admission bound; a submission past it is *rejected* (typed
        response), never queued unboundedly.
    crash_budget:
        How many worker crashes one request may survive (requeues)
        before degrading with :class:`WorkerCrashError`.
    cache_dir:
        Optional persistent compile-cache tier shared by the workers
        (atomic disk writes — concurrent workers are safe).
    tracer / metrics:
        Optional :class:`repro.obs.Tracer` / :class:`repro.obs.Metrics`;
        the service records into the ``serve/`` metric scope and one
        trace span per request.

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with ExecutionService(workers=2) as svc:
            t = svc.submit(SubmitRequest("nn/euclid",
                                         RunOptions(scale="tiny")))
            resp = svc.wait(t)
    """

    def __init__(self, workers: int = 2, policy: str = "fifo",
                 queue_limit: int = 64, crash_budget: int = 2,
                 cache_dir: Optional[str] = None, tracer=None,
                 metrics=None):
        self.workers = max(1, int(workers))
        self.scheduler = BatchScheduler(policy=policy,
                                        queue_limit=queue_limit)
        self.crash_budget = max(1, int(crash_budget))
        self.cache_dir = cache_dir
        self.tracer = tracer
        self.metrics = metrics
        self._scope = metrics.scope("serve") if metrics is not None else None
        self._known = frozenset(all_names(include_extras=True))

        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._responses: Dict[int, RunResponse] = {}
        self._events: Dict[int, threading.Event] = {}

        self._running = False
        self._stopping = threading.Event()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._t0_mono = 0.0
        self._t0_wall = 0.0

        #: raw-sample latency accumulators (true p50/p99; the metric
        #: histograms only keep count/sum/min/max)
        self.latency: Dict[str, LatencyStats] = {
            "total_s": LatencyStats(),
            "queue_s": LatencyStats(),
            "compile_s": LatencyStats(),
            "execute_s": LatencyStats(),
        }
        self._counts: Dict[str, int] = {
            "submitted": 0, "ok": 0, "degraded": 0, "rejected": 0,
            "deadline": 0,
        }
        self._batch_sizes: List[int] = []
        self._worker_crashes = 0
        self.cache_stats: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ExecutionService":
        if self._running:
            return self
        self._stopping.clear()
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._t0_mono = time.monotonic()
        self._t0_wall = time.time()
        self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True)
        self._dispatcher.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the service.  ``drain=True`` (default) finishes every
        queued and in-flight request first; ``drain=False`` sheds the
        queue as ``"rejected"`` and finishes only the in-flight work."""
        if not self._running:
            return
        if not drain:
            while True:
                batch = self.scheduler.next_batch(timeout=0)
                if batch is None:
                    break
                for entry in batch.entries:
                    self._finish(entry, RunResponse(
                        request_id=entry.ticket.request_id,
                        kernel=entry.request.kernel, status="rejected",
                        client=entry.request.client,
                        error="service is stopping",
                        error_type="ServiceStopped"))
        self._stopping.set()
        self.scheduler.wake()
        if self._dispatcher is not None:
            self._dispatcher.join()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self._running = False

    def __enter__(self) -> "ExecutionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client surface -------------------------------------------------
    def submit(self, request: SubmitRequest) -> Ticket:
        """Admit one request.  Always returns a :class:`Ticket`;
        admission failures surface as an (immediately available)
        ``"rejected"`` response, never an exception."""
        rid = next(self._ids)
        ticket = Ticket(rid, request.kernel, time.time())
        with self._lock:
            self._events[rid] = threading.Event()
        self._counts["submitted"] += 1
        if self._scope is not None:
            self._scope.inc("requests_submitted")

        def reject(message: str, error_type: str) -> Ticket:
            self._finish(None, RunResponse(
                request_id=rid, kernel=request.kernel, status="rejected",
                client=request.client, error=message,
                error_type=error_type))
            return ticket

        live = request.options.live_fields_set()
        if live:
            return reject(
                f"options carry live object fields ({', '.join(live)}); "
                f"the service owns its own registries and caches",
                "LiveOptionsError")
        if request.kernel not in self._known:
            return reject(f"unknown kernel {request.kernel!r}",
                          "UnknownKernelError")
        if not self._running or self._stopping.is_set():
            return reject("service is not accepting submissions",
                          "ServiceStopped")

        opts = request.options.replace(
            isolate=True,
            retry=request.options.retry or RetryPolicy(),
            cache_dir=(self.cache_dir
                       if request.options.cache_dir is None
                       else request.options.cache_dir),
        )
        now = time.monotonic()
        entry = QueueEntry(
            request=request, ticket=ticket,
            key=(request.kernel, opts.fingerprint()), opts=opts,
            enqueued_mono=now,
            deadline_mono=(None if request.deadline_s is None
                           else now + request.deadline_s),
            crash_budget=self.crash_budget,
        )
        if not self.scheduler.offer(entry):
            return reject(
                f"queue full (limit {self.scheduler.queue_limit})",
                "QueueFullError")
        if self._scope is not None:
            self._scope.gauge("queue_depth", self.scheduler.depth())
        return ticket

    def wait(self, ticket: Ticket,
             timeout: Optional[float] = None) -> Optional[RunResponse]:
        """Block until ``ticket``'s response lands; ``None`` on timeout."""
        with self._lock:
            event = self._events.get(ticket.request_id)
        if event is None:
            raise KeyError(f"unknown ticket {ticket.request_id}")
        if not event.wait(timeout):
            return None
        with self._lock:
            return self._responses[ticket.request_id]

    def result(self, ticket: Ticket) -> Optional[RunResponse]:
        """The response if it already landed, else ``None``."""
        with self._lock:
            return self._responses.get(ticket.request_id)

    # -- dispatcher -----------------------------------------------------
    def _dispatch_loop(self) -> None:
        in_flight: Dict[Any, Batch] = {}
        while True:
            while len(in_flight) < self.workers:
                timeout = 0.0 if in_flight or self._stopping.is_set() \
                    else 0.1
                batch = self.scheduler.next_batch(timeout=timeout)
                if batch is None:
                    break
                self._shed_expired(batch)
                if not batch.entries:
                    continue
                self._dispatch(in_flight, batch)
            if not in_flight:
                if self._stopping.is_set() and self.scheduler.depth() == 0:
                    return
                continue
            done, _ = wait(list(in_flight), timeout=0.25,
                           return_when=FIRST_COMPLETED)
            crashed: List[Batch] = []
            for future in done:
                batch = in_flight.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    crashed.append(batch)
                except Exception as exc:  # noqa: BLE001 — typed rows
                    self._finish_batch_error(batch, exc)
                else:
                    self._finish_batch(batch, payload)
            if crashed:
                # The executor is broken: every other in-flight future
                # is poisoned too.  Blame them all (like _run_jobs).
                crashed.extend(in_flight.values())
                in_flight.clear()
                self._recover(crashed)

    def _shed_expired(self, batch: Batch) -> None:
        now = time.monotonic()
        kept: List[QueueEntry] = []
        for entry in batch.entries:
            if entry.deadline_mono is not None and now > entry.deadline_mono:
                waited = now - entry.enqueued_mono
                self._finish(entry, RunResponse(
                    request_id=entry.ticket.request_id,
                    kernel=entry.request.kernel, status="deadline",
                    client=entry.request.client,
                    error=(f"deadline of {entry.request.deadline_s:.3f}s "
                           f"expired after {waited:.3f}s in queue"),
                    error_type="DeadlineExceeded",
                    queue_s=waited, total_s=waited,
                    batch_id=batch.batch_id))
            else:
                kept.append(entry)
        batch.entries = kept

    def _dispatch(self, in_flight: Dict[Any, Batch], batch: Batch) -> None:
        batch.dispatch_mono = time.monotonic()
        budgets = [e.deadline_mono - batch.dispatch_mono
                   for e in batch.entries if e.deadline_mono is not None]
        budget_s = max(0.001, min(budgets)) if budgets else None
        opts: RunOptions = batch.entries[0].opts
        future = self._pool.submit(
            _serve_worker, (batch.batch_id, batch.kernel, opts, budget_s))
        in_flight[future] = batch
        self._batch_sizes.append(len(batch.entries))
        if self._scope is not None:
            self._scope.inc("batches")
            self._scope.observe("batch_size", len(batch.entries))
            self._scope.gauge("queue_depth", self.scheduler.depth())
            self._scope.gauge("in_flight", len(in_flight))

    def _finish_batch(self, batch: Batch, payload) -> None:
        (_, run, failure, compile_s, execute_s, digest, summary,
         cache_delta) = payload
        now = time.monotonic()
        self.scheduler.observe(batch.key, execute_s)
        for k, v in cache_delta.items():
            self.cache_stats[k] = self.cache_stats.get(k, 0) + v
        for entry in batch.entries:
            request: SubmitRequest = entry.request
            if failure is None:
                response = RunResponse(
                    request_id=entry.ticket.request_id,
                    kernel=request.kernel, status="ok",
                    client=request.client, digest=digest,
                    summary=dict(summary),
                    run=run if request.want_run else None)
            else:
                response = RunResponse(
                    request_id=entry.ticket.request_id,
                    kernel=request.kernel, status="degraded",
                    client=request.client, error=failure.message,
                    error_type=failure.error_type)
            response.queue_s = batch.dispatch_mono - entry.enqueued_mono
            response.compile_s = compile_s
            response.execute_s = execute_s
            response.total_s = now - entry.enqueued_mono
            response.batch_id = batch.batch_id
            response.batch_size = len(batch.entries)
            self._finish(entry, response)

    def _finish_batch_error(self, batch: Batch, exc: Exception) -> None:
        """A worker raised instead of reporting (harness bug): degrade
        the batch's requests rather than killing the service."""
        now = time.monotonic()
        for entry in batch.entries:
            self._finish(entry, RunResponse(
                request_id=entry.ticket.request_id,
                kernel=entry.request.kernel, status="degraded",
                client=entry.request.client, error=str(exc),
                error_type=type(exc).__name__,
                queue_s=batch.dispatch_mono - entry.enqueued_mono,
                total_s=now - entry.enqueued_mono,
                batch_id=batch.batch_id, batch_size=len(batch.entries)))

    def _recover(self, batches: List[Batch]) -> None:
        """Worker died hard: respawn the pool, requeue the in-flight
        requests under their crash budgets (mirrors ``_run_jobs``)."""
        self._worker_crashes += 1
        if self._scope is not None:
            self._scope.inc("worker_crashes")
        self._pool.shutdown(wait=False)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        requeue: List[QueueEntry] = []
        now = time.monotonic()
        for batch in batches:
            for entry in batch.entries:
                entry.crash_budget -= 1
                if entry.crash_budget > 0:
                    requeue.append(entry)
                    continue
                exc = WorkerCrashError(
                    "worker process died (SIGKILL/OOM/segfault) while "
                    "this request was in flight; crash budget exhausted",
                    kernel=entry.request.kernel)
                self._finish(entry, RunResponse(
                    request_id=entry.ticket.request_id,
                    kernel=entry.request.kernel, status="degraded",
                    client=entry.request.client, error=str(exc),
                    error_type="WorkerCrashError",
                    queue_s=batch.dispatch_mono - entry.enqueued_mono,
                    total_s=now - entry.enqueued_mono,
                    batch_id=batch.batch_id))
        self.scheduler.requeue(requeue)

    # -- completion -----------------------------------------------------
    def _finish(self, entry: Optional[QueueEntry],
                response: RunResponse) -> None:
        self._counts[response.status] = \
            self._counts.get(response.status, 0) + 1
        executed = response.status in ("ok", "degraded") \
            and response.batch_id is not None
        self.latency["total_s"].observe(response.total_s)
        if executed:
            self.latency["queue_s"].observe(response.queue_s)
            self.latency["compile_s"].observe(response.compile_s)
            self.latency["execute_s"].observe(response.execute_s)
        if self._scope is not None:
            self._scope.inc(f"requests_{response.status}")
            self._scope.observe("total_s", response.total_s)
            if executed:
                self._scope.observe("queue_s", response.queue_s)
                self._scope.observe("compile_s", response.compile_s)
                self._scope.observe("execute_s", response.execute_s)
        if self.tracer is not None and entry is not None:
            # One span per request on the "serve" lane, in µs since
            # service start (the native Chrome-trace time base).
            start_us = (entry.enqueued_mono - self._t0_mono) * 1e6
            self.tracer.complete(
                f"{response.kernel} #{response.request_id}", "serve",
                start_us, response.total_s * 1e6, pid="serve",
                tid=0, status=response.status,
                batch=response.batch_id, client=response.client)
        with self._lock:
            self._responses[response.request_id] = response
            event = self._events.get(response.request_id)
        if event is not None:
            event.set()

    # -- reporting ------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-able service report (counts, batching, latency split)."""
        sizes = self._batch_sizes
        uptime = (time.monotonic() - self._t0_mono) if self._t0_mono else 0.0
        completed = sum(self._counts.get(s, 0)
                        for s in ("ok", "degraded", "rejected", "deadline"))
        return {
            "workers": self.workers,
            "policy": self.scheduler.policy,
            "uptime_s": uptime,
            "requests": dict(self._counts),
            "throughput_rps": (completed / uptime) if uptime > 0 else 0.0,
            "batches": {
                "count": len(sizes),
                "batched_requests": sum(sizes),
                "mean_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
                "max_size": max(sizes) if sizes else 0,
            },
            "queue": {
                "limit": self.scheduler.queue_limit,
                "peak_depth": self.scheduler.peak_depth,
            },
            "latency": {name: stats.summary()
                        for name, stats in self.latency.items()},
            "worker_crashes": self._worker_crashes,
            "compile_cache": dict(self.cache_stats),
        }
