"""Host-side convenience API (CUDA-runtime-flavoured)."""

from repro.host.device import Device, DeviceArray, HostError

__all__ = ["Device", "DeviceArray", "HostError"]
