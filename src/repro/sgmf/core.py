"""SGMF core execution: the dataflow-GPGPU baseline.

Threads stream through the whole-kernel resident graph with no
reconfiguration, no CVT bookkeeping, and no LVC traffic — block-crossing
values ride the interconnect directly.  The cost of this generality is
(1) the capacity limit (see :mod:`repro.sgmf.mapping`) and (2) wasted
fabric bandwidth: a thread pumps one predicated token through every
mapped node it does not actually need (paper §2, Figure 1c).

The timing machinery (unit issue, SCU pools, reservation buffers,
token-buffer windows, hop latencies) is shared with the VGIW MT-CGRF
model so the two architectures differ only where the designs differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.arch.config import SGMFConfig
from repro.engine import CheckpointMixin, Checkpointer, EngineRunResult
from repro.ir.instr import TermKind, coerce_i64
from repro.ir.kernel import Kernel
from repro.ir.vecops import (
    addr_batch,
    as_value_array,
    f2i_array,
    f64_batch,
    hazard_key,
    scalar_exec_requested,
    stores_after_loads,
    vec_eval,
    vec_eval_raw,
)
from repro.ir.types import DType
from repro.memory.cache import CacheStats
from repro.memory.dram import DRAMStats
from repro.memory.hierarchy import MemorySystem
from repro.memory.image import MemoryImage
from repro.obs.metrics import Metrics, record_shared_run_metrics
from repro.resilience.errors import SimulationHangError
from repro.resilience.faults import FaultInjector
from repro.resilience.watchdog import (
    ForwardProgressWatchdog,
    WatchdogConfig,
    snapshot_from_replicas,
)
from repro.sgmf.mapping import SGMFMapping, SGMFUnmappableError, map_kernel
from repro.vgiw.mtcgrf import (
    T_INIT,
    T_LOAD,
    T_LVLOAD,
    T_LVSTORE,
    T_OP,
    T_SCU,
    T_SJ,
    T_STORE,
    ExecPlan,
    FabricStats,
    _ReplicaState,
    build_exec_plan,
    compile_timing,
)

Number = Union[int, float, bool]


@dataclass
class SGMFRunResult(EngineRunResult):
    """Result of one kernel launch on an SGMF core.

    Shares the :class:`~repro.engine.EngineRunResult` contract with the
    VGIW and Fermi results (``trace``/``metrics`` attachments included);
    every historical field keeps its name and position.
    """

    engine = "sgmf"

    kernel_name: str
    n_threads: int
    cycles: float
    fabric: FabricStats
    waste_fires: int
    n_replicas: int
    l1: CacheStats
    l2: CacheStats
    dram: DRAMStats

    @property
    def useful_fire_fraction(self) -> float:
        total = self.fabric.node_fires
        return 1.0 - self.waste_fires / total if total else 1.0


class SGMFCore(CheckpointMixin):
    """A single SGMF core attached to the standard memory hierarchy."""

    engine = "sgmf"

    def __init__(self, config: Optional[SGMFConfig] = None):
        self.config = config or SGMFConfig()
        self._faults: Optional[FaultInjector] = None
        #: derived per-replica exec plans (rebuilt on restore — the
        #: plan rows hold function objects and cannot be pickled)
        self._plans: Optional[List[Dict[str, ExecPlan]]] = None
        self._waste_units: Optional[List[Dict[str, List[int]]]] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _build_plans(mapping: SGMFMapping, params: Dict[str, Number],
                     config: SGMFConfig):
        """Precompile every block once per replica: the per-thread walk
        then dispatches on flat tuples instead of re-inspecting DFG
        nodes (cycle-identical; see docs/performance.md).  Pseudo
        nodes (wired live values, non-entry initiators) are excluded
        from the energy accounting, matching the SGMF convention.

        Pure function of ``(mapping, converted params, config)``, all
        of which a snapshot carries, so a restore rebuilds identical
        plans."""
        plans: List[Dict[str, ExecPlan]] = []
        waste_units: List[Dict[str, List[int]]] = []
        for ridx in range(mapping.n_replicas):
            placed = mapping.replicas[ridx]
            plan_map: Dict[str, ExecPlan] = {}
            wu_map: Dict[str, List[int]] = {}
            for name, dfg in mapping.dfgs.items():
                pl = placed[name]
                plan_map[name] = build_exec_plan(
                    dfg, pl.unit_of, pl.edge_hops, params,
                    config.op_latency, count_pseudo_ops=False,
                )
                wu_map[name] = [
                    pl.unit_of[node.nid]
                    for node in dfg.nodes
                    if not node.pseudo
                ]
            plans.append(plan_map)
            waste_units.append(wu_map)
        return plans, waste_units

    def _after_restore(self, state) -> None:
        # ``_run_thread`` reads ``self.config``, so a fresh-process
        # restore must adopt the snapshot's config before resuming.
        self.config = state["config"]
        self._plans, self._waste_units = self._build_plans(
            state["mapping"], state["params"], state["config"]
        )

    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        memory: MemoryImage,
        params: Dict[str, Number],
        n_threads: int,
        max_block_visits: int = 1_000_000,
        watchdog: Optional[WatchdogConfig] = None,
        faults: Optional[FaultInjector] = None,
        tracer=None,
        metrics: Optional[Metrics] = None,
        compile_cache=None,
        checkpoint_every: Optional[float] = None,
        checkpoint_sink=None,
    ) -> SGMFRunResult:
        """Execute the kernel, or raise :class:`SGMFUnmappableError`.

        ``tracer`` records per-thread dataflow walks (span events,
        ``sgmf.thread``) plus cache-miss / DRAM row-activation events
        from the memory hierarchy; ``metrics`` receives the run's
        counters under the ``sgmf/`` scope.  Both attach to the
        returned result.  ``compile_cache`` memoises the whole-kernel
        mapping per kernel × fabric config (``SGMFUnmappableError``
        included — the capacity proof is derived once per sweep).
        ``checkpoint_every`` arms periodic state snapshots at
        thread-injection boundaries (see ``docs/resilience.md`` §7).
        """
        config = self.config
        # Disabled-mode fast path: one local None-test per hook site.
        trace = tracer if (tracer is not None and tracer.enabled) else None
        if compile_cache is not None:
            from repro.compiler.cache import cached_map_kernel

            mapping = cached_map_kernel(
                kernel, config.fabric, cache=compile_cache
            )
        else:
            mapping = map_kernel(kernel, config.fabric)
        params = {
            name: (
                float(params[name])
                if kernel.param_dtypes[name] is DType.FLOAT
                else int(params[name])
            )
            for name in kernel.params
        }
        memsys = MemorySystem(
            config.memory, l1_write_back=config.l1_write_back, faults=faults,
            tracer=trace,
        )

        n_replicas = mapping.n_replicas
        self._plans, self._waste_units = self._build_plans(
            mapping, params, config
        )
        wd = ForwardProgressWatchdog(watchdog, "sgmf", kernel.name)
        wd.start(0.0)
        if faults is not None:
            faults.maybe_abort(f"sgmf/{kernel.name}", 0.0)

        # The whole mutable run state: one pickle of this dict is a
        # complete checkpoint (thread-injection boundaries only — the
        # per-thread walk keeps no state across threads beyond ``reps``
        # and the fabric/memory objects held here).
        state = {
            "kernel_name": kernel.name,
            "clock": 0.0,
            "config": config,
            "kernel": kernel,
            "mapping": mapping,
            "params": params,
            "n_threads": n_threads,
            "memory": memory,
            "memsys": memsys,
            "stats": FabricStats(),
            "faults": faults,
            "wd": wd,
            "trace": trace,
            "tracer": tracer,
            "metrics": metrics,
            "max_block_visits": max_block_visits,
            "n_replicas": n_replicas,
            "reps": [_ReplicaState(config) for _ in range(n_replicas)],
            "next_thread": 0,
            "waste_fires": 0,
        }
        self._state = state
        ck = None
        if checkpoint_every is not None:
            ck = Checkpointer(checkpoint_every, checkpoint_sink, start=0.0)
        return self._drive(state, ck)

    # ------------------------------------------------------------------
    def _drive(self, st, ck: Optional[Checkpointer]) -> SGMFRunResult:
        """Advance the state dict to completion (run and resume share
        this loop)."""
        config = st["config"]
        kernel = st["kernel"]
        kernel_name = st["kernel_name"]
        memory = st["memory"]
        memsys = st["memsys"]
        stats = st["stats"]
        wd = st["wd"]
        trace = st["trace"]
        reps = st["reps"]
        n_replicas = st["n_replicas"]
        n_threads = st["n_threads"]
        max_block_visits = st["max_block_visits"]
        plans, waste_units = self._plans, self._waste_units
        depth = config.token_buffer_depth
        self._faults = st["faults"]
        self._waste_fires = st["waste_fires"]

        def snapshot(now: float):
            snap = snapshot_from_replicas(
                sim="sgmf", kernel=kernel_name, now=now, replicas=reps,
            )
            if trace is not None:
                # Hang forensics: the last N timeline events show what
                # the machine did just before it stopped.
                snap.detail["recent_trace"] = [
                    ev.brief() for ev in trace.tail(16)
                ]
                trace.instant("snapshot", "watchdog", now, pid="sgmf")
            return snap

        # Batched execution: one vectorized functional pass over all
        # threads, then per-thread timing replays with stores committed
        # at each thread boundary (so checkpoints and the watchdog see
        # the scalar path's memory state).  A resumed run (next_thread
        # > 0) stays scalar: its memory already holds earlier threads'
        # stores.
        batch = None
        if (st["faults"] is None and st["next_thread"] == 0
                and n_threads >= 4 and not scalar_exec_requested()):
            batch = self._functional_waves(
                kernel, plans[0], n_threads, memory, max_block_visits
            )
        if batch is not None:
            st_a, st_v, bounds = (
                batch["st_a"], batch["st_v"], batch["bounds"]
            )
            paths = batch["paths"]
            mdata = memory.data

        end_time = st["clock"]
        i = st["next_thread"]
        while i < n_threads:
            # Thread-injection boundary: a quiescent checkpoint point.
            if ck is not None and ck.due(end_time):
                st["next_thread"] = i
                st["clock"] = end_time
                st["waste_fires"] = self._waste_fires
                self._emit_checkpoint(ck)
            ridx = i % n_replicas
            rep = reps[ridx]
            inject = rep.next_inject
            if len(rep.window) >= depth:
                bound = rep.window[len(rep.window) - depth]
                if bound > inject:
                    rep.inject_wait += bound - inject
                    inject = bound
            rep.inject_times.append(inject)
            if batch is None:
                completion = self._run_thread(
                    kernel, plans[ridx], waste_units[ridx], rep, i, inject,
                    memory, memsys, stats, max_block_visits, wd, snapshot,
                )
            else:
                completion = self._run_thread_timing(
                    plans[ridx], waste_units[ridx], rep, i, inject,
                    paths[i], memsys, stats, wd, snapshot,
                )
                if bounds is not None:
                    lo, hi = bounds[i], bounds[i + 1]
                    if hi > lo:
                        mdata[st_a[lo:hi]] = st_v[lo:hi]
            rep.next_inject = inject + 1.0
            rep.window.append(completion)
            end_time = max(end_time, completion)
            if trace is not None:
                trace.complete(
                    "thread", "sgmf.thread", inject, completion - inject,
                    pid="sgmf", tid=ridx, thread=i, replica=ridx,
                )
            wd.progress(completion)
            i += 1
            # Keep the state dict boundary-consistent before the
            # watchdog can raise: a hang then leaves ``_state`` (and
            # ``last_snapshot`` checkpoints) resumable as-is.
            st["next_thread"] = i
            st["clock"] = end_time
            st["waste_fires"] = self._waste_fires
            wd.check(end_time, snapshot)

        st["clock"] = end_time
        return self._finish(st)

    # ------------------------------------------------------------------
    def _finish(self, st) -> SGMFRunResult:
        memsys, stats = st["memsys"], st["stats"]
        metrics = st["metrics"]
        end_time = st["clock"]
        waste_fires = st["waste_fires"]
        n_threads = st["n_threads"]
        stats.threads = n_threads
        if metrics is not None:
            scope = metrics.scope("sgmf")
            record_shared_run_metrics(
                scope, cycles=end_time, n_threads=n_threads,
                l1=memsys.l1_stats, l2=memsys.l2_stats,
                dram=memsys.dram.stats,
            )
            scope.inc("fabric.node_fires", stats.node_fires)
            scope.inc("fabric.token_hops", stats.token_hops)
            scope.inc("fabric.waste_fires", waste_fires)
            scope.gauge("fabric.replicas", st["n_replicas"])

        self.last_memory = st["memory"]
        self._state = None
        return SGMFRunResult(
            kernel_name=st["kernel_name"],
            n_threads=n_threads,
            cycles=end_time,
            fabric=stats,
            waste_fires=waste_fires,
            n_replicas=st["n_replicas"],
            l1=memsys.l1_stats,
            l2=memsys.l2_stats,
            dram=memsys.dram.stats,
        ).attach_obs(st["tracer"], metrics)

    # ------------------------------------------------------------------
    @staticmethod
    def _lv_write(regs, defined, reg, wave, vals, n_threads, n):
        """Scatter a wave's live-value batch into the per-register
        thread arrays, promoting to ``object`` dtype on conflict."""
        if not isinstance(vals, np.ndarray):
            vals = as_value_array([vals] * n, n)
        arr = regs.get(reg)
        if arr is None:
            arr = np.zeros(n_threads, vals.dtype)
            regs[reg] = arr
            defined[reg] = np.zeros(n_threads, bool)
        elif arr.dtype != vals.dtype:
            if arr.dtype.kind != "O":
                obj = np.empty(n_threads, object)
                obj[:] = arr.tolist()
                arr = regs[reg] = obj
            vals = np.array(vals.tolist(), dtype=object)
        arr[wave] = vals
        defined[reg][wave] = True

    def _functional_waves(
        self,
        kernel: Kernel,
        plans: Dict[str, ExecPlan],
        n_threads: int,
        memory: MemoryImage,
        max_block_visits: int,
    ):
        """Evaluate every thread's whole-kernel walk as vectorized waves.

        Threads sharing a basic block evaluate each plan row as one
        :func:`repro.ir.vecops.vec_eval` batch; live values are wires —
        full-length per-register arrays indexed by tid.  Per-thread
        block paths and per-row address lists are recorded for the
        timing replay.  Returns ``None`` whenever the batch cannot
        reproduce the scalar thread-major semantics exactly — a stored
        address is loaded by an earlier-or-equal ``(tid, program
        position)`` (checked by :func:`stores_after_loads`, so private
        read-modify-writes stay on the batch path), a wire is read
        before any thread wrote it, an address is invalid, or a thread
        exceeds the visit bound — and the scalar walk reruns from
        untouched state (no writes happen before the bail-out).

        Buffered stores commit per thread in ``(tid, program order)``
        via one lexsort; ``bounds[t] : bounds[t+1]`` slices thread
        ``t``'s writes so :meth:`_drive` applies them at the exact
        thread boundary the scalar path would have.
        """
        data = memory.data
        size = memory.size
        regs: Dict[str, np.ndarray] = {}
        defined: Dict[str, np.ndarray] = {}
        visits = np.zeros(n_threads, np.int64)
        paths: List[List] = [[] for _ in range(n_threads)]
        load_log: List = []  # (wave, addrs, seq)
        store_log: List = []  # (wave, addrs, f64 values, seq)
        seq = 0  # shared program-order counter for the hazard keys
        frontier: Dict[str, np.ndarray] = {
            kernel.entry: np.arange(n_threads, dtype=np.int64)
        }
        try:
            while frontier:
                name, wave = frontier.popitem()
                plan = plans[name]
                visits[wave] += 1
                if int(visits[wave].max()) > max_block_visits:
                    return None
                n = wave.shape[0]
                rec: Dict[int, List[int]] = {}
                for j, t in enumerate(wave.tolist()):
                    paths[t].append((name, rec, j))
                value: List[object] = [None] * plan.n_nodes
                next_name = None
                taken = None
                for ri, row in enumerate(plan.rows):
                    tag = row[0]
                    if tag == T_INIT:
                        value[row[1]] = wave
                    elif tag == T_OP or tag == T_SCU:
                        args = []
                        for m, p in row[6]:
                            v = (p if m == 0
                                 else value[p] if m == 1 else wave)
                            if v is None and m == 1:
                                return None
                            args.append(v)
                        dt = row[7]
                        if dt == 0:
                            value[row[1]] = vec_eval_raw(
                                row[8], tuple(args), n
                            )
                        else:
                            value[row[1]] = vec_eval(
                                row[8], tuple(args), dt, n
                            )
                    elif tag == T_LVLOAD:
                        reg = row[5].out_reg
                        d = defined.get(reg)
                        if d is None or not d[wave].all():
                            return None
                        value[row[1]] = regs[reg][wave]
                    elif tag == T_LVSTORE:
                        m, p = row[5]
                        v = p if m == 0 else value[p] if m == 1 else wave
                        if v is None and m == 1:
                            return None
                        self._lv_write(
                            regs, defined, row[6].out_reg, wave, v,
                            n_threads, n,
                        )
                    elif tag == T_LOAD:
                        m, p = row[4]
                        a = p if m == 0 else value[p] if m == 1 else wave
                        if a is None and m == 1:
                            return None
                        addrs = addr_batch(a, n, size)
                        if addrs is None:
                            return None
                        rec[ri] = addrs.tolist()
                        seq += 1
                        load_log.append((wave, addrs, seq))
                        raw = data[addrs]
                        value[row[1]] = f2i_array(raw) if row[5] else raw
                    elif tag == T_STORE:
                        m, p = row[4]
                        a = p if m == 0 else value[p] if m == 1 else wave
                        if a is None and m == 1:
                            return None
                        addrs = addr_batch(a, n, size)
                        if addrs is None:
                            return None
                        rec[ri] = addrs.tolist()
                        m, p = row[5]
                        v = p if m == 0 else value[p] if m == 1 else wave
                        if v is None and m == 1:
                            return None
                        fvals = f64_batch(v, n)
                        if fvals is None:
                            return None
                        seq += 1
                        store_log.append((wave, addrs, fvals, seq))
                    elif tag == T_SJ:
                        if row[5] is not None:
                            m, p = row[5]
                            v = (p if m == 0
                                 else value[p] if m == 1 else wave)
                            if v is None and m == 1:
                                return None
                            value[row[1]] = v
                    else:  # T_TERM
                        kind = plan.term_kind
                        if kind is TermKind.RET:
                            next_name = None
                        elif kind is TermKind.JMP:
                            next_name = plan.true_target
                        else:
                            m, p = row[4]
                            c = (p if m == 0
                                 else value[p] if m == 1 else wave)
                            if c is None and m == 1:
                                return None
                            if isinstance(c, np.ndarray):
                                if c.dtype.kind == "O":
                                    taken = np.array(
                                        [bool(x) for x in c.tolist()],
                                        bool,
                                    )
                                else:
                                    taken = c != 0
                            else:
                                next_name = (
                                    plan.true_target if c
                                    else plan.false_target
                                )

                if taken is not None:
                    for target, sub in (
                        (plan.true_target, wave[taken]),
                        (plan.false_target, wave[~taken]),
                    ):
                        if not sub.shape[0]:
                            continue
                        prev = frontier.get(target)
                        frontier[target] = (
                            sub if prev is None
                            else np.concatenate([prev, sub])
                        )
                elif next_name is not None:
                    prev = frontier.get(next_name)
                    frontier[next_name] = (
                        wave if prev is None
                        else np.concatenate([prev, wave])
                    )
        except (TypeError, ValueError, OverflowError, ZeroDivisionError):
            return None

        if store_log and load_log and not stores_after_loads(
            np.concatenate([a for _, a, _ in load_log]),
            np.concatenate([hazard_key(w, s) for w, _, s in load_log]),
            np.concatenate([a for _, a, _, _ in store_log]),
            np.concatenate([hazard_key(w, s) for w, _, _, s in store_log]),
        ):
            return None

        if store_log:
            all_t = np.concatenate([w for w, _, _, _ in store_log])
            all_a = np.concatenate([a for _, a, _, _ in store_log])
            all_v = np.concatenate([v for _, _, v, _ in store_log])
            all_s = np.concatenate(
                [np.full(w.shape[0], sq, np.int64)
                 for w, _, _, sq in store_log]
            )
            order = np.lexsort((all_s, all_t))
            st_a = all_a[order]
            st_v = all_v[order]
            bounds = np.searchsorted(
                all_t[order], np.arange(n_threads + 1)
            )
        else:
            st_a = st_v = bounds = None
        return {"paths": paths, "st_a": st_a, "st_v": st_v,
                "bounds": bounds}

    def _run_thread_timing(
        self,
        plans: Dict[str, ExecPlan],
        waste_units: Dict[str, List[int]],
        rep: _ReplicaState,
        tid: int,
        inject: float,
        path: List,
        memsys: MemorySystem,
        stats: FabricStats,
        wd: ForwardProgressWatchdog,
        snapshot,
    ) -> float:
        """Replay one batched thread's walk for timing only.

        Walks the recorded block path with the compiled straight-line
        timing functions (:func:`repro.vgiw.mtcgrf.compile_timing`,
        SGMF flavour): same unit / memory request sequence, same
        arithmetic, bit-identical cycles.  The waste-fire pass at the
        end is the scalar walk's, verbatim.
        """
        config = self.config
        entries = config.ldst_reservation_entries
        scu_n = config.scu_instances
        mem_access = memsys.access_word
        ops = stats.ops
        rr: Dict[str, float] = {}
        visited = set()
        completion = inject
        entry_time = inject
        visits = 0

        for name, rec, j in path:
            visits += 1
            if not visits % 256:
                wd.check(entry_time, snapshot)
            visited.add(name)
            plan = plans[name]
            fn = plan.timing_fn
            if fn is None:
                fn = plan.timing_fn = compile_timing(
                    plan, entries, scu_n, sgmf=True
                )
            block_completion, term_done = fn(
                rep, mem_access, tid, entry_time, j, rec, rr
            )
            n = plan.n_nodes
            stats.node_fires += n
            stats.tokens += n
            stats.token_hops += plan.total_hops
            for cls, count in plan.ops_counts.items():
                ops[cls] += count
            if block_completion > completion:
                completion = block_completion
            entry_time = term_done + 1.0

        issue = rep.issue
        waste_time = inject + 0.5 * (completion - inject)
        for name, plan in plans.items():
            if name in visited:
                continue
            n = plan.n_nodes
            stats.node_fires += n
            stats.tokens += n
            self._waste_fires += n
            for cls, count in plan.ops_counts.items():
                ops[cls] += count
            for uid in waste_units[name]:
                issue(uid, waste_time)

        return completion

    # ------------------------------------------------------------------
    def _run_thread(
        self,
        kernel: Kernel,
        plans: Dict[str, ExecPlan],
        waste_units: Dict[str, List[int]],
        rep: _ReplicaState,
        tid: int,
        inject: float,
        memory: MemoryImage,
        memsys: MemorySystem,
        stats: FabricStats,
        max_block_visits: int,
        wd: Optional[ForwardProgressWatchdog] = None,
        snapshot=None,
    ) -> float:
        """Walk one thread through the precompiled whole-kernel graph.

        Interprets :class:`~repro.vgiw.mtcgrf.ExecPlan` rows (shared
        with the VGIW fabric model) with the SGMF semantics for live
        values: LVLOAD/LVSTORE are direct wires between block subgraphs
        — no LVC unit issue, a fixed one-cycle wire hop on the load
        side.  Cycle counts are bit-identical to the historical direct
        DFG walk.
        """
        faults = self._faults
        config = self.config
        # Hoisted hot-loop locals (attribute lookups cost on this path).
        issue = rep.issue
        issue_mem = rep.issue_mem
        issue_scu = rep.issue_scu
        retire_mem = rep.retire_mem
        entries = config.ldst_reservation_entries
        mem_access = memsys.access_word
        mem_read = memory.read
        mem_write = memory.write
        ops = stats.ops

        regs_ready: Dict[str, float] = {}
        reg_vals: Dict[str, Number] = {}
        visited = set()
        completion = inject
        entry_time = inject
        current: Optional[str] = kernel.entry
        visits = 0

        while current is not None:
            visits += 1
            if visits > max_block_visits:
                raise SimulationHangError(
                    f"SGMF thread {tid} exceeded {max_block_visits} "
                    f"block visits",
                    snapshot=None if snapshot is None else snapshot(entry_time),
                    kernel=kernel.name,
                    block=current,
                    thread=tid,
                    visits=visits,
                )
            if wd is not None and not visits % 256:
                # Periodic budget check inside a (possibly unbounded)
                # per-thread control-flow walk.
                wd.check(entry_time, snapshot)
            visited.add(current)
            plan = plans[current]
            n = plan.n_nodes
            done: List[float] = [0.0] * n
            value: List[Optional[Number]] = [None] * n

            next_block: Optional[str] = None
            for row in plan.rows:
                tag = row[0]
                nid = row[1]
                if tag == T_INIT:
                    done[nid] = entry_time
                    value[nid] = tid
                    continue
                ready = entry_time
                for up, hop in row[3]:
                    t = done[up] + hop
                    if t > ready:
                        ready = t
                if tag == T_OP or tag == T_SCU:
                    latency = row[4]
                    if tag == T_SCU:
                        start = issue_scu(row[2], ready, latency)
                    else:
                        start = issue(row[2], ready)
                    done[nid] = start + latency
                    args = [
                        p if m == 0 else value[p] if m == 1 else tid
                        for m, p in row[6]
                    ]
                    result = row[5](*args)
                    dt = row[7]
                    if dt == 1:
                        result = coerce_i64(result)
                    elif dt == 2:
                        result = float(result)
                    if faults is not None:
                        result = faults.corrupt_token(
                            current, row[2], tid, start, result
                        )
                    value[nid] = result
                elif tag == T_LVLOAD:
                    # Wired live value: arrives from the producing block.
                    reg = row[5].out_reg
                    t = regs_ready[reg] + 1
                    done[nid] = entry_time if entry_time >= t else t
                    value[nid] = reg_vals[reg]
                elif tag == T_LVSTORE:
                    reg = row[6].out_reg
                    done[nid] = ready
                    regs_ready[reg] = ready
                    m, p = row[5]
                    reg_vals[reg] = (
                        p if m == 0 else value[p] if m == 1 else tid
                    )
                elif tag == T_LOAD:
                    m, p = row[4]
                    addr = int(p if m == 0 else value[p] if m == 1 else tid)
                    start = issue_mem(row[2], ready, entries)
                    fin = mem_access(start, addr, False)
                    retire_mem(row[2], fin)
                    done[nid] = fin
                    raw = mem_read(addr)
                    value[nid] = coerce_i64(raw) if row[5] else raw
                elif tag == T_STORE:
                    m, p = row[4]
                    addr = int(p if m == 0 else value[p] if m == 1 else tid)
                    start = issue_mem(row[2], ready, entries)
                    fin = mem_access(start, addr, True)
                    retire_mem(row[2], fin)
                    done[nid] = fin
                    m, p = row[5]
                    mem_write(
                        addr, p if m == 0 else value[p] if m == 1 else tid
                    )
                elif tag == T_SJ:
                    start = issue(row[2], ready)
                    done[nid] = start + row[4]
                    passthrough = row[5]
                    if passthrough is not None:
                        m, p = passthrough
                        value[nid] = (
                            p if m == 0 else value[p] if m == 1 else tid
                        )
                else:  # T_TERM
                    start = issue(row[2], ready)
                    done[nid] = start + 1.0
                    term_kind = plan.term_kind
                    if term_kind is TermKind.RET:
                        next_block = None
                    elif term_kind is TermKind.JMP:
                        next_block = plan.true_target
                    else:
                        m, p = row[4]
                        taken = bool(
                            p if m == 0 else value[p] if m == 1 else tid
                        )
                        next_block = (
                            plan.true_target if taken
                            else plan.false_target
                        )

            # Per-visit statistics, batched (O(op classes), not O(nodes)).
            stats.node_fires += n
            stats.tokens += n
            stats.token_hops += plan.total_hops
            for cls, count in plan.ops_counts.items():
                ops[cls] += count

            block_completion = max(done[s] for s in plan.sinks)
            if block_completion > completion:
                completion = block_completion
            entry_time = done[plan.term_nid] + 1.0
            current = next_block

        # Predicated pass-through: one useless token through every node
        # of every block this thread never reached (paper Figure 1c).
        # The tokens flow while the thread is in flight, so they compete
        # for unit slots around the thread's mid-execution — charging
        # them at injection time would let them backfill long-idle
        # cycles and understate the utilisation loss.
        waste_time = inject + 0.5 * (completion - inject)
        for name, plan in plans.items():
            if name in visited:
                continue
            n = plan.n_nodes
            stats.node_fires += n
            stats.tokens += n
            self._waste_fires += n
            for cls, count in plan.ops_counts.items():
                ops[cls] += count
            # Occupies an issue slot but performs no memory access.
            for uid in waste_units[name]:
                issue(uid, waste_time)

        return completion

    def mapping_for(self, kernel: Kernel) -> SGMFMapping:
        """Expose the mapping (used by reports and tests)."""
        return map_kernel(kernel, self.config.fabric)
