"""Replay every committed ``.kir`` reproducer against every engine.

Each file under ``tests/corpus/`` is a minimised reproducer of a bug
the differential fuzzer (or a human) once found.  Replaying them
through the oracle keeps those bugs fixed: a regression flips the
replay from clean to divergent and this test names the engine, the
classification, and the first diverging address.

Entries whose ``status`` directive is ``open`` are expected failures —
they document a *known* divergence that is filed but not yet fixed —
and the test asserts they still reproduce (so a silent fix prompts
promoting them to ``fixed``).
"""

import os

import pytest

from repro.fuzz import load_corpus_case, load_corpus_dir, run_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

_CASES = load_corpus_dir(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert _CASES, f"no .kir reproducers under {CORPUS_DIR}"


@pytest.mark.parametrize("case", _CASES, ids=lambda c: c.name)
def test_corpus_case_replays(case):
    report = run_case(case)
    statuses = [(o.engine, o.status) for o in report.outcomes]
    if case.meta.get("status") == "open":
        assert report.divergent, (
            f"{case.name} is filed as an open divergence but now "
            f"replays clean ({statuses}) — promote it to status: fixed"
        )
    else:
        assert not report.divergent, (
            f"{case.name} regressed: {statuses}\n"
            + "\n".join(o.detail for o in report.outcomes if o.detail)
        )


@pytest.mark.parametrize("case", _CASES, ids=lambda c: c.name)
def test_corpus_case_is_well_formed(case):
    """Directives are complete and the kernel text re-loads to the
    same case (guards hand-edited entries)."""
    assert case.n_threads >= 1
    assert case.mem_words >= 1
    assert set(case.kernel.params) <= set(case.params)
    reloaded = load_corpus_case(
        os.path.join(CORPUS_DIR, f"{case.name}.kir")
    )
    assert reloaded.params == case.params
    assert reloaded.n_threads == case.n_threads
