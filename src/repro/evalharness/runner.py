"""Evaluation runner: one workload across the three architectures.

``run_kernel`` executes a Table 2 workload on Fermi, VGIW and (when the
kernel fits its fabric) SGMF, verifies every machine's final memory
against the reference interpreter, attaches energy breakdowns, and
returns a :class:`KernelRun`.  ``run_suite`` does that for the whole
registry and is the single data source for every figure's rows.

Fault isolation
---------------

A ten-minute sweep must not die because one kernel hangs or corrupts
memory.  ``run_suite`` therefore wraps every kernel in a try/except with
a bounded, deterministic retry (see
:class:`repro.resilience.RetryPolicy`): each retry gets a re-seeded
fault injector and a backed-off watchdog budget.  Kernels that exhaust
their retries become *degraded rows*: the returned :class:`SuiteResult`
still behaves as the historical ``Dict[str, KernelRun]`` over the
healthy runs, but additionally carries ``.failures`` — a mapping of
kernel name to :class:`repro.resilience.KernelFailure` with every
attempt's error, fault log, and (for hangs) the watchdog's diagnostic
snapshot.  ``docs/resilience.md`` documents the semantics.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.arch.config import FermiConfig, SGMFConfig, VGIWConfig
from repro.compiler.cache import CompileCache, cached_optimize_kernel
from repro.interp import interpret
from repro.kernels.base import Workload
from repro.kernels.registry import all_names, make_workload
from repro.obs import Metrics, Tracer
from repro.power import (
    EnergyBreakdown,
    energy_fermi,
    energy_sgmf,
    energy_vgiw,
)
from repro.resilience import (
    AttemptRecord,
    FaultInjector,
    FaultSpec,
    KernelFailure,
    ReproError,
    RetryPolicy,
    WatchdogConfig,
)
from repro.resilience.errors import VerificationError  # re-export (was local)
from repro.sgmf import SGMFCore, SGMFRunResult, SGMFUnmappableError
from repro.simt import FermiRunResult, FermiSM
from repro.vgiw import VGIWCore, VGIWRunResult

__all__ = [
    "KernelRun",
    "SuiteResult",
    "VerificationError",
    "run_kernel",
    "run_suite",
    "trace_file_for",
]


@dataclass
class KernelRun:
    """All measurements for one workload across the machines."""

    name: str
    app: str
    n_threads: int
    n_blocks: int
    fermi: FermiRunResult
    vgiw: VGIWRunResult
    sgmf: Optional[SGMFRunResult]  # None when unmappable
    fermi_energy: EnergyBreakdown
    vgiw_energy: EnergyBreakdown
    sgmf_energy: Optional[EnergyBreakdown]
    #: observability attachments (populated when run_kernel was given a
    #: tracer / metrics registry; see repro.obs)
    trace: Optional[Tracer] = None
    metrics: Optional[Metrics] = None

    @property
    def speedup_vs_fermi(self) -> float:
        return self.fermi.cycles / self.vgiw.cycles

    @property
    def speedup_vs_sgmf(self) -> Optional[float]:
        if self.sgmf is None:
            return None
        return self.sgmf.cycles / self.vgiw.cycles

    def efficiency_vs_fermi(self, level: str = "system") -> float:
        return getattr(self.fermi_energy, level) / getattr(self.vgiw_energy, level)

    def efficiency_vs_sgmf(self, level: str = "system") -> Optional[float]:
        if self.sgmf_energy is None:
            return None
        return getattr(self.sgmf_energy, level) / getattr(self.vgiw_energy, level)

    @property
    def sgmf_mappable(self) -> bool:
        return self.sgmf is not None


def run_kernel(
    name: str,
    scale: str = "small",
    verify: bool = True,
    vgiw_config: Optional[VGIWConfig] = None,
    fermi_config: Optional[FermiConfig] = None,
    sgmf_config: Optional[SGMFConfig] = None,
    optimize: bool = True,
    watchdog: Optional[WatchdogConfig] = None,
    faults: Optional[FaultInjector] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    cache: Optional[CompileCache] = None,
) -> KernelRun:
    """Run one registry workload on all three machines.

    ``watchdog`` arms the forward-progress watchdog in every simulator;
    ``faults`` threads a (single-run) fault injector through them.
    ``tracer`` / ``metrics`` (see :mod:`repro.obs`) are shared by the
    three machines — engines write to distinct trace ``pid`` lanes and
    metric scopes, so one export carries the whole cross-machine
    comparison.  ``cache`` (a
    :class:`repro.compiler.CompileCache`) memoises the per-kernel pure
    computations — the optimisation pipeline, VGIW place & route, the
    SGMF whole-kernel mapping, the Fermi CFG analyses — across runs
    (``run_suite`` threads one through the whole sweep).  Everything
    defaults to off, so the measurement path is unchanged.
    """
    workload = make_workload(name, scale)
    if optimize:
        kernel = cached_optimize_kernel(
            workload.kernel, params=workload.params, cache=cache
        )
        # SGMF's compiler must conserve fabric capacity, so it keeps
        # loops rolled; Fermi and VGIW get the fully optimised kernel.
        sgmf_kernel = cached_optimize_kernel(
            workload.kernel, params=workload.params, unroll=False,
            cache=cache,
        )
    else:
        kernel = sgmf_kernel = workload.kernel

    golden = None
    if verify:
        golden = workload.memory.clone()
        interpret(kernel, golden, workload.params, workload.n_threads)

    def check(mem, arch: str) -> None:
        if golden is not None and not np.array_equal(mem.data, golden.data):
            bad = int(np.count_nonzero(mem.data != golden.data))
            raise VerificationError(
                f"{arch} final memory diverges from the interpreter "
                f"for {name}",
                kernel=name, arch=arch, words_diverged=bad,
            )

    mem_f = workload.memory.clone()
    fermi = FermiSM(fermi_config).run(
        kernel, mem_f, workload.params, workload.n_threads,
        watchdog=watchdog, faults=faults, tracer=tracer, metrics=metrics,
        compile_cache=cache,
    )
    check(mem_f, "Fermi")

    mem_v = workload.memory.clone()
    vgiw = VGIWCore(vgiw_config).run(
        kernel, mem_v, workload.params, workload.n_threads, profile=True,
        watchdog=watchdog, faults=faults, tracer=tracer, metrics=metrics,
        compile_cache=cache,
    )
    check(mem_v, "VGIW")

    sgmf: Optional[SGMFRunResult] = None
    sgmf_bd: Optional[EnergyBreakdown] = None
    try:
        mem_s = workload.memory.clone()
        sgmf = SGMFCore(sgmf_config).run(
            sgmf_kernel, mem_s, workload.params, workload.n_threads,
            watchdog=watchdog, faults=faults, tracer=tracer, metrics=metrics,
            compile_cache=cache,
        )
        check(mem_s, "SGMF")
        sgmf_bd = energy_sgmf(sgmf)
    except SGMFUnmappableError:
        pass

    return KernelRun(
        name=name,
        app=workload.app,
        n_threads=workload.n_threads,
        n_blocks=vgiw.n_blocks,
        fermi=fermi,
        vgiw=vgiw,
        sgmf=sgmf,
        fermi_energy=energy_fermi(fermi),
        vgiw_energy=energy_vgiw(vgiw),
        sgmf_energy=sgmf_bd,
        trace=tracer,
        metrics=metrics,
    )


class SuiteResult(Mapping):
    """Suite results plus degraded rows.

    Behaves exactly like the historical ``Dict[str, KernelRun]`` over
    the *healthy* runs (iteration, ``len``, ``[]``, ``.items()``, ...),
    so every experiment generator and archived analysis keeps working.
    Failed kernels live in ``.failures`` (name →
    :class:`~repro.resilience.KernelFailure`).
    """

    def __init__(self, runs: Dict[str, KernelRun],
                 failures: Optional[Dict[str, KernelFailure]] = None):
        self.runs: Dict[str, KernelRun] = dict(runs)
        self.failures: Dict[str, KernelFailure] = dict(failures or {})

    # -- Mapping protocol over the healthy runs -------------------------
    def __getitem__(self, name: str) -> KernelRun:
        return self.runs[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def __repr__(self) -> str:
        return (f"SuiteResult({len(self.runs)} ok, "
                f"{len(self.failures)} degraded)")

    # -- degraded-row accessors -----------------------------------------
    @property
    def ok(self) -> bool:
        """True when no kernel was degraded."""
        return not self.failures

    @property
    def degraded(self) -> List[str]:
        """Names of the kernels reported as degraded rows."""
        return sorted(self.failures)

    def failure_logs(self) -> Dict[str, List[dict]]:
        """Structured per-kernel failure logs (what the report embeds)."""
        return {name: f.failure_log for name, f in self.failures.items()}


def _run_one(
    name: str,
    scale: str,
    verify: bool,
    isolate: bool,
    watchdog: Optional[WatchdogConfig],
    retry: RetryPolicy,
    spec: Optional[FaultSpec],
    tracer: Optional[Tracer],
    metrics: Optional[Metrics],
    cache: Optional[CompileCache],
):
    """One kernel of a sweep, with PR 1's retry/degraded-row machinery.

    Returns ``(run, None)`` on success or ``(None, failure)`` when the
    kernel exhausted its retries.  With ``isolate=False`` the first
    failure propagates (the historical behaviour).  Shared verbatim by
    the serial loop and the ``--jobs`` worker so the two paths cannot
    drift.
    """
    if not isolate:
        injector = FaultInjector(spec) if spec is not None else None
        run = run_kernel(
            name, scale, verify=verify, watchdog=watchdog,
            faults=injector, tracer=tracer, metrics=metrics, cache=cache,
        )
        return run, None

    attempts: List[AttemptRecord] = []
    for attempt in range(max(1, retry.max_attempts)):
        injector = (
            FaultInjector(spec.reseeded(retry.seed_delta(attempt)))
            if spec is not None else None
        )
        wd = retry.budget_for(watchdog, attempt)
        try:
            run = run_kernel(
                name, scale, verify=verify, watchdog=wd,
                faults=injector, tracer=tracer, metrics=metrics,
                cache=cache,
            )
            return run, None
        except ReproError as exc:
            attempts.append(
                AttemptRecord.from_error(attempt, exc, injector, wd))
        except Exception as exc:  # noqa: BLE001 — isolation boundary
            # Anything non-ReproError is a harness bug, but the sweep
            # must still finish; record it as a degraded row too.
            attempts.append(
                AttemptRecord.from_error(attempt, exc, injector, wd))
    return None, KernelFailure.from_attempts(name, attempts)


def _suite_worker(payload):
    """Process-pool worker: one kernel, fully isolated.

    Module top-level (picklable under every start method).  The worker
    builds its *own* tracer / metrics registry / compile cache — no
    state is shared with the parent — and ships them back with the
    result; the parent merges them in deterministic kernel order.  A
    ``cache_dir`` gives the workers a shared persistent tier (the disk
    writes are atomic, so concurrent workers are safe).
    """
    (name, scale, verify, isolate, watchdog, retry, spec,
     want_trace, want_metrics, cache_dir) = payload
    tracer = Tracer() if want_trace else None
    metrics = Metrics() if want_metrics else None
    cache = CompileCache(cache_dir)
    run, failure = _run_one(
        name, scale, verify, isolate, watchdog, retry, spec,
        tracer, metrics, cache,
    )
    return name, run, failure, tracer, metrics, cache.stats()


def trace_file_for(base: str, kernel_name: str) -> str:
    """Per-kernel trace path: ``report.json`` + ``nn/nearest`` →
    ``report.nn_nearest.json`` (slashes sanitised; documented in
    ``docs/observability.md``)."""
    safe = kernel_name.replace("/", "_")
    root, ext = os.path.splitext(base)
    if not ext:
        ext = ".json"
    return f"{root}.{safe}{ext}"


def run_suite(
    names: Optional[Iterable[str]] = None,
    scale: str = "small",
    verify: bool = True,
    isolate: bool = True,
    watchdog: Optional[WatchdogConfig] = None,
    retry: Optional[RetryPolicy] = None,
    inject: Optional[Dict[str, FaultSpec]] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    jobs: int = 1,
    cache: Optional[CompileCache] = None,
    cache_dir: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> SuiteResult:
    """Run the whole Table 2 suite (the data behind every figure).

    Parameters
    ----------
    isolate:
        When True (default) a failing kernel is retried per ``retry``
        and, if still failing, reported as a degraded row instead of
        aborting the sweep.  When False the first failure propagates
        (the historical behaviour).
    watchdog:
        Optional :class:`~repro.resilience.WatchdogConfig` armed in all
        three simulators for every kernel.
    retry:
        Bounded-retry policy; defaults to :class:`RetryPolicy()` (two
        attempts, halved watchdog budget, seed shifted by 1009).
    inject:
        Optional per-kernel fault campaigns: ``{name: FaultSpec}``.
        Kernels absent from the mapping run fault-free.
    tracer / metrics:
        Optional shared :class:`repro.obs.Tracer` /
        :class:`repro.obs.Metrics` threaded through every kernel on
        every machine (``--trace`` / ``--metrics`` on the CLI).  Under
        ``jobs > 1`` each worker records into its own registry and the
        parent merges them back in kernel order, so the aggregate is
        independent of completion order.
    jobs:
        Process-pool width (``--jobs`` on the CLI).  ``1`` (default)
        runs serially in-process.  ``N > 1`` fans the kernels out to
        ``N`` worker processes; results are reassembled in the input
        name order, so reports are byte-identical to a serial sweep.
        Fault isolation still applies per kernel inside each worker —
        a degraded kernel in one worker never disturbs the others.
    cache / cache_dir:
        Compile memoisation (see :mod:`repro.compiler.cache`).  By
        default a fresh in-memory :class:`CompileCache` is created for
        the sweep; pass ``cache=`` to reuse one across sweeps or
        ``cache_dir=`` to add the persistent on-disk tier (shared by
        ``--jobs`` workers).  Hit/miss counters land in ``metrics``
        under the ``compile/`` scope.
    trace_path:
        Base path for per-kernel Chrome-trace files.  Each kernel gets
        its own tracer and its own file (``trace_file_for``:
        ``OUT.<kernel>.json``) so a multi-kernel sweep no longer
        overwrites one file per kernel.
    """
    names = list(names) if names is not None else all_names()
    retry = retry or RetryPolicy()
    inject = inject or {}
    if cache is None:
        cache = CompileCache(cache_dir)

    runs: Dict[str, KernelRun] = {}
    failures: Dict[str, KernelFailure] = {}

    if jobs > 1:
        want_trace = trace_path is not None or tracer is not None
        want_metrics = metrics is not None
        payloads = [
            (name, scale, verify, isolate, watchdog, retry,
             inject.get(name), want_trace, want_metrics, cache_dir)
            for name in names
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_suite_worker, payload) for payload in payloads
            ]
            # Collect in *input* order (not completion order): the
            # merged metrics/trace streams and the report row order are
            # then identical to a serial sweep.
            for name, future in zip(names, futures):
                try:
                    (_, run, failure, wtracer, wmetrics,
                     wstats) = future.result()
                except Exception as exc:  # noqa: BLE001 — worker crashed
                    if not isolate:
                        raise
                    failures[name] = KernelFailure.from_attempts(
                        name, [AttemptRecord.from_error(0, exc)])
                    continue
                if failure is not None:
                    failures[name] = failure
                else:
                    runs[name] = run
                if wmetrics is not None and metrics is not None:
                    metrics.merge(wmetrics)
                if wtracer is not None:
                    if trace_path is not None:
                        wtracer.dump(trace_file_for(trace_path, name))
                    if tracer is not None:
                        tracer.merge(wtracer)
                cache.merge_stats(wstats)
    else:
        for name in names:
            ktracer = Tracer() if trace_path is not None else tracer
            run, failure = _run_one(
                name, scale, verify, isolate, watchdog, retry,
                inject.get(name), ktracer, metrics, cache,
            )
            if failure is not None:
                failures[name] = failure
            else:
                runs[name] = run
            if trace_path is not None and ktracer is not None:
                ktracer.dump(trace_file_for(trace_path, name))
                if tracer is not None:
                    tracer.merge(ktracer)

    cache.record_metrics(metrics)
    return SuiteResult(runs, failures)
