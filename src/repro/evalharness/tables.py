"""ASCII table rendering for experiment results."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _fmt(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


@dataclass
class ExperimentTable:
    """One table/figure of the paper, as rows ready to print."""

    experiment: str          # e.g. "Figure 7"
    title: str
    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: Cell) -> None:
        self.rows.append(list(cells))

    def render(self) -> str:
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"== {self.experiment}: {self.title} ==",
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)),
            sep,
        ]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def column(self, header: str) -> List[Cell]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def render_bars(self, value_header: str, label_header: Optional[str] = None,
                    width: int = 48, mark: float = 1.0) -> str:
        """Render one numeric column as a horizontal ASCII bar chart
        (the shape the paper's figures show).  ``mark`` draws a baseline
        tick (the 1.0x parity line for speedup/efficiency figures)."""
        label_idx = 0 if label_header is None else self.headers.index(label_header)
        value_idx = self.headers.index(value_header)
        rows = [
            (str(r[label_idx]), float(r[value_idx]))
            for r in self.rows
            if isinstance(r[value_idx], (int, float))
            and r[value_idx] is not None
            and math.isfinite(r[value_idx])  # NaN rows (empty-sweep means)
        ]
        if not rows:
            return "(no data)"
        peak = max(max(v for _, v in rows), mark)
        label_w = max(len(l) for l, _ in rows)
        mark_pos = int(width * mark / peak)
        lines = [f"{self.experiment}: {self.title} ({value_header})"]
        for label, value in rows:
            bar_len = int(width * value / peak)
            bar = "#" * bar_len
            if mark_pos < width and len(bar) <= mark_pos:
                bar = bar.ljust(mark_pos) + "|"
            lines.append(f"{label.ljust(label_w)} {bar.ljust(width + 1)} {_fmt(value)}")
        return "\n".join(lines)


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v is not None]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def arithmean(values: Iterable[float]) -> float:
    vals = [v for v in values if v is not None]
    if not vals:
        return float("nan")
    return sum(vals) / len(vals)
