"""Warp memory-access coalescing (Fermi baseline only).

A Fermi SM merges the 32 lane addresses of a warp memory instruction
into the minimal set of 128-byte segments and issues one L1 access per
segment (Lindholm et al., IEEE Micro 2008).  VGIW performs **no**
memory coalescing — each thread's load/store is a scalar L1 access
(paper §5: "Even though VGIW does not perform memory coalescing ...");
the contrast between the two paths is what makes streaming kernels such
as CFD's ``time_step`` competitive on Fermi.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.memory.image import WORD_BYTES


def coalesce_word_addresses(
    word_addrs: Iterable[int], line_bytes: int = 128
) -> List[int]:
    """Map lane word-addresses to the distinct line addresses they touch.

    Returns sorted line indices (byte address / ``line_bytes``), one per
    memory transaction the warp instruction generates.
    """
    words_per_line = line_bytes // WORD_BYTES
    return sorted({int(a) // words_per_line for a in word_addrs})


def line_address_of_word(word_addr: int, line_bytes: int = 128) -> int:
    """Line index containing a word address."""
    return int(word_addr) // (line_bytes // WORD_BYTES)
