"""Fermi-class streaming multiprocessor: the von Neumann GPGPU baseline.

Models the first-order behaviours the paper's comparison rests on
(§2, §4, §5):

* warps of 32 threads execute in lockstep; divergence is handled by the
  IPDOM reconvergence stack, so lanes whose control flow bypasses the
  current block are masked off and their issue slots are wasted;
* two warp schedulers issue up to two warp-instructions per cycle; the
  ALU pipeline has Fermi-typical dependent-issue latency (hidden by
  multithreading across up to 48 resident warps);
* warp memory instructions are *coalesced* into 128-byte transactions
  (the big von Neumann advantage VGIW lacks) and served by a
  write-through / write-no-allocate L1;
* a scoreboard blocks an instruction until its operand registers'
  pending writes complete;
* every warp instruction reads/writes the banked vector register file —
  the access counts feed Figure 3 and the 30 % pipeline+RF energy
  overhead the paper cites.

Timing is event-ordered: warps live in a ready-time heap and execute one
instruction per event; shared pipelines (issue slots, LDST, SFU) are
resource timelines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.arch.config import FermiConfig
from repro.compiler.cfganalysis import immediate_post_dominators
from repro.engine import CheckpointMixin, Checkpointer, EngineRunResult
from repro.ir.instr import Instr, Op, UnitClass, unit_class
from repro.ir.kernel import Kernel
from repro.ir.types import DType, Reg, is_reserved_reg
from repro.memory.cache import CacheStats
from repro.memory.coalescer import coalesce_word_addresses
from repro.memory.dram import DRAMStats
from repro.memory.hierarchy import MemorySystem
from repro.memory.image import MemoryImage
from repro.obs.metrics import Metrics, record_shared_run_metrics
from repro.resilience.errors import SimulationHangError
from repro.resilience.faults import FaultInjector
from repro.resilience.watchdog import (
    DiagnosticSnapshot,
    ForwardProgressWatchdog,
    WatchdogConfig,
)
from repro.simt.simtstack import SIMTStack
from repro.simt.warp import Warp, prepare_instr

Number = Union[int, float, bool]


@dataclass
class SMStats:
    """Event counters for the SM (feeds the energy model and Figure 3)."""

    instructions_issued: int = 0
    branch_instructions: int = 0
    alu_instructions: int = 0
    sfu_instructions: int = 0
    mem_instructions: int = 0
    lane_ops: int = 0
    lane_alu_ops: int = 0   # active lanes of int-ALU/branch instructions
    lane_fpu_ops: int = 0   # active lanes of FP instructions
    lane_sfu_ops: int = 0   # active lanes of SFU instructions
    lane_mem_ops: int = 0   # active lanes of memory instructions
    wasted_lane_slots: int = 0
    rf_reads: int = 0
    rf_writes: int = 0
    mem_transactions: int = 0
    divergences: int = 0
    warps_launched: int = 0
    register_pressure: int = 0  # registers per thread (occupancy model)
    resident_warps: int = 0     # warps co-resident after the RF bound

    @property
    def rf_accesses(self) -> int:
        """Total register-file accesses (reads + writes)."""
        return self.rf_reads + self.rf_writes

    @property
    def simd_efficiency(self) -> float:
        """Fraction of issued lane slots that did useful work."""
        total = self.lane_ops + self.wasted_lane_slots
        return self.lane_ops / total if total else 1.0


@dataclass
class FermiRunResult(EngineRunResult):
    """Result of one kernel launch on the Fermi baseline.

    Shares the :class:`~repro.engine.EngineRunResult` contract with the
    VGIW and SGMF results (``trace``/``metrics`` attachments included);
    every historical field keeps its name and position.
    """

    engine = "fermi"

    kernel_name: str
    n_threads: int
    cycles: float
    sm: SMStats
    l1: CacheStats
    l2: CacheStats
    dram: DRAMStats


def _register_pressure(kernel: Kernel) -> int:
    """Registers per thread for the occupancy model.

    Approximated as the maximum over blocks of (registers live into the
    block + registers the block defines) — what an allocator without
    intra-block reuse would need — floored at a realistic minimum.
    """
    from repro.compiler.liveness import analyze_liveness

    live = analyze_liveness(kernel)
    peak = 0
    for name, block in kernel.blocks.items():
        peak = max(peak, len(live.live_in[name]) + len(block.defs()))
    return max(8, peak)


class _WarpCtx:
    """Scheduler-side warp context."""

    __slots__ = ("warp", "stack", "block", "idx", "ready", "reg_ready")

    def __init__(self, warp: Warp, stack: SIMTStack, entry: str):
        self.warp = warp
        self.stack = stack
        self.block = entry
        self.idx = 0
        self.ready = 0.0
        self.reg_ready: Dict[str, float] = {}


class FermiSM(CheckpointMixin):
    """One Fermi-class SM attached to the standard memory hierarchy."""

    engine = "fermi"

    def __init__(self, config: Optional[FermiConfig] = None):
        self.config = config or FermiConfig()
        #: per-block descriptor tables (derived, rebuilt on restore —
        #: the rows hold function objects and cannot be pickled)
        self._tables: Optional[Dict[str, tuple]] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _build_tables(kernel: Kernel,
                      params: Dict[str, Number]) -> Dict[str, tuple]:
        """Precompute one descriptor row per instruction so the issue
        loop never re-derives unit class / register operand lists /
        FPU-ness per warp (they are per-instruction constants).
        Cycle-identical: only host-side Python overhead changes.

        Pure function of ``(kernel, converted params)``, both of which
        a snapshot carries, so a restore rebuilds identical tables."""
        tables: Dict[str, tuple] = {}
        for bname, block in kernel.blocks.items():
            descs = []
            for instr in block.instrs:
                cls = unit_class(instr.op)
                cls_code = (
                    1 if cls is UnitClass.MEMORY
                    else 2 if cls is UnitClass.SPECIAL else 0
                )
                src_regs = tuple(
                    s.name for s in instr.srcs if isinstance(s, Reg)
                )
                is_fpu = (
                    instr.op.value.startswith("f")
                    or instr.op.value == "i2f"
                )
                descs.append((instr, cls_code, src_regs, instr.dst, is_fpu,
                              prepare_instr(instr, params)))
            term = block.terminator
            tables[bname] = (
                descs,
                term,
                term.cond is not None,
                getattr(term.cond, "name", ""),
                isinstance(term.cond, Reg),
            )
        return tables

    def _after_restore(self, state) -> None:
        self._tables = self._build_tables(state["kernel"], state["params"])

    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        memory: MemoryImage,
        params: Dict[str, Number],
        n_threads: int,
        watchdog: Optional[WatchdogConfig] = None,
        faults: Optional[FaultInjector] = None,
        tracer=None,
        metrics: Optional[Metrics] = None,
        compile_cache=None,
        checkpoint_every: Optional[float] = None,
        checkpoint_sink=None,
    ) -> FermiRunResult:
        """Execute ``n_threads`` of ``kernel`` against ``memory``.

        ``tracer`` records SIMT-stack timeline events (warp launches /
        retirements, IPDOM divergences) plus cache-miss and DRAM
        row-activation events from the memory hierarchy; ``metrics``
        receives the run's counters under the ``fermi/`` scope.  Both
        attach to the returned result.  ``compile_cache`` memoises the
        CFG analyses (IPDOM tree, register-pressure estimate) per
        kernel.  ``checkpoint_every`` arms periodic state snapshots at
        warp-event boundaries (see ``docs/resilience.md`` §7).
        """
        config = self.config
        # Disabled-mode fast path: one local None-test per hook site.
        trace = tracer if (tracer is not None and tracer.enabled) else None
        params = {
            name: (
                float(params[name])
                if kernel.param_dtypes[name] is DType.FLOAT
                else int(params[name])
            )
            for name in kernel.params
        }
        memsys = MemorySystem(
            config.memory, l1_write_back=config.l1_write_back, faults=faults,
            tracer=trace,
        )
        if compile_cache is not None:
            from repro.compiler.cache import kernel_fingerprint

            key = compile_cache.make_key(
                "fermi-analysis", kernel_fingerprint(kernel)
            )
            ipdom, cached_pressure = compile_cache.get_or_build(
                "fermi-analysis", key,
                lambda: (
                    immediate_post_dominators(kernel),
                    _register_pressure(kernel),
                ),
            )
        else:
            ipdom = immediate_post_dominators(kernel)
            cached_pressure = None
        stats = SMStats()
        self._tables = self._build_tables(kernel, params)
        wd = ForwardProgressWatchdog(watchdog, "fermi", kernel.name)
        wd.start(0.0)
        if faults is not None:
            faults.maybe_abort(f"fermi/{kernel.name}", 0.0)

        ws = config.warp_size
        n_warps = -(-n_threads // ws)
        stats.warps_launched = n_warps

        max_resident = config.max_resident_warps
        if config.model_occupancy:
            # The register file bounds occupancy: each resident warp
            # holds `pressure` registers x 32 lanes x 4 bytes.
            pressure = (
                cached_pressure if cached_pressure is not None
                else _register_pressure(kernel)
            )
            rf_warps = config.register_file_bytes // max(
                1, 4 * ws * pressure
            )
            max_resident = max(2, min(max_resident, rf_warps))
            stats.register_pressure = pressure
            stats.resident_warps = min(max_resident, n_warps)

        # The whole mutable run state: one pickle of this dict is a
        # complete checkpoint.  Event ordering uses a plain int
        # ``counter`` (was ``itertools.count``) and the pending-warp
        # queue a plain int cursor (was a live ``iter(range(...))``) —
        # behaviour-identical, but picklable.
        state = {
            "kernel_name": kernel.name,
            "clock": 0.0,
            "config": config,
            "kernel": kernel,
            "params": params,
            "n_threads": n_threads,
            "memory": memory,
            "memsys": memsys,
            "stats": stats,
            "ipdom": ipdom,
            "wd": wd,
            "trace": trace,
            "tracer": tracer,
            "metrics": metrics,
            "ws": ws,
            "n_warps": n_warps,
            "heap": [],
            "counter": 0,
            "next_pending": max_resident,
            "issue_free": 0.0,
            "ldst_free": 0.0,
            "sfu_free": 0.0,
            "alu_free": 0.0,
            "mshr_outstanding": [],
            "horizon": 0.0,
        }

        heap = state["heap"]
        for wid in range(min(max_resident, n_warps)):
            heapq.heappush(
                heap, (0.0, state["counter"], self._make_ctx(state, wid))
            )
            state["counter"] += 1
            if trace is not None:
                trace.instant("warp.launch", "fermi.simt", 0.0,
                              pid="fermi", warp=wid)

        self._state = state
        ck = None
        if checkpoint_every is not None:
            ck = Checkpointer(checkpoint_every, checkpoint_sink, start=0.0)
        return self._drive(state, ck)

    # ------------------------------------------------------------------
    @staticmethod
    def _make_ctx(st, warp_id: int) -> _WarpCtx:
        ws = st["ws"]
        base = warp_id * ws
        valid = min(ws, st["n_threads"] - base)
        warp = Warp(warp_id, base, ws, valid, st["params"], st["memory"])
        stack = SIMTStack(st["kernel"].entry, warp.valid_mask, st["ipdom"])
        return _WarpCtx(warp, stack, st["kernel"].entry)

    # ------------------------------------------------------------------
    def _drive(self, st, ck: Optional[Checkpointer]) -> FermiRunResult:
        """Advance the state dict to completion.

        The hot event loop works on hoisted locals (exactly the
        variables the pre-checkpoint implementation kept); ``sync``
        writes them back into the state dict at the only points where a
        consistent view matters — a checkpoint boundary, a watchdog
        hang, and completion."""
        config = st["config"]
        kernel_name = st["kernel_name"]
        memsys = st["memsys"]
        stats = st["stats"]
        tables = self._tables
        wd = st["wd"]
        trace = st["trace"]
        ws = st["ws"]
        n_warps = st["n_warps"]
        heap = st["heap"]

        issue_free = st["issue_free"]
        self._ldst_free = st["ldst_free"]
        self._sfu_free = st["sfu_free"]
        self._alu_free = st["alu_free"]
        self._mshr_outstanding = st["mshr_outstanding"]
        horizon = st["horizon"]
        counter = st["counter"]
        next_pending = st["next_pending"]
        issue_period = config.issue_period_cycles
        ctx: Optional[_WarpCtx] = None

        def sync(now: float) -> None:
            st["clock"] = now
            st["issue_free"] = issue_free
            st["ldst_free"] = self._ldst_free
            st["sfu_free"] = self._sfu_free
            st["alu_free"] = self._alu_free
            st["mshr_outstanding"] = self._mshr_outstanding
            st["horizon"] = horizon
            st["counter"] = counter
            st["next_pending"] = next_pending

        def snapshot(now: float) -> DiagnosticSnapshot:
            stalled: Dict[str, float] = {}
            for label, free in (
                ("alu_pipe", self._alu_free),
                ("ldst_pipe", self._ldst_free),
                ("sfu_pipe", self._sfu_free),
                ("issue_slots", issue_free),
            ):
                backlog = free - now
                if backlog > 0:
                    stalled[label] = backlog
            detail: Dict[str, object] = {"resident_warps": len(heap) + 1}
            oldest = None
            if ctx is not None:
                detail["current_warp"] = ctx.warp.warp_id
                detail["current_block"] = ctx.block
                detail["current_instr_idx"] = ctx.idx
                oldest = max(0.0, now - ctx.ready)
            if trace is not None:
                # Hang forensics: the last N timeline events show what
                # the machine did just before it stopped.
                detail["recent_trace"] = [
                    ev.brief() for ev in trace.tail(16)
                ]
                trace.instant("snapshot", "watchdog", now, pid="fermi")
            return DiagnosticSnapshot(
                sim="fermi",
                kernel=kernel_name,
                cycle=now,
                events_retired=0,
                last_progress_cycle=0.0,
                in_flight={"warps": len(heap) + 1},
                mshr_outstanding=len(self._mshr_outstanding),
                stalled_units=stalled,
                oldest_thread_age=oldest,
                detail=detail,
            )

        wd_armed = wd.armed
        heappush = heapq.heappush
        heappop = heapq.heappop
        while heap:
            # Heap-event boundary: every ctx is parked in the heap, so
            # the state dict (once synced) is a complete checkpoint.
            if ck is not None and ck.due(heap[0][0]):
                sync(heap[0][0])
                self._emit_checkpoint(ck)
            t, c, ctx = heappop(heap)
            if wd_armed:
                try:
                    wd.check(t, snapshot)
                except SimulationHangError:
                    # Re-park the popped warp: the run is then at an
                    # exact event boundary, so the hang itself leaves a
                    # resumable snapshot behind.
                    heappush(heap, (t, c, ctx))
                    sync(t)
                    self.last_snapshot = self.snapshot()
                    raise
            descs, term, has_cond, cond_name, cond_is_reg = tables[ctx.block]
            mask = ctx.stack.current().mask
            active = bin(mask).count("1")

            if ctx.idx < len(descs):
                instr, cls_code, src_regs, dst, is_fpu, prep = descs[ctx.idx]
                ctx.idx += 1
                # Scoreboard: operands' pending writes must complete.
                issue = t if t >= ctx.ready else ctx.ready
                reg_ready = ctx.reg_ready
                for name in src_regs:
                    r = reg_ready.get(name, 0.0)
                    if r > issue:
                        issue = r
                if issue < issue_free:
                    issue = issue_free
                issue_free = issue + issue_period
                done = self._dispatch(
                    ctx, instr, mask, active, issue, stats, memsys, config,
                    cls_code, is_fpu, prep,
                )
                # One RF access per register operand, counted once for
                # the whole warp (paper Figure 3's accounting).
                stats.rf_reads += len(src_regs)
                if dst is not None:
                    stats.rf_writes += 1
                stats.instructions_issued += 1
                stats.lane_ops += active
                stats.wasted_lane_slots += ws - active
                if done > horizon:
                    horizon = done
                ctx.ready = issue + 1.0
                heappush(heap, (ctx.ready, counter, ctx))
                counter += 1
                continue

            # Block terminator: a branch instruction.
            issue = t
            if has_cond:
                r = ctx.reg_ready.get(cond_name, 0.0)
                if r > issue:
                    issue = r
            issue = max(issue, issue_free, self._alu_free)
            issue_free = issue + issue_period
            self._alu_free = issue + 1.0
            stats.instructions_issued += 1
            stats.branch_instructions += 1
            stats.lane_ops += active
            stats.lane_alu_ops += active
            stats.wasted_lane_slots += ws - active
            if cond_is_reg:
                stats.rf_reads += 1
            if issue + 1.0 > horizon:
                horizon = issue + 1.0

            targets = ctx.warp.exec_terminator(term, mask)
            before = ctx.stack.divergences
            ctx.stack.advance(ctx.block, targets)
            diverged = ctx.stack.divergences - before
            stats.divergences += diverged
            if diverged and trace is not None:
                trace.instant(
                    "divergence", "fermi.simt", issue, pid="fermi",
                    warp=ctx.warp.warp_id, block=ctx.block,
                    stack_depth=len(ctx.stack.stack),
                )
            next_block = ctx.stack.peek_block()
            if next_block is None:
                # Warp finished; a pending warp takes its slot.
                wd.progress(issue + 1.0)
                if trace is not None:
                    trace.instant(
                        "warp.retire", "fermi.simt", issue + 1.0,
                        pid="fermi", warp=ctx.warp.warp_id,
                    )
                nxt = next_pending if next_pending < n_warps else None
                if nxt is not None:
                    next_pending += 1
                    heapq.heappush(
                        heap, (issue + 1.0, counter, self._make_ctx(st, nxt))
                    )
                    counter += 1
                    if trace is not None:
                        trace.instant("warp.launch", "fermi.simt",
                                      issue + 1.0, pid="fermi", warp=nxt)
                continue
            ctx.block = next_block
            ctx.idx = 0
            ctx.ready = issue + 1.0
            heapq.heappush(heap, (ctx.ready, counter, ctx))
            counter += 1

        sync(horizon)
        return self._finish(st)

    # ------------------------------------------------------------------
    def _finish(self, st) -> FermiRunResult:
        memsys, stats = st["memsys"], st["stats"]
        metrics = st["metrics"]
        horizon = st["horizon"]
        if metrics is not None:
            scope = metrics.scope("fermi")
            record_shared_run_metrics(
                scope, cycles=horizon, n_threads=st["n_threads"],
                l1=memsys.l1_stats, l2=memsys.l2_stats,
                dram=memsys.dram.stats,
            )
            scope.inc("sm.instructions_issued", stats.instructions_issued)
            scope.inc("sm.branch_instructions", stats.branch_instructions)
            scope.inc("sm.mem_instructions", stats.mem_instructions)
            scope.inc("sm.mem_transactions", stats.mem_transactions)
            scope.inc("sm.rf_reads", stats.rf_reads)
            scope.inc("sm.rf_writes", stats.rf_writes)
            scope.inc("simt.divergences", stats.divergences)
            scope.inc("simt.warps_launched", stats.warps_launched)
            scope.inc("simt.wasted_lane_slots", stats.wasted_lane_slots)
            scope.gauge("simt.simd_efficiency", stats.simd_efficiency)

        self.last_memory = st["memory"]
        self._state = None
        return FermiRunResult(
            kernel_name=st["kernel_name"],
            n_threads=st["n_threads"],
            cycles=horizon,
            sm=stats,
            l1=memsys.l1_stats,
            l2=memsys.l2_stats,
            dram=memsys.dram.stats,
        ).attach_obs(st["tracer"], metrics)

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        ctx: _WarpCtx,
        instr: Instr,
        mask: int,
        active: int,
        issue: float,
        stats: SMStats,
        memsys: MemorySystem,
        config: FermiConfig,
        cls_code: int,
        is_fpu: bool,
        prep=None,
    ) -> float:
        """Execute one warp instruction on its pipeline.

        ``cls_code`` (0=ALU, 1=MEMORY, 2=SFU), ``is_fpu`` and ``prep``
        (a :func:`repro.simt.warp.prepare_instr` row) come from the
        per-block descriptor table built in :meth:`run` — they are
        per-instruction constants hoisted out of the issue loop.
        """
        exec_one = (ctx.warp.exec_instr if prep is None
                    else ctx.warp.exec_prepared)
        what = instr if prep is None else prep
        if cls_code == 1:  # UnitClass.MEMORY
            stats.mem_instructions += 1
            stats.lane_mem_ops += active
            mem_ops = exec_one(what, mask)
            is_write = instr.op is Op.STORE
            segments = coalesce_word_addresses(
                [m.word_addr for m in mem_ops], config.memory.l1_line_bytes
            )
            completion = issue
            start = issue
            for seg in segments:
                start = max(start, self._ldst_free)
                self._ldst_free = start + config.ldst_throughput_cycles
                misses_before = memsys.l1.stats.misses
                done = memsys.access_line(start, seg, is_write)
                if memsys.l1.stats.misses > misses_before:
                    done += self._miss_penalty(start, done, config)
                completion = max(completion, done)
                stats.mem_transactions += 1
            if instr.op is Op.LOAD:
                ctx.reg_ready[instr.dst] = completion
                return completion
            # Stores are posted: the warp does not wait for them.
            return issue + 1.0

        if cls_code == 2:  # UnitClass.SPECIAL
            stats.sfu_instructions += 1
            stats.lane_sfu_ops += active
            exec_one(what, mask)
            start = max(issue, self._sfu_free)
            self._sfu_free = start + config.sfu_throughput_cycles
            done = start + config.sfu_latency
            ctx.reg_ready[instr.dst] = done
            return done

        stats.alu_instructions += 1
        if is_fpu:
            stats.lane_fpu_ops += active
        else:
            stats.lane_alu_ops += active
        exec_one(what, mask)
        # The 32 CUDA cores execute one full warp instruction per cycle;
        # dual issue only helps when pairing ALU with LDST/SFU work.
        start = max(issue, self._alu_free)
        self._alu_free = start + 1.0
        done = start + config.alu_latency
        if instr.dst is not None:
            ctx.reg_ready[instr.dst] = done
        return done

    def _miss_penalty(self, start: float, done: float,
                      config: FermiConfig) -> float:
        """Baseline-sensitivity costs of an L1 miss (both off by default).

        Replay re-occupies the LDST pipe; a full MSHR file stalls the
        pipe until the oldest outstanding miss returns."""
        penalty = 0.0
        if config.miss_replay_cycles:
            self._ldst_free += config.miss_replay_cycles
        if config.l1_mshr_limit:
            heap = self._mshr_outstanding
            while heap and heap[0] <= start:
                heapq.heappop(heap)
            if len(heap) >= config.l1_mshr_limit:
                wait = max(0.0, heapq.heappop(heap) - start)
                penalty += wait
                self._ldst_free += wait
            heapq.heappush(heap, done + penalty)
        return penalty
