"""Paper Figure 8: speedup of VGIW over SGMF (SGMF-mappable subset).

Paper result: 0.4x to 3.1x, average ~1.45x.  SGMF wins on small kernels
with little divergence (no reconfiguration, no LVC); VGIW wins once
kernels diverge or loop.  Kernels whose whole CDFG exceeds the fabric
cannot run on SGMF at all — the comparison covers only the mappable
subset, exactly as in the paper.
"""

from repro.evalharness.experiments import fig8_speedup_vs_sgmf
from repro.evalharness.tables import geomean


def bench_fig8(benchmark, suite_runs):
    table = benchmark(fig8_speedup_vs_sgmf, suite_runs)
    print()
    print(table.render())

    sps = [
        row[3] for row in table.rows
        if row[0] not in ("GEOMEAN", "ARITHMEAN")
    ]
    # The subset property: some kernels must be unmappable on SGMF.
    unmappable = [r for r in suite_runs.values() if not r.sgmf_mappable]
    assert unmappable, "large kernels must exceed the SGMF fabric"
    assert len(sps) >= 8, "a meaningful subset must still map"
    # Both directions exist: SGMF wins somewhere, VGIW wins somewhere.
    assert min(sps) < 1.0
    assert max(sps) > 1.2
