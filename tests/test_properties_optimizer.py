"""Property-based tests: random kernels through the optimiser and the
machines.

The generator builds random (but well-formed) kernels from a template —
straight-line arithmetic, an optional guard, an optional constant-trip
loop — and checks that every optimisation level preserves the
interpreter's results exactly, and that the VGIW core agrees with the
interpreter on the optimised kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.optimize import optimize_kernel
from repro.interp import interpret
from repro.ir import DType, KernelBuilder
from repro.memory import MemoryImage
from repro.vgiw import VGIWCore

#: binary operators applied through the Val overloads
_BINOPS = ["add", "sub", "mul", "min", "max"]


@st.composite
def random_kernel_spec(draw):
    n_ops = draw(st.integers(3, 12))
    ops = [
        (
            draw(st.sampled_from(_BINOPS)),
            draw(st.integers(0, 3)),          # which live value to use
            draw(st.floats(-4, 4, allow_nan=False).map(lambda x: round(x, 3))),
        )
        for _ in range(n_ops)
    ]
    guarded = draw(st.booleans())
    loop_trips = draw(st.sampled_from([0, 0, 3, 5]))
    return ops, guarded, loop_trips


def _build(spec):
    ops, guarded, loop_trips = spec
    kb = KernelBuilder("rand", params=["data", "out", "n"])
    t = kb.tid()

    def body():
        vals = [
            kb.load(kb.param("data") + t * 4 + i) for i in range(4)
        ]
        acc = kb.var("acc", 0.0)
        for opname, idx, const in ops:
            v = vals[idx]
            if opname == "add":
                kb.assign(acc, acc + v + const)
            elif opname == "sub":
                kb.assign(acc, acc - v * const)
            elif opname == "mul":
                kb.assign(acc, acc * (v + 1.5) + const)
            elif opname == "min":
                kb.assign(acc, kb.min_(acc, v * const))
            else:
                kb.assign(acc, kb.max_(acc, v - const))
        if loop_trips:
            with kb.for_range(0, loop_trips) as i:
                kb.assign(acc, acc + kb.i2f(i) * 0.25)
        kb.store(kb.param("out") + t, acc)

    if guarded:
        with kb.if_(t < kb.param("n")):
            body()
    else:
        body()
    return kb.build()


def _run(kernel, params, data, n_threads, machine=None):
    mem = MemoryImage(4 * n_threads + n_threads + 64)
    mem.write_block(0, data)
    if machine is None:
        interpret(kernel, mem, params, n_threads)
    else:
        machine.run(kernel, mem, params, n_threads)
    return mem.data.copy()


@given(random_kernel_spec())
@settings(max_examples=30, deadline=None)
def test_optimizer_preserves_semantics(spec):
    kernel = _build(spec)
    n = 4
    rng = np.random.default_rng(7)
    data = rng.uniform(-2, 2, 4 * n).round(3)
    params = {"data": 0, "out": 4 * n, "n": n}

    base = _run(kernel, params, data, n)
    plain = _run(optimize_kernel(kernel), params, data, n)
    specialised = _run(optimize_kernel(kernel, params=params), params, data, n)
    np.testing.assert_array_equal(base, plain)
    np.testing.assert_array_equal(base, specialised)


@given(random_kernel_spec())
@settings(max_examples=10, deadline=None)
def test_vgiw_agrees_with_interpreter_on_random_kernels(spec):
    kernel = optimize_kernel(_build(spec))
    n = 4
    rng = np.random.default_rng(11)
    data = rng.uniform(-2, 2, 4 * n).round(3)
    params = {"data": 0, "out": 4 * n, "n": n}
    golden = _run(kernel, params, data, n)
    vgiw = _run(kernel, params, data, n, machine=VGIWCore())
    np.testing.assert_array_equal(golden, vgiw)
