"""Tests for the compiled-kernel structural verifier."""

import pytest

from repro.compiler import compile_kernel
from repro.compiler.dfg import NodeKind, NodeSrc
from repro.compiler.optimize import optimize_kernel
from repro.compiler.verifydfg import (
    DFGVerificationError,
    verify_compiled,
    verify_dfg,
)
from repro.kernels import fig1_kernel, saxpy_kernel
from repro.kernels.registry import all_names, make_workload


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_every_compiled_benchmark_verifies(name):
    w = make_workload(name, "tiny")
    ck = compile_kernel(optimize_kernel(w.kernel, params=w.params))
    verify_compiled(ck)


def test_fanout_violation_detected():
    ck = compile_kernel(saxpy_kernel())
    dfg = ck.blocks["then.1"].dfg
    # Manufacture an illegal fanout by pointing many nodes at one source.
    victim = next(n for n in dfg.nodes if n.kind is NodeKind.OP)
    for node in dfg.nodes:
        if node.kind is NodeKind.OP and node is not victim and node.srcs:
            node.srcs = [NodeSrc(victim.nid)] * len(node.srcs)
    with pytest.raises(DFGVerificationError, match="fanout"):
        verify_dfg(dfg)


def test_missing_source_detected():
    ck = compile_kernel(saxpy_kernel())
    dfg = ck.blocks["then.1"].dfg
    node = next(n for n in dfg.nodes if n.srcs and isinstance(n.srcs[0], NodeSrc))
    node.srcs = [NodeSrc(9999)] + list(node.srcs[1:])
    with pytest.raises(DFGVerificationError, match="missing node"):
        verify_dfg(dfg)


def test_unordered_store_detected():
    from repro.ir import KernelBuilder

    # A store followed by a load of an unrelated address: ordered only
    # through the RAW control edge; severing it must be caught.
    kb = KernelBuilder("raw", params=["a", "b", "out"])
    kb.store(kb.param("a"), 1.0)
    v = kb.load(kb.param("b"))
    kb.store(kb.param("out"), v)
    ck = compile_kernel(kb.build())
    dfg = ck.blocks["entry"].dfg
    verify_dfg(dfg)  # sane as compiled
    load = next(n for n in dfg.nodes if n.kind is NodeKind.LOAD)
    load.ctrl = []  # sever the store -> load ordering edge
    with pytest.raises(DFGVerificationError, match="unordered"):
        verify_dfg(dfg)


def test_bad_placement_detected():
    ck = compile_kernel(fig1_kernel())
    cb = ck.blocks["entry"]
    replica = cb.placement.replicas[0]
    # Swap a node onto a unit of the wrong kind.
    init_nid = cb.dfg.init_node
    compute_nid = next(
        n.nid for n in cb.dfg.nodes if n.kind is NodeKind.OP
    )
    replica.unit_of[init_nid], replica.unit_of[compute_nid] = (
        replica.unit_of[compute_nid], replica.unit_of[init_nid],
    )
    with pytest.raises(DFGVerificationError, match="placed on"):
        verify_compiled(ck)


def test_duplicate_unit_detected():
    ck = compile_kernel(fig1_kernel())
    cb = ck.blocks["entry"]
    replica = cb.placement.replicas[0]
    nids = list(replica.unit_of)
    a, b = None, None
    for x in nids:
        for y in nids:
            if x != y and cb.dfg.node(x).unit_kind is cb.dfg.node(y).unit_kind:
                a, b = x, y
                break
        if a is not None:
            break
    replica.unit_of[a] = replica.unit_of[b]
    with pytest.raises(DFGVerificationError, match="assigned twice"):
        verify_compiled(ck)
