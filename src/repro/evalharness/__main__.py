"""CLI: regenerate every table/figure of the paper.

Usage::

    python -m repro.evalharness [--scale tiny|small|medium]
                                [--kernels name,name,...]
                                [--out FILE] [--json FILE]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.evalharness.report import generate_report
from repro.evalharness.runner import run_suite
from repro.evalharness.serialize import runs_to_json
from repro.kernels.registry import all_names


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.evalharness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--kernels", default=None,
                        help="comma-separated registry names "
                             "(default: the full Table 2 suite)")
    parser.add_argument("--out", default=None,
                        help="write the markdown report to this file")
    parser.add_argument("--json", default=None,
                        help="also archive raw results as JSON")
    args = parser.parse_args(argv)

    names = None
    if args.kernels:
        names = [n.strip() for n in args.kernels.split(",") if n.strip()]
        known = set(all_names(include_extras=True))
        unknown = [n for n in names if n not in known]
        if unknown:
            parser.error(f"unknown kernels: {unknown}")

    t0 = time.time()
    runs = run_suite(names, scale=args.scale)
    report = generate_report(runs, scale=args.scale)
    elapsed = time.time() - t0

    if args.json:
        with open(args.json, "w") as fh:
            fh.write(runs_to_json(runs))
        print(f"wrote {args.json}", file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"wrote {args.out} ({elapsed:.0f}s)")
    else:
        print(report)
        print(f"# generated in {elapsed:.0f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
