"""Virtual kernel ISA: types, instructions, basic blocks, kernels, builder."""

from repro.ir.block import BasicBlock
from repro.ir.builder import BuildError, KernelBuilder, Val
from repro.ir.instr import (
    EVAL,
    Instr,
    Op,
    TermKind,
    Terminator,
    UnitClass,
    result_dtype,
    unit_class,
)
from repro.ir.kernel import Kernel
from repro.ir.types import (
    DType,
    Imm,
    Operand,
    Reg,
    TID_REG,
    is_param_reg,
    is_reserved_reg,
    param_reg,
)
from repro.ir.stats import KernelStatistics, kernel_statistics
from repro.ir.text import (
    ParseError,
    kernel_to_text,
    kernels_equivalent,
    parse_kernel,
)
from repro.ir.validate import ValidationError, validate_kernel

__all__ = [
    "BasicBlock",
    "BuildError",
    "DType",
    "EVAL",
    "Imm",
    "Instr",
    "Kernel",
    "KernelStatistics",
    "KernelBuilder",
    "Op",
    "Operand",
    "ParseError",
    "Reg",
    "TID_REG",
    "TermKind",
    "Terminator",
    "UnitClass",
    "Val",
    "ValidationError",
    "is_param_reg",
    "is_reserved_reg",
    "kernel_statistics",
    "kernel_to_text",
    "kernels_equivalent",
    "param_reg",
    "parse_kernel",
    "result_dtype",
    "unit_class",
    "validate_kernel",
]
