"""Paper Figure 3: LVC accesses as a fraction of GPGPU RF accesses.

The paper's key enabler for control flow coalescing: because most
intermediate values stay inside one basic block and travel through the
fabric, the LVC is touched roughly 10x less often than a register file.
"""

from repro.evalharness.experiments import fig3_lvc_vs_rf
from repro.evalharness.tables import arithmean


def bench_fig3(benchmark, suite_runs):
    table = benchmark(fig3_lvc_vs_rf, suite_runs)
    print()
    print(table.render())

    ratios = [
        row[3] for row in table.rows if row[0] not in ("MEAN",)
    ]
    mean = arithmean(ratios)
    # Paper: LVC accessed on average almost 10x less often than the RF.
    assert mean < 0.45, f"mean LVC/RF ratio {mean:.2f} is not << 1"
    # Kernels without block-crossing values must not touch the LVC at all.
    assert min(ratios) < 0.05
