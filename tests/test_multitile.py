"""Multi-tile correctness: live values, divergence, and loops must all
work when a launch is split across CVT/LVC tiles."""

import numpy as np

from repro.arch import VGIWConfig
from repro.interp import interpret
from repro.kernels import loop_sum_kernel, make_fig1_workload
from repro.memory import MemoryImage
from repro.power import energy_vgiw
from repro.vgiw import VGIWCore


def test_divergent_kernel_across_many_tiles():
    n = 1024
    kernel, mem, params = make_fig1_workload(n_threads=n)
    golden = mem.clone()
    interpret(kernel, golden, params, n)
    # Force tiny tiles: 7 blocks x 64-bit words -> 64-thread tiles.
    config = VGIWConfig(cvt_bits=64 * 7)
    result = VGIWCore(config).run(kernel, mem, params, n)
    assert result.tiles == n // 64
    assert np.array_equal(mem.data, golden.data)
    # Each tile reconfigures its own block sequence.
    assert result.bbs.reconfigurations >= result.tiles * 3


def test_loop_kernel_across_tiles():
    stride, nt = 4, 256
    rng = np.random.default_rng(9)
    mem = MemoryImage(4096)
    bd = mem.alloc_array("data", rng.normal(size=stride * nt))
    bc = mem.alloc_array("count", rng.integers(0, stride + 1, nt))
    bo = mem.alloc("out", nt)
    params = {"data": bd, "count": bc, "out": bo, "stride": stride}
    golden = mem.clone()
    interpret(loop_sum_kernel(), golden, params, nt)
    config = VGIWConfig(cvt_bits=64 * 4)  # 64-thread tiles for 4 blocks
    result = VGIWCore(config).run(loop_sum_kernel(), mem, params, nt)
    assert result.tiles == 4
    assert np.array_equal(mem.data, golden.data)


def test_tile_count_tracks_live_value_footprint():
    # Many live values shrink the tile so the footprint fits the L2.
    kernel, mem, params = make_fig1_workload(n_threads=512)
    r_default = VGIWCore().run(kernel, mem, params, 512)
    assert r_default.tiles == 1  # one live value: no tiling needed here


def test_average_power_is_finite_and_positive():
    n = 256
    kernel, mem, params = make_fig1_workload(n_threads=n)
    result = VGIWCore().run(kernel, mem, params, n)
    bd = energy_vgiw(result)
    watts = bd.average_power_watts(result.cycles)
    assert 0 < watts < 500  # a sane wattage for one core + memory
    assert bd.average_power_watts(0) == 0.0
    assert bd.average_power_watts(result.cycles, level="core") < watts
