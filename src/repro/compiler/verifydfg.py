"""Structural verifier for compiled kernels.

``verify_compiled`` checks every invariant the executors rely on; it is
cheap enough to call from tests on every compiled benchmark, and from
anyone extending the compiler (see docs/extending.md).

Checked invariants:

* graphs are acyclic, with exactly one initiator and one terminator;
* every ``NodeSrc`` points at an existing, value-producing node;
* node arities match their opcodes; split nodes relay exactly one value;
* intra-thread memory ordering edges exist (no two memory operations on
  the same block where a store is unordered against a preceding access);
* data fanout never exceeds the interconnect degree;
* placement is total (every non-pseudo node has a unit of the right
  kind), injective per replica and across replicas, and every edge has
  a routed hop latency >= 1;
* LVU nodes carry live value IDs consistent with the kernel's map, and
  same-colour fetch/spill pairs are WAR-ordered.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.arch.config import UnitKind
from repro.compiler.dfg import (
    BlockDFG,
    MAX_FANOUT,
    NodeKind,
    NodeSrc,
)
from repro.compiler.pipeline import CompiledKernel
from repro.resilience.errors import VerificationError


class DFGVerificationError(VerificationError):
    """A compiled kernel violates an executor invariant.

    Historically an ``AssertionError`` subclass; now part of the
    :class:`~repro.resilience.errors.ReproError` hierarchy so it
    survives ``python -O`` semantics and fault-isolating sweeps."""


def _fail(block: str, message: str) -> None:
    raise DFGVerificationError(f"[{block}] {message}")


_VALUE_PRODUCERS = {
    NodeKind.INIT, NodeKind.OP, NodeKind.LOAD, NodeKind.LVLOAD,
    NodeKind.SPLIT,
}


def verify_dfg(dfg: BlockDFG, max_fanout: int = MAX_FANOUT) -> None:
    """Verify one block's dataflow graph."""
    name = dfg.block_name
    kinds = [n.kind for n in dfg.nodes]
    if kinds.count(NodeKind.INIT) != 1:
        _fail(name, "exactly one initiator CVU required")
    if kinds.count(NodeKind.TERM) != 1:
        _fail(name, "exactly one terminator CVU required")

    ids = {n.nid for n in dfg.nodes}
    for node in dfg.nodes:
        for src in node.srcs:
            if isinstance(src, NodeSrc):
                if src.node not in ids:
                    _fail(name, f"node {node.nid} reads missing node {src.node}")
                producer = dfg.node(src.node)
                if producer.kind not in _VALUE_PRODUCERS:
                    _fail(name, f"node {node.nid} reads non-value node "
                                f"{src.node} ({producer.kind.value})")
        for up in node.ctrl:
            if up not in ids:
                _fail(name, f"node {node.nid} control-depends on missing "
                            f"node {up}")
        if node.kind is NodeKind.SPLIT and len(node.srcs) != 1:
            _fail(name, f"split node {node.nid} must relay exactly one value")
        if node.kind is NodeKind.LVSTORE and len(node.srcs) != 1:
            _fail(name, f"lvstore node {node.nid} must consume one value")
        if node.kind in (NodeKind.LVLOAD, NodeKind.LVSTORE) \
                and node.lv_id is None:
            _fail(name, f"LVU node {node.nid} lacks a live value ID")

    dfg.topo_order()  # raises on cycles

    consumers = dfg.consumers()
    for nid, cons in consumers.items():
        if len(cons) > max_fanout:
            _fail(name, f"node {nid} fanout {len(cons)} exceeds {max_fanout}")

    # Same-colour fetch/spill WAR ordering.
    fetches = {n.lv_id: n.nid for n in dfg.nodes if n.kind is NodeKind.LVLOAD}
    for node in dfg.nodes:
        if node.kind is NodeKind.LVSTORE and node.lv_id in fetches:
            fetch = fetches[node.lv_id]
            if fetch not in _ancestors(dfg, node.nid):
                _fail(name, f"spill {node.nid} may overwrite live value "
                            f"{node.lv_id} before fetch {fetch} reads it")

    # Memory ordering: every store must be an ancestor or descendant of
    # every other memory op of the block.
    mem_nodes = [n.nid for n in dfg.nodes
                 if n.kind in (NodeKind.LOAD, NodeKind.STORE)]
    stores = [n.nid for n in dfg.nodes if n.kind is NodeKind.STORE]
    for store in stores:
        anc = _ancestors(dfg, store)
        desc = _descendants(dfg, store)
        for other in mem_nodes:
            if other == store:
                continue
            if other not in anc and other not in desc:
                _fail(name, f"store {store} unordered against memory "
                            f"node {other}")


def _ancestors(dfg: BlockDFG, nid: int) -> Set[int]:
    seen: Set[int] = set()
    stack = list(dfg.node(nid).input_nodes())
    while stack:
        up = stack.pop()
        if up in seen:
            continue
        seen.add(up)
        stack.extend(dfg.node(up).input_nodes())
    return seen


def _descendants(dfg: BlockDFG, nid: int) -> Set[int]:
    consumers = dfg.consumers()
    seen: Set[int] = set()
    stack = list(consumers[nid])
    while stack:
        down = stack.pop()
        if down in seen:
            continue
        seen.add(down)
        stack.extend(consumers[down])
    return seen


def verify_compiled(compiled: CompiledKernel) -> None:
    """Verify every block of a compiled kernel, including placement."""
    used_units: Set[int] = set()
    for cb in compiled.blocks.values():
        verify_dfg(cb.dfg)
        block_units: Set[int] = set()
        for replica in cb.placement.replicas:
            for nid, uid in replica.unit_of.items():
                node = cb.dfg.node(nid)
                if node.pseudo:
                    _fail(cb.name, f"pseudo node {nid} was placed")
                unit = compiled.fabric.units[uid]
                if unit.kind is not node.unit_kind:
                    _fail(cb.name, f"node {nid} ({node.unit_kind.value}) "
                                   f"placed on {unit.kind.value} unit {uid}")
                if uid in block_units:
                    _fail(cb.name, f"unit {uid} assigned twice in one "
                                   f"configuration")
                block_units.add(uid)
            for node in cb.dfg.nodes:
                for up in node.input_nodes():
                    hops = replica.edge_hops.get((up, node.nid))
                    if hops is None or hops < 1:
                        _fail(cb.name, f"edge {up}->{node.nid} lacks a "
                                       f"routed latency")
        # Different blocks may reuse units (they are configured one at a
        # time), so cross-block overlap is fine.
        used_units |= block_units

    # Live value IDs must be consistent with the kernel-level map.
    ids = set(compiled.lv_map.ids.values())
    for cb in compiled.blocks.values():
        for node in cb.dfg.nodes:
            if node.lv_id is not None and node.lv_id not in ids:
                _fail(cb.name, f"node {node.nid} uses unknown live value "
                               f"ID {node.lv_id}")
