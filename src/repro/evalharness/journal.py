"""Durable run journal: a crash-safe on-disk record of a sweep.

``run_suite(journal=PATH)`` appends every completed per-kernel result
(healthy *or* degraded) to a JSONL file the moment it lands, so a sweep
killed halfway — parent SIGKILL, OOM, power loss — leaves behind a
complete record of everything that finished.  ``run_suite(journal=PATH,
resume=True)`` (``--resume PATH`` on the CLI) reloads that record, skips
the journaled kernels, runs only the missing ones, and reassembles the
final report in input order — byte-identical to the uninterrupted sweep.

File format
-----------

One JSON object per line (JSONL), documented in ``docs/api.md``:

* line 1 — header: ``{"v": 1, "journal": "repro.evalharness.journal",
  "scale": "<scale>"}``.  A resume refuses to mix scales.
* each further line — one kernel:
  ``{"v": 1, "kernel": "<name>", "status": "ok" | "degraded",
  "summary": {...}, "payload": "<base64>"}``.  ``summary`` is small,
  human-greppable JSON (cycle counts for healthy rows, the error for
  degraded ones); ``payload`` is the base64-encoded pickle of the full
  :class:`JournalEntry` (the ``KernelRun`` / ``KernelFailure`` plus the
  kernel's tracer / metric registry / compile-cache stats), which is
  what makes resumed reports byte-identical.

Durability
----------

Every ``record`` rewrites the whole file through
:func:`repro.resilience.atomicio.atomic_write_text` (temp file in the
destination directory, ``fsync``, ``os.replace``) — the same path the
compile cache uses for its disk tier.  A reader therefore *never* sees
a torn tail: the journal on disk is always a complete, parseable
prefix-closed record.  Suites are dozens of kernels at most, so the
O(n²) rewrite cost is noise next to a single simulator run.

``load`` is tolerant: lines that fail JSON decoding, schema validation,
or payload unpickling are counted in ``skipped_lines`` and otherwise
ignored, so a journal written by a newer/older code revision degrades
to "re-run that kernel" instead of aborting the resume.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.resilience.atomicio import atomic_write_text

__all__ = ["JOURNAL_VERSION", "JournalEntry", "RunJournal"]

#: bump when the entry schema changes; ``load`` skips foreign versions
JOURNAL_VERSION = 1

_HEADER_KIND = "repro.evalharness.journal"


@dataclass
class JournalEntry:
    """Everything ``run_suite`` needs to replay one kernel's completion.

    Exactly one of ``run`` / ``failure`` is set.  ``tracer`` /
    ``metrics`` are the *per-kernel* registries (the same objects a
    ``--jobs`` worker ships back to the parent), so a resumed sweep can
    merge them in input order and reproduce the aggregate streams;
    ``cache_stats`` replays the kernel's compile-cache counters and
    ``result_cache_stats`` (when the sweep armed the result cache) its
    result-cache counters — absent in journals written by older
    revisions, where it reads as the class default ``None``.
    """

    run: Any = None
    failure: Any = None
    tracer: Any = None
    metrics: Any = None
    cache_stats: Any = None
    result_cache_stats: Any = None

    @property
    def status(self) -> str:
        return "ok" if self.failure is None else "degraded"

    def summary(self) -> Dict[str, Any]:
        """Small human-greppable JSON for the journal line."""
        if self.failure is not None:
            return {
                "error_type": self.failure.error_type,
                "message": self.failure.message,
                "attempts": self.failure.n_attempts,
            }
        run = self.run
        if run is None:
            return {}
        return {
            "fermi_cycles": run.fermi.cycles,
            "vgiw_cycles": run.vgiw.cycles,
            "sgmf_cycles": None if run.sgmf is None else run.sgmf.cycles,
        }


class RunJournal:
    """The durable journal behind ``run_suite(journal=...)``.

    ``record`` is the only mutator; it both updates the in-memory
    mapping and atomically rewrites the file, so the on-disk journal is
    current the instant ``record`` returns.
    """

    def __init__(self, path: str, scale: str, fsync: bool = True):
        self.path = path
        self.scale: Optional[str] = scale
        self.fsync = fsync
        self.entries: Dict[str, JournalEntry] = {}
        self._order: List[str] = []
        #: lines ``load`` could not understand (corrupt / foreign version)
        self.skipped_lines = 0
        #: optional greppable description of the sweep's RunOptions,
        #: stamped into the header line (see :meth:`for_options`)
        self.options_summary: Optional[Dict[str, Any]] = None

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (f"RunJournal({self.path!r}, scale={self.scale!r}, "
                f"{len(self.entries)} entries)")

    # -- writing --------------------------------------------------------
    def record(self, name: str, entry: JournalEntry) -> None:
        """Add (or replace) one kernel's entry and flush to disk."""
        if name not in self.entries:
            self._order.append(name)
        self.entries[name] = entry
        self.flush()

    def flush(self) -> None:
        """Atomically rewrite the journal file (header + every entry)."""
        header = {"v": JOURNAL_VERSION, "journal": _HEADER_KIND,
                  "scale": self.scale}
        if self.options_summary:
            header["options"] = self.options_summary
        lines = [json.dumps(header, sort_keys=True)]
        for name in self._order:
            lines.append(self._entry_line(name, self.entries[name]))
        atomic_write_text(self.path, "\n".join(lines) + "\n",
                          fsync=self.fsync)

    @staticmethod
    def _entry_line(name: str, entry: JournalEntry) -> str:
        blob = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        return json.dumps(
            {
                "v": JOURNAL_VERSION,
                "kernel": name,
                "status": entry.status,
                "summary": entry.summary(),
                "payload": base64.b64encode(blob).decode("ascii"),
            },
            sort_keys=True,
        )

    # -- reading --------------------------------------------------------
    @classmethod
    def load(cls, path: str, fsync: bool = True) -> "RunJournal":
        """Parse an existing journal, tolerating corrupt lines."""
        journal = cls(path, scale=None, fsync=fsync)
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except ValueError:
                    journal.skipped_lines += 1
                    continue
                if not isinstance(obj, dict) or obj.get("v") != JOURNAL_VERSION:
                    journal.skipped_lines += 1
                    continue
                if obj.get("journal") == _HEADER_KIND:
                    journal.scale = obj.get("scale")
                    continue
                name = obj.get("kernel")
                try:
                    entry = pickle.loads(
                        base64.b64decode(obj["payload"]))
                except Exception:  # noqa: BLE001 — tolerant reader
                    journal.skipped_lines += 1
                    continue
                if not isinstance(name, str) or \
                        not isinstance(entry, JournalEntry):
                    journal.skipped_lines += 1
                    continue
                if name not in journal.entries:
                    journal._order.append(name)
                journal.entries[name] = entry
        return journal

    @classmethod
    def resume(cls, path: str, scale: str,
               fsync: bool = True) -> "RunJournal":
        """Load ``path`` if it exists (refusing a scale mismatch), else
        start a fresh journal — the entry point ``--resume`` uses."""
        if not os.path.exists(path):
            return cls(path, scale, fsync=fsync)
        journal = cls.load(path, fsync=fsync)
        if journal.scale is not None and journal.scale != scale:
            raise ValueError(
                f"journal {path!r} was recorded at scale "
                f"{journal.scale!r}; refusing to resume at {scale!r}")
        journal.scale = scale
        return journal

    @classmethod
    def for_options(cls, path: str, options: Any, resume: bool = False,
                    fsync: bool = True) -> "RunJournal":
        """Journal for a sweep described by a
        :class:`~repro.evalharness.options.RunOptions`.

        The entry point ``run_suite`` uses: the journal's scale comes
        from ``options.scale``, a greppable ``options`` summary is
        stamped into the header line, and ``resume=True`` reloads an
        existing journal at ``path`` (refusing a scale mismatch, like
        :meth:`resume`).
        """
        journal = (cls.resume(path, options.scale, fsync=fsync) if resume
                   else cls(path, options.scale, fsync=fsync))
        journal.options_summary = options.summary()
        return journal
