"""Tests for the energy model: accounting identities and paper-shaped
qualitative properties."""

import numpy as np

from repro.compiler.optimize import optimize_kernel
from repro.kernels import make_fig1_workload, saxpy_kernel
from repro.memory import MemoryImage
from repro.power import (
    DEFAULT_ENERGY,
    EnergyTable,
    efficiency_ratio,
    energy_fermi,
    energy_sgmf,
    energy_vgiw,
)
from repro.sgmf import SGMFCore
from repro.simt import FermiSM
from repro.vgiw import VGIWCore


def _run_all(n=512):
    kernel, mem, params = make_fig1_workload(n_threads=n)
    kernel = optimize_kernel(kernel)
    memf, memv, mems = mem.clone(), mem.clone(), mem.clone()
    rf = FermiSM().run(kernel, memf, params, n)
    rv = VGIWCore().run(kernel, memv, params, n)
    rs = SGMFCore().run(kernel, mems, params, n)
    return rf, rv, rs


def test_breakdown_levels_are_nested():
    rf, rv, rs = _run_all()
    for bd in (energy_fermi(rf), energy_vgiw(rv), energy_sgmf(rs)):
        assert 0 < bd.core <= bd.die <= bd.system
        assert bd.total == bd.system
        # Every accounted component belongs to some level.
        known = set(bd._CORE_KEYS) | set(bd._DIE_EXTRA) | set(bd._SYSTEM_EXTRA)
        assert set(bd.components) <= known


def test_fermi_pipeline_rf_share_is_about_30_percent():
    # The paper (section 1) cites studies attributing ~30% of GPGPU power
    # to the pipeline and register file; the model must land near that.
    rf, _, _ = _run_all(1024)
    bd = energy_fermi(rf)
    share = (bd.components["pipeline"] + bd.components["rf"]) / bd.system
    assert 0.15 < share < 0.45


def test_vgiw_has_no_rf_or_pipeline_energy():
    _, rv, _ = _run_all()
    bd = energy_vgiw(rv)
    assert "rf" not in bd.components
    assert "pipeline" not in bd.components
    assert bd.components["lvc"] > 0
    assert bd.components["cvt"] > 0
    assert bd.components["config"] > 0


def test_sgmf_has_no_lvc_and_single_config():
    _, _, rs = _run_all()
    bd = energy_sgmf(rs)
    assert "lvc" not in bd.components
    assert "cvt" not in bd.components
    assert bd.components["config"] == DEFAULT_ENERGY.unit_config * 108


def test_sgmf_wasted_fires_cost_energy():
    # SGMF pays datapath energy for predicated-off fires; for the same
    # divergent kernel its datapath energy must exceed VGIW's.
    _, rv, rs = _run_all(1024)
    ev, es = energy_vgiw(rv), energy_sgmf(rs)
    assert es.components["datapath"] > ev.components["datapath"]


def test_efficiency_ratio_definition():
    rf, rv, _ = _run_all()
    ef, ev = energy_fermi(rf), energy_vgiw(rv)
    r = efficiency_ratio(ef, ev, "system")
    assert r == ef.system / ev.system


def test_custom_table_scales_components():
    rf, _, _ = _run_all()
    double_rf = EnergyTable(rf_access=2 * DEFAULT_ENERGY.rf_access)
    base = energy_fermi(rf)
    scaled = energy_fermi(rf, double_rf)
    assert scaled.components["rf"] == 2 * base.components["rf"]
    assert scaled.components["pipeline"] == base.components["pipeline"]


def test_memory_energy_identical_accounting():
    # Same kernel, same data: all three architectures see DRAM traffic
    # of the same magnitude (memory accounting is shared).
    rf, rv, rs = _run_all(1024)
    ef, ev, es = energy_fermi(rf), energy_vgiw(rv), energy_sgmf(rs)
    drams = [bd.components["dram"] for bd in (ef, ev, es)]
    assert max(drams) < 4 * min(drams)


def test_idle_lanes_charged_on_divergence():
    n = 512
    kernel, mem, params = make_fig1_workload(n_threads=n)
    rf = FermiSM().run(kernel, mem, params, n)
    assert rf.sm.wasted_lane_slots > 0
    bd = energy_fermi(rf)
    # Datapath includes the idle-lane clocking charge.
    no_idle = EnergyTable(idle_lane=0.0)
    bd2 = energy_fermi(rf, no_idle)
    assert bd.components["datapath"] > bd2.components["datapath"]
