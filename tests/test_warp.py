"""Unit tests for warp-level functional execution (repro.simt.warp)."""

import numpy as np
import pytest

from repro.ir import DType, Imm, Instr, Op, Reg, Terminator
from repro.memory import MemoryImage
from repro.simt import EXIT, Warp


def make_warp(n_lanes=8, valid=8, params=None, mem_size=256):
    mem = MemoryImage(mem_size)
    warp = Warp(0, base_tid=0, n_lanes=n_lanes, valid_lanes=valid,
                params=params or {}, memory=mem)
    return warp, mem


def test_tid_reads_per_lane():
    warp, _ = make_warp()
    instr = Instr(Op.ADD, "x", (Reg("tid"), Imm(10, DType.INT)), DType.INT)
    warp.exec_instr(instr, 0xFF)
    assert warp._regs["x"] == [10, 11, 12, 13, 14, 15, 16, 17]


def test_mask_limits_lanes():
    warp, _ = make_warp()
    instr = Instr(Op.MOV, "y", (Imm(7, DType.INT),), DType.INT)
    warp.exec_instr(instr, 0b1010)
    y = warp._regs["y"]
    assert y[1] == 7 and y[3] == 7
    assert y[0] == 0 and y[2] == 0  # untouched lanes keep default


def test_param_broadcast():
    warp, _ = make_warp(params={"alpha": 2.5})
    instr = Instr(Op.FMUL, "z",
                  (Reg("arg.alpha"), Imm(2.0, DType.FLOAT)), DType.FLOAT)
    warp.exec_instr(instr, 0b1)
    assert warp._regs["z"][0] == 5.0


def test_load_store_per_lane_addresses():
    warp, mem = make_warp()
    mem.write_block(0, np.arange(8.0))
    load = Instr(Op.LOAD, "v", (Reg("tid"),), DType.FLOAT)
    ops = warp.exec_instr(load, 0xFF)
    assert [m.word_addr for m in ops] == list(range(8))
    store = Instr(Op.STORE, None, (Reg("tid"), Reg("v")), DType.FLOAT)
    warp.exec_instr(store, 0x0F)  # only low lanes store
    np.testing.assert_array_equal(mem.read_block(0, 8), np.arange(8.0))


def test_terminator_ret_and_jmp():
    warp, _ = make_warp()
    assert warp.exec_terminator(Terminator.ret(), 0b111) == {EXIT: 0b111}
    assert warp.exec_terminator(Terminator.jmp("next"), 0b101) == {
        "next": 0b101
    }


def test_terminator_divergent_branch():
    warp, _ = make_warp()
    cmp = Instr(Op.LT, "c", (Reg("tid"), Imm(4, DType.INT)), DType.PRED)
    warp.exec_instr(cmp, 0xFF)
    targets = warp.exec_terminator(
        Terminator.br(Reg("c"), "low", "high"), 0xFF
    )
    assert targets == {"low": 0x0F, "high": 0xF0}


def test_select_and_special_ops():
    warp, _ = make_warp()
    warp.exec_instr(
        Instr(Op.LT, "p", (Reg("tid"), Imm(2, DType.INT)), DType.PRED), 0xFF
    )
    warp.exec_instr(
        Instr(Op.SELECT, "s",
              (Reg("p"), Imm(1.0, DType.FLOAT), Imm(9.0, DType.FLOAT)),
              DType.FLOAT),
        0xFF,
    )
    assert warp._regs["s"][:4] == [1.0, 1.0, 9.0, 9.0]
    warp.exec_instr(
        Instr(Op.FSQRT, "q", (Imm(16.0, DType.FLOAT),), DType.FLOAT), 0b1
    )
    assert warp._regs["q"][0] == 4.0


def test_lanes_of_iterates_set_bits():
    assert list(Warp.lanes_of(0b1011)) == [0, 1, 3]
    assert list(Warp.lanes_of(0)) == []
