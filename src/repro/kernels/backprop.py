"""BPNN — backpropagation neural-network training (Rodinia), paper
Table 2: ``layerforward`` (20 blocks) and ``adjust_weights`` (3 blocks).

``layerforward``: each thread computes one hidden unit's activation.
Rodinia accumulates the input-weight dot product through a shared-memory
tree reduction; without barriers each thread accumulates its own dot
product in a flat loop and applies the sigmoid.  (The paper counts 20
basic blocks for the shared-memory version; the privatised form is
smaller — see the Table 2 notes.)

``adjust_weights``: each thread owns one (input, hidden) weight and
applies the momentum update ``w += eta·δ_j·x_k + momentum·Δw_old``.
"""

from __future__ import annotations

import numpy as np

from repro.ir import DType, Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage

ETA = 0.3
MOMENTUM = 0.3


def layerforward_kernel() -> Kernel:
    kb = KernelBuilder(
        "layerforward", params=["input", "weights", "hidden", "n_in", "n_hid"]
    )
    j = kb.tid()
    n_in = kb.param("n_in")
    n_hid = kb.param("n_hid")
    with kb.if_(j < n_hid):
        acc = kb.var("acc", 0.0)
        with kb.for_range(0, n_in, name="k") as k:
            x = kb.load(kb.param("input") + k)
            w = kb.load(kb.param("weights") + k * n_hid + j)
            kb.assign(acc, acc + x * w)
        sig = 1.0 / (1.0 + kb.exp(-acc))
        kb.store(kb.param("hidden") + j, sig)
    return kb.build()


def adjust_weights_kernel() -> Kernel:
    kb = KernelBuilder(
        "adjust_weights",
        params=["w", "oldw", "delta", "x", "n_hid", "n_weights"],
    )
    i = kb.tid()
    n_hid = kb.param("n_hid")
    with kb.if_(i < kb.param("n_weights")):
        jj = i % n_hid
        kk = i // n_hid
        dw = (
            ETA * kb.load(kb.param("delta") + jj) * kb.load(kb.param("x") + kk)
            + MOMENTUM * kb.load(kb.param("oldw") + i)
        )
        kb.store(kb.param("w") + i, kb.load(kb.param("w") + i) + dw)
        kb.store(kb.param("oldw") + i, dw)
    return kb.build()


def make_layerforward_workload(scale: str = "small", seed: int = 91) -> Workload:
    n_in = pick(scale, 24, 48, 96)
    n_hid = pick(scale, 128, 2048, 8192)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n_in)
    w = rng.normal(size=(n_in, n_hid)) * 0.1

    mem = MemoryImage(n_in + n_in * n_hid + n_hid + 64)
    b_x = mem.alloc_array("input", x)
    b_w = mem.alloc_array("weights", w.ravel())
    b_h = mem.alloc("hidden", n_hid)

    expected = 1.0 / (1.0 + np.exp(-(x @ w)))
    return Workload(
        name="backprop/layerforward",
        app="BPNN",
        kernel=layerforward_kernel(),
        memory=mem,
        params={
            "input": b_x, "weights": b_w, "hidden": b_h,
            "n_in": n_in, "n_hid": n_hid,
        },
        n_threads=n_hid,
        expected={"hidden": expected},
        paper_blocks=20,
    )


def make_adjust_weights_workload(scale: str = "small", seed: int = 92) -> Workload:
    n_in = pick(scale, 16, 64, 128)
    n_hid = pick(scale, 16, 64, 128)
    n_weights = n_in * n_hid
    rng = np.random.default_rng(seed)
    w = rng.normal(size=n_weights)
    oldw = rng.normal(size=n_weights) * 0.01
    delta = rng.normal(size=n_hid) * 0.1
    x = rng.normal(size=n_in)

    mem = MemoryImage(2 * n_weights + n_hid + n_in + 64)
    b_w = mem.alloc_array("w", w)
    b_oldw = mem.alloc_array("oldw", oldw)
    b_delta = mem.alloc_array("delta", delta)
    b_x = mem.alloc_array("x", x)

    jj = np.arange(n_weights) % n_hid
    kk = np.arange(n_weights) // n_hid
    dw = ETA * delta[jj] * x[kk] + MOMENTUM * oldw
    return Workload(
        name="backprop/adjust_weights",
        app="BPNN",
        kernel=adjust_weights_kernel(),
        memory=mem,
        params={
            "w": b_w, "oldw": b_oldw, "delta": b_delta, "x": b_x,
            "n_hid": n_hid, "n_weights": n_weights,
        },
        n_threads=n_weights,
        expected={"w": w + dw, "oldw": dw},
        paper_blocks=3,
    )
