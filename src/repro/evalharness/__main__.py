"""CLI: regenerate every table/figure of the paper.

Usage::

    python -m repro.evalharness [--scale tiny|small|medium]
                                [--kernels name,name,...]
                                [--jobs N] [--cache-dir DIR]
                                [--result-cache DIR]
                                [--validate-cache-fraction F]
                                [--out FILE] [--json FILE]
                                [--trace FILE] [--metrics]
                                [--inject kernel=kind[:seed[:rate]]]...
                                [--max-cycles N] [--stall-cycles N]
                                [--no-isolate]
                                [--journal FILE | --resume FILE]
                                [--timeout SECONDS]
                                [--checkpoint-every CYCLES]
                                [--checkpoint-dir DIR]

``--inject`` arms a deterministic fault campaign on one kernel (it may
be repeated); combined with the default fault isolation the affected
kernel shows up as a degraded row while the rest of the sweep completes
normally.  ``--max-cycles``/``--stall-cycles`` arm the forward-progress
watchdog in every simulator.  See ``docs/resilience.md``.

``--jobs N`` fans the kernels out to ``N`` worker processes; the report
is byte-identical to a serial sweep (results are reassembled in input
order).  ``--cache-dir DIR`` adds a persistent compile-cache tier so
repeat sweeps skip place & route entirely.  ``--result-cache DIR`` goes
one tier up: whole runs are memoised by content key (kernel IR hash,
options fingerprint, input digest), so an unchanged re-sweep replays
stored results instead of simulating — still byte-identical.
``--validate-cache-fraction F`` re-executes a seeded fraction of hits
and hard-fails on digest divergence.  See ``docs/performance.md`` and
``docs/serving.md``.

``--trace FILE`` records a per-kernel cycle-level timeline and writes
one Chrome-trace JSON per kernel — ``FILE`` is the base name, each
kernel gets ``FILE`` with ``.<kernel>`` inserted before the extension
(slashes in kernel names become underscores; e.g. ``--trace trace.json``
with kernel ``nn/nearest`` writes ``trace.nn_nearest.json``).  Open the
files in Perfetto / ``chrome://tracing``.  ``--metrics`` records the
cross-engine metric registry and appends its column group to the
report.  See ``docs/observability.md``.

``--journal FILE`` records every completed kernel to a durable JSONL
journal as the sweep runs; after a crash (worker *or* parent),
``--resume FILE`` reloads it, re-runs only the missing kernels, and
produces a report byte-identical to an uninterrupted sweep.
``--timeout`` bounds each kernel attempt in host wall-clock seconds;
``--checkpoint-every`` / ``--checkpoint-dir`` persist periodic
simulator snapshots for post-mortem restore.  See
``docs/resilience.md`` §7.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.evalharness.journal import RunJournal
from repro.evalharness.options import RunOptions
from repro.evalharness.report import generate_report
from repro.evalharness.runner import run_suite, trace_file_for
from repro.evalharness.serialize import runs_to_json
from repro.kernels.registry import all_names
from repro.obs import Metrics
from repro.resilience import FAULT_KINDS, FaultSpec, WatchdogConfig


def _parse_inject(arg: str, parser: argparse.ArgumentParser):
    if "=" not in arg:
        parser.error(f"--inject wants kernel=kind[:seed[:rate]], got {arg!r}")
    name, spec_text = arg.split("=", 1)
    try:
        spec = FaultSpec.parse(spec_text)
    except ValueError as exc:
        parser.error(f"--inject {arg!r}: {exc}")
    return name.strip(), spec


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.evalharness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--kernels", default=None,
                        help="comma-separated registry names "
                             "(default: the full Table 2 suite)")
    parser.add_argument("--out", default=None,
                        help="write the markdown report to this file")
    parser.add_argument("--json", default=None,
                        help="also archive raw results as JSON")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run kernels in N worker processes "
                             "(default 1 = serial); reports are "
                             "byte-identical to a serial sweep")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent compile-cache directory (repeat "
                             "sweeps skip place & route; safe under "
                             "--jobs)")
    parser.add_argument("--result-cache", default=None, metavar="DIR",
                        help="content-addressed result-cache directory: "
                             "re-runs of an unchanged kernel/options/input "
                             "replay the stored run instead of simulating "
                             "(byte-identical reports; safe under --jobs)")
    parser.add_argument("--validate-cache-fraction", type=float, default=0.0,
                        metavar="FRACTION",
                        help="re-execute this (seeded, deterministic) "
                             "fraction of result-cache hits and hard-fail "
                             "on any digest divergence (default 0)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="record a cycle-level timeline and write one "
                             "Chrome-trace JSON per kernel: FILE with "
                             ".<kernel> inserted before the extension "
                             "(Perfetto / chrome://tracing)")
    parser.add_argument("--metrics", action="store_true",
                        help="record the cross-engine metric registry and "
                             "append its column group to the report")
    parser.add_argument("--inject", action="append", default=[],
                        metavar="KERNEL=KIND[:SEED[:RATE]]",
                        help="arm a fault campaign on one kernel "
                             f"(kinds: {', '.join(FAULT_KINDS)}); repeatable")
    parser.add_argument("--max-cycles", type=float, default=None,
                        help="watchdog: hard simulated-cycle budget per run")
    parser.add_argument("--stall-cycles", type=float, default=None,
                        help="watchdog: max cycles without a retirement")
    parser.add_argument("--no-isolate", action="store_true",
                        help="let the first kernel failure abort the sweep "
                             "(the historical behaviour)")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="append every completed kernel to a durable "
                             "JSONL journal (crash-safe; see --resume)")
    parser.add_argument("--resume", default=None, metavar="FILE",
                        help="resume from a journal written by --journal: "
                             "skip the kernels it holds, run the rest, "
                             "keep journaling to the same file")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per kernel attempt; a "
                             "timed-out kernel is retried then degraded")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="CYCLES",
                        help="snapshot every simulator's state every N "
                             "simulated cycles")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="persist the newest snapshot per kernel and "
                             "engine under DIR (implies restorable "
                             "post-mortems; see docs/resilience.md)")
    args = parser.parse_args(argv)

    if args.journal and args.resume and args.journal != args.resume:
        parser.error("--journal and --resume must name the same file "
                     "(--resume alone keeps journaling to that file)")
    journal = args.resume or args.journal
    if args.resume is not None:
        try:
            RunJournal.resume(args.resume, args.scale)
        except ValueError as exc:
            parser.error(str(exc))

    names = None
    if args.kernels:
        names = [n.strip() for n in args.kernels.split(",") if n.strip()]
        known = set(all_names(include_extras=True))
        unknown = [n for n in names if n not in known]
        if unknown:
            parser.error(f"unknown kernels: {unknown}")

    inject = dict(_parse_inject(arg, parser) for arg in args.inject)
    known = set(names if names is not None else all_names())
    unknown = [n for n in inject if n not in known]
    if unknown:
        parser.error(f"--inject targets kernels not in this sweep: {unknown}")

    watchdog = None
    if args.max_cycles is not None or args.stall_cycles is not None:
        watchdog = WatchdogConfig(max_cycles=args.max_cycles,
                                  stall_cycles=args.stall_cycles)
    elif inject:
        # Fault campaigns need an armed watchdog so hang-type faults
        # (mem_drop) are caught instead of inflating the sweep runtime.
        watchdog = WatchdogConfig(max_cycles=5e6)

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if not 0.0 <= args.validate_cache_fraction <= 1.0:
        parser.error("--validate-cache-fraction must be in [0, 1], got "
                     f"{args.validate_cache_fraction}")

    metrics = Metrics() if args.metrics else None

    options = RunOptions(scale=args.scale, isolate=not args.no_isolate,
                         watchdog=watchdog, inject=inject,
                         metrics=metrics, jobs=args.jobs,
                         cache_dir=args.cache_dir, trace_path=args.trace,
                         result_cache_dir=args.result_cache,
                         validate_cache_fraction=args.validate_cache_fraction,
                         journal=journal, resume=args.resume is not None,
                         timeout=args.timeout,
                         checkpoint_every=args.checkpoint_every,
                         checkpoint_dir=args.checkpoint_dir)

    t0 = time.time()
    runs = run_suite(names, options=options)
    report = generate_report(runs, scale=args.scale, metrics=metrics)
    elapsed = time.time() - t0

    if args.trace:
        for name in list(runs) + sorted(getattr(runs, "failures", {})):
            path = trace_file_for(args.trace, name)
            if os.path.exists(path):
                print(f"wrote {path}", file=sys.stderr)

    if args.json:
        with open(args.json, "w") as fh:
            fh.write(runs_to_json(runs))
        print(f"wrote {args.json}", file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"wrote {args.out} ({elapsed:.0f}s)")
    else:
        print(report)
        print(f"# generated in {elapsed:.0f}s", file=sys.stderr)
    failures = getattr(runs, "failures", {})
    if failures:
        print(f"# degraded kernels: {', '.join(sorted(failures))}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
