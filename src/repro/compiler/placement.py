"""MT-CGRF grid model and per-block place & route.

The fabric is a ``width x height`` grid of functional units.  LDST and
LVU units sit on the grid perimeter (they connect to the banked L1/LVC
through a crossbar, paper §3.5); compute, special, split/join, and the
remaining control vector units fill the interior.

The interconnect is the paper's folded-hypercube-flavoured switch
topology: every unit reaches its four nearest units and four nearest
switches, and switches additionally shortcut Manhattan distance two.
We model its latency as ``ceil(manhattan / 2)`` hops, one cycle per hop
(hop latency of one cycle is an explicit design requirement, §3.5).

Placement is greedy-by-topological-order with a cheapest-unit choice,
followed by a local-improvement (pairwise swap) pass.  Multiple replicas
of a block graph are placed one after another on the remaining free
units (paper §3.1: the compiler includes multiple replicas of small
blocks in one configuration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import FabricSpec, UnitKind
from repro.compiler.dfg import BlockDFG, DFGNode
from repro.resilience.errors import MappingError


class CapacityError(MappingError):
    """A dataflow graph does not fit the fabric."""


@dataclass(frozen=True)
class Unit:
    """One physical functional unit at a fixed grid position."""

    uid: int
    kind: UnitKind
    x: int
    y: int


def _interleave(kind_counts: Sequence[Tuple[UnitKind, int]]) -> List[UnitKind]:
    """Evenly interleave kinds (fractional-position sort) so that the
    interior of the grid mixes unit kinds instead of clustering them."""
    placed: List[Tuple[float, int, UnitKind]] = []
    for order, (kind, count) in enumerate(kind_counts):
        for i in range(count):
            placed.append(((i + 0.5) / count, order, kind))
    placed.sort()
    return [kind for _, _, kind in placed]


class Fabric:
    """The physical grid: units, positions, and hop distances."""

    def __init__(self, spec: FabricSpec):
        self.spec = spec
        self.units: List[Unit] = []
        self._build(spec)
        self.by_kind: Dict[UnitKind, List[int]] = {k: [] for k in UnitKind}
        for u in self.units:
            self.by_kind[u.kind].append(u.uid)

    def _build(self, spec: FabricSpec) -> None:
        w, h = spec.width, spec.height
        cells = [(x, y) for y in range(h) for x in range(w)]
        perimeter = [
            (x, y) for (x, y) in cells if x in (0, w - 1) or y in (0, h - 1)
        ]
        interior = [c for c in cells if c not in perimeter]

        counts = dict(spec.counts)
        n_ldst = counts.get(UnitKind.LDST, 0)
        n_lvu = counts.get(UnitKind.LVU, 0)
        if n_ldst + n_lvu > len(perimeter):
            raise CapacityError(
                "perimeter too small for the LDST + LVU units"
            )
        # Ring order keeps memory units spread around the edge.
        ring = self._ring_order(perimeter, w, h)
        peri_kinds: List[Optional[UnitKind]] = [None] * len(ring)
        mem_kinds = _interleave([(UnitKind.LDST, n_ldst), (UnitKind.LVU, n_lvu)])
        step = len(ring) / max(1, len(mem_kinds))
        used = set()
        for i, kind in enumerate(mem_kinds):
            slot = int(i * step)
            while slot in used:
                slot = (slot + 1) % len(ring)
            used.add(slot)
            peri_kinds[slot] = kind
        leftover_peri = [i for i in range(len(ring)) if peri_kinds[i] is None]

        # CVUs take the leftover perimeter slots first, the rest go inside.
        n_cvu = counts.get(UnitKind.CVU, 0)
        cvu_on_peri = min(n_cvu, len(leftover_peri))
        for i in leftover_peri[:cvu_on_peri]:
            peri_kinds[i] = UnitKind.CVU

        # Any perimeter cells still unassigned take interior kinds; the
        # "inner" pool is the interior plus those spill-over cells.
        spare_peri = [ring[i] for i in leftover_peri[cvu_on_peri:]]
        inner_cells = interior + spare_peri
        interior_counts = [
            (UnitKind.COMPUTE, counts.get(UnitKind.COMPUTE, 0)),
            (UnitKind.SPECIAL, counts.get(UnitKind.SPECIAL, 0)),
            (UnitKind.SJU, counts.get(UnitKind.SJU, 0)),
            (UnitKind.CVU, n_cvu - cvu_on_peri),
        ]
        interior_kinds = _interleave([(k, c) for k, c in interior_counts if c > 0])
        if len(interior_kinds) != len(inner_cells):
            raise CapacityError(
                f"grid has {len(inner_cells)} non-memory cells, "
                f"composition supplies {len(interior_kinds)}"
            )

        uid = 0
        for (x, y), kind in zip(ring, peri_kinds):
            if kind is None:
                continue
            self.units.append(Unit(uid, kind, x, y))
            uid += 1
        for (x, y), kind in zip(inner_cells, interior_kinds):
            self.units.append(Unit(uid, kind, x, y))
            uid += 1

    @staticmethod
    def _ring_order(perimeter, w, h):
        def key(cell):
            x, y = cell
            if y == 0:
                return (0, x)
            if x == w - 1:
                return (1, y)
            if y == h - 1:
                return (2, w - 1 - x)
            return (3, h - 1 - y)

        return sorted(perimeter, key=key)

    def hops(self, a: int, b: int) -> int:
        """Interconnect latency in cycles between two units."""
        if a == b:
            return 1
        ua, ub = self.units[a], self.units[b]
        manhattan = abs(ua.x - ub.x) + abs(ua.y - ub.y)
        return max(1, math.ceil(manhattan / 2))


@dataclass
class PlacedReplica:
    """Placement of one replica: DFG node ID -> physical unit ID, plus
    precomputed per-edge hop latencies."""

    unit_of: Dict[int, int]
    #: (src_nid, dst_nid) -> hop cycles
    edge_hops: Dict[Tuple[int, int], int] = field(default_factory=dict)


@dataclass
class PlacedBlock:
    """All replicas of a block placed on the fabric for one configuration."""

    dfg: BlockDFG
    replicas: List[PlacedReplica]

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def total_wire_cost(self) -> int:
        return sum(
            h for r in self.replicas for h in r.edge_hops.values()
        )


def max_replicas(dfg: BlockDFG, spec: FabricSpec, cap: int = 8) -> int:
    """How many replicas of ``dfg`` fit the fabric (0 = none)."""
    demand = dfg.unit_demand()
    fit = cap
    for kind, need in demand.items():
        if need == 0:
            continue
        fit = min(fit, spec.counts.get(kind, 0) // need)
    return fit


def place_block(
    dfg: BlockDFG,
    fabric: Fabric,
    n_replicas: int,
    improve_passes: int = 1,
) -> PlacedBlock:
    """Place ``n_replicas`` copies of ``dfg`` onto the fabric."""
    if n_replicas < 1:
        raise CapacityError(
            f"block {dfg.block_name} needs units beyond fabric capacity: "
            f"{ {k.value: v for k, v in dfg.unit_demand().items() if v} }"
        )
    free: Dict[UnitKind, List[int]] = {
        k: list(v) for k, v in fabric.by_kind.items()
    }
    replicas = [
        _place_one(dfg, fabric, free, improve_passes) for _ in range(n_replicas)
    ]
    return PlacedBlock(dfg=dfg, replicas=replicas)


def _place_one(
    dfg: BlockDFG,
    fabric: Fabric,
    free: Dict[UnitKind, List[int]],
    improve_passes: int,
) -> PlacedReplica:
    unit_of: Dict[int, int] = {}
    order = dfg.topo_order()
    consumers = dfg.consumers()

    def cost_of(nid: int, uid: int) -> int:
        node = dfg.node(nid)
        total = 0
        for up in node.input_nodes():
            if up in unit_of:
                total += fabric.hops(unit_of[up], uid)
        for down in consumers[nid]:
            if down in unit_of:
                total += fabric.hops(uid, unit_of[down])
        return total

    for nid in order:
        node = dfg.node(nid)
        if node.pseudo:
            continue  # wires occupy no physical unit
        kind = node.unit_kind
        pool = free[kind]
        if not pool:
            raise CapacityError(
                f"no free {kind.value} unit for node {nid} of block "
                f"{dfg.block_name}"
            )
        best = min(pool, key=lambda uid: (cost_of(nid, uid), uid))
        pool.remove(best)
        unit_of[nid] = best

    # Local improvement: swap same-kind placements when it shortens wires.
    for _ in range(improve_passes):
        improved = False
        nids = list(unit_of)
        for i, a in enumerate(nids):
            for b in nids[i + 1:]:
                if dfg.node(a).unit_kind is not dfg.node(b).unit_kind:
                    continue
                before = cost_of(a, unit_of[a]) + cost_of(b, unit_of[b])
                unit_of[a], unit_of[b] = unit_of[b], unit_of[a]
                after = cost_of(a, unit_of[a]) + cost_of(b, unit_of[b])
                if after >= before:
                    unit_of[a], unit_of[b] = unit_of[b], unit_of[a]
                else:
                    improved = True
        if not improved:
            break

    edge_hops: Dict[Tuple[int, int], int] = {}
    for node in dfg.nodes:
        for up in node.input_nodes():
            if up in unit_of and node.nid in unit_of:
                hops = fabric.hops(unit_of[up], unit_of[node.nid])
            else:
                hops = 1  # edges to/from pseudo wires cost one switch hop
            edge_hops[(up, node.nid)] = hops
    return PlacedReplica(unit_of=unit_of, edge_hops=edge_hops)
