"""Paper Figure 1: the divergence example, quantified.

Figure 1 illustrates how the same divergent control flow costs each
architecture differently: the von Neumann GPGPU masks lanes (1b), SGMF
wastes mapped resources on untaken paths (1c), and VGIW executes each
block for exactly its thread vector (1d).  This bench runs the actual
Figure 1a kernel on all three machines and asserts each mechanism.
"""

from repro.kernels import make_fig1_workload
from repro.evalharness.tables import ExperimentTable
from repro.sgmf import SGMFCore
from repro.simt import FermiSM
from repro.vgiw import VGIWCore

N = 2048


def bench_fig1(benchmark):
    table = ExperimentTable(
        "Figure 1", "The divergence example on all three machines",
        ["Machine", "Cycles", "Waste mechanism", "Waste measured"],
    )

    def run_all():
        table.rows.clear()
        kernel, mem, params = make_fig1_workload(n_threads=N)
        mem_f, mem_v, mem_s = mem.clone(), mem.clone(), mem.clone()
        fermi = FermiSM().run(kernel, mem_f, params, N)
        vgiw = VGIWCore().run(kernel, mem_v, params, N, profile=True)
        sgmf = SGMFCore().run(kernel, mem_s, params, N)
        table.add("Fermi", fermi.cycles, "masked lane slots",
                  fermi.sm.wasted_lane_slots)
        table.add("VGIW", vgiw.cycles, "(none: coalesced vectors)", 0)
        table.add("SGMF", sgmf.cycles, "predicated-off node fires",
                  sgmf.waste_fires)
        return fermi, vgiw, sgmf

    fermi, vgiw, sgmf = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(table.render())

    # 1b: the SIMT machine masks lanes under divergence.
    assert fermi.sm.divergences > 0
    assert fermi.sm.simd_efficiency < 1.0
    # 1d: VGIW executes each block for exactly the threads that need it —
    # total threads streamed equals the sum of every thread's block visits,
    # with no padding.
    streamed = vgiw.bbs.threads_streamed
    visits = sum(rec.n_threads for rec in vgiw.block_profile)
    assert streamed == visits
    # Each static block was configured exactly once (coalescing means
    # reconfigurations track blocks, not control paths).
    assert vgiw.bbs.reconfigurations == vgiw.n_blocks
    # 1c: SGMF pays fires for paths threads did not take.
    assert sgmf.waste_fires > 0
