"""Host-side convenience API (CUDA-runtime-flavoured)."""

from repro.host.device import Device, DeviceArray, HostError, LaunchStats

__all__ = ["Device", "DeviceArray", "HostError", "LaunchStats"]
