"""Snapshot/restore determinism for the three engines.

The crash-safe contract (``docs/resilience.md`` §7): a run checkpointed
at an arbitrary cycle boundary, restored — even in a *fresh process* —
and resumed must finish with the exact cycle count and the exact final
memory image of the uninterrupted run, including under active fault
injection.
"""

import hashlib
import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro
from repro.engine import Checkpointer, EngineSnapshot, SnapshotError
from repro.fuzz.generate import GenConfig, generate_case
from repro.kernels.registry import make_workload
from repro.resilience import FaultInjector, FaultSpec, ReproError
from repro.sgmf import SGMFCore
from repro.simt import FermiSM
from repro.vgiw import VGIWCore

ENGINES = {"vgiw": VGIWCore, "fermi": FermiSM, "sgmf": SGMFCore}

parametrize_engines = pytest.mark.parametrize(
    "cls", ENGINES.values(), ids=ENGINES.keys())


def _mem_digest(mem) -> str:
    return hashlib.sha256(np.ascontiguousarray(mem.data).tobytes()).hexdigest()


def _checkpointed_run(cls, kernel, mem, params, n_threads,
                      every=100.0, faults=None):
    """Run to completion while collecting every periodic snapshot."""
    core = cls()
    snaps = []
    result = core.run(kernel, mem, params, n_threads,
                      checkpoint_every=every,
                      checkpoint_sink=snaps.append, faults=faults)
    return core, result, snaps


def _mid_snapshot(snaps):
    """An interior snapshot (never the trivial just-started state)."""
    assert snaps, "run too short for the chosen checkpoint interval"
    return snaps[len(snaps) // 2]


@parametrize_engines
def test_roundtrip_cycles_and_memory(cls):
    wl = make_workload("nn/euclid", "tiny")
    core, result, snaps = _checkpointed_run(
        cls, wl.kernel, wl.memory.clone(), wl.params, wl.n_threads)
    mid = _mid_snapshot(snaps)
    assert 0.0 < mid.cycle < result.cycles

    # restore from the *serialised* snapshot into a brand-new engine
    fresh = cls()
    fresh.restore(pickle.loads(pickle.dumps(mid)))
    resumed = fresh.resume()

    assert resumed.cycles == result.cycles
    assert _mem_digest(fresh.last_memory) == _mem_digest(core.last_memory)


@parametrize_engines
def test_resume_can_keep_checkpointing(cls):
    """A resumed run keeps emitting snapshots (re-anchored at the
    restore cycle), and those second-generation snapshots restore too."""
    wl = make_workload("nn/euclid", "tiny")
    base_core, result, snaps = _checkpointed_run(
        cls, wl.kernel, wl.memory.clone(), wl.params, wl.n_threads,
        every=150.0)
    fresh = cls()
    fresh.restore(snaps[0])
    more = []
    resumed = fresh.resume(checkpoint_every=50.0,
                           checkpoint_sink=more.append)
    assert resumed.cycles == result.cycles
    assert more, "resumed run emitted no checkpoints"
    cycles = [s.cycle for s in more]
    assert cycles == sorted(cycles)
    assert all(c > snaps[0].cycle for c in cycles)

    # chained restore: a snapshot taken *by the resumed run* is as good
    # as one taken by the original
    again = cls()
    again.restore(more[0])
    final = again.resume()
    assert final.cycles == result.cycles
    assert _mem_digest(again.last_memory) == _mem_digest(base_core.last_memory)


@parametrize_engines
def test_restore_in_fresh_process(cls, tmp_path):
    wl = make_workload("bfs/Kernel", "tiny")
    core, result, snaps = _checkpointed_run(
        cls, wl.kernel, wl.memory.clone(), wl.params, wl.n_threads)
    mid = _mid_snapshot(snaps)
    path = tmp_path / "snap.ckpt"
    mid.save(str(path))

    code = textwrap.dedent("""
        import hashlib, sys
        import numpy as np
        from repro.engine import EngineSnapshot
        from repro.sgmf import SGMFCore
        from repro.simt import FermiSM
        from repro.vgiw import VGIWCore
        cls = {"vgiw": VGIWCore, "fermi": FermiSM, "sgmf": SGMFCore}[sys.argv[2]]
        core = cls()
        core.restore(EngineSnapshot.load(sys.argv[1]))
        result = core.resume()
        data = np.ascontiguousarray(core.last_memory.data).tobytes()
        print(result.cycles)
        print(hashlib.sha256(data).hexdigest())
    """)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    proc = subprocess.run(
        [sys.executable, "-c", code, str(path), mid.engine],
        capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr
    cycles_line, digest_line = proc.stdout.split()
    assert float(cycles_line) == result.cycles
    assert digest_line == _mem_digest(core.last_memory)


@parametrize_engines
def test_roundtrip_under_fault_injection(cls):
    """Snapshots taken while a fault campaign is live must replay it:
    the injector's RNG state rides inside the snapshot payload."""
    wl = make_workload("nn/euclid", "tiny")
    spec = FaultSpec(kind="stuck_at", seed=7, rate=0.02)

    base_core, base_result, snaps = _checkpointed_run(
        cls, wl.kernel, wl.memory.clone(), wl.params, wl.n_threads,
        faults=FaultInjector(spec))
    mid = _mid_snapshot(snaps)

    fresh = cls()
    fresh.restore(pickle.loads(pickle.dumps(mid)))
    resumed = fresh.resume()

    assert resumed.cycles == base_result.cycles
    assert _mem_digest(fresh.last_memory) == _mem_digest(base_core.last_memory)


def test_property_fuzz_roundtrip():
    """Property test over generator kernels: for every engine that can
    run the case, a mid-run restore finishes cycle- and memory-identical
    to the uninterrupted run."""
    cfg = GenConfig(max_threads=8, max_depth=2, max_stmts=3)
    roundtrips = 0
    for seed in range(6):
        case = generate_case(seed, cfg)
        for cls in ENGINES.values():
            try:
                base_core, base_result, snaps = _checkpointed_run(
                    cls, case.kernel, case.build_memory(), case.params,
                    case.n_threads, every=64.0)
            except ReproError:
                continue  # e.g. SGMF cannot map the case: not this test's job
            if not snaps:
                continue  # run shorter than one checkpoint interval
            fresh = cls()
            fresh.restore(pickle.loads(pickle.dumps(_mid_snapshot(snaps))))
            resumed = fresh.resume()
            assert resumed.cycles == base_result.cycles, \
                f"seed {seed}, {cls.__name__}: cycle drift"
            assert (_mem_digest(fresh.last_memory)
                    == _mem_digest(base_core.last_memory)), \
                f"seed {seed}, {cls.__name__}: memory drift"
            roundtrips += 1
    assert roundtrips >= 8  # the property actually got exercised


# ---------------------------------------------------------------------
# contract edges
# ---------------------------------------------------------------------
def test_snapshot_requires_run_in_flight():
    with pytest.raises(SnapshotError):
        VGIWCore().snapshot()


def test_resume_requires_restore():
    with pytest.raises(SnapshotError):
        FermiSM().resume()


def test_restore_rejects_wrong_engine():
    wl = make_workload("nn/euclid", "tiny")
    _, _, snaps = _checkpointed_run(
        VGIWCore, wl.kernel, wl.memory.clone(), wl.params, wl.n_threads)
    with pytest.raises(SnapshotError):
        FermiSM().restore(snaps[0])


def test_restore_rejects_wrong_version():
    wl = make_workload("nn/euclid", "tiny")
    _, _, snaps = _checkpointed_run(
        VGIWCore, wl.kernel, wl.memory.clone(), wl.params, wl.n_threads)
    stale = EngineSnapshot(engine="vgiw", kernel_name="x", cycle=0.0,
                           payload=snaps[0].payload, version=999)
    with pytest.raises(SnapshotError):
        VGIWCore().restore(stale)


def test_snapshot_load_rejects_foreign_pickle(tmp_path):
    path = tmp_path / "not_a_snapshot.ckpt"
    with open(path, "wb") as fh:
        pickle.dump({"hello": "world"}, fh)
    with pytest.raises(SnapshotError):
        EngineSnapshot.load(str(path))


def test_checkpointer_validates_interval():
    with pytest.raises(SnapshotError):
        Checkpointer(0.0)
    ck = Checkpointer(10.0, start=100.0)
    assert not ck.due(105.0)
    assert ck.due(110.0)
    ck.taken(135.0)  # a long boundary skips past missed deadlines
    assert ck.next_due == 140.0


def test_run_option_rejects_bad_interval():
    wl = make_workload("nn/euclid", "tiny")
    with pytest.raises(SnapshotError):
        VGIWCore().run(wl.kernel, wl.memory.clone(), wl.params,
                       wl.n_threads, checkpoint_every=-1.0)
