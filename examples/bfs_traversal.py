"""Full breadth-first search on the VGIW core.

Drives the two Rodinia BFS kernels in the standard host loop — expand
the frontier (``Kernel``), then commit it (``Kernel2``) — until the
"over" flag stays low, exactly as the original application does.  The
resulting per-node costs are validated against a CPU BFS, and the
per-level divergence statistics show why control flow coalescing matters
for irregular graph workloads.

Run:  python examples/bfs_traversal.py
"""

import numpy as np

from repro.kernels.bfs import bfs_kernel1, bfs_kernel2, random_csr_graph
from repro.memory import MemoryImage
from repro.vgiw import VGIWCore


def cpu_bfs(row_ptr, col, source):
    n = len(row_ptr) - 1
    cost = np.full(n, -1)
    cost[source] = 0
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for e in range(row_ptr[u], row_ptr[u + 1]):
                v = col[e]
                if cost[v] < 0:
                    cost[v] = cost[u] + 1
                    nxt.append(v)
        frontier = sorted(set(nxt))
    return cost


def main():
    n = 1024
    row_ptr, col = random_csr_graph(n, avg_degree=3, seed=3)
    source = 0

    mem = MemoryImage(int(row_ptr[-1]) + 6 * n + 64)
    b_rp = mem.alloc_array("row_ptr", row_ptr)
    b_col = mem.alloc_array("col", col)
    mask = np.zeros(n)
    mask[source] = 1
    visited = np.zeros(n)
    visited[source] = 1
    cost = np.full(n, -1.0)
    cost[source] = 0
    b_mask = mem.alloc_array("mask", mask)
    b_vis = mem.alloc_array("visited", visited)
    b_umask = mem.alloc_array("umask", np.zeros(n))
    b_cost = mem.alloc_array("cost", cost)
    b_over = mem.alloc_array("over", [0.0])

    k1, k2 = bfs_kernel1(), bfs_kernel2()
    p1 = {"row_ptr": b_rp, "col": b_col, "mask": b_mask, "visited": b_vis,
          "umask": b_umask, "cost": b_cost, "n": n}
    p2 = {"mask": b_mask, "visited": b_vis, "umask": b_umask,
          "over": b_over, "n": n}

    core = VGIWCore()
    total_cycles = 0.0
    level = 0
    print(f"BFS over a {n}-node CSR graph with {len(col)} edges")
    print(f"{'level':>5s} {'frontier':>9s} {'K1 cycles':>10s} "
          f"{'K2 cycles':>10s}")
    while True:
        frontier_size = int(mem.read_region("mask").sum())
        mem.write(b_over, 0.0)
        r1 = core.run(k1, mem, p1, n)
        r2 = core.run(k2, mem, p2, n)
        total_cycles += r1.cycles + r2.cycles
        print(f"{level:5d} {frontier_size:9d} {r1.cycles:10.0f} "
              f"{r2.cycles:10.0f}")
        level += 1
        if mem.read(b_over) == 0.0:
            break
        if level > n:
            raise RuntimeError("BFS failed to converge")

    got = mem.read_region("cost")
    want = cpu_bfs(row_ptr, col, source).astype(float)
    np.testing.assert_array_equal(got, want)
    reached = int((got >= 0).sum())
    print(f"\ntraversal done: {level} levels, {reached}/{n} nodes reached, "
          f"{total_cycles:.0f} total VGIW cycles")
    print("per-node costs match the CPU BFS exactly")


if __name__ == "__main__":
    main()
