"""KMEANS — ``invert_mapping`` (Rodinia), paper Table 2: 3 basic blocks.

Transposes the point-major feature matrix into feature-major layout so
the clustering phase reads coalesced columns.  One thread per point,
looping over that point's features — a purely data-movement kernel with
a uniform (non-divergent) loop.
"""

from __future__ import annotations

import numpy as np

from repro.ir import Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage


def invert_mapping_kernel() -> Kernel:
    kb = KernelBuilder(
        "invert_mapping", params=["input", "output", "npoints", "nfeatures"]
    )
    t = kb.tid()
    npoints = kb.param("npoints")
    with kb.if_(t < npoints):
        base_in = kb.param("input") + t * kb.param("nfeatures")
        with kb.for_range(0, kb.param("nfeatures"), name="feat") as j:
            v = kb.load(base_in + j)
            kb.store(kb.param("output") + j * npoints + t, v)
    return kb.build()


def make_workload(scale: str = "small", seed: int = 21) -> Workload:
    npoints = pick(scale, 256, 4096, 16384)
    nfeatures = 8
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(npoints, nfeatures))

    mem = MemoryImage(2 * npoints * nfeatures + 64)
    b_in = mem.alloc_array("input", points.ravel())
    b_out = mem.alloc("output", npoints * nfeatures)

    return Workload(
        name="kmeans/invert_mapping",
        app="KMEANS",
        kernel=invert_mapping_kernel(),
        memory=mem,
        params={
            "input": b_in, "output": b_out,
            "npoints": npoints, "nfeatures": nfeatures,
        },
        n_threads=npoints,
        expected={"output": points.T.ravel()},
        paper_blocks=3,
    )
