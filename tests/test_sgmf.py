"""Tests for the SGMF dataflow baseline: mapping, capacity, execution."""

import numpy as np
import pytest

from repro.arch import FabricSpec, UnitKind
from repro.interp import interpret
from repro.ir import KernelBuilder
from repro.kernels import (
    fig1_kernel,
    loop_sum_kernel,
    make_fig1_workload,
    memcopy_kernel,
    saxpy_kernel,
)
from repro.memory import MemoryImage
from repro.sgmf import (
    SGMFCore,
    SGMFUnmappableError,
    build_sgmf_dfgs,
    kernel_demand,
    map_kernel,
)
from repro.compiler.dfg import NodeKind


def _run_both(kernel, mem, params, n_threads):
    golden = mem.clone()
    interpret(kernel, golden, params, n_threads)
    result = SGMFCore().run(kernel, mem, params, n_threads)
    assert np.array_equal(mem.data, golden.data), (
        f"SGMF final memory diverges from the interpreter for {kernel.name}"
    )
    return result


def test_sgmf_dfgs_have_no_lvu_demand():
    k = fig1_kernel()
    dfgs = build_sgmf_dfgs(k)
    demand = kernel_demand(dfgs)
    assert demand[UnitKind.LVU] == 0  # live values are wired, not cached
    # Only the entry block keeps a real initiator CVU; the rest have a
    # steer (terminator) each.
    real_inits = sum(
        1
        for dfg in dfgs.values()
        for n in dfg.nodes
        if n.kind is NodeKind.INIT and not n.pseudo
    )
    assert real_inits == 1


def test_whole_kernel_demand_sums_blocks():
    k = saxpy_kernel()
    dfgs = build_sgmf_dfgs(k)
    demand = kernel_demand(dfgs)
    assert demand[UnitKind.LDST] == 3  # two loads + one store
    mapping = map_kernel(k)
    assert mapping.n_replicas >= 2


def test_oversized_kernel_unmappable():
    kb = KernelBuilder("huge", params=["out"])
    acc = kb.tid() * 1
    for i in range(100):  # way beyond 32 compute units
        acc = acc + i
    kb.store(kb.param("out"), kb.i2f(acc))
    k = kb.build()
    with pytest.raises(SGMFUnmappableError, match="does not fit"):
        map_kernel(k)


def test_many_block_kernel_exhausts_cvus():
    # > 16 steer nodes (one per block) exceed the 16 CVUs.
    kb = KernelBuilder("branchy", params=["data", "out"])
    v = kb.load(kb.param("data") + kb.tid())
    r = kb.var("r", 0.0)
    for i in range(10):  # 10 nested diamonds -> ~31 blocks
        with kb.if_(v < float(i)):
            kb.assign(r, r + 1.0)
    kb.store(kb.param("out") + kb.tid(), r)
    k = kb.build()
    with pytest.raises(SGMFUnmappableError):
        map_kernel(k)


def test_saxpy_matches_interpreter():
    n = 256
    mem = MemoryImage(2048)
    bx = mem.alloc_array("x", np.arange(float(n)))
    by = mem.alloc_array("y", np.ones(n))
    bo = mem.alloc("out", n)
    r = _run_both(saxpy_kernel(), mem, {"a": 2.0, "x": bx, "y": by, "out": bo, "n": n}, n)
    assert r.cycles > 0
    assert r.waste_fires == 0  # all threads pass the guard


def test_fig1_divergence_wastes_fires():
    kernel, mem, params = make_fig1_workload(n_threads=256)
    r = _run_both(kernel, mem, params, 256)
    # Every thread skips at least one arm of the nested conditional.
    assert r.waste_fires > 0
    assert r.useful_fire_fraction < 1.0


def test_loop_kernel_matches():
    stride, nt = 4, 128
    rng = np.random.default_rng(5)
    mem = MemoryImage(4096)
    bd = mem.alloc_array("data", rng.normal(size=stride * nt))
    bc = mem.alloc_array("count", rng.integers(0, stride + 1, size=nt))
    bo = mem.alloc("out", nt)
    r = _run_both(
        loop_sum_kernel(), mem,
        {"data": bd, "count": bc, "out": bo, "stride": stride}, nt,
    )
    # Threads with zero iterations never visit the body: waste fires.
    assert r.waste_fires > 0


def test_no_reconfiguration_cost_beats_vgiw_on_tiny_kernels():
    from repro.vgiw import VGIWCore

    n = 1024
    mem = MemoryImage(3 * n + 64)
    bs = mem.alloc_array("src", np.arange(float(n)))
    bd = mem.alloc("dst", n)
    params = {"src": bs, "dst": bd, "n": n}
    mem2 = mem.clone()
    sgmf = SGMFCore().run(memcopy_kernel(), mem, params, n)
    vgiw = VGIWCore().run(memcopy_kernel(), mem2, params, n)
    # memcopy is tiny and convergent: SGMF's single configuration and
    # direct value flow win (paper section 5: "SGMF excels with kernels
    # characterized by small basic blocks and a small amount of branch
    # divergence").
    assert sgmf.cycles < vgiw.cycles


def test_replicas_capped_by_fabric():
    k = saxpy_kernel()
    mapping = map_kernel(k)
    assert 1 <= mapping.n_replicas <= 8
    # All replica placements use disjoint units.
    used = set()
    for replica in mapping.replicas:
        for placed in replica.values():
            for uid in placed.unit_of.values():
                assert uid not in used
                used.add(uid)
