"""Multi-step thermal simulation on the VGIW core (HOTSPOT).

Runs the hotspot stencil kernel for many time steps with host-side
double buffering (the barrier-free equivalent of Rodinia's in-kernel
time loop, see DESIGN.md), watches the temperature field relax toward
the ambient/power equilibrium, and reports how the cache hierarchy
behaves once the grid is warm — the steady-state regime the paper's
full-size runs operate in.

Run:  python examples/hotspot_simulation.py
"""

import numpy as np

from repro.compiler import compile_kernel
from repro.compiler.optimize import optimize_kernel
from repro.kernels.hotspot import hotspot_kernel, hotspot_reference
from repro.memory import MemoryImage
from repro.vgiw import VGIWCore

STEPS = 8
SIDE = 48


def main():
    rows = cols = SIDE
    n = rows * cols
    rng = np.random.default_rng(23)
    temp = rng.uniform(60.0, 100.0, (rows, cols))
    power = rng.uniform(0.0, 2.0, (rows, cols))

    mem = MemoryImage(3 * n + 64)
    buf_a = mem.alloc_array("temp_a", temp.ravel())
    buf_b = mem.alloc("temp_b", n)
    b_pow = mem.alloc_array("power", power.ravel())

    core = VGIWCore()
    # Per-launch specialisation bakes parameters into the configuration
    # (they are configuration-time constants on VGIW), so double
    # buffering needs one compiled configuration per direction — exactly
    # like keeping two prepared configuration bitstreams.
    configs = {}
    for src, dst in ((buf_a, buf_b), (buf_b, buf_a)):
        params = {"temp_in": src, "power": b_pow, "temp_out": dst,
                  "rows": rows, "cols": cols}
        configs[(src, dst)] = compile_kernel(
            optimize_kernel(hotspot_kernel(), params=params)
        )

    expected = temp.copy()
    src, dst = buf_a, buf_b
    total = 0.0
    print(f"{'step':>4s} {'cycles':>8s} {'L1 hit%':>8s} {'max T':>8s} "
          f"{'mean T':>8s}")
    for step in range(STEPS):
        params = {"temp_in": src, "power": b_pow, "temp_out": dst,
                  "rows": rows, "cols": cols}
        result = core.run(configs[(src, dst)], mem, params, n)
        total += result.cycles
        expected = hotspot_reference(expected, power)
        field = mem.read_block(dst, n).reshape(rows, cols)
        np.testing.assert_allclose(field, expected, rtol=1e-9)
        print(f"{step:4d} {result.cycles:8.0f} "
              f"{100 * result.l1.hit_rate:8.1f} {field.max():8.2f} "
              f"{field.mean():8.2f}")
        src, dst = dst, src

    print(f"\n{STEPS} steps in {total:.0f} VGIW cycles; every step "
          f"verified against the numpy stencil")
    print("note the first step pays the cold-cache cost; later steps "
          "run out of the warm L1/L2")


if __name__ == "__main__":
    main()
