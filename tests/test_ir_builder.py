"""Tests for the kernel builder DSL: structure, types, and misuse errors."""

import pytest

from repro.ir import (
    BuildError,
    DType,
    KernelBuilder,
    Op,
    TermKind,
    ValidationError,
)


def test_empty_kernel_builds_single_ret_block():
    k = KernelBuilder("empty").build()
    assert k.num_blocks == 1
    assert k.blocks["entry"].terminator.kind is TermKind.RET


def test_straightline_arithmetic_types():
    kb = KernelBuilder("k", params=["p"])
    a = kb.tid() + 1
    b = a * 2
    c = kb.i2f(b) + 0.5
    assert a.dtype is DType.INT
    assert b.dtype is DType.INT
    assert c.dtype is DType.FLOAT
    k = kb.build()
    ops = [i.op for i in k.blocks["entry"].instrs]
    assert ops == [Op.ADD, Op.MUL, Op.I2F, Op.FADD]


def test_int_float_mixing_promotes_to_float():
    kb = KernelBuilder("k")
    v = kb.tid() + 2.5
    assert v.dtype is DType.FLOAT
    ops = [i.op for i in kb._current.instrs]
    # tid (int reg) must be promoted through I2F before the FADD.
    assert Op.I2F in ops and Op.FADD in ops


def test_comparison_produces_pred():
    kb = KernelBuilder("k", params=["n"])
    c = kb.tid() < kb.param("n")
    assert c.dtype is DType.PRED


def test_if_creates_diamond_with_empty_else():
    kb = KernelBuilder("k", params=["n"])
    with kb.if_(kb.tid() < kb.param("n")):
        kb.store(kb.tid(), 1.0)
    k = kb.build()
    assert k.num_blocks == 3  # entry, then, merge
    entry = k.blocks["entry"]
    assert entry.terminator.kind is TermKind.BR
    t, f = entry.terminator.targets()
    assert k.blocks[t].successors() == (f,)


def test_if_else_creates_four_block_diamond():
    kb = KernelBuilder("k", params=["n"])
    r = kb.var("r", 0)
    with kb.if_(kb.tid() < kb.param("n")):
        kb.assign(r, 1)
    with kb.else_():
        kb.assign(r, 2)
    kb.store(0, r)
    k = kb.build()
    assert k.num_blocks == 4
    t, f = k.blocks["entry"].terminator.targets()
    merge = k.blocks[t].successors()[0]
    assert k.blocks[f].successors() == (merge,)


def test_else_without_if_raises():
    kb = KernelBuilder("k")
    with pytest.raises(BuildError):
        with kb.else_():
            pass


def test_else_after_intervening_code_raises():
    kb = KernelBuilder("k", params=["n"])
    with kb.if_(kb.tid() < kb.param("n")):
        pass
    kb.store(0, 1.0)  # invalidates the pending else
    with pytest.raises(BuildError):
        with kb.else_():
            pass


def test_nested_if_else():
    kb = KernelBuilder("k", params=["a", "b"])
    r = kb.var("r", 0)
    with kb.if_(kb.tid() < kb.param("a")):
        kb.assign(r, 1)
    with kb.else_():
        with kb.if_(kb.tid() < kb.param("b")):
            kb.assign(r, 2)
        with kb.else_():
            kb.assign(r, 3)
    kb.store(0, r)
    k = kb.build()
    assert k.num_blocks == 7


def test_loop_has_back_edge():
    kb = KernelBuilder("k", params=["n"])
    i = kb.var("i", 0)
    with kb.loop() as lp:
        lp.break_unless(i < kb.param("n"))
        kb.assign(i, i + 1)
    k = kb.build()
    # Find the header: the block with a conditional branch.
    headers = [b for b in k.blocks.values() if b.terminator.kind is TermKind.BR]
    assert len(headers) == 1
    header = headers[0]
    body_name, exit_name = header.terminator.targets()
    assert k.blocks[body_name].successors() == (header.name,)
    assert not k.blocks[exit_name].instrs


def test_for_range_counts_correctly_via_interp():
    from repro.interp import interpret
    from repro.memory import MemoryImage

    kb = KernelBuilder("count", params=["out", "n"])
    acc = kb.var("acc", 0)
    with kb.for_range(0, kb.param("n")) as i:
        kb.assign(acc, acc + i)
    kb.store(kb.param("out") + kb.tid(), acc)
    k = kb.build()
    mem = MemoryImage(64)
    out = mem.alloc("out", 4)
    interpret(k, mem, {"out": out, "n": 5}, 4)
    assert list(mem.read_region("out")) == [10.0] * 4


def test_for_range_negative_step():
    from repro.interp import interpret
    from repro.memory import MemoryImage

    kb = KernelBuilder("countdown", params=["out"])
    acc = kb.var("acc", 0)
    with kb.for_range(5, 0, step=-1) as i:
        kb.assign(acc, acc + i)
    kb.store(kb.param("out"), acc)
    k = kb.build()
    mem = MemoryImage(16)
    out = mem.alloc("out", 1)
    interpret(k, mem, {"out": out}, 1)
    assert mem.read(out) == 15.0


def test_for_range_zero_step_raises():
    kb = KernelBuilder("k")
    with pytest.raises(BuildError):
        with kb.for_range(0, 4, step=0):
            pass


def test_loop_break_prunes_dead_code():
    kb = KernelBuilder("k", params=["n"])
    i = kb.var("i", 0)
    with kb.loop() as lp:
        lp.break_unless(i < kb.param("n"))
        with kb.if_(i == 3):
            lp.break_()
        kb.assign(i, i + 1)
    k = kb.build()  # must validate (dead blocks pruned)
    assert all(b.terminator is not None for b in k.blocks.values())


def test_loop_continue():
    from repro.interp import interpret
    from repro.memory import MemoryImage

    kb = KernelBuilder("evens", params=["out"])
    i = kb.var("i", 0)
    acc = kb.var("acc", 0)
    with kb.loop() as lp:
        lp.break_unless(i < 10)
        kb.assign(i, i + 1)
        with kb.if_((i % 2) == 1):
            lp.continue_()
        kb.assign(acc, acc + i)
    kb.store(kb.param("out"), acc)
    k = kb.build()
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    interpret(k, mem, {"out": out}, 1)
    assert mem.read(out) == 2 + 4 + 6 + 8 + 10


def test_unknown_param_raises():
    kb = KernelBuilder("k", params=["n"])
    with pytest.raises(BuildError):
        kb.param("m")


def test_build_twice_raises():
    kb = KernelBuilder("k")
    kb.build()
    with pytest.raises(BuildError):
        kb.build()


def test_write_to_reserved_register_rejected():
    from repro.ir import Instr, Terminator

    kb = KernelBuilder("k")
    kb._current.append(Instr(Op.MOV, "tid", (kb._wrap(1).operand,), DType.INT))
    with pytest.raises(ValidationError):
        kb.build()


def test_select_and_minmax():
    from repro.interp import interpret
    from repro.memory import MemoryImage

    kb = KernelBuilder("k", params=["out"])
    t = kb.tid()
    v = kb.select(t < 2, t * 10, t)
    m = kb.min_(v, 15)
    kb.store(kb.param("out") + t, kb.max_(m, 1))
    k = kb.build()
    mem = MemoryImage(16)
    out = mem.alloc("out", 4)
    interpret(k, mem, {"out": out}, 4)
    assert list(mem.read_region("out")) == [1.0, 10.0, 2.0, 3.0]


def test_float_mod_raises():
    kb = KernelBuilder("k")
    x = kb.const(1.5)
    with pytest.raises(BuildError):
        x % 2  # noqa: B018


def test_var_requires_init_or_dtype():
    kb = KernelBuilder("k")
    with pytest.raises(BuildError):
        kb.var("x")
    v = kb.var("y", dtype=DType.INT)
    assert v.dtype is DType.INT
