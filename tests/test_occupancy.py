"""Tests for the Fermi occupancy (register pressure) model."""

import numpy as np

from repro.arch import FermiConfig
from repro.kernels.registry import make_workload
from repro.simt import FermiSM
from repro.simt.sm import _register_pressure
from repro.kernels import saxpy_kernel


def test_pressure_floor():
    # Even trivial kernels report a realistic minimum.
    assert _register_pressure(saxpy_kernel()) >= 8


def test_pressure_tracks_live_values():
    w = make_workload("cfd/compute_flux", "tiny")
    hot = _register_pressure(w.kernel)
    cold = _register_pressure(saxpy_kernel())
    assert hot > 2 * cold  # flux is famously register-hungry


def test_occupancy_limits_resident_warps():
    w = make_workload("cfd/compute_flux", "tiny")
    r = FermiSM().run(
        w.kernel, w.memory.clone(), w.params, w.n_threads
    )
    assert r.sm.register_pressure > 0
    assert r.sm.resident_warps <= FermiConfig().max_resident_warps
    # 128KB / (128B x pressure) warps.
    expected = FermiConfig().register_file_bytes // (
        128 * r.sm.register_pressure
    )
    assert r.sm.resident_warps <= max(2, expected)


def test_occupancy_can_be_disabled():
    w = make_workload("cfd/compute_flux", "tiny")
    on = FermiSM().run(w.kernel, w.memory.clone(), w.params, w.n_threads)
    off = FermiSM(FermiConfig(model_occupancy=False)).run(
        w.kernel, w.memory.clone(), w.params, w.n_threads
    )
    # Same functional result either way; the constrained run is slower
    # (or equal at tiny scale where few warps exist anyway).
    assert off.cycles <= on.cycles
    assert off.sm.register_pressure == 0


def test_low_pressure_kernels_keep_full_occupancy():
    w = make_workload("nn/euclid", "tiny")
    r = FermiSM().run(w.kernel, w.memory.clone(), w.params, w.n_threads)
    rf_warps = FermiConfig().register_file_bytes // (
        128 * r.sm.register_pressure
    )
    assert rf_warps >= FermiConfig().max_resident_warps
