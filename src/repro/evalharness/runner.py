"""Evaluation runner: one workload across the three architectures.

``run_kernel`` executes a Table 2 workload on Fermi, VGIW and (when the
kernel fits its fabric) SGMF, verifies every machine's final memory
against the reference interpreter, attaches energy breakdowns, and
returns a :class:`KernelRun`.  ``run_suite`` does that for the whole
registry and is the single data source for every figure's rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.arch.config import FermiConfig, SGMFConfig, VGIWConfig
from repro.compiler.optimize import optimize_kernel
from repro.interp import interpret
from repro.kernels.base import Workload
from repro.kernels.registry import all_names, make_workload
from repro.power import (
    EnergyBreakdown,
    energy_fermi,
    energy_sgmf,
    energy_vgiw,
)
from repro.sgmf import SGMFCore, SGMFRunResult, SGMFUnmappableError
from repro.simt import FermiRunResult, FermiSM
from repro.vgiw import VGIWCore, VGIWRunResult


class VerificationError(AssertionError):
    """A simulator's final memory diverged from the interpreter's."""


@dataclass
class KernelRun:
    """All measurements for one workload across the machines."""

    name: str
    app: str
    n_threads: int
    n_blocks: int
    fermi: FermiRunResult
    vgiw: VGIWRunResult
    sgmf: Optional[SGMFRunResult]  # None when unmappable
    fermi_energy: EnergyBreakdown
    vgiw_energy: EnergyBreakdown
    sgmf_energy: Optional[EnergyBreakdown]

    @property
    def speedup_vs_fermi(self) -> float:
        return self.fermi.cycles / self.vgiw.cycles

    @property
    def speedup_vs_sgmf(self) -> Optional[float]:
        if self.sgmf is None:
            return None
        return self.sgmf.cycles / self.vgiw.cycles

    def efficiency_vs_fermi(self, level: str = "system") -> float:
        return getattr(self.fermi_energy, level) / getattr(self.vgiw_energy, level)

    def efficiency_vs_sgmf(self, level: str = "system") -> Optional[float]:
        if self.sgmf_energy is None:
            return None
        return getattr(self.sgmf_energy, level) / getattr(self.vgiw_energy, level)

    @property
    def sgmf_mappable(self) -> bool:
        return self.sgmf is not None


def run_kernel(
    name: str,
    scale: str = "small",
    verify: bool = True,
    vgiw_config: Optional[VGIWConfig] = None,
    fermi_config: Optional[FermiConfig] = None,
    sgmf_config: Optional[SGMFConfig] = None,
    optimize: bool = True,
) -> KernelRun:
    """Run one registry workload on all three machines."""
    workload = make_workload(name, scale)
    if optimize:
        kernel = optimize_kernel(workload.kernel, params=workload.params)
        # SGMF's compiler must conserve fabric capacity, so it keeps
        # loops rolled; Fermi and VGIW get the fully optimised kernel.
        sgmf_kernel = optimize_kernel(
            workload.kernel, params=workload.params, unroll=False
        )
    else:
        kernel = sgmf_kernel = workload.kernel

    golden = None
    if verify:
        golden = workload.memory.clone()
        interpret(kernel, golden, workload.params, workload.n_threads)

    def check(mem, arch: str) -> None:
        if golden is not None and not np.array_equal(mem.data, golden.data):
            raise VerificationError(
                f"{arch} final memory diverges from the interpreter "
                f"for {name}"
            )

    mem_f = workload.memory.clone()
    fermi = FermiSM(fermi_config).run(
        kernel, mem_f, workload.params, workload.n_threads
    )
    check(mem_f, "Fermi")

    mem_v = workload.memory.clone()
    vgiw = VGIWCore(vgiw_config).run(
        kernel, mem_v, workload.params, workload.n_threads, profile=True
    )
    check(mem_v, "VGIW")

    sgmf: Optional[SGMFRunResult] = None
    sgmf_bd: Optional[EnergyBreakdown] = None
    try:
        mem_s = workload.memory.clone()
        sgmf = SGMFCore(sgmf_config).run(
            sgmf_kernel, mem_s, workload.params, workload.n_threads
        )
        check(mem_s, "SGMF")
        sgmf_bd = energy_sgmf(sgmf)
    except SGMFUnmappableError:
        pass

    return KernelRun(
        name=name,
        app=workload.app,
        n_threads=workload.n_threads,
        n_blocks=vgiw.n_blocks,
        fermi=fermi,
        vgiw=vgiw,
        sgmf=sgmf,
        fermi_energy=energy_fermi(fermi),
        vgiw_energy=energy_vgiw(vgiw),
        sgmf_energy=sgmf_bd,
    )


def run_suite(
    names: Optional[Iterable[str]] = None,
    scale: str = "small",
    verify: bool = True,
) -> Dict[str, KernelRun]:
    """Run the whole Table 2 suite (the data behind every figure)."""
    names = list(names) if names is not None else all_names()
    return {name: run_kernel(name, scale, verify=verify) for name in names}
