"""GDDR5-style DRAM timing model.

16 banks across 6 channels (paper Table 1).  Each bank serves one access
at a time and keeps a row buffer; a row-buffer hit costs the
CAS-dominated latency, a miss adds precharge + activate.  Each channel's
data bus is occupied for a short burst per 128-byte transfer, so
accesses to different banks pipeline on one channel.

Because the core-side simulators generate requests in rough — not
strict — time order, banks and channels are modelled as *calendars*
(free-interval searches) rather than monotone free pointers: a request
with an earlier timestamp may backfill an idle slot instead of queueing
behind a logically-later request.

All times are in core-clock cycles (the DRAM's slower clock is folded
into the latency constants; paper Table 1 lists 0.924 GHz vs the
1.4 GHz core).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.config import MemoryConfig
from repro.memory.calendar import claim_slot


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


class _Bank:
    """One DRAM bank: a sorted calendar of (start, end, row) accesses."""

    __slots__ = ("intervals",)

    def __init__(self):
        self.intervals: List[Tuple[float, float, int]] = []

    def schedule(self, t: float, row: int, hit_lat: int, miss_lat: int
                 ) -> Tuple[float, float, bool]:
        """Find the earliest slot at/after ``t``; returns
        (start, end, row_hit)."""
        candidate = t
        idx = 0
        intervals = self.intervals
        while True:
            # Row state at the candidate time = row of the latest access
            # starting before it.
            prev_row = -1
            for s, e, r in intervals:
                if s <= candidate:
                    prev_row = r
                else:
                    break
            latency = hit_lat if row == prev_row else miss_lat
            end = candidate + latency
            conflict = None
            for s, e, r in intervals:
                if s < end and candidate < e:
                    conflict = e
                    break
            if conflict is None:
                self._insert(candidate, end, row)
                return candidate, end, latency == hit_lat
            candidate = conflict

    def _insert(self, start: float, end: float, row: int) -> None:
        intervals = self.intervals
        lo = 0
        while lo < len(intervals) and intervals[lo][0] < start:
            lo += 1
        intervals.insert(lo, (start, end, row))


class DRAM:
    """Main memory: the last level of every access path."""

    def __init__(self, config: MemoryConfig, tracer=None):
        self.config = config
        self.stats = DRAMStats()
        # Observability hook (repro.obs): row activations (row-buffer
        # misses) become instant timeline events when a Tracer is
        # attached; `None` keeps the hot path to one attribute test.
        self.tracer = tracer
        self._banks: Dict[Tuple[int, int], _Bank] = {}
        # channel -> burst-slot calendar (slot = cycle // burst_cycles),
        # path-compressed next-free pointers (repro.memory.calendar)
        self._channel_next: Dict[int, Dict[int, int]] = {}

    def _locate(self, line_addr: int) -> Tuple[int, int, int]:
        cfg = self.config
        channel = line_addr % cfg.dram_channels
        interleaved = line_addr // cfg.dram_channels
        bank = interleaved % cfg.dram_banks_per_channel
        lines_per_row = max(1, cfg.dram_row_bytes // 128)
        row = interleaved // (cfg.dram_banks_per_channel * lines_per_row)
        return channel, bank, row

    def _claim_channel(self, channel: int, t: float) -> float:
        """Claim the first free burst slot of ``channel`` at/after ``t``."""
        burst = self.config.dram_burst_cycles
        slot = int(t // burst)
        if t > slot * burst:
            slot += 1
        nf = self._channel_next.get(channel)
        if nf is None:
            nf = self._channel_next[channel] = {}
        slot = claim_slot(nf, slot)
        return slot * burst

    def access(self, time: float, line_addr: int, is_write: bool) -> float:
        """One 128-byte line transfer; returns its completion time."""
        cfg = self.config
        channel, bank_idx, row = self._locate(line_addr)
        bank = self._banks.setdefault((channel, bank_idx), _Bank())

        start, end, row_hit = bank.schedule(
            time, row, cfg.dram_row_hit_latency, cfg.dram_row_miss_latency
        )
        # The data burst at the end of the access needs the channel bus.
        burst_at = self._claim_channel(channel, end - cfg.dram_burst_cycles)
        done = burst_at + cfg.dram_burst_cycles

        if row_hit:
            self.stats.row_hits += 1
        else:
            self.stats.row_misses += 1
            if self.tracer is not None:
                self.tracer.instant(
                    "row_activate", "mem.dram", start, pid="mem",
                    tid=f"ch{channel}", channel=channel, bank=bank_idx,
                    row=row,
                )
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return done
