"""Loop unrolling for constant-trip-count loops.

The MT-CGRF rewards *fat* basic blocks: every block execution costs one
reconfiguration plus ``threads / replicas`` injection cycles plus a
pipeline drain, so folding a short constant-trip loop into straight-line
code multiplies the work per block visit without changing semantics.
The original toolchain gets this from LLVM's unroller; this pass
implements the restricted form our structured builder produces:

* the loop is a natural loop with exactly two blocks (header + latch
  body, as built by ``for_range``/``loop``);
* the header's condition compares the induction register against
  constants, and the induction register is advanced by a constant step
  exactly once, at the end of the body;
* the trip count is a compile-time constant and small enough that the
  unrolled body still fits the fabric
  (``trip count * body size <= max_unrolled_instrs``).

Loops that do not match stay untouched — dynamic trip counts (BFS's
edge loop, lavamd's ``per_box``) must keep their control flow, which is
exactly the behaviour the paper's evaluation depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.cfganalysis import natural_loops
from repro.ir.block import BasicBlock
from repro.ir.instr import Instr, Op, TermKind, Terminator
from repro.ir.kernel import Kernel
from repro.ir.types import Imm, Reg
from repro.ir.validate import validate_kernel

#: Cap on instructions an unrolled loop may expand into.
MAX_UNROLLED_INSTRS = 200

_CMP_OPS = {Op.LT, Op.LE, Op.GT, Op.GE, Op.NE}


@dataclass
class _UnrollPlan:
    header: str
    body: str
    exit_target: str
    induction: str
    dtype: object
    start: float
    step: float
    trips: int


def _constant_def(block: BasicBlock, reg: str) -> Optional[float]:
    """The constant a register holds at block exit, if statically known."""
    value: Optional[float] = None
    for instr in block.instrs:
        if instr.dst == reg:
            if instr.op is Op.MOV and isinstance(instr.srcs[0], Imm):
                value = instr.srcs[0].value
            else:
                return None
    return value


def _match_loop(kernel: Kernel, header_name: str, body_names) -> Optional[_UnrollPlan]:
    header = kernel.blocks[header_name]
    if len(body_names) != 2:  # header + single latch body
        return None
    body_name = next(n for n in body_names if n != header_name)
    body = kernel.blocks[body_name]
    if body.successors() != (header_name,):
        return None
    term = header.terminator
    if term.kind is not TermKind.BR:
        return None
    # The header must be: cmp = IV <op> const ; br cmp, body, exit.
    if len(header.instrs) != 1:
        return None
    cmp = header.instrs[0]
    if cmp.op not in _CMP_OPS or not isinstance(term.cond, Reg):
        return None
    if term.cond.name != cmp.dst:
        return None
    if term.true_target != body_name:
        return None
    if not (isinstance(cmp.srcs[0], Reg) and isinstance(cmp.srcs[1], Imm)):
        return None
    induction = cmp.srcs[0].name
    bound = cmp.srcs[1].value

    # The body must advance the induction register exactly once by a
    # constant, as its final definition of it.
    step: Optional[float] = None
    writes = [i for i in body.instrs if i.dst == induction]
    if len(writes) != 1 or writes[0] is not body.instrs[-1]:
        return None
    adv = writes[0]
    # Builder form: %tmp = add %i, step ; %i = mov %tmp   — or a direct add.
    if adv.op is Op.MOV and isinstance(adv.srcs[0], Reg):
        tmp = adv.srcs[0].name
        producers = [i for i in body.instrs if i.dst == tmp]
        if len(producers) != 1:
            return None
        adv = producers[0]
    if adv.op is not Op.ADD:
        return None
    if isinstance(adv.srcs[0], Reg) and adv.srcs[0].name == induction \
            and isinstance(adv.srcs[1], Imm):
        step = adv.srcs[1].value
    elif isinstance(adv.srcs[1], Reg) and adv.srcs[1].name == induction \
            and isinstance(adv.srcs[0], Imm):
        step = adv.srcs[0].value
    if not step:
        return None

    # The induction start: every predecessor of the header outside the
    # loop must leave it at the same known constant.
    preds = kernel.predecessors()[header_name]
    starts = set()
    for pred in preds:
        if pred == body_name:
            continue
        start = _constant_def(kernel.blocks[pred], induction)
        if start is None:
            return None
        starts.add(start)
    if len(starts) != 1:
        return None
    start = starts.pop()

    # Trip count for "while IV <op> bound".
    trips = _trip_count(cmp.op, start, bound, step)
    if trips is None or trips <= 0:
        return None
    if trips * len(body.instrs) > MAX_UNROLLED_INSTRS:
        return None
    return _UnrollPlan(
        header=header_name, body=body_name, exit_target=term.false_target,
        induction=induction, dtype=writes[0].dtype,
        start=start, step=step, trips=trips,
    )


def _trip_count(op: Op, start: float, bound: float, step: float) -> Optional[int]:
    trips = 0
    value = start
    for _ in range(MAX_UNROLLED_INSTRS + 1):
        taken = {
            Op.LT: value < bound,
            Op.LE: value <= bound,
            Op.GT: value > bound,
            Op.GE: value >= bound,
            Op.NE: value != bound,
        }[op]
        if not taken:
            return trips
        trips += 1
        value += step
    return None  # too many iterations (or non-terminating)


def unroll_loops(kernel: Kernel) -> Kernel:
    """Fully unroll every matching constant-trip loop."""
    changed = True
    current = kernel
    while changed:
        changed = False
        for header, loop in natural_loops(current).items():
            plan = _match_loop(current, header, loop.body)
            if plan is None:
                continue
            current = _apply(current, plan)
            validate_kernel(current)
            changed = True
            break  # loop structures changed; re-analyse
    return current


def _apply(kernel: Kernel, plan: _UnrollPlan) -> Kernel:
    from repro.ir.types import DType

    body = kernel.blocks[plan.body]
    dtype = plan.dtype or DType.INT

    def seed(value):
        v = int(value) if dtype is DType.INT else float(value)
        return Instr(Op.MOV, plan.induction, (Imm(v, dtype),), dtype)

    # Each iteration starts from its own seeded constant; the body's own
    # advance instruction then recomputes the next value (redundantly but
    # harmlessly — DCE keeps things tidy).  A final seed exposes the
    # post-loop induction value to the epilogue.
    unrolled: List[Instr] = []
    value = plan.start
    for _ in range(plan.trips):
        unrolled.append(seed(value))
        unrolled.extend(body.instrs)
        value += plan.step
    unrolled.append(seed(value))

    new_header = BasicBlock(
        plan.header, unrolled, Terminator.jmp(plan.exit_target)
    )
    blocks: Dict[str, BasicBlock] = {}
    for name, blk in kernel.blocks.items():
        if name == plan.header:
            blocks[name] = new_header
        elif name == plan.body:
            continue  # absorbed into the header
        else:
            blocks[name] = blk
    return Kernel(
        name=kernel.name,
        params=list(kernel.params),
        blocks=blocks,
        entry=kernel.entry,
        param_dtypes=dict(kernel.param_dtypes),
    )
