"""Paper Figure 9: energy efficiency of a VGIW core over a Fermi SM.

Paper result: 0.7x to 7x, average 1.75x, with a strong correlation
between a kernel's compute intensity and its efficiency benefit.
"""

from repro.evalharness.experiments import fig9_energy_vs_fermi
from repro.evalharness.tables import geomean


def bench_fig9(benchmark, suite_runs):
    table = benchmark(fig9_energy_vs_fermi, suite_runs)
    print()
    print(table.render())

    effs = {
        row[0]: row[3]
        for row in table.rows
        if row[0] not in ("GEOMEAN", "ARITHMEAN")
    }
    gm = geomean(effs.values())
    assert gm > 0.9, f"geomean efficiency {gm:.2f}: VGIW must not lose energy"
    assert max(effs.values()) > 1.3
    # Efficiency should correlate with the performance results: the
    # streaming kernel cannot be an efficiency star.
    assert effs["cfd/time_step"] < sorted(effs.values())[-3]
