"""Calibration diffing: compare two archived suite runs.

The workflow this supports is the one used to calibrate this repository:
archive a suite run (`runs_to_json`), change a model parameter, re-run,
and diff — per-kernel speedup/energy deltas plus the biggest movers.

    from repro.evalharness import run_suite, runs_to_dict
    from repro.evalharness.compare import compare_runs

    before = runs_to_dict(run_suite(scale="tiny"))
    # ... tweak a latency ...
    after = runs_to_dict(run_suite(scale="tiny"))
    print(compare_runs(before, after).render())
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.evalharness.tables import ExperimentTable, geomean


def _ratio(after: Optional[float], before: Optional[float]) -> Optional[float]:
    if not before or after is None:
        return None
    return after / before


def compare_runs(before: Dict, after: Dict,
                 metric: str = "speedup_vs_fermi") -> ExperimentTable:
    """Per-kernel comparison of one metric across two archived runs.

    ``before``/``after`` are ``runs_to_dict`` outputs (or parsed JSON
    archives thereof).  The table carries both values, the ratio, and
    the VGIW cycle-count ratio for context.
    """
    table = ExperimentTable(
        "Compare", f"{metric}: before vs after",
        ["Kernel", "Before", "After", "Ratio",
         "VGIW cycles x", "Fermi cycles x"],
    )
    ratios = []
    for name in sorted(set(before) & set(after)):
        b, a = before[name], after[name]
        vb, va = b.get(metric), a.get(metric)
        r = _ratio(va, vb)
        if r is not None:
            ratios.append(r)
        table.add(
            name, vb, va, r,
            _ratio(a["vgiw"]["cycles"], b["vgiw"]["cycles"]),
            _ratio(a["fermi"]["cycles"], b["fermi"]["cycles"]),
        )
    missing = sorted(set(before) ^ set(after))
    if missing:
        table.notes.append(f"kernels present in only one run: {missing}")
    table.add("GEOMEAN", None, None, geomean(ratios), None, None)
    return table


def biggest_movers(before: Dict, after: Dict,
                   metric: str = "speedup_vs_fermi", top: int = 5):
    """The kernels whose metric moved the most, as (name, ratio) pairs
    sorted by how far the ratio is from 1."""
    moves = []
    for name in set(before) & set(after):
        r = _ratio(after[name].get(metric), before[name].get(metric))
        if r is not None:
            moves.append((name, r))
    moves.sort(key=lambda kv: abs(kv[1] - 1.0), reverse=True)
    return moves[:top]
