"""Paper Figure 10: VGIW/Fermi energy efficiency at the system, die, and
core levels.

Paper result: the improvement is attributed to the compute engine —
the core-level ratio is the largest and dilutes through die to system
as the (identical) memory hierarchy's energy is added.
"""

from repro.evalharness.experiments import fig10_energy_levels
from repro.evalharness.tables import geomean


def bench_fig10(benchmark, suite_runs):
    table = benchmark(fig10_energy_levels, suite_runs)
    print()
    print(table.render())

    means = table.rows[-1]  # GEOMEAN row: [label, system, die, core]
    system, die, core = means[1], means[2], means[3]
    assert core > system, (
        f"core-level ratio ({core:.2f}) must exceed system-level "
        f"({system:.2f}): the win lives in the compute engine"
    )
    assert core > 1.0, "the VGIW compute engine must be more efficient"
