"""Smoke tests for the fast examples (run as modules, asserting their
own internal verification passes)."""

import runpy
import sys

import pytest


def _run_example(name, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(f"examples/{name}", run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = _run_example("quickstart.py", monkeypatch, capsys)
    assert "all three machines match the interpreter bit-for-bit" in out
    assert "VGIW" in out and "Fermi" in out and "SGMF" in out


def test_divergence_walkthrough(monkeypatch, capsys):
    out = _run_example("divergence_walkthrough.py", monkeypatch, capsys)
    # The paper's Figure 2 state sequence.
    assert "then.1: [1, 3, 8]" in out
    assert "else.3: [2, 4, 5, 6, 7]" in out
    assert "results verified against the closed-form model" in out
    assert "(all done)" in out
