"""Ablation: token-buffer depth (virtual execution channels, paper §3.5).

The token buffers bound the threads in flight per replica; they are what
lets unblocked threads overtake memory-stalled ones (dynamic, tagged-
token dataflow).  Sweeping the depth shows the latency-hiding knee.
"""

from repro.arch import VGIWConfig
from repro.evalharness.tables import ExperimentTable
from repro.kernels.registry import make_workload
from repro.vgiw import VGIWCore


def bench_ablation_token_buffer(benchmark):
    table = ExperimentTable(
        "Ablation", "Token buffer depth sweep (cfd/time_step, memory bound)",
        ["Depth", "Cycles", "vs depth=512"],
    )

    def run_sweep():
        table.rows.clear()
        cycles = {}
        for depth in (8, 64, 512):
            w = make_workload("cfd/time_step", "tiny")
            cfg = VGIWConfig(token_buffer_depth=depth)
            mem = w.memory.clone()
            r = VGIWCore(cfg).run(w.kernel, mem, w.params, w.n_threads)
            cycles[depth] = r.cycles
        for depth, c in cycles.items():
            table.add(depth, c, cycles[512] / c)
        return cycles

    cycles = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(table.render())
    # Deeper token buffers must not hurt, and shallow ones must throttle
    # the memory-bound kernel.
    assert cycles[8] > cycles[512]
    assert cycles[64] >= cycles[512]
