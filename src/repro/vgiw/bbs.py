"""Basic block scheduler: batch protocol and scheduling policy (paper §3.2).

Thread batches travel between the BBS and the control vector units as
⟨16-bit base thread ID, 64-bit bitmap⟩ tuples.  The BBS selects the next
block to run (smallest block ID with a non-empty thread vector — the
compiler's ID assignment makes this preserve control dependencies),
zeroes the bits it sends out (the CVT's read-and-reset does this for
free), and ORs terminator batches back in.

The configuration FIFO prefetches upcoming block configurations during
execution, so the exposed reconfiguration cost is just the grid
reset-and-feed: ``2 * ceil(sqrt(#units))`` passes plus a constant — 34
cycles for the 108-unit prototype (paper §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Tuple

BATCH_BITS = 64


def iter_batch_tids(base: int, bitmap: int) -> Iterator[int]:
    """Thread IDs encoded by a ⟨base, bitmap⟩ batch, ascending."""
    i = 0
    while bitmap:
        if bitmap & 1:
            yield base + i
        bitmap >>= 1
        i += 1


def make_batches(tids: Iterable[int], word_bits: int = BATCH_BITS) -> List[Tuple[int, int]]:
    """Pack thread IDs into word-aligned ⟨base, bitmap⟩ batches."""
    batches: dict = {}
    for tid in tids:
        base = (tid // word_bits) * word_bits
        batches[base] = batches.get(base, 0) | (1 << (tid - base))
    return sorted(batches.items())


def batch_popcount(bitmap: int) -> int:
    """Number of set bits — threads pending — in a block's vector."""
    return bin(bitmap).count("1")


def terminator_batches(outcomes, word_bits: int = BATCH_BITS,
                       open_per_target: int = 2, tid_offset: int = 0):
    """Assemble the batch packets a replica's terminator CVU emits.

    The CVU keeps ``open_per_target`` batch registers per destination
    block (paper §3.5: two, to tolerate out-of-order completion).
    Threads arrive in completion order; a thread whose ID falls outside
    every open batch of its target flushes the oldest (possibly partial)
    batch to the BBS.  Returns ``[(target, base, bitmap), ...]`` in
    emission order — one CVT write each.
    """
    packets: List[Tuple[str, int, int]] = []
    # target -> ordered list of [base, bitmap] (front = oldest)
    open_batches: dict = {}
    for oc in sorted(outcomes, key=lambda o: (o.completion, o.tid)):
        if oc.next_block is None:
            continue
        local = oc.tid - tid_offset
        base = (local // word_bits) * word_bits
        bit = 1 << (local - base)
        slots = open_batches.setdefault(oc.next_block, [])
        for slot in slots:
            if slot[0] == base:
                slot[1] |= bit
                break
        else:
            if len(slots) >= open_per_target:
                old = slots.pop(0)
                packets.append((oc.next_block, old[0], old[1]))
            slots.append([base, bit])
    for target, slots in open_batches.items():
        for base, bitmap in slots:
            packets.append((target, base, bitmap))
    return packets


@dataclass
class BBSStats:
    """Scheduler-side counters (feeds the §3.2 overhead experiment)."""

    blocks_executed: int = 0
    reconfigurations: int = 0
    config_cycles: int = 0
    batches_sent: int = 0
    batches_received: int = 0
    threads_streamed: int = 0

    def config_overhead(self, total_cycles: float) -> float:
        """Reconfiguration cycles as a fraction of total runtime."""
        return self.config_cycles / total_cycles if total_cycles else 0.0
