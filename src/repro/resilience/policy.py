"""Retry policy and structured failure records for fault isolation.

``run_suite`` wraps every kernel in a bounded retry loop: each attempt
gets a deterministically re-seeded fault injector (transient faults may
land elsewhere — or nowhere) and a backed-off watchdog budget (a
persistently hanging kernel costs geometrically less with every retry).
When the attempts are exhausted the kernel is reported as a *degraded
row*: a :class:`KernelFailure` carrying every attempt's error, fault
log, and (for hangs) the watchdog's diagnostic snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.resilience.errors import ReproError, SimulationHangError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry for one kernel of a sweep."""

    #: total attempts per kernel (1 = no retry)
    max_attempts: int = 2
    #: watchdog budget multiplier applied per retry (in-process backoff:
    #: a kernel that hung once gets a cheaper budget the next time)
    budget_backoff: float = 0.5
    #: deterministic fault-seed shift per retry
    seed_step: int = 1009

    def budget_for(self, watchdog, attempt: int):
        """The (possibly backed-off) watchdog config for ``attempt``."""
        if watchdog is None or attempt == 0:
            return watchdog
        return watchdog.scaled(self.budget_backoff ** attempt)

    def seed_delta(self, attempt: int) -> int:
        return self.seed_step * attempt


@dataclass
class AttemptRecord:
    """One failed attempt at running a kernel."""

    attempt: int
    error_type: str
    message: str
    seed: Optional[int] = None
    max_cycles: Optional[float] = None
    fault_log: List[Dict[str, Any]] = field(default_factory=list)
    fault_log_text: Optional[str] = None
    snapshot: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "error_type": self.error_type,
            "message": self.message,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
            "fault_log": list(self.fault_log),
            "fault_log_text": self.fault_log_text,
            "snapshot": self.snapshot,
        }

    @classmethod
    def from_error(cls, attempt: int, exc: BaseException,
                   injector=None, watchdog=None) -> "AttemptRecord":
        record = cls(
            attempt=attempt,
            error_type=type(exc).__name__,
            message=str(exc),
            seed=None if injector is None else injector.spec.seed,
            max_cycles=None if watchdog is None else watchdog.max_cycles,
        )
        if injector is not None:
            record.fault_log = injector.log_dicts()
            record.fault_log_text = injector.format_log()
        if isinstance(exc, SimulationHangError) and exc.snapshot is not None:
            record.snapshot = exc.snapshot.to_dict()
        return record


@dataclass
class KernelFailure:
    """A kernel that exhausted its retries: the degraded row's payload."""

    name: str
    error_type: str
    message: str
    attempts: List[AttemptRecord] = field(default_factory=list)

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def failure_log(self) -> List[Dict[str, Any]]:
        """Structured log of every attempt (what the report embeds)."""
        return [a.to_dict() for a in self.attempts]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "failed": True,
            "name": self.name,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.failure_log,
        }

    def format(self) -> str:
        lines = [
            f"DEGRADED {self.name}: {self.error_type} after "
            f"{self.n_attempts} attempt(s): {self.message}"
        ]
        for a in self.attempts:
            lines.append(
                f"  attempt {a.attempt}: {a.error_type} "
                f"(seed={a.seed}, max_cycles={a.max_cycles}) — {a.message}"
            )
            if a.fault_log_text:
                lines.extend("    " + l for l in a.fault_log_text.splitlines())
        return "\n".join(lines)

    @classmethod
    def from_attempts(cls, name: str,
                      attempts: List[AttemptRecord]) -> "KernelFailure":
        last = attempts[-1]
        return cls(
            name=name,
            error_type=last.error_type,
            message=last.message,
            attempts=attempts,
        )
