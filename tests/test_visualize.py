"""Tests for the ASCII timeline renderer."""

from repro.kernels import make_fig1_workload
from repro.vgiw import VGIWCore, render_timeline


def _profiled(n=256):
    kernel, mem, params = make_fig1_workload(n_threads=n)
    return VGIWCore().run(kernel, mem, params, n, profile=True)


def test_timeline_has_one_row_per_block():
    result = _profiled()
    text = render_timeline(result)
    blocks = {rec.block for rec in result.block_profile}
    for name in blocks:
        assert name in text
    assert "#" in text
    assert f"{result.cycles:.0f} cycles" in text


def test_timeline_requires_profile():
    kernel, mem, params = make_fig1_workload(n_threads=64)
    result = VGIWCore().run(kernel, mem, params, 64)  # no profile
    assert "profile=True" in render_timeline(result)


def test_timeline_rows_are_time_ordered():
    result = _profiled()
    text = render_timeline(result)
    lines = [l for l in text.splitlines() if "|" in l]
    # The entry block's bar must start before the exit block's.
    entry_line = next(l for l in lines if l.startswith("entry"))
    exit_block = result.block_profile[-1].block
    exit_line = next(l for l in lines if l.startswith(exit_block))
    assert entry_line.index("#") < exit_line.index("#")


def test_timeline_truncates_many_blocks():
    result = _profiled()
    text = render_timeline(result, max_rows=2)
    assert "more blocks not shown" in text
