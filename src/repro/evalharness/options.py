"""``RunOptions``: one value object for every execution option.

``run_kernel`` grew to a 13-keyword signature and ``run_suite`` to a
15-keyword one; every new capability (watchdogs, fault campaigns,
tracing, compile caching, journals, checkpoints) widened both, and the
new :mod:`repro.serve` request types would have had to mirror the whole
sprawl a third time.  :class:`RunOptions` consolidates the execution
options into a single frozen dataclass that ``run_kernel``,
``run_suite``, the ``repro.evalharness`` CLI, the run journal, and the
serving layer all consume::

    from repro.evalharness import RunOptions, run_kernel

    opts = RunOptions(scale="tiny", verify=True)
    run = run_kernel("nn/euclid", options=opts)

Legacy keyword call sites keep working through one documented adapter:
``run_kernel(name, scale, verify=..., watchdog=..., ...)`` is folded
into a ``RunOptions`` by :meth:`RunOptions.from_kwargs` and emits a
single ``DeprecationWarning`` naming the keywords used (``scale`` —
positional or keyword — stays first-class and does not warn).

Field groups
------------

========================  ==============================================
workload                  ``scale``
correctness               ``verify`` (golden-interpreter check),
                          ``optimize`` (per-launch optimisation pipeline)
architecture              ``vgiw_config`` / ``fermi_config`` /
                          ``sgmf_config``
resilience                ``watchdog``, ``retry``, ``isolate``,
                          ``faults`` (single-run injector),
                          ``inject`` (per-kernel suite campaigns),
                          ``timeout`` (host-seconds wall-clock budget)
observability             ``tracer``, ``metrics``, ``trace_path``
compilation               ``cache``, ``cache_dir``
crash safety              ``journal``, ``resume``,
                          ``checkpoint_every``, ``checkpoint_dir``
parallelism               ``jobs``
========================  ==============================================

Suite-only fields (``retry``, ``isolate``, ``inject``, ``trace_path``,
``journal``, ``resume``, ``jobs``) are ignored by ``run_kernel``; the
legacy adapter still rejects them there (they were never accepted), so
no call site silently changes meaning.

The class is frozen: derive variants with :meth:`replace`
(``opts.replace(scale="medium")``).  :meth:`fingerprint` returns a
stable content key over the *pure* fields — the batching scheduler in
:mod:`repro.serve` uses it to decide which requests may share one
execution.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace as _dc_replace
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["RunOptions"]

#: Legacy keywords ``run_kernel`` historically accepted (beyond scale).
KERNEL_KWARGS: Tuple[str, ...] = (
    "verify", "optimize", "vgiw_config", "fermi_config", "sgmf_config",
    "watchdog", "faults", "tracer", "metrics", "cache",
    "checkpoint_every", "checkpoint_dir",
)

#: Legacy keywords ``run_suite`` historically accepted (beyond scale).
SUITE_KWARGS: Tuple[str, ...] = (
    "verify", "isolate", "watchdog", "retry", "inject", "tracer",
    "metrics", "jobs", "cache", "cache_dir", "trace_path", "journal",
    "resume", "timeout", "checkpoint_every", "checkpoint_dir",
)


@dataclass(frozen=True)
class RunOptions:
    """Frozen bundle of every execution option (see module docstring)."""

    # -- workload ------------------------------------------------------
    scale: str = "small"
    # -- correctness ---------------------------------------------------
    verify: bool = True
    optimize: bool = True
    # -- architecture configs ------------------------------------------
    vgiw_config: Optional[Any] = None
    fermi_config: Optional[Any] = None
    sgmf_config: Optional[Any] = None
    # -- resilience ----------------------------------------------------
    watchdog: Optional[Any] = None
    retry: Optional[Any] = None
    isolate: bool = True
    faults: Optional[Any] = None
    inject: Optional[Mapping[str, Any]] = None
    timeout: Optional[float] = None
    # -- observability -------------------------------------------------
    tracer: Optional[Any] = None
    metrics: Optional[Any] = None
    trace_path: Optional[str] = None
    # -- compilation ---------------------------------------------------
    cache: Optional[Any] = None
    cache_dir: Optional[str] = None
    # -- crash safety --------------------------------------------------
    journal: Optional[str] = None
    resume: bool = False
    checkpoint_every: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    # -- parallelism ---------------------------------------------------
    jobs: int = 1

    # -- construction --------------------------------------------------
    @classmethod
    def from_kwargs(cls, _warn: bool = True, _allowed: Optional[Tuple[str, ...]] = None,
                    **kwargs: Any) -> "RunOptions":
        """Fold a legacy keyword call into a :class:`RunOptions`.

        This is *the* adapter behind the deprecated ``run_kernel`` /
        ``run_suite`` keyword surface: unknown names raise ``TypeError``
        (exactly as the old signatures did), and any accepted legacy
        keyword emits one ``DeprecationWarning`` listing the names used.
        ``scale`` is exempt — it remains first-class.  Pass
        ``_warn=False`` for internal, non-deprecated construction.
        """
        allowed = set(_allowed if _allowed is not None
                      else tuple(f.name for f in fields(cls)))
        allowed.add("scale")
        unknown = sorted(set(kwargs) - allowed)
        if unknown:
            raise TypeError(
                f"unexpected keyword argument(s): {', '.join(unknown)}"
            )
        legacy = sorted(set(kwargs) - {"scale"})
        if legacy and _warn:
            warnings.warn(
                f"passing execution options as keywords "
                f"({', '.join(legacy)}) is deprecated; construct a "
                f"repro.evalharness.RunOptions and pass options=...",
                DeprecationWarning, stacklevel=3,
            )
        return cls(**kwargs)

    def to_kwargs(self, include_defaults: bool = False) -> Dict[str, Any]:
        """The options as the historical keyword mapping.

        By default only non-default fields are emitted, so the result
        round-trips through :meth:`from_kwargs` and reads like the
        minimal legacy call.  ``include_defaults=True`` emits every
        field.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if include_defaults or value != f.default:
                out[f.name] = value
        return out

    def replace(self, **changes: Any) -> "RunOptions":
        """A copy with ``changes`` applied (the class is frozen)."""
        return _dc_replace(self, **changes)

    # -- identity ------------------------------------------------------
    #: fields that carry live, process-local objects; excluded from the
    #: fingerprint and forbidden in repro.serve submissions (the service
    #: owns its own registries and caches).
    LIVE_FIELDS: Tuple[str, ...] = ("tracer", "metrics", "cache", "faults")

    def fingerprint(self) -> str:
        """Stable content key over the pure (value-like) fields.

        Two options objects with equal fingerprints request the same
        execution semantics: same scale, verification, optimisation,
        architecture configs, watchdog/retry/fault campaign, and
        timeout.  Reporting/persistence knobs that cannot change a
        result (``trace_path``, ``journal``, ``resume``, ``jobs``,
        ``cache_dir``, checkpoints) are excluded, as are the live-object
        fields.  :mod:`repro.serve` batches requests whose kernel and
        fingerprint match.
        """
        skip = set(self.LIVE_FIELDS) | {
            "trace_path", "journal", "resume", "jobs", "cache_dir",
            "checkpoint_every", "checkpoint_dir",
        }
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self) if f.name not in skip
        ]
        return "|".join(parts)

    def summary(self) -> Dict[str, Any]:
        """Small, JSON-able description of the non-default fields.

        Scalar fields are emitted verbatim; object-valued fields
        (configs, watchdog, live registries) as their ``repr``.  The
        run journal stamps this into its header line so a resumed
        sweep's options are greppable on disk.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value == f.default:
                continue
            if isinstance(value, (str, int, float, bool)) or value is None:
                out[f.name] = value
            else:
                out[f.name] = repr(value)
        return out

    def live_fields_set(self) -> Tuple[str, ...]:
        """Names of :data:`LIVE_FIELDS` that are non-``None`` here."""
        return tuple(n for n in self.LIVE_FIELDS
                     if getattr(self, n) is not None)
