"""SGMF whole-kernel mapping.

SGMF (Voitsechov & Etsion, ISCA 2014) statically maps the *entire*
kernel's control and dataflow graph onto the MT-CGRF: every block's
subgraph is resident at once, live values are wired directly between
subgraphs (no LVC), block terminators become steer nodes, and only the
kernel entry has a thread initiator.  Consequently (paper §1–§2):

* a kernel whose merged graph needs more units of some kind than the
  fabric provides simply cannot run (``SGMFUnmappableError``) — this is
  why the paper's Figure 8/11 comparison covers only a subset of the
  Rodinia kernels; and
* every control path is resident, so threads whose control flow
  bypasses a block still pump one (predicated, useless) token through
  each of its nodes — the utilisation loss VGIW eliminates.

This module builds the per-block subgraphs in "wire" mode (live-value
and non-entry initiator nodes become pseudo wires occupying no units),
checks capacity, and places as many replicas of the merged graph as fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.arch.config import FabricSpec, UnitKind
from repro.compiler.dfg import BlockDFG, NodeKind, build_block_dfg
from repro.compiler.livevalues import allocate_live_values
from repro.compiler.placement import Fabric, PlacedReplica, _place_one
from repro.compiler.schedule import BlockSchedule, schedule_blocks
from repro.ir.kernel import Kernel
from repro.resilience.errors import MappingError


class SGMFUnmappableError(MappingError):
    """The kernel's CDFG exceeds the MT-CGRF capacity (paper §5: the
    SGMF comparison "is thus based on the subset of kernels that can be
    mapped to the SGMF cores")."""


@dataclass
class SGMFMapping:
    """A whole-kernel configuration: all blocks resident simultaneously."""

    kernel: Kernel
    schedule: BlockSchedule
    dfgs: Dict[str, BlockDFG]
    #: replica -> block name -> placement
    replicas: List[Dict[str, PlacedReplica]]
    demand: Dict[UnitKind, int]

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)


def build_sgmf_dfgs(kernel: Kernel) -> Dict[str, BlockDFG]:
    """Per-block subgraphs in wire mode (no LVC, single initiator)."""
    lv_map = allocate_live_values(kernel)
    dfgs: Dict[str, BlockDFG] = {}
    for name, block in kernel.blocks.items():
        dfg = build_block_dfg(
            kernel,
            block,
            lv_map.fetches[name],
            lv_map.spills[name],
            lv_map.ids,
        )
        for node in dfg.nodes:
            if node.kind in (NodeKind.LVLOAD, NodeKind.LVSTORE):
                node.pseudo = True  # direct fabric wire, not an LVU
            elif node.kind is NodeKind.INIT and name != kernel.entry:
                node.pseudo = True  # thread arrival wired from the steer
        dfgs[name] = dfg
    return dfgs


def kernel_demand(dfgs: Dict[str, BlockDFG]) -> Dict[UnitKind, int]:
    """Unit demand of the merged whole-kernel graph (one replica)."""
    demand: Dict[UnitKind, int] = {k: 0 for k in UnitKind}
    for dfg in dfgs.values():
        for kind, n in dfg.unit_demand().items():
            demand[kind] += n
    return demand


def map_kernel(
    kernel: Kernel,
    spec: FabricSpec = None,
    replica_cap: int = 8,
) -> SGMFMapping:
    """Map the whole kernel onto the fabric or raise
    :class:`SGMFUnmappableError`."""
    spec = spec or FabricSpec()
    dfgs = build_sgmf_dfgs(kernel)
    demand = kernel_demand(dfgs)

    n_replicas = replica_cap
    for kind, need in demand.items():
        if need == 0:
            continue
        n_replicas = min(n_replicas, spec.counts.get(kind, 0) // need)
    if n_replicas < 1:
        over = {
            kind.value: (need, spec.counts.get(kind, 0))
            for kind, need in demand.items()
            if need > spec.counts.get(kind, 0)
        }
        raise SGMFUnmappableError(
            f"kernel {kernel.name} does not fit the SGMF fabric: "
            f"demand vs capacity {over}"
        )

    fabric = Fabric(spec)
    free = {k: list(v) for k, v in fabric.by_kind.items()}
    schedule = schedule_blocks(kernel)
    replicas: List[Dict[str, PlacedReplica]] = []
    for _ in range(n_replicas):
        placed: Dict[str, PlacedReplica] = {}
        for name in schedule.order:
            placed[name] = _place_one(dfgs[name], fabric, free, improve_passes=0)
        replicas.append(placed)

    return SGMFMapping(
        kernel=kernel,
        schedule=schedule,
        dfgs=dfgs,
        replicas=replicas,
        demand=demand,
    )
