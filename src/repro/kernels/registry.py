"""Benchmark registry: the paper's Table 2 as code.

``TABLE2`` lists every application/kernel the paper evaluates, with its
domain, description, and the basic-block count the paper reports.
``make_workload(name, scale)`` instantiates any of them; ``all_names()``
is the canonical evaluation order used by every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.kernels import (
    backprop,
    bfs,
    cfd,
    gaussian,
    hotspot,
    kmeans,
    lavamd,
    lud,
    nn,
    nw,
    particlefilter,
    pathfinder,
    srad,
    streamcluster,
)
from repro.kernels.base import Workload


@dataclass(frozen=True)
class BenchmarkEntry:
    """One row of the paper's Table 2."""

    name: str            # registry key, e.g. "bfs/Kernel"
    app: str             # application name as in Table 2
    domain: str          # application domain as in Table 2
    description: str     # one-line description as in Table 2
    paper_blocks: int    # (#basic blocks) from Table 2
    factory: Callable[[str], Workload]


TABLE2: List[BenchmarkEntry] = [
    BenchmarkEntry("bfs/Kernel", "BFS", "Graph Algorithms",
                   "Breadth-first search", 8, bfs.make_kernel1_workload),
    BenchmarkEntry("bfs/Kernel2", "BFS", "Graph Algorithms",
                   "Breadth-first search", 3, bfs.make_kernel2_workload),
    BenchmarkEntry("kmeans/invert_mapping", "KMEANS", "Data Mining",
                   "Clustering algorithm", 3, kmeans.make_workload),
    BenchmarkEntry("cfd/compute_step_factor", "CFD", "Fluid Dynamics",
                   "Computational fluid dynamics solver", 2,
                   cfd.make_step_factor_workload),
    BenchmarkEntry("cfd/initialize_variables", "CFD", "Fluid Dynamics",
                   "Computational fluid dynamics solver", 1,
                   cfd.make_initialize_workload),
    BenchmarkEntry("cfd/time_step", "CFD", "Fluid Dynamics",
                   "Computational fluid dynamics solver", 1,
                   cfd.make_time_step_workload),
    BenchmarkEntry("cfd/compute_flux", "CFD", "Fluid Dynamics",
                   "Computational fluid dynamics solver", 12,
                   cfd.make_compute_flux_workload),
    BenchmarkEntry("lud/lud_internal", "LUD", "Linear Algebra",
                   "Matrix decomposition", 3, lud.make_internal_workload),
    BenchmarkEntry("lud/lud_diagonal", "LUD", "Linear Algebra",
                   "Matrix decomposition", 11, lud.make_diagonal_workload),
    BenchmarkEntry("lud/lud_perimeter", "LUD", "Linear Algebra",
                   "Matrix decomposition", 22, lud.make_perimeter_workload),
    BenchmarkEntry("gaussian/Fan1", "GE", "Linear Algebra",
                   "Gaussian elimination", 2, gaussian.make_fan1_workload),
    BenchmarkEntry("gaussian/Fan2", "GE", "Linear Algebra",
                   "Gaussian elimination", 5, gaussian.make_fan2_workload),
    BenchmarkEntry("hotspot/hotspot_kernel", "HOTSPOT", "Physics Simulation",
                   "Thermal simulation tool", 27, hotspot.make_workload),
    BenchmarkEntry("lavamd/kernel_gpu_cuda", "LAVAMD", "Molecular Dynamics",
                   "Calculation of particle position", 21,
                   lavamd.make_workload),
    BenchmarkEntry("nn/euclid", "NN", "Data Mining",
                   "K nearest neighbors", 2, nn.make_workload),
    BenchmarkEntry("particlefilter/normalize_weights", "PF", "Medical Imaging",
                   "Particle filter (target estimator)", 5,
                   particlefilter.make_workload),
    BenchmarkEntry("backprop/adjust_weights", "BPNN", "Pattern Recognition",
                   "Training of a neural network", 3,
                   backprop.make_adjust_weights_workload),
    BenchmarkEntry("backprop/layerforward", "BPNN", "Pattern Recognition",
                   "Training of a neural network", 20,
                   backprop.make_layerforward_workload),
    BenchmarkEntry("nw/needle_cuda_shared_1", "NW", "Bioinformatics",
                   "Comparing biological sequences", 13,
                   nw.make_needle1_workload),
    BenchmarkEntry("nw/needle_cuda_shared_2", "NW", "Bioinformatics",
                   "Comparing biological sequences", 13,
                   nw.make_needle2_workload),
    BenchmarkEntry("streamcluster/compute_cost", "SM", "Data Mining",
                   "Clustering algorithm", 6, streamcluster.make_workload),
]

#: Extra Rodinia workloads beyond the paper's Table 2 (excluded from the
#: paper-reproduction figures, included in tests and characterisation).
EXTRAS: List[BenchmarkEntry] = [
    BenchmarkEntry("srad/srad_kernel", "SRAD", "Image Processing",
                   "Speckle reducing anisotropic diffusion (extra)", 0,
                   srad.make_workload),
    BenchmarkEntry("pathfinder/dynproc_kernel", "PATHFINDER",
                   "Grid Traversal", "Dynamic programming (extra)", 0,
                   pathfinder.make_workload),
]

_BY_NAME: Dict[str, BenchmarkEntry] = {e.name: e for e in TABLE2 + EXTRAS}


def all_names(include_extras: bool = False) -> List[str]:
    """Registry keys in canonical evaluation order."""
    entries = TABLE2 + EXTRAS if include_extras else TABLE2
    return [e.name for e in entries]


def entry(name: str) -> BenchmarkEntry:
    return _BY_NAME[name]


def make_workload(name: str, scale: str = "small") -> Workload:
    """Instantiate a workload by its registry key."""
    return _BY_NAME[name].factory(scale)
