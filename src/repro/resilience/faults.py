"""Deterministic, seeded fault injection for the simulators.

The engine exists to *prove* the resilience machinery works: an injected
fault must be caught either by the forward-progress watchdog (hangs) or
by the interpreter-verification path (silent data corruption) — never by
luck.  Supported fault kinds:

``token_corrupt``
    Transient bit-flip of a token value leaving a functional unit
    (caught by memory verification against the interpreter).
``mem_drop``
    A memory response never returns: the access completes at
    ``time + drop_stall_cycles``, which stalls the consuming thread past
    any reasonable watchdog budget (caught by the watchdog).
``lvc_corrupt``
    A live-value-cache line returns a corrupted word on an LVU load
    (caught by verification).
``stuck_at``
    A stuck-at-``payload`` physical unit: every token produced by the
    targeted unit is forced to the stuck value (caught by verification;
    models a hard PE fault).
``abort``
    Raise :class:`~repro.resilience.errors.FaultInjectedError` outright
    (models a hard crash; proves the suite isolates even non-simulation
    failures).

Determinism: all randomness comes from one ``random.Random(seed)``
consumed in simulation order, and the simulators themselves are
deterministic, so two runs with the same spec produce **byte-identical**
failure logs (asserted in ``tests/test_resilience.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Union

from repro.resilience.errors import FaultInjectedError

FAULT_KINDS = ("token_corrupt", "mem_drop", "lvc_corrupt", "stuck_at",
               "abort")

#: cycles a dropped memory response is pushed into the future; large
#: enough that any armed watchdog budget trips first.
DROP_STALL_CYCLES = 1e9


@dataclass(frozen=True)
class FaultSpec:
    """One fault-injection campaign (deterministic given ``seed``)."""

    kind: str
    seed: int = 0
    #: per-eligible-event probability for the transient kinds
    rate: float = 0.002
    #: victim unit id for ``stuck_at`` (``None`` = first unit observed)
    unit: Optional[int] = None
    #: stuck value for ``stuck_at``
    payload: Union[int, float] = 0
    #: eligible-event ordinal at which ``abort`` fires
    abort_after: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick one of {FAULT_KINDS}"
            )

    def reseeded(self, delta: int) -> "FaultSpec":
        """Derive the deterministic retry spec (seed shifted by ``delta``)."""
        return replace(self, seed=self.seed + delta)

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Parse ``kind[:seed[:rate]]`` (the CLI ``--inject`` syntax)."""
        parts = text.split(":")
        kind = parts[0]
        seed = int(parts[1]) if len(parts) > 1 and parts[1] else 0
        rate = float(parts[2]) if len(parts) > 2 and parts[2] else 0.002
        return FaultSpec(kind=kind, seed=seed, rate=rate)


@dataclass
class FaultLogEntry:
    """One injected fault, structured for reports and JSON archives."""

    ordinal: int
    kind: str
    site: str
    cycle: float
    event: int          # eligible-event index at the hook
    before: str
    after: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ordinal": self.ordinal, "kind": self.kind, "site": self.site,
            "cycle": self.cycle, "event": self.event,
            "before": self.before, "after": self.after,
        }

    def format(self) -> str:
        return (
            f"#{self.ordinal} {self.kind} @ {self.site} "
            f"cycle={self.cycle:.3f} event={self.event} "
            f"{self.before} -> {self.after}"
        )


class FaultInjector:
    """Stateful injector threaded through one simulator run.

    One injector instance is good for **one** run: it owns the RNG
    stream and the log.  ``run_suite`` builds a fresh injector (with a
    deterministically derived seed) for every attempt.
    """

    def __init__(self, spec: FaultSpec,
                 drop_stall_cycles: float = DROP_STALL_CYCLES):
        self.spec = spec
        self.drop_stall_cycles = drop_stall_cycles
        self._rng = random.Random(spec.seed)
        self._events: Dict[str, int] = {}  # eligible events seen per hook
        self.log: List[FaultLogEntry] = []
        self._stuck_unit: Optional[int] = spec.unit

    # -- bookkeeping ----------------------------------------------------
    def _bump(self, hook: str) -> int:
        n = self._events.get(hook, 0)
        self._events[hook] = n + 1
        return n

    def _record(self, kind: str, site: str, cycle: float, event: int,
                before: Any, after: Any) -> None:
        self.log.append(FaultLogEntry(
            ordinal=len(self.log), kind=kind, site=site, cycle=cycle,
            event=event, before=repr(before), after=repr(after),
        ))

    @property
    def faults_injected(self) -> int:
        return len(self.log)

    def format_log(self) -> str:
        """Deterministic text rendering (byte-identical per seed)."""
        header = (
            f"fault log: kind={self.spec.kind} seed={self.spec.seed} "
            f"rate={self.spec.rate!r} injected={len(self.log)}"
        )
        return "\n".join([header] + [e.format() for e in self.log])

    def log_dicts(self) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self.log]

    # -- value mutation -------------------------------------------------
    def _mutate(self, value):
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            flipped = value ^ (1 << self._rng.randrange(16))
            return flipped if flipped != value else value + 1
        return float(value) + (1.0 + self._rng.random() * 1e3) * (
            1.0 if self._rng.random() < 0.5 else -1.0
        )

    # -- hooks (called by the simulators) -------------------------------
    def corrupt_token(self, site: str, uid: int, tid: int, cycle: float,
                      value):
        """OP-node output hook: transient corruption or a stuck-at PE."""
        kind = self.spec.kind
        if kind == "stuck_at":
            if self._stuck_unit is None:
                self._stuck_unit = uid  # first unit observed is the victim
            if uid == self._stuck_unit:
                event = self._bump("token")
                stuck = (
                    float(self.spec.payload)
                    if isinstance(value, float) else int(self.spec.payload)
                )
                if stuck != value:
                    self._record("stuck_at", f"{site}/unit{uid}", cycle,
                                 event, value, stuck)
                return stuck
            return value
        if kind == "token_corrupt":
            event = self._bump("token")
            if self._rng.random() < self.spec.rate:
                mutated = self._mutate(value)
                self._record("token_corrupt", f"{site}/t{tid}", cycle,
                             event, value, mutated)
                return mutated
        return value

    def corrupt_lv(self, lv_id: int, tid: int, cycle: float, value):
        """LVU-load hook: a corrupted live-value-cache line."""
        if self.spec.kind != "lvc_corrupt":
            return value
        event = self._bump("lv")
        if self._rng.random() < self.spec.rate:
            mutated = self._mutate(value)
            self._record("lvc_corrupt", f"lv{lv_id}/t{tid}", cycle,
                         event, value, mutated)
            return mutated
        return value

    def drop_response(self, site: str, addr: int, cycle: float) -> bool:
        """Memory-access hook: ``True`` = this response never returns."""
        if self.spec.kind != "mem_drop":
            return False
        event = self._bump("mem")
        if self._rng.random() < self.spec.rate:
            self._record("mem_drop", f"{site}/0x{addr:x}", cycle,
                         event, "response", "dropped")
            return True
        return False

    def maybe_abort(self, site: str, cycle: float) -> None:
        """Crash hook: raise once the configured ordinal is reached."""
        if self.spec.kind != "abort":
            return
        event = self._bump("abort")
        if event >= self.spec.abort_after:
            self._record("abort", site, cycle, event, "running", "aborted")
            raise FaultInjectedError(
                f"injected abort at {site}",
                site=site, cycle=round(cycle, 3), seed=self.spec.seed,
            )
