"""Warp state and per-lane functional execution.

A warp holds 32 lanes' architectural register state and executes one IR
instruction at a time under an active-lane mask.  The evaluation reuses
the exact :data:`repro.ir.instr.EVAL` semantics of the interpreter and
the MT-CGRF executor, so all machines are functionally identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.interp.interpreter import _coerce
from repro.ir.instr import EVAL, Instr, Op, TermKind, Terminator
from repro.ir.types import Imm, Reg, TID_REG, is_param_reg, PARAM_PREFIX
from repro.memory.image import MemoryImage
from repro.simt.simtstack import EXIT

Number = Union[int, float, bool]


@dataclass
class LaneMemOp:
    """One lane's memory operation (for the coalescer)."""

    lane: int
    word_addr: int


class Warp:
    """32 data-parallel lanes executing in lockstep under a mask."""

    def __init__(self, warp_id: int, base_tid: int, n_lanes: int,
                 valid_lanes: int, params: Dict[str, Number],
                 memory: MemoryImage):
        self.warp_id = warp_id
        self.base_tid = base_tid
        self.n_lanes = n_lanes
        #: lanes that correspond to real threads (last warp may be partial)
        self.valid_mask = (1 << valid_lanes) - 1
        self.params = params
        self.memory = memory
        self._regs: Dict[str, List[Number]] = {}

    # ------------------------------------------------------------------
    def _read(self, operand, lane: int) -> Number:
        if isinstance(operand, Imm):
            return operand.value
        if operand == TID_REG:
            return self.base_tid + lane
        if is_param_reg(operand):
            return self.params[operand.name[len(PARAM_PREFIX):]]
        return self._regs[operand.name][lane]

    def _write(self, reg: str, lane: int, value: Number) -> None:
        lanes = self._regs.setdefault(reg, [0] * self.n_lanes)
        lanes[lane] = value

    @staticmethod
    def lanes_of(mask: int):
        lane = 0
        while mask:
            if mask & 1:
                yield lane
            mask >>= 1
            lane += 1

    # ------------------------------------------------------------------
    def exec_instr(self, instr: Instr, mask: int) -> List[LaneMemOp]:
        """Execute one instruction on all lanes in ``mask``.

        Returns the lane memory operations (empty for non-memory ops) so
        the SM can coalesce and time them.
        """
        mem_ops: List[LaneMemOp] = []
        if instr.op is Op.LOAD:
            for lane in self.lanes_of(mask):
                addr = int(self._read(instr.srcs[0], lane))
                self._write(
                    instr.dst, lane, _coerce(self.memory.read(addr), instr.dtype)
                )
                mem_ops.append(LaneMemOp(lane, addr))
        elif instr.op is Op.STORE:
            for lane in self.lanes_of(mask):
                addr = int(self._read(instr.srcs[0], lane))
                self.memory.write(addr, self._read(instr.srcs[1], lane))
                mem_ops.append(LaneMemOp(lane, addr))
        else:
            fn = EVAL[instr.op]
            for lane in self.lanes_of(mask):
                args = [self._read(s, lane) for s in instr.srcs]
                self._write(instr.dst, lane, _coerce(fn(*args), instr.dtype))
        return mem_ops

    def exec_terminator(self, term: Terminator, mask: int) -> Dict[str, int]:
        """Resolve the block terminator per lane; returns target -> mask."""
        if term.kind is TermKind.RET:
            return {EXIT: mask}
        if term.kind is TermKind.JMP:
            return {term.true_target: mask}
        targets: Dict[str, int] = {}
        for lane in self.lanes_of(mask):
            taken = bool(self._read(term.cond, lane))
            target = term.true_target if taken else term.false_target
            targets[target] = targets.get(target, 0) | (1 << lane)
        return targets
