"""Warp state and per-lane functional execution.

A warp holds 32 lanes' architectural register state and executes one IR
instruction at a time under an active-lane mask.  The evaluation reuses
the exact :data:`repro.ir.instr.EVAL` semantics of the interpreter and
the MT-CGRF executor, so all machines are functionally identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.interp.interpreter import _coerce
from repro.ir.instr import EVAL, Instr, Op, TermKind, Terminator
from repro.ir.types import DType, Imm, Reg, TID_REG, is_param_reg, PARAM_PREFIX
from repro.memory.image import MemoryImage
from repro.simt.simtstack import EXIT

Number = Union[int, float, bool]

# Prepared-operand modes (see :func:`prepare_instr`).
_SRC_CONST = 0   # payload is the value itself (Imm or launch param)
_SRC_REG = 1     # payload is the register name
_SRC_TID = 2     # payload unused; value = base_tid + lane

#: mask -> tuple of active lane indices.  Warp masks repeat heavily
#: within (and across) kernels, so the decode is memoised.  Bounded so a
#: pathological mask sequence cannot grow it without limit.
_LANES_CACHE: Dict[int, tuple] = {}
_LANES_CACHE_CAP = 1 << 16


def _lanes_tuple(mask: int) -> tuple:
    lanes = _LANES_CACHE.get(mask)
    if lanes is None:
        lanes = tuple(Warp.lanes_of(mask))
        if len(_LANES_CACHE) < _LANES_CACHE_CAP:
            _LANES_CACHE[mask] = lanes
    return lanes


def prepare_instr(instr: Instr, params: Dict[str, Number]):
    """Precompile ``instr`` into a flat row for :meth:`Warp.exec_prepared`.

    Launch parameters are uniform across the launch, so parameter reads
    are folded into constants here (the SM builds one row per static
    instruction, once per kernel run).  Row layouts::

        (0, asrc, dst, dt)            LOAD
        (1, asrc, vsrc)               STORE
        (2, fn, srcs, dst, dt)        everything else

    where each source is a ``(mode, payload)`` pair (const value /
    register name / thread id) and ``dt`` selects the result coercion
    (1 = int, 2 = float, 0 = bool) — exactly the semantics of
    :meth:`Warp.exec_instr`, minus the per-lane operand dispatch.
    """
    def prep(operand):
        if isinstance(operand, Imm):
            return (_SRC_CONST, operand.value)
        if operand == TID_REG:
            return (_SRC_TID, 0)
        if is_param_reg(operand):
            return (_SRC_CONST, params[operand.name[len(PARAM_PREFIX):]])
        return (_SRC_REG, operand.name)

    dt = (1 if instr.dtype is DType.INT
          else 2 if instr.dtype is DType.FLOAT else 0)
    if instr.op is Op.LOAD:
        return (0, prep(instr.srcs[0]), instr.dst, dt)
    if instr.op is Op.STORE:
        return (1, prep(instr.srcs[0]), prep(instr.srcs[1]))
    return (2, EVAL[instr.op], tuple(prep(s) for s in instr.srcs),
            instr.dst, dt)


@dataclass
class LaneMemOp:
    """One lane's memory operation (for the coalescer)."""

    lane: int
    word_addr: int


class Warp:
    """32 data-parallel lanes executing in lockstep under a mask."""

    def __init__(self, warp_id: int, base_tid: int, n_lanes: int,
                 valid_lanes: int, params: Dict[str, Number],
                 memory: MemoryImage):
        self.warp_id = warp_id
        self.base_tid = base_tid
        self.n_lanes = n_lanes
        #: lanes that correspond to real threads (last warp may be partial)
        self.valid_mask = (1 << valid_lanes) - 1
        self.params = params
        self.memory = memory
        self._regs: Dict[str, List[Number]] = {}

    # ------------------------------------------------------------------
    def _read(self, operand, lane: int) -> Number:
        if isinstance(operand, Imm):
            return operand.value
        if operand == TID_REG:
            return self.base_tid + lane
        if is_param_reg(operand):
            return self.params[operand.name[len(PARAM_PREFIX):]]
        return self._regs[operand.name][lane]

    def _write(self, reg: str, lane: int, value: Number) -> None:
        lanes = self._regs.setdefault(reg, [0] * self.n_lanes)
        lanes[lane] = value

    @staticmethod
    def lanes_of(mask: int):
        lane = 0
        while mask:
            if mask & 1:
                yield lane
            mask >>= 1
            lane += 1

    # ------------------------------------------------------------------
    def exec_instr(self, instr: Instr, mask: int) -> List[LaneMemOp]:
        """Execute one instruction on all lanes in ``mask``.

        Returns the lane memory operations (empty for non-memory ops) so
        the SM can coalesce and time them.
        """
        mem_ops: List[LaneMemOp] = []
        if instr.op is Op.LOAD:
            for lane in self.lanes_of(mask):
                addr = int(self._read(instr.srcs[0], lane))
                self._write(
                    instr.dst, lane, _coerce(self.memory.read(addr), instr.dtype)
                )
                mem_ops.append(LaneMemOp(lane, addr))
        elif instr.op is Op.STORE:
            for lane in self.lanes_of(mask):
                addr = int(self._read(instr.srcs[0], lane))
                self.memory.write(addr, self._read(instr.srcs[1], lane))
                mem_ops.append(LaneMemOp(lane, addr))
        else:
            fn = EVAL[instr.op]
            for lane in self.lanes_of(mask):
                args = [self._read(s, lane) for s in instr.srcs]
                self._write(instr.dst, lane, _coerce(fn(*args), instr.dtype))
        return mem_ops

    def exec_prepared(self, prep, mask: int) -> List[LaneMemOp]:
        """Execute one :func:`prepare_instr` row on all lanes in ``mask``.

        Functionally identical to :meth:`exec_instr` on the original
        instruction; only the host-side per-lane operand dispatch is
        precompiled away.
        """
        mem_ops: List[LaneMemOp] = []
        regs = self._regs
        base = self.base_tid
        tag = prep[0]
        if tag == 2:  # ALU / SFU
            _, fn, srcs, dst, dt = prep
            dlanes = regs.get(dst)
            if dlanes is None:
                dlanes = regs[dst] = [0] * self.n_lanes
            for lane in _lanes_tuple(mask):
                args = [
                    regs[p][lane] if m == _SRC_REG
                    else p if m == _SRC_CONST else base + lane
                    for m, p in srcs
                ]
                v = fn(*args)
                dlanes[lane] = (int(v) if dt == 1
                                else float(v) if dt == 2 else bool(v))
        elif tag == 0:  # LOAD
            _, (am, ap), dst, dt = prep
            dlanes = regs.get(dst)
            if dlanes is None:
                dlanes = regs[dst] = [0] * self.n_lanes
            mem_read = self.memory.read
            for lane in _lanes_tuple(mask):
                addr = int(regs[ap][lane] if am == _SRC_REG
                           else ap if am == _SRC_CONST else base + lane)
                v = mem_read(addr)
                dlanes[lane] = (int(v) if dt == 1
                                else float(v) if dt == 2 else bool(v))
                mem_ops.append(LaneMemOp(lane, addr))
        else:  # STORE
            _, (am, ap), (vm, vp) = prep
            mem_write = self.memory.write
            for lane in _lanes_tuple(mask):
                addr = int(regs[ap][lane] if am == _SRC_REG
                           else ap if am == _SRC_CONST else base + lane)
                mem_write(addr,
                          regs[vp][lane] if vm == _SRC_REG
                          else vp if vm == _SRC_CONST else base + lane)
                mem_ops.append(LaneMemOp(lane, addr))
        return mem_ops

    def exec_terminator(self, term: Terminator, mask: int) -> Dict[str, int]:
        """Resolve the block terminator per lane; returns target -> mask."""
        if term.kind is TermKind.RET:
            return {EXIT: mask}
        if term.kind is TermKind.JMP:
            return {term.true_target: mask}
        targets: Dict[str, int] = {}
        for lane in self.lanes_of(mask):
            taken = bool(self._read(term.cond, lane))
            target = term.true_target if taken else term.false_target
            targets[target] = targets.get(target, 0) | (1 << lane)
        return targets
