"""Concurrent-safety tests for the batched execution service.

The contracts under test (``docs/serving.md``):

* N seeded clients against a 2-worker pool get results byte-identical
  (per-request digests) to serial ``run_kernel`` calls;
* overload surfaces as *typed responses* — ``"rejected"``
  (queue full / unknown kernel / live options) and ``"deadline"`` —
  never as exceptions;
* a worker SIGKILLed mid-batch is respawned and the in-flight requests
  requeued and completed (same recovery contract as ``run_suite
  --jobs``).
"""

import os

import pytest

from repro.evalharness import RunOptions, run_kernel
from repro.evalharness.runner import KILL_ENV
from repro.obs import Metrics, Tracer
from repro.serve import (
    BatchScheduler,
    ExecutionService,
    LoadGen,
    SubmitRequest,
    result_digest,
)

TINY = RunOptions(scale="tiny")
KERNELS = ["nn/euclid", "gaussian/Fan1", "hotspot/hotspot_kernel"]


# ----------------------------------------------------------------------
# Determinism: serve == serial, request by request
# ----------------------------------------------------------------------
def test_seeded_clients_match_serial_digests():
    """Closed-loop seeded clients vs a 2-worker pool: every response's
    digest equals the serial ``run_kernel`` digest for that request."""
    gen = LoadGen(KERNELS, n_requests=10, options=TINY, seed=42,
                  mode="closed", concurrency=4)
    serial = {
        name: result_digest(run_kernel(name, options=TINY))
        for name in {req.kernel for req in gen.requests()}
    }
    with ExecutionService(workers=2) as svc:
        report = gen.run(svc)
    assert report.n_requests == 10
    assert len(report.responses) == 10
    for req, resp in zip(gen.requests(), report.responses):
        assert resp.status == "ok"
        assert resp.kernel == req.kernel
        assert resp.digest == serial[req.kernel]


def test_batched_requests_share_one_execution():
    """Identical requests coalesce: one batch, one digest fanned out."""
    with ExecutionService(workers=1) as svc:
        tickets = [svc.submit(SubmitRequest("nn/euclid", TINY))
                   for _ in range(5)]
        responses = [svc.wait(t, timeout=120) for t in tickets]
    digests = {r.digest for r in responses}
    assert all(r.status == "ok" for r in responses)
    assert len(digests) == 1
    # At least the tail of the stream coalesced behind the first
    # dispatch; the whole stream forms at most 2 batches.
    assert len({r.batch_id for r in responses}) <= 2
    assert max(r.batch_size for r in responses) >= 2


def test_incompatible_options_do_not_batch():
    """Different fingerprints (verify on/off) never share a batch."""
    with ExecutionService(workers=1) as svc:
        slow = svc.submit(SubmitRequest("nn/euclid",
                                        RunOptions(scale="small")))
        a = svc.submit(SubmitRequest("nn/euclid", TINY))
        b = svc.submit(SubmitRequest("nn/euclid",
                                     TINY.replace(verify=False)))
        ra = svc.wait(a, timeout=120)
        rb = svc.wait(b, timeout=120)
        svc.wait(slow, timeout=120)
    assert ra.status == rb.status == "ok"
    assert ra.batch_id != rb.batch_id


# ----------------------------------------------------------------------
# Typed degraded responses, not exceptions
# ----------------------------------------------------------------------
def test_unknown_kernel_is_rejected_not_raised():
    with ExecutionService(workers=1) as svc:
        resp = svc.wait(svc.submit(SubmitRequest("no/such", TINY)),
                        timeout=30)
    assert resp.status == "rejected"
    assert resp.error_type == "UnknownKernelError"
    assert "no/such" in resp.error


def test_live_options_fields_are_rejected():
    polluted = TINY.replace(metrics=Metrics())
    with ExecutionService(workers=1) as svc:
        resp = svc.wait(svc.submit(SubmitRequest("nn/euclid", polluted)),
                        timeout=30)
    assert resp.status == "rejected"
    assert resp.error_type == "LiveOptionsError"
    assert "metrics" in resp.error


def test_queue_full_rejects_with_typed_response():
    """With a 1-deep queue and a busy worker, overload is shed as
    ``QueueFullError`` responses while admitted requests complete."""
    with ExecutionService(workers=1, queue_limit=1) as svc:
        blocker = svc.submit(SubmitRequest("nn/euclid",
                                           RunOptions(scale="small")))
        tickets = [svc.submit(SubmitRequest(k, TINY)) for k in KERNELS]
        responses = [svc.wait(t, timeout=120) for t in tickets]
        svc.wait(blocker, timeout=120)
    rejected = [r for r in responses if r.status == "rejected"]
    assert rejected, "expected at least one queue-full rejection"
    assert all(r.error_type == "QueueFullError" for r in rejected)
    assert all(r.status == "ok"
               for r in responses if r.status != "rejected")


def test_deadline_expired_in_queue_is_shed():
    """A request whose deadline passes while queued behind a slow batch
    is dropped with status ``"deadline"`` — without executing."""
    with ExecutionService(workers=1) as svc:
        blocker = svc.submit(SubmitRequest("nn/euclid",
                                           RunOptions(scale="small")))
        doomed = svc.submit(SubmitRequest("gaussian/Fan1", TINY,
                                          deadline_s=0.0))
        resp = svc.wait(doomed, timeout=120)
        svc.wait(blocker, timeout=120)
    assert resp.status == "deadline"
    assert resp.error_type == "DeadlineExceeded"
    assert resp.digest is None


# ----------------------------------------------------------------------
# Worker-crash recovery
# ----------------------------------------------------------------------
def test_worker_sigkill_mid_batch_recovers(tmp_path, monkeypatch):
    """A SIGKILLed worker breaks the pool; the service respawns it and
    requeues the in-flight batch, which then completes ok."""
    token = tmp_path / "kill.token"
    token.write_text("armed")
    monkeypatch.setenv(KILL_ENV, f"nn/euclid:{token}")
    want = result_digest(run_kernel("nn/euclid", options=TINY))
    with ExecutionService(workers=2, crash_budget=2) as svc:
        tickets = [svc.submit(SubmitRequest("nn/euclid", TINY))
                   for _ in range(4)]
        responses = [svc.wait(t, timeout=300) for t in tickets]
        crashes = svc._worker_crashes
    assert crashes >= 1
    assert not os.path.exists(token)  # the kill latch fired exactly once
    assert all(r.status == "ok" for r in responses)
    assert all(r.digest == want for r in responses)


# ----------------------------------------------------------------------
# Scheduler unit behaviour + observability wiring
# ----------------------------------------------------------------------
def test_scheduler_rejects_bad_policy():
    with pytest.raises(ValueError, match="fifo"):
        BatchScheduler(policy="lifo")


def test_sjf_dispatches_learned_short_kernel_first():
    from repro.serve.scheduler import QueueEntry

    sched = BatchScheduler(policy="sjf", queue_limit=8)

    def entry(key):
        return QueueEntry(request=None, ticket=None, key=key, opts=None,
                          enqueued_mono=0.0, deadline_mono=None,
                          crash_budget=1)

    sched.observe(("slow", "f"), 10.0)
    sched.observe(("fast", "f"), 0.1)
    assert sched.offer(entry(("slow", "f")))
    assert sched.offer(entry(("fast", "f")))
    batch = sched.next_batch(timeout=0)
    assert batch.key == ("fast", "f")


def test_serve_metrics_scope_and_trace_spans():
    metrics = Metrics()
    tracer = Tracer()
    with ExecutionService(workers=1, metrics=metrics,
                          tracer=tracer) as svc:
        resp = svc.wait(svc.submit(SubmitRequest("nn/euclid", TINY)),
                        timeout=120)
    assert resp.status == "ok"
    assert metrics.value("serve/requests_submitted") == 1
    assert metrics.value("serve/requests_ok") == 1
    assert metrics.value("serve/batches") == 1
    hist = metrics.histograms["serve/execute_s"]
    assert hist.count == 1 and hist.total > 0
    spans = [e for e in tracer.events if e.cat == "serve"]
    assert len(spans) == 1
    assert "nn/euclid" in spans[0].name

    stats = svc.stats()
    assert stats["requests"]["ok"] == 1
    for component in ("queue_s", "compile_s", "execute_s", "total_s"):
        assert stats["latency"][component]["count"] == 1


# ----------------------------------------------------------------------
# Bounded retention + lazy deadline shedding
# ----------------------------------------------------------------------
def test_wait_consumes_response_and_result_peeks():
    """``wait`` picks the response up exactly once; ``result`` is a
    non-consuming peek before and returns ``None`` after."""
    with ExecutionService(workers=1) as svc:
        ticket = svc.submit(SubmitRequest("nn/euclid", TINY))
        resp = svc.wait(ticket, timeout=120)
        assert resp.status == "ok"
        assert svc.result(ticket) is None  # consumed by the wait
        with pytest.raises(KeyError, match="picked up"):
            svc.wait(ticket, timeout=1)


def test_unclaimed_responses_evict_past_retention_limit():
    """Responses nobody waits for age out LRU-first at the retention
    cap instead of accumulating forever."""
    import time

    with ExecutionService(workers=1, retention_limit=2) as svc:
        tickets = [svc.submit(SubmitRequest("nn/euclid", TINY))
                   for _ in range(5)]
        deadline = time.monotonic() + 120
        while (svc.stats()["requests"]["ok"] < 5
               and time.monotonic() < deadline):
            time.sleep(0.05)
        stats = svc.stats()
        assert stats["retention"] == {"limit": 2, "held": 2,
                                      "evicted": 3}
        assert svc.result(tickets[0]) is None  # evicted, not held
        assert svc.result(tickets[-1]).status == "ok"
        with pytest.raises(KeyError, match="evicted"):
            svc.wait(tickets[0], timeout=1)


def test_dispatcher_sheds_expired_request_without_a_waiter():
    """Deadline shedding is lazy but *self-propelled*: an expired
    queued request lands its ``"deadline"`` response within a
    dispatcher beat even when nobody is waiting on the ticket."""
    import time

    with ExecutionService(workers=1) as svc:
        blocker = svc.submit(SubmitRequest("nn/euclid",
                                           RunOptions(scale="small")))
        doomed = svc.submit(SubmitRequest("gaussian/Fan1", TINY,
                                          deadline_s=0.05))
        deadline = time.monotonic() + 10
        resp = None
        while resp is None and time.monotonic() < deadline:
            time.sleep(0.05)
            resp = svc.result(doomed)  # peek — never wait
        assert resp is not None and resp.status == "deadline"
        svc.wait(blocker, timeout=120)
