"""Differential kernel fuzzing for the four execution substrates.

Every number the evaluation harness produces is only meaningful if the
reference interpreter, the Fermi SM, the SGMF core and the VGIW MT-CGRF
implement *identical* kernel semantics.  This package systematically
hunts for silent divergences:

* :mod:`repro.fuzz.generate` — a seeded structured kernel generator
  that emits arbitrary-but-valid CFGs through the
  :class:`~repro.ir.builder.KernelBuilder` DSL (nested divergent
  branches, data-dependent loop trip counts, mixed int/float
  arithmetic, coalesced and scattered memory traffic) together with a
  deterministic memory image and launch parameters;
* :mod:`repro.fuzz.oracle` — the differential oracle: run a case on
  the interpreter (golden) and every registered engine, compare final
  memory images word-for-word, and classify mismatches (wrong value /
  missing store / compile failure / watchdog hang / miscompile);
* :mod:`repro.fuzz.reduce` — a delta-debugging reducer that shrinks a
  failing kernel to a minimal reproducer while re-checking the oracle;
* :mod:`repro.fuzz.corpus` — ``.kir`` reproducer files (kernel text
  via :mod:`repro.ir.text` plus launch directives) committed under
  ``tests/corpus/`` so found bugs stay fixed;
* :mod:`repro.fuzz.campaign` — campaign orchestration with
  ``--jobs`` process fan-out and deterministic summary JSON, exposed
  as ``python -m repro.fuzz``.

See ``docs/fuzzing.md`` for the generator grammar, the oracle's
classification lattice, the reducer algorithm, and a triage guide.
"""

from repro.fuzz.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.fuzz.corpus import (
    ReplayCase,
    load_corpus_case,
    load_corpus_dir,
    save_corpus_case,
)
from repro.fuzz.generate import FuzzCase, GenConfig, generate_case
from repro.fuzz.oracle import (
    CaseReport,
    EngineOutcome,
    ImageDiff,
    compare_images,
    run_case,
)
from repro.fuzz.reduce import reduce_case, reduce_kernel

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CaseReport",
    "EngineOutcome",
    "FuzzCase",
    "GenConfig",
    "ImageDiff",
    "ReplayCase",
    "compare_images",
    "generate_case",
    "load_corpus_case",
    "load_corpus_dir",
    "reduce_case",
    "reduce_kernel",
    "run_campaign",
    "run_case",
    "save_corpus_case",
]
