"""CLI: drive the execution service with a seeded load generator.

Usage::

    python -m repro.serve [--workers N] [--requests N] [--seed S]
                          [--scale tiny|small|medium]
                          [--kernels name,name,...]
                          [--policy fifo|sjf]
                          [--mode closed|open]
                          [--concurrency N] [--rate R]
                          [--queue-limit N] [--deadline SECONDS]
                          [--timeout SECONDS] [--cache-dir DIR]
                          [--result-cache DIR]
                          [--validate-cache-fraction F]
                          [--trace FILE] [--report FILE]
                          [--golden-out FILE]

Runs an in-process :class:`~repro.serve.ExecutionService` (a pool of
``--workers`` persistent worker processes), submits ``--requests``
seeded requests in the chosen loop mode, and prints a JSON
throughput/latency report (service stats + per-component p50/p99).

``--result-cache DIR`` arms the content-addressed result cache:
repeat submissions of an already-served (kernel, options, input) are
answered at admission with status ``"cached"`` — same digest, no queue
time, no execution.  ``--validate-cache-fraction F`` re-executes a
seeded fraction of those hits and reports digest divergence as a typed
degraded response.  See ``docs/serving.md``.

``--golden-out FILE`` additionally writes the per-request identity rows
(``index, kernel, status, digest`` — timing-independent and
deterministic for a given seed) as sorted JSON; the CI smoke job
compares this byte-for-byte against a committed golden.  ``--trace``
exports the service's per-request Chrome-trace spans for Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.evalharness.options import RunOptions
from repro.kernels.registry import all_names
from repro.obs import Metrics, Tracer
from repro.serve.loadgen import LoadGen
from repro.serve.scheduler import SCHED_POLICIES
from repro.serve.service import ExecutionService


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Load-test the batched execution service.")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker-process pool width (default 2)")
    parser.add_argument("--requests", type=int, default=20,
                        help="number of requests to submit (default 20)")
    parser.add_argument("--seed", type=int, default=0,
                        help="load-generator seed (kernel choice)")
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium"),
                        help="workload scale for every request "
                             "(default tiny)")
    parser.add_argument("--kernels", default=None,
                        help="comma-separated candidate kernels "
                             "(default: the full Table 2 suite)")
    parser.add_argument("--policy", default="fifo",
                        choices=SCHED_POLICIES,
                        help="batch dispatch policy (default fifo)")
    parser.add_argument("--mode", default="closed",
                        choices=("closed", "open"),
                        help="closed loop (concurrency-bound) or open "
                             "loop (rate-bound)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="closed-loop client count (default 4)")
    parser.add_argument("--rate", type=float, default=10.0,
                        help="open-loop arrival rate, requests/s")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="admission bound; past it requests are "
                             "rejected (default 64)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-request deadline; still-queued "
                             "requests are shed when it expires")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per execution attempt")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent compile-cache tier shared by "
                             "the workers")
    parser.add_argument("--result-cache", default=None, metavar="DIR",
                        help="content-addressed result-cache directory: "
                             "repeat submissions are answered at "
                             "admission with status 'cached'")
    parser.add_argument("--validate-cache-fraction", type=float,
                        default=0.0, metavar="FRACTION",
                        help="re-execute this (seeded, deterministic) "
                             "fraction of result-cache hits and report "
                             "digest divergence as degraded (default 0)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write the per-request Chrome-trace spans "
                             "to FILE (Perfetto / chrome://tracing)")
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="write the JSON report to FILE instead of "
                             "stdout")
    parser.add_argument("--golden-out", default=None, metavar="FILE",
                        help="write deterministic per-request identity "
                             "rows (kernel/status/digest) for CI "
                             "comparison")
    args = parser.parse_args(argv)

    if not 0.0 <= args.validate_cache_fraction <= 1.0:
        parser.error("--validate-cache-fraction must be in [0, 1], got "
                     f"{args.validate_cache_fraction}")

    if args.kernels:
        kernels = [n.strip() for n in args.kernels.split(",") if n.strip()]
        known = set(all_names(include_extras=True))
        unknown = [n for n in kernels if n not in known]
        if unknown:
            parser.error(f"unknown kernels: {unknown}")
    else:
        kernels = all_names()

    tracer = Tracer() if args.trace else None
    metrics = Metrics()
    options = RunOptions(scale=args.scale, timeout=args.timeout)
    loadgen = LoadGen(kernels, args.requests, options=options,
                      seed=args.seed, mode=args.mode,
                      concurrency=args.concurrency, rate=args.rate,
                      deadline_s=args.deadline)
    service = ExecutionService(
        workers=args.workers, policy=args.policy,
        queue_limit=args.queue_limit,
        cache_dir=args.cache_dir, tracer=tracer,
        metrics=metrics,
        result_cache_dir=args.result_cache,
        validate_cache_fraction=args.validate_cache_fraction)
    with service:
        report = loadgen.run(service)

    doc = {"load": report.as_dict(), "service": service.stats()}
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.report}", file=sys.stderr)
    else:
        print(text)

    if args.golden_out:
        rows = [dict(row, index=i)
                for i, row in enumerate(report.identities())]
        with open(args.golden_out, "w") as fh:
            json.dump(rows, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.golden_out}", file=sys.stderr)

    if args.trace:
        tracer.dump(args.trace)
        print(f"wrote {args.trace}", file=sys.stderr)

    counts = report.status_counts
    bad = counts.get("degraded", 0)
    print(f"# {report.n_requests} requests, "
          f"{report.throughput_rps:.2f} req/s, statuses: {counts}",
          file=sys.stderr)
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
