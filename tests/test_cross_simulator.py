"""Cross-simulator functional equivalence over the whole suite.

For every Table 2 workload (tiny scale), the final memory image of each
timing simulator must equal the reference interpreter's bit for bit.
This is the repository's strongest end-to-end invariant: the VGIW core
(CVT scheduling, LVC spills, replication, partitioning), the Fermi SM
(SIMT stack, coalescing) and the SGMF core (whole-kernel mapping,
predication) all execute the same semantics.

Divergences are reported through the fuzzing oracle's word-level
comparator (:func:`repro.fuzz.compare_images`), so a failure names the
first diverging address, the diverged word count, sample values, and
whether the words were never written at all (missing stores) —
instead of a bare boolean from ``np.array_equal``.  The comparator is
also NaN-aware: a correctly reproduced NaN store is a match, not a
diff.
"""

import pytest

from repro.compiler.optimize import optimize_kernel
from repro.fuzz import compare_images
from repro.interp import interpret
from repro.kernels.registry import all_names, make_workload
from repro.sgmf import SGMFCore, SGMFUnmappableError
from repro.simt import FermiSM
from repro.vgiw import VGIWCore


def _golden(workload, kernel):
    mem = workload.memory.clone()
    interpret(kernel, mem, workload.params, workload.n_threads)
    return mem


def _assert_images_match(golden, mem, initial, arch, name):
    diff = compare_images(golden.data, mem.data, initial.data)
    assert diff.equal, (
        f"{arch} diverges from the interpreter on {name}: "
        f"{diff.describe()}"
    )


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_vgiw_matches_interpreter(name):
    w = make_workload(name, "tiny")
    k = optimize_kernel(w.kernel)
    golden = _golden(w, k)
    initial = w.memory.clone()
    mem = w.memory.clone()
    result = VGIWCore().run(k, mem, w.params, w.n_threads)
    _assert_images_match(golden, mem, initial, "VGIW", name)
    assert result.cycles > 0
    assert result.bbs.reconfigurations >= result.n_blocks - 1


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_fermi_matches_interpreter(name):
    w = make_workload(name, "tiny")
    k = optimize_kernel(w.kernel)
    golden = _golden(w, k)
    initial = w.memory.clone()
    mem = w.memory.clone()
    result = FermiSM().run(k, mem, w.params, w.n_threads)
    _assert_images_match(golden, mem, initial, "Fermi", name)
    assert result.sm.instructions_issued > 0


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_sgmf_matches_interpreter_or_is_unmappable(name):
    w = make_workload(name, "tiny")
    k = optimize_kernel(w.kernel)
    golden = _golden(w, k)
    initial = w.memory.clone()
    mem = w.memory.clone()
    try:
        result = SGMFCore().run(k, mem, w.params, w.n_threads)
    except SGMFUnmappableError:
        return  # the capacity limit is itself paper behaviour
    _assert_images_match(golden, mem, initial, "SGMF", name)
    assert result.n_replicas >= 1
