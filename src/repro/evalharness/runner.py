"""Evaluation runner: one workload across the three architectures.

``run_kernel`` executes a Table 2 workload on Fermi, VGIW and (when the
kernel fits its fabric) SGMF, verifies every machine's final memory
against the reference interpreter, attaches energy breakdowns, and
returns a :class:`KernelRun`.  ``run_suite`` does that for the whole
registry and is the single data source for every figure's rows.

Fault isolation
---------------

A ten-minute sweep must not die because one kernel hangs or corrupts
memory.  ``run_suite`` therefore wraps every kernel in a try/except with
a bounded, deterministic retry (see
:class:`repro.resilience.RetryPolicy`): each retry gets a re-seeded
fault injector and a backed-off watchdog budget.  Kernels that exhaust
their retries become *degraded rows*: the returned :class:`SuiteResult`
still behaves as the historical ``Dict[str, KernelRun]`` over the
healthy runs, but additionally carries ``.failures`` — a mapping of
kernel name to :class:`repro.resilience.KernelFailure` with every
attempt's error, fault log, and (for hangs) the watchdog's diagnostic
snapshot.  ``docs/resilience.md`` documents the semantics.

Crash safety
------------

Fault isolation protects against *in-process* failures; three further
layers protect against the process-level ones (``docs/resilience.md``
§7):

* ``journal=PATH`` appends every completed per-kernel result to a
  durable JSONL journal (:mod:`repro.evalharness.journal`) the moment
  it lands; ``resume=True`` reloads it, skips the journaled kernels and
  reassembles a byte-identical report.
* the ``jobs > 1`` pool driver survives worker death (SIGKILL, OOM,
  segfault): it respawns the pool, requeues the kernels that were in
  flight under a bounded crash budget, and degrades the ones that keep
  killing workers with :class:`~repro.resilience.WorkerCrashError`.
* ``timeout=SECONDS`` arms a per-kernel wall-clock guard
  (:func:`~repro.resilience.wall_clock_limit`) that feeds the same
  retry/degraded-row machinery as the cycle watchdog, and
  ``checkpoint_every``/``checkpoint_dir`` persist periodic engine
  snapshots so a killed run leaves a restorable state behind.
"""

from __future__ import annotations

import os
import signal
from collections import deque
from collections.abc import Mapping
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.compiler.cache import CompileCache, cached_optimize_kernel
from repro.evalharness.journal import JournalEntry, RunJournal
from repro.evalharness.options import KERNEL_KWARGS, SUITE_KWARGS, RunOptions
from repro.evalharness.resultcache import ResultCache
from repro.interp import interpret
from repro.kernels.base import Workload
from repro.kernels.registry import all_names, make_workload
from repro.obs import Metrics, Tracer
from repro.power import (
    EnergyBreakdown,
    energy_fermi,
    energy_sgmf,
    energy_vgiw,
)
from repro.resilience import (
    AttemptRecord,
    FaultInjector,
    FaultSpec,
    KernelFailure,
    ReproError,
    RetryPolicy,
    WorkerCrashError,
    wall_clock_limit,
)
from repro.resilience.errors import (
    ResultCacheDivergenceError,
    SimulationHangError,
)
from repro.resilience.errors import VerificationError  # re-export (was local)
from repro.sgmf import SGMFCore, SGMFRunResult, SGMFUnmappableError
from repro.simt import FermiRunResult, FermiSM
from repro.vgiw import VGIWCore, VGIWRunResult

__all__ = [
    "KernelRun",
    "RunOptions",
    "SuiteResult",
    "VerificationError",
    "checkpoint_file_for",
    "run_kernel",
    "run_suite",
    "trace_file_for",
]

#: Test-only crash hook: ``"<kernel>:<token-file>"``.  A pool worker
#: assigned ``<kernel>`` consumes (unlinks) the token file and SIGKILLs
#: itself, so the crash fires exactly once and the requeued attempt
#: succeeds.  Shared by ``tests/test_crash_recovery.py`` and the CI
#: crash-recovery smoke job.
KILL_ENV = "REPRO_SUITE_KILL"


@dataclass
class KernelRun:
    """All measurements for one workload across the machines."""

    name: str
    app: str
    n_threads: int
    n_blocks: int
    fermi: FermiRunResult
    vgiw: VGIWRunResult
    sgmf: Optional[SGMFRunResult]  # None when unmappable
    fermi_energy: EnergyBreakdown
    vgiw_energy: EnergyBreakdown
    sgmf_energy: Optional[EnergyBreakdown]
    #: observability attachments (populated when run_kernel was given a
    #: tracer / metrics registry; see repro.obs)
    trace: Optional[Tracer] = None
    metrics: Optional[Metrics] = None

    @property
    def speedup_vs_fermi(self) -> float:
        return self.fermi.cycles / self.vgiw.cycles

    @property
    def speedup_vs_sgmf(self) -> Optional[float]:
        if self.sgmf is None:
            return None
        return self.sgmf.cycles / self.vgiw.cycles

    def efficiency_vs_fermi(self, level: str = "system") -> float:
        return getattr(self.fermi_energy, level) / getattr(self.vgiw_energy, level)

    def efficiency_vs_sgmf(self, level: str = "system") -> Optional[float]:
        if self.sgmf_energy is None:
            return None
        return getattr(self.sgmf_energy, level) / getattr(self.vgiw_energy, level)

    @property
    def sgmf_mappable(self) -> bool:
        return self.sgmf is not None


def checkpoint_file_for(checkpoint_dir: str, kernel_name: str,
                        engine: str, hang: bool = False) -> str:
    """Checkpoint path: ``DIR/<kernel>.<engine>.ckpt`` (slashes in the
    kernel name become underscores; hang post-mortems get
    ``.<engine>.hang.ckpt``)."""
    safe = kernel_name.replace("/", "_")
    suffix = "hang.ckpt" if hang else "ckpt"
    return os.path.join(checkpoint_dir, f"{safe}.{engine}.{suffix}")


def _checkpoint_sink(checkpoint_dir: Optional[str], kernel_name: str,
                     engine: str):
    """A checkpoint sink that persists each snapshot (atomically) to the
    kernel's per-engine checkpoint file, newest-wins."""
    if checkpoint_dir is None:
        return None
    path = checkpoint_file_for(checkpoint_dir, kernel_name, engine)
    return lambda snap: snap.save(path)


def _save_hang_snapshot(core, checkpoint_dir: Optional[str],
                        kernel_name: str, exc: SimulationHangError) -> None:
    """Best-effort post-mortem: persist the hung engine's full state.

    Only for watchdog-detected hangs — the engines guarantee their
    state dict sits at a consistent resume boundary when the watchdog
    fires.  A wall-clock ``SIGALRM`` can land mid-update, so that case
    keeps only the last periodic checkpoint.
    """
    if checkpoint_dir is None:
        return
    if exc.context.get("wall_clock_limit_s") is not None:
        return
    try:
        snap = core.snapshot()
        snap.save(checkpoint_file_for(
            checkpoint_dir, kernel_name, core.engine, hang=True))
    except Exception:  # noqa: BLE001 — diagnostics must not mask the hang
        pass


def _resolve_options(scale: Optional[str], options: Optional[RunOptions],
                     legacy: Dict[str, object],
                     allowed: tuple) -> RunOptions:
    """Shared front door of ``run_kernel`` / ``run_suite``.

    Exactly one of the two call styles is accepted: the consolidated
    ``options=RunOptions(...)`` object, or the historical keyword
    sprawl (folded through :meth:`RunOptions.from_kwargs`, which emits
    the ``DeprecationWarning``).  A positional/keyword ``scale`` stays
    first-class and composes with ``options`` only when it does not
    conflict.
    """
    if options is not None:
        if legacy:
            raise TypeError(
                "pass either options=RunOptions(...) or legacy keywords, "
                f"not both (got keywords: {', '.join(sorted(legacy))})"
            )
        if scale is not None and scale != options.scale:
            raise TypeError(
                f"scale={scale!r} conflicts with options.scale="
                f"{options.scale!r}; set it on the RunOptions"
            )
        return options
    if scale is not None:
        legacy = dict(legacy, scale=scale)
    return RunOptions.from_kwargs(_allowed=allowed, **legacy)


def run_kernel(
    name: str,
    scale: Optional[str] = None,
    options: Optional[RunOptions] = None,
    **legacy,
) -> KernelRun:
    """Run one registry workload on all three machines.

    The execution options travel in one :class:`RunOptions` value
    object (``options=``); the historical keyword surface (``verify``,
    ``optimize``, per-machine configs, ``watchdog``, ``faults``,
    ``tracer``/``metrics``, ``cache``, ``checkpoint_every``/
    ``checkpoint_dir``) keeps working through the documented
    deprecation adapter (:meth:`RunOptions.from_kwargs`) and emits a
    ``DeprecationWarning``; ``scale`` stays first-class.  See
    ``docs/api.md`` for the field-by-field reference.

    Option semantics: ``watchdog`` arms the forward-progress watchdog
    in every simulator; ``faults`` threads a (single-run) fault
    injector through them.  ``tracer`` / ``metrics`` (see
    :mod:`repro.obs`) are shared by the three machines — engines write
    to distinct trace ``pid`` lanes and metric scopes, so one export
    carries the whole cross-machine comparison.  ``cache`` (a
    :class:`repro.compiler.CompileCache`) memoises the per-kernel pure
    computations — the optimisation pipeline, VGIW place & route, the
    SGMF whole-kernel mapping, the Fermi CFG analyses — across runs
    (``run_suite`` threads one through the whole sweep; with no
    ``cache`` but a ``cache_dir`` a fresh disk-backed cache is built
    here).  ``timeout`` bounds the run in host wall-clock seconds.
    ``checkpoint_every`` arms periodic engine snapshots every N
    simulated cycles; with ``checkpoint_dir`` each engine's newest
    snapshot is persisted (atomically) to
    ``DIR/<kernel>.<engine>.ckpt``, and a watchdog-detected hang
    additionally saves a ``.hang.ckpt`` post-mortem (see
    ``docs/resilience.md`` §7).  Suite-only fields (``retry``,
    ``isolate``, ``inject``, ``jobs``, ``journal``/``resume``,
    ``trace_path``) are ignored here.  Everything defaults to off, so
    the measurement path is unchanged.
    """
    o = _resolve_options(scale, options, legacy, KERNEL_KWARGS)
    cache = o.cache
    if cache is None and o.cache_dir is not None:
        cache = CompileCache(o.cache_dir)
    rcache = _resolve_result_cache(o)
    # The result cache only short-circuits *pure* single runs: a
    # caller-supplied tracer/metrics registry expects to receive this
    # run's events, a fault injector deliberately perturbs it, and
    # checkpointing is about the execution, not the result.
    if (rcache is not None and o.tracer is None and o.metrics is None
            and o.faults is None and o.checkpoint_every is None):
        key = ResultCache.key_for(name, o)
        entry = rcache.get(key)
        if entry is not None:
            if rcache.should_validate(key, o.validate_cache_fraction,
                                      o.validate_cache_seed):
                with wall_clock_limit(o.timeout, sim="run_kernel",
                                      kernel=name):
                    fresh = _execute_kernel(name, o, cache)
                rcache.validate(entry, fresh)
            return entry.run
        with wall_clock_limit(o.timeout, sim="run_kernel", kernel=name):
            run = _execute_kernel(name, o, cache)
        rcache.put(key, name, run)
        return run
    with wall_clock_limit(o.timeout, sim="run_kernel", kernel=name):
        return _execute_kernel(name, o, cache)


def _resolve_result_cache(o: RunOptions) -> Optional[ResultCache]:
    """The run's :class:`ResultCache`, mirroring the compile-cache
    resolution: an explicit ``result_cache`` wins, else a fresh
    disk-backed one is built from ``result_cache_dir``, else none."""
    if o.result_cache is not None:
        return o.result_cache
    if o.result_cache_dir is not None:
        return ResultCache(o.result_cache_dir)
    return None


def _execute_kernel(name: str, o: RunOptions,
                    cache: Optional[CompileCache]) -> KernelRun:
    """The measurement path proper: one workload, three machines.

    Takes a fully-resolved :class:`RunOptions` (no adapter, no
    wall-clock guard — ``_run_one`` and ``repro.serve`` arm their own,
    per attempt)."""
    workload = make_workload(name, o.scale)
    tracer, metrics = o.tracer, o.metrics
    if o.optimize:
        kernel = cached_optimize_kernel(
            workload.kernel, params=workload.params, cache=cache
        )
        # SGMF's compiler must conserve fabric capacity, so it keeps
        # loops rolled; Fermi and VGIW get the fully optimised kernel.
        sgmf_kernel = cached_optimize_kernel(
            workload.kernel, params=workload.params, unroll=False,
            cache=cache,
        )
    else:
        kernel = sgmf_kernel = workload.kernel

    golden = None
    if o.verify:
        golden = workload.memory.clone()
        interpret(kernel, golden, workload.params, workload.n_threads)

    def check(mem, arch: str) -> None:
        if golden is not None and not np.array_equal(mem.data, golden.data):
            bad = int(np.count_nonzero(mem.data != golden.data))
            raise VerificationError(
                f"{arch} final memory diverges from the interpreter "
                f"for {name}",
                kernel=name, arch=arch, words_diverged=bad,
            )

    mem_f = workload.memory.clone()
    fermi_core = FermiSM(o.fermi_config)
    try:
        fermi = fermi_core.run(
            kernel, mem_f, workload.params, workload.n_threads,
            watchdog=o.watchdog, faults=o.faults, tracer=tracer,
            metrics=metrics, compile_cache=cache,
            checkpoint_every=o.checkpoint_every,
            checkpoint_sink=_checkpoint_sink(o.checkpoint_dir, name, "fermi"),
        )
    except SimulationHangError as exc:
        _save_hang_snapshot(fermi_core, o.checkpoint_dir, name, exc)
        raise
    check(mem_f, "Fermi")

    mem_v = workload.memory.clone()
    vgiw_core = VGIWCore(o.vgiw_config)
    try:
        vgiw = vgiw_core.run(
            kernel, mem_v, workload.params, workload.n_threads, profile=True,
            watchdog=o.watchdog, faults=o.faults, tracer=tracer,
            metrics=metrics, compile_cache=cache,
            checkpoint_every=o.checkpoint_every,
            checkpoint_sink=_checkpoint_sink(o.checkpoint_dir, name, "vgiw"),
        )
    except SimulationHangError as exc:
        _save_hang_snapshot(vgiw_core, o.checkpoint_dir, name, exc)
        raise
    check(mem_v, "VGIW")

    sgmf: Optional[SGMFRunResult] = None
    sgmf_bd: Optional[EnergyBreakdown] = None
    sgmf_core = SGMFCore(o.sgmf_config)
    try:
        mem_s = workload.memory.clone()
        sgmf = sgmf_core.run(
            sgmf_kernel, mem_s, workload.params, workload.n_threads,
            watchdog=o.watchdog, faults=o.faults, tracer=tracer,
            metrics=metrics, compile_cache=cache,
            checkpoint_every=o.checkpoint_every,
            checkpoint_sink=_checkpoint_sink(o.checkpoint_dir, name, "sgmf"),
        )
        check(mem_s, "SGMF")
        sgmf_bd = energy_sgmf(sgmf)
    except SGMFUnmappableError:
        pass
    except SimulationHangError as exc:
        _save_hang_snapshot(sgmf_core, o.checkpoint_dir, name, exc)
        raise

    return KernelRun(
        name=name,
        app=workload.app,
        n_threads=workload.n_threads,
        n_blocks=vgiw.n_blocks,
        fermi=fermi,
        vgiw=vgiw,
        sgmf=sgmf,
        fermi_energy=energy_fermi(fermi),
        vgiw_energy=energy_vgiw(vgiw),
        sgmf_energy=sgmf_bd,
        trace=tracer,
        metrics=metrics,
    )


class SuiteResult(Mapping):
    """Suite results plus degraded rows.

    Behaves exactly like the historical ``Dict[str, KernelRun]`` over
    the *healthy* runs (iteration, ``len``, ``[]``, ``.items()``, ...),
    so every experiment generator and archived analysis keeps working.
    Failed kernels live in ``.failures`` (name →
    :class:`~repro.resilience.KernelFailure`).
    """

    def __init__(self, runs: Dict[str, KernelRun],
                 failures: Optional[Dict[str, KernelFailure]] = None):
        self.runs: Dict[str, KernelRun] = dict(runs)
        self.failures: Dict[str, KernelFailure] = dict(failures or {})

    # -- Mapping protocol over the healthy runs -------------------------
    def __getitem__(self, name: str) -> KernelRun:
        return self.runs[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def __repr__(self) -> str:
        return (f"SuiteResult({len(self.runs)} ok, "
                f"{len(self.failures)} degraded)")

    # -- degraded-row accessors -----------------------------------------
    @property
    def ok(self) -> bool:
        """True when no kernel was degraded."""
        return not self.failures

    @property
    def degraded(self) -> List[str]:
        """Names of the kernels reported as degraded rows."""
        return sorted(self.failures)

    def failure_logs(self) -> Dict[str, List[dict]]:
        """Structured per-kernel failure logs (what the report embeds)."""
        return {name: f.failure_log for name, f in self.failures.items()}


def _run_one(
    name: str,
    opts: RunOptions,
    spec: Optional[FaultSpec],
    cache: Optional[CompileCache],
    rcache: Optional[ResultCache] = None,
):
    """One kernel of a sweep, with PR 1's retry/degraded-row machinery.

    ``opts`` is the sweep's resolved :class:`RunOptions` with the
    per-kernel tracer/metrics already substituted in (``opts.retry``
    must be materialised).  Returns ``(run, None)`` on success or
    ``(None, failure)`` when the kernel exhausted its retries.  With
    ``opts.isolate=False`` the first failure propagates (the historical
    behaviour).  ``opts.timeout`` bounds each attempt in host
    wall-clock seconds via :func:`~repro.resilience.wall_clock_limit`;
    the resulting ``SimulationHangError`` flows through the same retry
    machinery as a watchdog hang.  Shared verbatim by the serial loop,
    the ``--jobs`` worker, and the :mod:`repro.serve` execution pool so
    the paths cannot drift.

    ``rcache`` arms the result-cache short circuit: a hit returns the
    stored run (its attached per-kernel tracer/metrics replay the
    observability) without executing; a successful miss is stored.
    Kernels under a fault campaign (``spec`` / ``opts.faults``) and
    checkpointing runs bypass the cache — their executions are
    deliberately not pure functions of the key.  Only healthy runs are
    cached: degraded rows always re-execute.  A sampled fraction of
    hits (``opts.validate_cache_fraction``) is re-executed and compared
    against the cached digest; divergence raises
    :class:`~repro.resilience.ResultCacheDivergenceError` *out of* the
    retry machinery — it must abort the sweep, not degrade a row.
    """
    if (rcache is not None and spec is None and opts.faults is None
            and opts.checkpoint_every is None):
        key = ResultCache.key_for(
            name, opts, want_trace=opts.tracer is not None,
            want_metrics=opts.metrics is not None,
        )
        entry = rcache.get(key)
        if entry is not None:
            if rcache.should_validate(key, opts.validate_cache_fraction,
                                      opts.validate_cache_seed):
                fresh_run, _ = _run_one(name, opts, spec, cache)
                rcache.validate(entry, fresh_run)
            return entry.run, None
        run, failure = _run_one(name, opts, spec, cache)
        if failure is None and run is not None:
            rcache.put(key, name, run)
        return run, failure

    retry = opts.retry
    if not opts.isolate:
        injector = FaultInjector(spec) if spec is not None else None
        with wall_clock_limit(opts.timeout, sim="suite", kernel=name):
            run = _execute_kernel(name, opts.replace(faults=injector), cache)
        return run, None

    attempts: List[AttemptRecord] = []
    for attempt in range(max(1, retry.max_attempts)):
        injector = (
            FaultInjector(spec.reseeded(retry.seed_delta(attempt)))
            if spec is not None else None
        )
        wd = retry.budget_for(opts.watchdog, attempt)
        try:
            with wall_clock_limit(opts.timeout, sim="suite", kernel=name):
                run = _execute_kernel(
                    name, opts.replace(faults=injector, watchdog=wd), cache)
            return run, None
        except ReproError as exc:
            attempts.append(
                AttemptRecord.from_error(attempt, exc, injector, wd))
        except Exception as exc:  # noqa: BLE001 — isolation boundary
            # Anything non-ReproError is a harness bug, but the sweep
            # must still finish; record it as a degraded row too.
            attempts.append(
                AttemptRecord.from_error(attempt, exc, injector, wd))
    return None, KernelFailure.from_attempts(name, attempts)


def _maybe_kill_for_test(name: str) -> None:
    """Honour the :data:`KILL_ENV` crash hook (test/CI only).

    The token file is the once-latch: whichever worker unlinks it first
    dies; every later assignment of the same kernel runs normally.
    """
    spec = os.environ.get(KILL_ENV)
    if not spec:
        return
    target, _, token = spec.partition(":")
    if target != name or not token:
        return
    try:
        os.unlink(token)
    except OSError:
        return  # token already consumed — the retry must succeed
    os.kill(os.getpid(), signal.SIGKILL)


def _suite_worker(payload):
    """Process-pool worker: one kernel, fully isolated.

    Module top-level (picklable under every start method).  The worker
    builds its *own* tracer / metrics registry / compile cache — no
    state is shared with the parent (``opts`` arrives with the live
    fields stripped) — and ships them back with the result; the parent
    merges them in deterministic kernel order.  ``opts.cache_dir``
    gives the workers a shared persistent tier (the disk writes are
    atomic, so concurrent workers are safe).  The fault spec and
    watchdog config travel inside the payload, so a requeued or
    resumed kernel replays the exact same deterministic fault campaign.
    """
    (name, opts, spec, want_trace, want_metrics) = payload
    _maybe_kill_for_test(name)
    tracer = Tracer() if want_trace else None
    metrics = Metrics() if want_metrics else None
    cache = CompileCache(opts.cache_dir)
    rcache = (ResultCache(opts.result_cache_dir)
              if opts.result_cache_dir is not None else None)
    run, failure = _run_one(
        name, opts.replace(tracer=tracer, metrics=metrics), spec, cache,
        rcache,
    )
    # On a cache hit the stored run carries its own registries; ship
    # those so the parent merges the replayed streams, not empty ones.
    if run is not None:
        tracer, metrics = run.trace, run.metrics
    return (name, run, failure, tracer, metrics, cache.stats(),
            rcache.stats() if rcache is not None else None)


def trace_file_for(base: str, kernel_name: str) -> str:
    """Per-kernel trace path: ``report.json`` + ``nn/nearest`` →
    ``report.nn_nearest.json`` (slashes sanitised; documented in
    ``docs/observability.md``)."""
    safe = kernel_name.replace("/", "_")
    root, ext = os.path.splitext(base)
    if not ext:
        ext = ".json"
    return f"{root}.{safe}{ext}"


def _run_jobs(todo, jobs, isolate, retry, payload_for, record):
    """Crash-tolerant process-pool driver for ``run_suite(jobs > 1)``.

    At most ``jobs`` kernels are in flight at once.  When a worker dies
    hard (SIGKILL, OOM, segfault) the pool raises
    ``BrokenProcessPool`` for *every* in-flight future — the pool
    cannot say which kernel the dead worker held — so the driver blames
    all of them: each loses one unit of its crash budget
    (``retry.max_attempts`` units total) and is requeued; a kernel
    whose budget runs out becomes a degraded row carrying
    :class:`~repro.resilience.WorkerCrashError`.  The broken executor
    is discarded and a fresh one respawned.  Bounding the in-flight
    window to ``jobs`` bounds the collateral blame per crash.

    ``record(name, entry)`` fires the moment a kernel's result is
    final (completion order — that is what makes the journal durable);
    the caller reassembles the report in input order afterwards.
    """
    fresh: Dict[str, JournalEntry] = {}
    pending = deque(todo)
    budget: Dict[str, int] = {}
    crash_records: Dict[str, List[AttemptRecord]] = {}

    def finish(name, entry):
        fresh[name] = entry
        record(name, entry)

    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        in_flight: Dict[object, str] = {}
        while pending or in_flight:
            while pending and len(in_flight) < jobs:
                nxt = pending.popleft()
                in_flight[pool.submit(_suite_worker, payload_for(nxt))] = nxt
            done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
            crashed: List[str] = []
            for future in done:
                name = in_flight.pop(future)
                try:
                    (_, run, failure, wtracer, wmetrics,
                     wstats, wrstats) = future.result()
                except BrokenProcessPool:
                    crashed.append(name)
                except ResultCacheDivergenceError:
                    # Cache divergence is never a degraded row: every
                    # cached answer is suspect, so the sweep must die.
                    raise
                except Exception as exc:  # noqa: BLE001 — worker failed
                    if not isolate:
                        raise
                    finish(name, JournalEntry(
                        failure=KernelFailure.from_attempts(
                            name, [AttemptRecord.from_error(0, exc)])))
                else:
                    finish(name, JournalEntry(
                        run=run, failure=failure, tracer=wtracer,
                        metrics=wmetrics, cache_stats=wstats,
                        result_cache_stats=wrstats))
            if not crashed:
                continue
            # A worker died: the executor is broken, every future it
            # still held is poisoned, and no new work can be submitted.
            crashed.extend(in_flight.values())
            in_flight.clear()
            pool.shutdown(wait=False)
            if not isolate:
                raise WorkerCrashError(
                    "a worker process died during the sweep",
                    kernels=",".join(sorted(crashed)))
            pool = ProcessPoolExecutor(max_workers=jobs)
            for name in crashed:
                budget[name] = budget.get(
                    name, max(1, retry.max_attempts)) - 1
                records = crash_records.setdefault(name, [])
                records.append(AttemptRecord.from_error(
                    len(records),
                    WorkerCrashError(
                        "worker process died (SIGKILL/OOM/segfault) "
                        "while this kernel was in flight", kernel=name)))
                if budget[name] > 0:
                    pending.append(name)
                else:
                    finish(name, JournalEntry(
                        failure=KernelFailure.from_attempts(name, records)))
    finally:
        pool.shutdown(wait=False)
    return fresh


def run_suite(
    names: Optional[Iterable[str]] = None,
    scale: Optional[str] = None,
    options: Optional[RunOptions] = None,
    **legacy,
) -> SuiteResult:
    """Run the whole Table 2 suite (the data behind every figure).

    Execution options travel in one :class:`RunOptions` value object
    (``options=``); the historical keyword surface keeps working
    through the documented deprecation adapter
    (:meth:`RunOptions.from_kwargs`, which emits a
    ``DeprecationWarning``), and ``scale`` stays first-class.

    Options (``RunOptions`` fields / legacy keywords)
    -------------------------------------------------
    isolate:
        When True (default) a failing kernel is retried per ``retry``
        and, if still failing, reported as a degraded row instead of
        aborting the sweep.  When False the first failure propagates
        (the historical behaviour).
    watchdog:
        Optional :class:`~repro.resilience.WatchdogConfig` armed in all
        three simulators for every kernel.
    retry:
        Bounded-retry policy; defaults to :class:`RetryPolicy()` (two
        attempts, halved watchdog budget, seed shifted by 1009).  Its
        ``max_attempts`` also bounds the worker-crash requeue budget
        under ``jobs > 1``.
    inject:
        Optional per-kernel fault campaigns: ``{name: FaultSpec}``.
        Kernels absent from the mapping run fault-free.
    tracer / metrics:
        Optional shared :class:`repro.obs.Tracer` /
        :class:`repro.obs.Metrics` threaded through every kernel on
        every machine (``--trace`` / ``--metrics`` on the CLI).  Under
        ``jobs > 1`` (and whenever a journal is armed) each kernel
        records into its own registry and the parent merges them back
        in kernel order, so the aggregate is independent of completion
        order.
    jobs:
        Process-pool width (``--jobs`` on the CLI).  ``1`` (default)
        runs serially in-process.  ``N > 1`` fans the kernels out to
        ``N`` worker processes; results are reassembled in the input
        name order, so reports are byte-identical to a serial sweep.
        Fault isolation still applies per kernel inside each worker —
        a degraded kernel in one worker never disturbs the others —
        and the driver additionally survives worker *death* (see
        :func:`_run_jobs`).
    cache / cache_dir:
        Compile memoisation (see :mod:`repro.compiler.cache`).  By
        default a fresh in-memory :class:`CompileCache` is created for
        the sweep; pass ``cache=`` to reuse one across sweeps or
        ``cache_dir=`` to add the persistent on-disk tier (shared by
        ``--jobs`` workers).  Hit/miss counters land in ``metrics``
        under the ``compile/`` scope.
    result_cache / result_cache_dir:
        Whole-run memoisation (``--result-cache DIR``; see
        :mod:`repro.evalharness.resultcache`).  A kernel whose content
        key — kernel IR hash, options fingerprint, input digest — was
        seen before returns the stored :class:`KernelRun` without
        executing; its per-kernel tracer/metrics replay exactly like a
        journal resume, so reports stay byte-identical to a cold sweep
        across ``--jobs`` too.  Kernels under a fault campaign bypass
        the cache, and only healthy runs are stored.  Counters land in
        ``metrics`` under the ``resultcache/`` scope.
    validate_cache_fraction / validate_cache_seed:
        Seeded trust-but-verify sampling for cache hits
        (``--validate-cache-fraction``): the selected fraction is
        re-executed and compared against the cached digest; any
        divergence raises
        :class:`~repro.resilience.ResultCacheDivergenceError` and
        aborts the sweep (never a degraded row).
    trace_path:
        Base path for per-kernel Chrome-trace files.  Each kernel gets
        its own tracer and its own file (``trace_file_for``:
        ``OUT.<kernel>.json``) so a multi-kernel sweep no longer
        overwrites one file per kernel.
    journal / resume:
        ``journal=PATH`` arms the durable run journal
        (:class:`repro.evalharness.journal.RunJournal`): every
        completed kernel is appended — atomically, fsync'd — the
        moment it finishes, in completion order.  ``resume=True``
        additionally loads an existing journal at ``PATH``, skips the
        kernels it already holds (replaying their runs, traces,
        metrics and cache counters), and runs only the rest; the final
        report is byte-identical to the uninterrupted sweep
        (``--journal`` / ``--resume`` on the CLI).
    timeout:
        Per-kernel wall-clock budget in host seconds (``--timeout``).
        Each attempt is bounded by
        :func:`~repro.resilience.wall_clock_limit`; a timed-out
        attempt raises ``SimulationHangError`` into the normal
        retry/degraded-row machinery.
    checkpoint_every / checkpoint_dir:
        Periodic engine snapshots every N simulated cycles, persisted
        per kernel and engine under ``checkpoint_dir``
        (``--checkpoint-every`` / ``--checkpoint-dir``; see
        ``docs/resilience.md`` §7).
    """
    o = _resolve_options(scale, options, legacy, SUITE_KWARGS)
    o = o.replace(retry=o.retry or RetryPolicy())
    names = list(names) if names is not None else all_names()
    inject = dict(o.inject or {})
    tracer, metrics = o.tracer, o.metrics
    cache = o.cache
    if cache is None:
        cache = CompileCache(o.cache_dir)
    rcache = _resolve_result_cache(o)
    if o.resume and o.journal is None:
        raise ValueError("run_suite(resume=True) requires journal=PATH")

    jnl: Optional[RunJournal] = None
    replayed: Dict[str, JournalEntry] = {}
    if o.journal is not None:
        jnl = (RunJournal.for_options(o.journal, o, resume=True) if o.resume
               else RunJournal.for_options(o.journal, o))
        replayed = {n: jnl.entries[n] for n in names if n in jnl.entries}
        jnl.flush()  # the header (plus replayed entries) lands up front
    todo = [n for n in names if n not in replayed]

    def record(name: str, entry: JournalEntry) -> None:
        if jnl is not None:
            jnl.record(name, entry)

    if o.jobs > 1:
        want_trace = o.trace_path is not None or tracer is not None
        want_metrics = metrics is not None
        # The payload options cross a process boundary: strip the live
        # parent-side objects (the worker builds its own registries;
        # workers share the result cache through its disk tier).
        wire_opts = o.replace(tracer=None, metrics=None, cache=None,
                              faults=None, result_cache=None)

        def payload_for(name: str):
            return (name, wire_opts, inject.get(name),
                    want_trace, want_metrics)

        fresh = _run_jobs(todo, o.jobs, o.isolate, o.retry, payload_for,
                          record)
    else:
        fresh = {}
        # With a journal or a result cache armed the serial path
        # mirrors the jobs-mode contract: per-kernel registries, merged
        # in name order at the end, so a resume (or a cache hit, which
        # replays the stored registries) reproduces identical
        # aggregate streams.
        per_kernel_obs = jnl is not None or rcache is not None
        for name in todo:
            if per_kernel_obs:
                ktracer = (Tracer() if (o.trace_path is not None
                                        or tracer is not None) else None)
                kmetrics = Metrics() if metrics is not None else None
            else:
                ktracer = Tracer() if o.trace_path is not None else tracer
                kmetrics = metrics
            run, failure = _run_one(
                name, o.replace(tracer=ktracer, metrics=kmetrics),
                inject.get(name), cache, rcache,
            )
            # A cache hit's run carries the registries recorded at
            # store time; on a miss run.trace/run.metrics *are*
            # ktracer/kmetrics, so this is the identity there.
            if run is not None:
                ktracer, kmetrics = run.trace, run.metrics
            entry = JournalEntry(run=run, failure=failure, tracer=ktracer,
                                 metrics=kmetrics)
            fresh[name] = entry
            record(name, entry)

    # -- assemble in *input* order (not completion order): the merged
    # metrics/trace streams and the report row order are then identical
    # to an uninterrupted serial sweep.
    runs: Dict[str, KernelRun] = {}
    failures: Dict[str, KernelFailure] = {}
    for name in names:
        entry = replayed.get(name)
        if entry is None:
            entry = fresh.get(name)
        if entry is None:
            continue  # unreachable: every todo kernel gets an entry
        if entry.failure is not None:
            failures[name] = entry.failure
        elif entry.run is not None:
            runs[name] = entry.run
        if (entry.metrics is not None and metrics is not None
                and entry.metrics is not metrics):
            metrics.merge(entry.metrics)
        if entry.tracer is not None:
            if o.trace_path is not None:
                entry.tracer.dump(trace_file_for(o.trace_path, name))
            if tracer is not None and entry.tracer is not tracer:
                tracer.merge(entry.tracer)
        if entry.cache_stats is not None:
            cache.merge_stats(entry.cache_stats)
        if rcache is not None:
            # ``getattr``: journals written before the result cache
            # existed unpickle without the field.
            rcache.merge_stats(getattr(entry, "result_cache_stats", None))

    cache.record_metrics(metrics)
    if rcache is not None:
        rcache.record_metrics(metrics)
    return SuiteResult(runs, failures)
