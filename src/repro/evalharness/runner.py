"""Evaluation runner: one workload across the three architectures.

``run_kernel`` executes a Table 2 workload on Fermi, VGIW and (when the
kernel fits its fabric) SGMF, verifies every machine's final memory
against the reference interpreter, attaches energy breakdowns, and
returns a :class:`KernelRun`.  ``run_suite`` does that for the whole
registry and is the single data source for every figure's rows.

Fault isolation
---------------

A ten-minute sweep must not die because one kernel hangs or corrupts
memory.  ``run_suite`` therefore wraps every kernel in a try/except with
a bounded, deterministic retry (see
:class:`repro.resilience.RetryPolicy`): each retry gets a re-seeded
fault injector and a backed-off watchdog budget.  Kernels that exhaust
their retries become *degraded rows*: the returned :class:`SuiteResult`
still behaves as the historical ``Dict[str, KernelRun]`` over the
healthy runs, but additionally carries ``.failures`` — a mapping of
kernel name to :class:`repro.resilience.KernelFailure` with every
attempt's error, fault log, and (for hangs) the watchdog's diagnostic
snapshot.  ``docs/resilience.md`` documents the semantics.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.arch.config import FermiConfig, SGMFConfig, VGIWConfig
from repro.compiler.optimize import optimize_kernel
from repro.interp import interpret
from repro.kernels.base import Workload
from repro.kernels.registry import all_names, make_workload
from repro.obs import Metrics, Tracer
from repro.power import (
    EnergyBreakdown,
    energy_fermi,
    energy_sgmf,
    energy_vgiw,
)
from repro.resilience import (
    AttemptRecord,
    FaultInjector,
    FaultSpec,
    KernelFailure,
    ReproError,
    RetryPolicy,
    WatchdogConfig,
)
from repro.resilience.errors import VerificationError  # re-export (was local)
from repro.sgmf import SGMFCore, SGMFRunResult, SGMFUnmappableError
from repro.simt import FermiRunResult, FermiSM
from repro.vgiw import VGIWCore, VGIWRunResult

__all__ = [
    "KernelRun",
    "SuiteResult",
    "VerificationError",
    "run_kernel",
    "run_suite",
]


@dataclass
class KernelRun:
    """All measurements for one workload across the machines."""

    name: str
    app: str
    n_threads: int
    n_blocks: int
    fermi: FermiRunResult
    vgiw: VGIWRunResult
    sgmf: Optional[SGMFRunResult]  # None when unmappable
    fermi_energy: EnergyBreakdown
    vgiw_energy: EnergyBreakdown
    sgmf_energy: Optional[EnergyBreakdown]
    #: observability attachments (populated when run_kernel was given a
    #: tracer / metrics registry; see repro.obs)
    trace: Optional[Tracer] = None
    metrics: Optional[Metrics] = None

    @property
    def speedup_vs_fermi(self) -> float:
        return self.fermi.cycles / self.vgiw.cycles

    @property
    def speedup_vs_sgmf(self) -> Optional[float]:
        if self.sgmf is None:
            return None
        return self.sgmf.cycles / self.vgiw.cycles

    def efficiency_vs_fermi(self, level: str = "system") -> float:
        return getattr(self.fermi_energy, level) / getattr(self.vgiw_energy, level)

    def efficiency_vs_sgmf(self, level: str = "system") -> Optional[float]:
        if self.sgmf_energy is None:
            return None
        return getattr(self.sgmf_energy, level) / getattr(self.vgiw_energy, level)

    @property
    def sgmf_mappable(self) -> bool:
        return self.sgmf is not None


def run_kernel(
    name: str,
    scale: str = "small",
    verify: bool = True,
    vgiw_config: Optional[VGIWConfig] = None,
    fermi_config: Optional[FermiConfig] = None,
    sgmf_config: Optional[SGMFConfig] = None,
    optimize: bool = True,
    watchdog: Optional[WatchdogConfig] = None,
    faults: Optional[FaultInjector] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
) -> KernelRun:
    """Run one registry workload on all three machines.

    ``watchdog`` arms the forward-progress watchdog in every simulator;
    ``faults`` threads a (single-run) fault injector through them.
    ``tracer`` / ``metrics`` (see :mod:`repro.obs`) are shared by the
    three machines — engines write to distinct trace ``pid`` lanes and
    metric scopes, so one export carries the whole cross-machine
    comparison.  Everything defaults to off, so the measurement path is
    unchanged.
    """
    workload = make_workload(name, scale)
    if optimize:
        kernel = optimize_kernel(workload.kernel, params=workload.params)
        # SGMF's compiler must conserve fabric capacity, so it keeps
        # loops rolled; Fermi and VGIW get the fully optimised kernel.
        sgmf_kernel = optimize_kernel(
            workload.kernel, params=workload.params, unroll=False
        )
    else:
        kernel = sgmf_kernel = workload.kernel

    golden = None
    if verify:
        golden = workload.memory.clone()
        interpret(kernel, golden, workload.params, workload.n_threads)

    def check(mem, arch: str) -> None:
        if golden is not None and not np.array_equal(mem.data, golden.data):
            bad = int(np.count_nonzero(mem.data != golden.data))
            raise VerificationError(
                f"{arch} final memory diverges from the interpreter "
                f"for {name}",
                kernel=name, arch=arch, words_diverged=bad,
            )

    mem_f = workload.memory.clone()
    fermi = FermiSM(fermi_config).run(
        kernel, mem_f, workload.params, workload.n_threads,
        watchdog=watchdog, faults=faults, tracer=tracer, metrics=metrics,
    )
    check(mem_f, "Fermi")

    mem_v = workload.memory.clone()
    vgiw = VGIWCore(vgiw_config).run(
        kernel, mem_v, workload.params, workload.n_threads, profile=True,
        watchdog=watchdog, faults=faults, tracer=tracer, metrics=metrics,
    )
    check(mem_v, "VGIW")

    sgmf: Optional[SGMFRunResult] = None
    sgmf_bd: Optional[EnergyBreakdown] = None
    try:
        mem_s = workload.memory.clone()
        sgmf = SGMFCore(sgmf_config).run(
            sgmf_kernel, mem_s, workload.params, workload.n_threads,
            watchdog=watchdog, faults=faults, tracer=tracer, metrics=metrics,
        )
        check(mem_s, "SGMF")
        sgmf_bd = energy_sgmf(sgmf)
    except SGMFUnmappableError:
        pass

    return KernelRun(
        name=name,
        app=workload.app,
        n_threads=workload.n_threads,
        n_blocks=vgiw.n_blocks,
        fermi=fermi,
        vgiw=vgiw,
        sgmf=sgmf,
        fermi_energy=energy_fermi(fermi),
        vgiw_energy=energy_vgiw(vgiw),
        sgmf_energy=sgmf_bd,
        trace=tracer,
        metrics=metrics,
    )


class SuiteResult(Mapping):
    """Suite results plus degraded rows.

    Behaves exactly like the historical ``Dict[str, KernelRun]`` over
    the *healthy* runs (iteration, ``len``, ``[]``, ``.items()``, ...),
    so every experiment generator and archived analysis keeps working.
    Failed kernels live in ``.failures`` (name →
    :class:`~repro.resilience.KernelFailure`).
    """

    def __init__(self, runs: Dict[str, KernelRun],
                 failures: Optional[Dict[str, KernelFailure]] = None):
        self.runs: Dict[str, KernelRun] = dict(runs)
        self.failures: Dict[str, KernelFailure] = dict(failures or {})

    # -- Mapping protocol over the healthy runs -------------------------
    def __getitem__(self, name: str) -> KernelRun:
        return self.runs[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def __repr__(self) -> str:
        return (f"SuiteResult({len(self.runs)} ok, "
                f"{len(self.failures)} degraded)")

    # -- degraded-row accessors -----------------------------------------
    @property
    def ok(self) -> bool:
        """True when no kernel was degraded."""
        return not self.failures

    @property
    def degraded(self) -> List[str]:
        """Names of the kernels reported as degraded rows."""
        return sorted(self.failures)

    def failure_logs(self) -> Dict[str, List[dict]]:
        """Structured per-kernel failure logs (what the report embeds)."""
        return {name: f.failure_log for name, f in self.failures.items()}


def run_suite(
    names: Optional[Iterable[str]] = None,
    scale: str = "small",
    verify: bool = True,
    isolate: bool = True,
    watchdog: Optional[WatchdogConfig] = None,
    retry: Optional[RetryPolicy] = None,
    inject: Optional[Dict[str, FaultSpec]] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
) -> SuiteResult:
    """Run the whole Table 2 suite (the data behind every figure).

    Parameters
    ----------
    isolate:
        When True (default) a failing kernel is retried per ``retry``
        and, if still failing, reported as a degraded row instead of
        aborting the sweep.  When False the first failure propagates
        (the historical behaviour).
    watchdog:
        Optional :class:`~repro.resilience.WatchdogConfig` armed in all
        three simulators for every kernel.
    retry:
        Bounded-retry policy; defaults to :class:`RetryPolicy()` (two
        attempts, halved watchdog budget, seed shifted by 1009).
    inject:
        Optional per-kernel fault campaigns: ``{name: FaultSpec}``.
        Kernels absent from the mapping run fault-free.
    tracer / metrics:
        Optional shared :class:`repro.obs.Tracer` /
        :class:`repro.obs.Metrics` threaded through every kernel on
        every machine (``--trace`` / ``--metrics`` on the CLI).
    """
    names = list(names) if names is not None else all_names()
    retry = retry or RetryPolicy()
    inject = inject or {}

    runs: Dict[str, KernelRun] = {}
    failures: Dict[str, KernelFailure] = {}
    for name in names:
        spec = inject.get(name)
        if not isolate:
            injector = FaultInjector(spec) if spec is not None else None
            runs[name] = run_kernel(
                name, scale, verify=verify, watchdog=watchdog,
                faults=injector, tracer=tracer, metrics=metrics,
            )
            continue

        attempts: List[AttemptRecord] = []
        for attempt in range(max(1, retry.max_attempts)):
            injector = (
                FaultInjector(spec.reseeded(retry.seed_delta(attempt)))
                if spec is not None else None
            )
            wd = retry.budget_for(watchdog, attempt)
            try:
                runs[name] = run_kernel(
                    name, scale, verify=verify, watchdog=wd,
                    faults=injector, tracer=tracer, metrics=metrics,
                )
                break
            except ReproError as exc:
                attempts.append(
                    AttemptRecord.from_error(attempt, exc, injector, wd))
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                # Anything non-ReproError is a harness bug, but the sweep
                # must still finish; record it as a degraded row too.
                attempts.append(
                    AttemptRecord.from_error(attempt, exc, injector, wd))
        else:
            failures[name] = KernelFailure.from_attempts(name, attempts)
    return SuiteResult(runs, failures)
