"""Control-flow-graph analyses.

These serve three consumers:

* the block scheduler (:mod:`repro.compiler.schedule`) needs a reverse
  post-order so that back edges target smaller block IDs (paper §3.1);
* the Fermi baseline needs immediate post-dominators for its SIMT
  reconvergence stack;
* the SGMF model and the replication heuristics need natural-loop
  membership.

All algorithms are the classic iterative dataflow formulations
(Cooper-Harvey-Kennedy style); kernels have tens of blocks, so
simplicity beats asymptotic cleverness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.kernel import Kernel


def reverse_post_order(kernel: Kernel) -> List[str]:
    """Reverse post-order of the CFG from the entry block.

    Successors are visited false-edge-first so that the fall-through
    (false) path tends to get the next consecutive ID, which matches how
    a compiler lays out code and keeps loop bodies contiguous.
    """
    visited: Set[str] = set()
    post: List[str] = []

    def visit(name: str) -> None:
        stack = [(name, iter(reversed(kernel.blocks[name].successors())))]
        visited.add(name)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append(
                        (succ, iter(reversed(kernel.blocks[succ].successors())))
                    )
                    advanced = True
                    break
            if not advanced:
                post.append(node)
                stack.pop()

    visit(kernel.entry)
    return list(reversed(post))


def _idom_fixpoint(
    order: List[str],
    preds: Dict[str, List[str]],
    root: str,
) -> Dict[str, Optional[str]]:
    """Iterative immediate-dominator computation over ``order``."""
    index = {name: i for i, name in enumerate(order)}
    idom: Dict[str, Optional[str]] = {name: None for name in order}
    idom[root] = root

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for name in order[1:]:
            candidates = [p for p in preds.get(name, []) if idom.get(p) is not None]
            if not candidates:
                continue
            new = candidates[0]
            for p in candidates[1:]:
                new = intersect(new, p)
            if idom[name] != new:
                idom[name] = new
                changed = True
    idom[root] = None
    return idom


def immediate_dominators(kernel: Kernel) -> Dict[str, Optional[str]]:
    """Immediate dominator of each block (entry maps to ``None``)."""
    order = reverse_post_order(kernel)
    preds = {n: [p for p in ps if p in set(order)] for n, ps in kernel.predecessors().items()}
    return _idom_fixpoint(order, preds, kernel.entry)


def immediate_post_dominators(kernel: Kernel) -> Dict[str, Optional[str]]:
    """Immediate post-dominator of each block.

    Computed as dominators of the reverse CFG rooted at a virtual exit
    that all RET blocks feed.  Blocks whose only path to exit is through
    themselves map to the virtual exit, reported as ``None`` — the SIMT
    stack treats ``None`` as "reconverge at kernel exit".
    """
    virtual_exit = "<exit>"
    # Reverse CFG: successors become predecessors.
    rpreds: Dict[str, List[str]] = {name: [] for name in kernel.blocks}
    rpreds[virtual_exit] = []
    rsuccs: Dict[str, List[str]] = {virtual_exit: []}
    for name, block in kernel.blocks.items():
        succs = list(block.successors()) or [virtual_exit]
        rsuccs[name] = []
    for name, block in kernel.blocks.items():
        succs = list(block.successors()) or [virtual_exit]
        for s in succs:
            rsuccs[s].append(name)  # reversed edge s -> name
            rpreds[name].append(s)

    # Post-order of reverse CFG from the virtual exit.
    visited: Set[str] = set()
    post: List[str] = []

    def visit(node: str) -> None:
        visited.add(node)
        for nxt in rsuccs[node]:
            if nxt not in visited:
                visit(nxt)
        post.append(node)

    visit(virtual_exit)
    order = list(reversed(post))
    ipdom = _idom_fixpoint(order, rpreds, virtual_exit)
    return {
        name: (None if ipdom.get(name) in (virtual_exit, None) else ipdom[name])
        for name in kernel.blocks
    }


def dominates(idom: Dict[str, Optional[str]], a: str, b: str) -> bool:
    """True if ``a`` dominates ``b`` under the immediate-dominator map."""
    node: Optional[str] = b
    while node is not None:
        if node == a:
            return True
        node = idom[node]
    return False


@dataclass
class Loop:
    """A natural loop: header plus the set of member blocks."""

    header: str
    body: Set[str] = field(default_factory=set)  # includes the header
    back_edges: List[Tuple[str, str]] = field(default_factory=list)


def natural_loops(kernel: Kernel) -> Dict[str, Loop]:
    """Natural loops keyed by header block name.

    A back edge is an edge ``t -> h`` where ``h`` dominates ``t``; the
    loop body is every block that can reach ``t`` without passing
    through ``h``.  Loops sharing a header are merged.
    """
    idom = immediate_dominators(kernel)
    preds = kernel.predecessors()
    loops: Dict[str, Loop] = {}
    for name, block in kernel.blocks.items():
        for succ in block.successors():
            if dominates(idom, succ, name):
                loop = loops.setdefault(succ, Loop(succ, {succ}))
                loop.back_edges.append((name, succ))
                # Walk backwards from the latch, stopping at the header.
                stack = [name]
                while stack:
                    node = stack.pop()
                    if node in loop.body:
                        continue
                    loop.body.add(node)
                    stack.extend(p for p in preds[node] if p not in loop.body)
    return loops


def loop_depth(kernel: Kernel) -> Dict[str, int]:
    """Nesting depth of each block (0 = not in any loop)."""
    loops = natural_loops(kernel)
    depth = {name: 0 for name in kernel.blocks}
    for loop in loops.values():
        for member in loop.body:
            depth[member] += 1
    return depth
