"""Resilience subsystem: watchdogs, typed errors, fault injection,
fault-isolating suite runs.

The tests here are the acceptance criteria of the resilience work:

* an engineered deadlock (token buffer of depth 1 feeding a cyclic
  control dependency) raises :class:`SimulationHangError` within the
  watchdog budget, and the diagnostic snapshot names the stalled unit;
* two fault-injection runs with the same seed produce **byte-identical**
  failure logs;
* ``run_suite`` with injected faults completes, returns partial results
  for the healthy kernels, and reports the injected failures as degraded
  rows — no uncaught exception escapes.
"""

from __future__ import annotations

import pytest

from repro.arch.config import FermiConfig, SGMFConfig, VGIWConfig
from repro.evalharness import (
    SuiteResult,
    VerificationError,
    generate_report,
    run_kernel,
    run_suite,
    runs_to_dict,
    runs_to_json,
)
from repro.interp import interpret
from repro.interp.interpreter import InterpreterError
from repro.ir import DType, KernelBuilder
from repro.memory.image import MemoryImage
from repro.resilience import (
    FaultInjectedError,
    FaultInjector,
    FaultSpec,
    MappingError,
    ReproError,
    RetryPolicy,
    SimulationError,
    SimulationHangError,
    WatchdogConfig,
)
from repro.resilience.errors import VerificationError as ResilienceVerificationError
from repro.sgmf import SGMFCore, SGMFUnmappableError
from repro.simt import FermiSM
from repro.vgiw import VGIWCore


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def spin_kernel():
    """Cyclic control dependency that never makes progress."""
    kb = KernelBuilder("spin", params=["out"])
    i = kb.var("i", 0)
    with kb.loop() as lp:
        lp.break_unless(i >= 0)  # never false
        kb.assign(i, i + 1)
    kb.store(kb.param("out"), i)
    return kb.build()


def copy_kernel():
    kb = KernelBuilder("copy", params=["src", "dst", "n"])
    i = kb.tid()
    with kb.if_(i < kb.param("n")):
        v = kb.load(kb.param("src") + i, DType.FLOAT)
        kb.store(kb.param("dst") + i, v)
    return kb.build()


def _copy_setup(n=16):
    mem = MemoryImage(256)
    src = mem.alloc_array("src", [float(i) * 1.5 for i in range(n)])
    dst = mem.alloc("dst", n)
    return mem, {"src": src, "dst": dst, "n": n}, n


# ----------------------------------------------------------------------
# Exception hierarchy
# ----------------------------------------------------------------------
def test_hierarchy_roots():
    assert issubclass(VerificationError, ReproError)
    assert not issubclass(VerificationError, AssertionError)
    assert issubclass(SimulationHangError, SimulationError)
    assert issubclass(FaultInjectedError, SimulationError)
    assert issubclass(SGMFUnmappableError, MappingError)
    assert issubclass(InterpreterError, SimulationError)
    from repro.compiler.placement import CapacityError
    assert issubclass(CapacityError, MappingError)


def test_verification_error_alias_preserved():
    # Historical import paths must keep working (deprecation alias).
    from repro.evalharness.runner import VerificationError as from_runner
    assert from_runner is ResilienceVerificationError
    assert VerificationError is ResilienceVerificationError


def test_repro_error_context_rendering():
    err = ReproError("boom", kernel="k", cycle=3)
    assert str(err) == "boom [cycle=3, kernel=k]"
    assert err.context == {"kernel": "k", "cycle": 3}
    d = err.to_dict()
    assert d["type"] == "ReproError" and d["context"]["cycle"] == 3


def test_interpreter_runaway_guard_is_typed():
    k = spin_kernel()
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    with pytest.raises(InterpreterError, match="block visits"):
        interpret(k, mem, {"out": out}, 1, max_block_visits=100)
    # ... and a typed catch-all works where a bare except used to be needed.
    with pytest.raises(ReproError):
        interpret(k, mem, {"out": out}, 1, max_block_visits=100)


# ----------------------------------------------------------------------
# Watchdog: engineered deadlock / livelock
# ----------------------------------------------------------------------
def test_vgiw_deadlock_token_buffer_one():
    """Token buffer depth 1 + cyclic dependency: the watchdog must fire
    within its budget and the snapshot must name the stalled unit."""
    k = spin_kernel()
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    cfg = VGIWConfig(token_buffer_depth=1)
    wd = WatchdogConfig(max_cycles=20_000, stall_cycles=10_000)
    with pytest.raises(SimulationHangError) as exc_info:
        VGIWCore(cfg).run(k, mem, {"out": out}, 8, watchdog=wd)
    err = exc_info.value
    assert err.context["sim"] == "vgiw"
    snap = err.snapshot
    assert snap is not None
    assert snap.cycle <= 2 * 20_000  # fired within (one block of) budget
    # The snapshot names a suspected blocker and it is the back-pressured
    # token buffer of the spinning block's replica.
    assert snap.stalled_unit is not None
    assert "token_buffer" in snap.stalled_unit
    assert "suspected blocker" in str(err)
    assert snap.in_flight  # per-replica in-flight token counts present
    d = err.to_dict()
    assert d["snapshot"]["stalled_unit"] == snap.stalled_unit


def test_vgiw_runaway_guard_is_hang_error():
    k = spin_kernel()
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    with pytest.raises(SimulationHangError, match="runaway block scheduling"):
        VGIWCore().run(k, mem, {"out": out}, 1, max_block_executions=50)


def test_sgmf_visit_guard_and_watchdog():
    k = spin_kernel()
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    with pytest.raises(SimulationHangError, match="block visits"):
        SGMFCore().run(k, mem, {"out": out}, 1, max_block_visits=100)
    mem2 = MemoryImage(8)
    out2 = mem2.alloc("out", 1)
    with pytest.raises(SimulationHangError) as exc_info:
        SGMFCore().run(k, mem2, {"out": out2}, 1,
                       watchdog=WatchdogConfig(max_cycles=10_000))
    assert exc_info.value.context["sim"] == "sgmf"


def test_fermi_watchdog_budget():
    k = spin_kernel()
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    with pytest.raises(SimulationHangError) as exc_info:
        FermiSM().run(k, mem, {"out": out}, 4,
                      watchdog=WatchdogConfig(max_cycles=10_000))
    err = exc_info.value
    assert err.context["sim"] == "fermi"
    assert err.snapshot is not None
    assert "resident_warps" in err.snapshot.detail


def test_watchdog_disarmed_is_noop():
    k = copy_kernel()
    mem, params, n = _copy_setup()
    golden = mem.clone()
    interpret(k, golden, params, n)
    res = VGIWCore().run(k, mem, params, n,
                         watchdog=WatchdogConfig())  # fully disarmed
    assert res.cycles > 0
    assert mem == golden


def test_watchdog_config_scaling():
    wd = WatchdogConfig(max_cycles=1000.0, stall_cycles=100.0)
    half = wd.scaled(0.5)
    assert half.max_cycles == 500.0 and half.stall_cycles == 50.0
    assert WatchdogConfig().armed is False and wd.armed is True


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def test_fault_spec_parse_and_validation():
    spec = FaultSpec.parse("token_corrupt:42:0.5")
    assert (spec.kind, spec.seed, spec.rate) == ("token_corrupt", 42, 0.5)
    assert FaultSpec.parse("mem_drop").seed == 0
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="gamma_ray")
    assert FaultSpec("abort", seed=3).reseeded(1009).seed == 1012


def test_mem_drop_trips_watchdog():
    """A dropped memory response must surface as a hang, not a wrong
    answer and not an infinite simulation."""
    k = copy_kernel()
    mem, params, n = _copy_setup()
    injector = FaultInjector(FaultSpec("mem_drop", seed=1, rate=1.0))
    with pytest.raises(SimulationHangError):
        VGIWCore().run(k, mem, params, n,
                       watchdog=WatchdogConfig(max_cycles=1e6),
                       faults=injector)
    assert injector.faults_injected > 0
    assert injector.log[0].kind == "mem_drop"


def test_abort_fault_raises_typed_error():
    k = copy_kernel()
    mem, params, n = _copy_setup()
    with pytest.raises(FaultInjectedError, match="injected abort"):
        VGIWCore().run(k, mem, params, n,
                       faults=FaultInjector(FaultSpec("abort")))


def test_injector_logs_byte_identical_per_seed():
    spec = FaultSpec("token_corrupt", seed=11, rate=0.2)
    logs = []
    for _ in range(2):
        k = copy_kernel()
        mem, params, n = _copy_setup()
        injector = FaultInjector(spec)
        try:
            VGIWCore().run(k, mem, params, n, faults=injector)
        except ReproError:
            pass  # corrupted addresses may fault; determinism still holds
        logs.append(injector.format_log())
    assert logs[0] == logs[1]
    assert "token_corrupt" in logs[0]


def test_stuck_at_caught_by_verification():
    with pytest.raises(VerificationError, match="diverges from the interpreter"):
        run_kernel("nn/euclid", scale="tiny",
                   faults=FaultInjector(FaultSpec("stuck_at", seed=7,
                                                  payload=3)))


# ----------------------------------------------------------------------
# Fault-isolating run_suite
# ----------------------------------------------------------------------
SUBSET = ["nn/euclid", "gaussian/Fan2", "bfs/Kernel", "hotspot/hotspot_kernel"]

INJECT = {
    "nn/euclid": FaultSpec("stuck_at", seed=7, payload=3),
    "bfs/Kernel": FaultSpec("abort", seed=1),
}


@pytest.fixture(scope="module")
def degraded_suite():
    return run_suite(SUBSET, scale="tiny",
                     watchdog=WatchdogConfig(max_cycles=5e6),
                     inject=INJECT)


def test_suite_isolates_injected_failures(degraded_suite):
    runs = degraded_suite
    assert isinstance(runs, SuiteResult)
    # Healthy kernels produce partial results through the Mapping face.
    assert sorted(runs) == ["gaussian/Fan2", "hotspot/hotspot_kernel"]
    assert len(runs) == 2
    assert all(runs[name].vgiw.cycles > 0 for name in runs)
    # Injected kernels appear as degraded rows with structured logs.
    assert runs.degraded == ["bfs/Kernel", "nn/euclid"]
    assert not runs.ok
    for name, failure in runs.failures.items():
        assert failure.n_attempts == RetryPolicy().max_attempts
        assert failure.failure_log  # structured, per-attempt
        for attempt in failure.attempts:
            assert attempt.error_type and attempt.message
    assert runs.failures["bfs/Kernel"].error_type == "FaultInjectedError"
    assert runs.failures["nn/euclid"].error_type == "VerificationError"


def test_degraded_report_and_serialisation(degraded_suite):
    runs = degraded_suite
    report = generate_report(runs, scale="tiny")
    assert "Degraded" in report and "Failure logs" in report
    assert "bfs/Kernel" in report and "FaultInjectedError" in report
    data = runs_to_dict(runs)
    assert set(data) == set(SUBSET)
    assert data["bfs/Kernel"]["failed"] is True
    assert data["gaussian/Fan2"].get("failed") is None
    assert '"failed": true' in runs_to_json(runs)


def test_retry_reseeds_and_backs_off(degraded_suite):
    attempts = degraded_suite.failures["bfs/Kernel"].attempts
    policy = RetryPolicy()
    seeds = [a.seed for a in attempts]
    assert seeds == [INJECT["bfs/Kernel"].seed,
                     INJECT["bfs/Kernel"].seed + policy.seed_step]
    budgets = [a.max_cycles for a in attempts]
    assert budgets == [5e6, 5e6 * policy.budget_backoff]


def test_same_seed_suite_failure_logs_identical():
    inject = {"nn/euclid": FaultSpec("stuck_at", seed=7, payload=3)}
    results = [
        run_suite(["nn/euclid"], scale="tiny",
                  watchdog=WatchdogConfig(max_cycles=5e6), inject=inject)
        for _ in range(2)
    ]
    fa, fb = (r.failures["nn/euclid"] for r in results)
    assert fa.format() == fb.format()  # byte-identical failure logs
    assert [a.fault_log_text for a in fa.attempts] == \
        [b.fault_log_text for b in fb.attempts]
    assert any(a.fault_log for a in fa.attempts)


def test_no_isolate_propagates_first_failure():
    with pytest.raises(FaultInjectedError):
        run_suite(["bfs/Kernel"], scale="tiny", isolate=False,
                  inject={"bfs/Kernel": FaultSpec("abort")})


def test_suite_without_faults_is_all_healthy():
    runs = run_suite(["nn/euclid"], scale="tiny",
                     watchdog=WatchdogConfig(max_cycles=1e9))
    assert runs.ok and runs.degraded == []
    assert list(runs.items())[0][0] == "nn/euclid"
