"""Reference interpreter for the virtual kernel ISA.

Executes a kernel thread-by-thread, sequentially, against a
:class:`~repro.memory.image.MemoryImage`.  It is the golden functional
model: every timing simulator's final memory image is asserted equal to
the interpreter's in the test suite.

The interpreter also records, per thread, the sequence of basic blocks
visited.  The SGMF model and several analyses consume these traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.ir.instr import EVAL, Op, TermKind
from repro.ir.kernel import Kernel
from repro.ir.types import DType, Imm, Operand, Reg, TID_REG, is_param_reg, PARAM_PREFIX
from repro.memory.image import MemoryImage
from repro.resilience.errors import SimulationError

Number = Union[int, float, bool]


class InterpreterError(SimulationError):
    """Raised on runaway or ill-behaved kernels."""


@dataclass
class ThreadTrace:
    """Per-thread execution record."""

    tid: int
    blocks: List[str] = field(default_factory=list)
    instructions: int = 0
    loads: int = 0
    stores: int = 0


@dataclass
class InterpResult:
    """Aggregate result of interpreting a kernel launch."""

    kernel: Kernel
    n_threads: int
    traces: List[ThreadTrace]
    block_visits: Counter = field(default_factory=Counter)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.traces)

    @property
    def total_loads(self) -> int:
        return sum(t.loads for t in self.traces)

    @property
    def total_stores(self) -> int:
        return sum(t.stores for t in self.traces)

    def visits_of(self, tid: int, block: str) -> int:
        return sum(1 for b in self.traces[tid].blocks if b == block)


def _coerce(value: Number, dtype: DType) -> Number:
    if dtype is DType.INT:
        return int(value)
    if dtype is DType.FLOAT:
        return float(value)
    return bool(value)


class Interpreter:
    """Sequential reference executor.

    Parameters
    ----------
    kernel:
        The kernel to run.
    memory:
        Memory image the kernel reads and writes.
    params:
        Launch-parameter values by name; must cover ``kernel.params``.
    max_block_visits:
        Per-thread safety bound against runaway loops.
    """

    def __init__(self, kernel: Kernel, memory: MemoryImage,
                 params: Dict[str, Number], max_block_visits: int = 1_000_000):
        missing = [p for p in kernel.params if p not in params]
        if missing:
            raise InterpreterError(f"missing parameter values: {missing}")
        self.kernel = kernel
        self.memory = memory
        self.params = {
            name: _coerce(params[name], kernel.param_dtypes[name])
            for name in kernel.params
        }
        self.max_block_visits = max_block_visits
        # Precompile each block into flat rows so the per-thread walk
        # never re-dispatches on operand kinds (immediates and launch
        # parameters fold into constants — parameters are fixed at
        # construction).  Purely a host-side speedup; semantics are
        # identical to the instruction-at-a-time path.
        self._plan = {
            name: self._compile_block(block)
            for name, block in kernel.blocks.items()
        }

    def _compile_block(self, block):
        """Flatten one basic block into interpreter rows.

        Row layouts (sources are ``(mode, payload)`` pairs: 0 = const
        value, 1 = register name, 2 = thread id; ``dt`` is 1 = int,
        2 = float, 0 = bool)::

            (0, asrc, dst, dt)        LOAD
            (1, asrc, vsrc)           STORE
            (2, fn, srcs, dst, dt)    everything else

        Returns ``(rows, n_instrs, n_loads, n_stores, tcode, cond,
        true_target, false_target)`` with ``tcode`` 0 = RET, 1 = JMP,
        2 = BR.
        """
        params = self.params

        def prep(operand):
            if isinstance(operand, Imm):
                return (0, operand.value)
            if operand == TID_REG:
                return (2, 0)
            if is_param_reg(operand):
                return (0, params[operand.name[len(PARAM_PREFIX):]])
            return (1, operand.name)

        rows = []
        n_loads = n_stores = 0
        for instr in block.instrs:
            dt = (1 if instr.dtype is DType.INT
                  else 2 if instr.dtype is DType.FLOAT else 0)
            if instr.op is Op.LOAD:
                rows.append((0, prep(instr.srcs[0]), instr.dst, dt))
                n_loads += 1
            elif instr.op is Op.STORE:
                rows.append((1, prep(instr.srcs[0]), prep(instr.srcs[1])))
                n_stores += 1
            else:
                rows.append((2, EVAL[instr.op],
                             tuple(prep(s) for s in instr.srcs),
                             instr.dst, dt))
        term = block.terminator
        tcode = (0 if term.kind is TermKind.RET
                 else 1 if term.kind is TermKind.JMP else 2)
        cond = prep(term.cond) if tcode == 2 else None
        return (tuple(rows), len(block.instrs), n_loads, n_stores,
                tcode, cond, term.true_target, term.false_target)

    # ------------------------------------------------------------------
    def _fetch(self, regs: Dict[str, Number], tid: int, operand: Operand) -> Number:
        if isinstance(operand, Imm):
            return operand.value
        if operand == TID_REG:
            return tid
        if is_param_reg(operand):
            return self.params[operand.name[len(PARAM_PREFIX):]]
        try:
            return regs[operand.name]
        except KeyError:
            raise InterpreterError(
                f"read of undefined register %{operand.name} "
                f"in kernel {self.kernel.name}"
            ) from None

    def run_thread(self, tid: int) -> ThreadTrace:
        """Execute one thread to completion; return its trace."""
        kernel = self.kernel
        plan = self._plan
        mem_read = self.memory.read
        mem_write = self.memory.write
        regs: Dict[str, Number] = {}
        trace = ThreadTrace(tid)
        visited = trace.blocks
        block_name: Optional[str] = kernel.entry
        visits = 0
        max_visits = self.max_block_visits
        n_instrs = n_loads = n_stores = 0
        try:
            while block_name is not None:
                visits += 1
                if visits > max_visits:
                    raise InterpreterError(
                        f"thread {tid} exceeded {max_visits} block visits "
                        f"in kernel {kernel.name} (runaway loop?)"
                    )
                (rows, bi, bl, bs, tcode, cond,
                 true_target, false_target) = plan[block_name]
                visited.append(block_name)
                n_instrs += bi
                n_loads += bl
                n_stores += bs
                for row in rows:
                    tag = row[0]
                    if tag == 2:  # ALU / SFU
                        _, fn, srcs, dst, dt = row
                        v = fn(*[
                            regs[p] if m == 1 else p if m == 0 else tid
                            for m, p in srcs
                        ])
                        regs[dst] = (int(v) if dt == 1
                                     else float(v) if dt == 2 else bool(v))
                    elif tag == 0:  # LOAD
                        _, (am, ap), dst, dt = row
                        v = mem_read(int(
                            regs[ap] if am == 1 else ap if am == 0 else tid
                        ))
                        regs[dst] = (int(v) if dt == 1
                                     else float(v) if dt == 2 else bool(v))
                    else:  # STORE
                        _, (am, ap), (vm, vp) = row
                        mem_write(
                            int(regs[ap] if am == 1
                                else ap if am == 0 else tid),
                            regs[vp] if vm == 1 else vp if vm == 0 else tid,
                        )
                if tcode == 0:
                    block_name = None
                elif tcode == 1:
                    block_name = true_target
                else:
                    cm, cp = cond
                    taken = bool(regs[cp] if cm == 1
                                 else cp if cm == 0 else tid)
                    block_name = true_target if taken else false_target
        except KeyError as exc:
            raise InterpreterError(
                f"read of undefined register %{exc.args[0]} "
                f"in kernel {kernel.name}"
            ) from None
        trace.instructions = n_instrs
        trace.loads = n_loads
        trace.stores = n_stores
        return trace

    def run(self, n_threads: int) -> InterpResult:
        """Execute ``n_threads`` threads (TIDs 0..n-1) sequentially."""
        traces = [self.run_thread(tid) for tid in range(n_threads)]
        result = InterpResult(self.kernel, n_threads, traces)
        for t in traces:
            result.block_visits.update(t.blocks)
        return result


def interpret(kernel: Kernel, memory: MemoryImage, params: Dict[str, Number],
              n_threads: int, max_block_visits: int = 1_000_000) -> InterpResult:
    """Convenience wrapper: build an :class:`Interpreter` and run it."""
    return Interpreter(kernel, memory, params, max_block_visits).run(n_threads)
