"""Tests for the textual kernel format (assembler/disassembler)."""

import numpy as np
import pytest

from repro.compiler.optimize import optimize_kernel
from repro.interp import interpret
from repro.ir import DType, Kernel, kernels_equivalent
from repro.ir.text import ParseError, kernel_to_text, parse_kernel
from repro.kernels import saxpy_kernel
from repro.kernels.registry import all_names, make_workload
from repro.memory import MemoryImage


def _structurally_equal(a: Kernel, b: Kernel) -> bool:
    if (a.name, a.params, a.entry, a.param_dtypes) != (
        b.name, b.params, b.entry, b.param_dtypes
    ):
        return False
    if set(a.blocks) != set(b.blocks):
        return False
    for name in a.blocks:
        ba, bb = a.blocks[name], b.blocks[name]
        if ba.instrs != bb.instrs or ba.terminator != bb.terminator:
            return False
    return True


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_roundtrip_every_benchmark_kernel(name):
    kernel = make_workload(name, "tiny").kernel
    parsed = parse_kernel(kernel_to_text(kernel))
    assert _structurally_equal(kernel, parsed)


def test_parsed_kernel_executes_identically():
    kernel = saxpy_kernel()
    parsed = parse_kernel(kernel_to_text(kernel))
    n = 16
    results = []
    for k in (kernel, parsed):
        mem = MemoryImage(256)
        bx = mem.alloc_array("x", np.arange(float(n)))
        by = mem.alloc_array("y", np.ones(n))
        bo = mem.alloc("out", n)
        interpret(k, mem, {"a": 2.0, "x": bx, "y": by, "out": bo, "n": n}, n)
        results.append(mem.read_region("out"))
    np.testing.assert_array_equal(results[0], results[1])


def test_hand_written_text():
    text = """
kernel double_it(src, dst, n)
entry:
  %c = lt %tid, %arg.n !pred
  br %c, body, done
body:
  %addr = add %arg.src, %tid !int
  %v = load %addr !float
  %twice = fmul %v, #2.0 !float
  %out = add %arg.dst, %tid !int
  store %out, %twice !float
  jmp done
done:
  ret
"""
    k = parse_kernel(text)
    assert k.name == "double_it"
    mem = MemoryImage(64)
    src = mem.alloc_array("src", [1.5, 2.5])
    dst = mem.alloc("dst", 2)
    interpret(k, mem, {"src": src, "dst": dst, "n": 2}, 2)
    assert list(mem.read_region("dst")) == [3.0, 5.0]


def test_comments_and_blank_lines_ignored():
    text = """
kernel k(out)

entry:              ; the only block
  %v = mov #7 !int  ; a constant
  store %arg.out, %v !int
  ret
"""
    k = parse_kernel(text)
    assert k.blocks["entry"].instrs[0].dst == "v"


def test_float_param_annotation():
    text = "kernel k(a, out) float(a)\nentry:\n  store %arg.out, %arg.a !float\n  ret\n"
    k = parse_kernel(text)
    assert k.param_dtypes["a"] is DType.FLOAT
    assert k.param_dtypes["out"] is DType.INT


@pytest.mark.parametrize("bad,match", [
    ("entry:\n  ret\n", "expected 'kernel"),
    ("kernel k()\n  ret\n", "outside any block"),
    ("kernel k()\nentry:\n  %x = bogus #1 !int\n  ret\n", "unknown opcode"),
    ("kernel k()\nentry:\n  %x = mov #1 !quux\n  ret\n", "unknown dtype"),
    ("kernel k()\nentry:\n  %x = mov @1 !int\n  ret\n", "unrecognised|bad operand"),
    ("kernel k()\nentry:\n  ret\n  ret\n", "already terminated"),
    ("kernel k()\nentry:\nentry:\n  ret\n", "duplicate block"),
    ("kernel k() float(z)\nentry:\n  ret\n", "unknown params"),
])
def test_parse_errors(bad, match):
    with pytest.raises(ParseError, match=match):
        parse_kernel(bad)


def test_float_immediates_roundtrip_exactly():
    text = ("kernel k(out)\nentry:\n"
            "  %v = fadd #0.1, #1e-17 !float\n"
            "  store %arg.out, %v !float\n  ret\n")
    k = parse_kernel(text)
    rendered = kernel_to_text(k)
    k2 = parse_kernel(rendered)
    assert _structurally_equal(k, k2)


# ----------------------------------------------------------------------
# Round-trip property over generated and transformed kernel populations
# ----------------------------------------------------------------------
def _roundtrips(kernel: Kernel) -> bool:
    return kernels_equivalent(kernel, parse_kernel(kernel_to_text(kernel)))


@pytest.mark.parametrize("name", all_names(include_extras=True))
def test_roundtrip_every_optimized_benchmark_kernel(name):
    """The optimiser's output (specialised, unrolled, CSE'd) must
    round-trip too — these kernels have very different shapes from the
    hand-built originals."""
    w = make_workload(name, "tiny")
    assert _roundtrips(optimize_kernel(w.kernel, params=w.params))


@pytest.mark.parametrize("seed", range(25))
def test_roundtrip_fuzz_generated_kernels(seed):
    """Property test: arbitrary generator output round-trips exactly
    (nested control flow, every opcode class, dashes in names, mixed
    immediates)."""
    from repro.fuzz import generate_case

    case = generate_case(seed)
    assert _roundtrips(case.kernel)
    assert _roundtrips(optimize_kernel(case.kernel, params=case.params))


def test_nan_immediates_roundtrip():
    """NaN never compares equal to itself, but the textual format must
    reproduce a NaN immediate bit-for-bit and ``kernels_equivalent``
    must treat the round trip as an identity."""
    text = ("kernel k(out)\nentry:\n"
            "  %v = fadd #nan, #1.0 !float\n"
            "  store %arg.out, %v !float\n  ret\n")
    k = parse_kernel(text)
    assert _roundtrips(k)
    # dataclass equality would fail here; the helper must not
    import math

    imm = k.blocks["entry"].instrs[0].srcs[0]
    assert math.isnan(imm.value)


def test_dashes_in_kernel_and_block_names():
    """Corpus reproducers are named after their campaign (e.g.
    ``fuzz-seed-00ab``); the format accepts dashes everywhere a name
    can appear."""
    text = ("kernel fuzz-seed-00ab(out)\n"
            "entry-block:\n  jmp exit-block\n"
            "exit-block:\n  store %arg.out, #1 !int\n  ret\n")
    k = parse_kernel(text)
    assert k.name == "fuzz-seed-00ab"
    assert _roundtrips(k)


def test_kernels_equivalent_detects_differences():
    a = parse_kernel("kernel k(out)\nentry:\n  store %arg.out, #1 !int\n  ret\n")
    b = parse_kernel("kernel k(out)\nentry:\n  store %arg.out, #2 !int\n  ret\n")
    assert kernels_equivalent(a, parse_kernel(kernel_to_text(a)))
    assert not kernels_equivalent(a, b)
