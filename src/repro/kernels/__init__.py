"""Benchmark kernels: Rodinia-like suite (paper Table 2) plus synthetics."""

from repro.kernels.base import SCALES, Workload, pick
from repro.kernels.synthetic import (
    fig1_kernel,
    fig1_reference,
    loop_sum_kernel,
    loop_sum_reference,
    make_fig1_workload,
    memcopy_kernel,
    saxpy_kernel,
)

__all__ = [
    "SCALES",
    "Workload",
    "fig1_kernel",
    "fig1_reference",
    "loop_sum_kernel",
    "loop_sum_reference",
    "make_fig1_workload",
    "memcopy_kernel",
    "pick",
    "saxpy_kernel",
]
