"""Tests for the evaluation harness: runner, tables, experiments."""

import math

import pytest

from repro.evalharness import (
    ExperimentTable,
    arithmean,
    fig3_lvc_vs_rf,
    fig7_speedup_vs_fermi,
    fig8_speedup_vs_sgmf,
    fig9_energy_vs_fermi,
    fig10_energy_levels,
    fig11_energy_vs_sgmf,
    geomean,
    run_kernel,
    run_suite,
    sec32_reconfiguration_overhead,
    table1_configuration,
    table2_benchmarks,
)

#: a small but representative subset: convergent, divergent, loopy, and
#: one kernel that does not map onto SGMF.
SUBSET = [
    "nn/euclid",
    "gaussian/Fan2",
    "bfs/Kernel",
    "hotspot/hotspot_kernel",
]


@pytest.fixture(scope="module")
def runs():
    return run_suite(SUBSET, scale="tiny")


def test_run_kernel_verifies_and_measures():
    run = run_kernel("nn/euclid", scale="tiny")
    assert run.fermi.cycles > 0
    assert run.vgiw.cycles > 0
    assert run.speedup_vs_fermi == run.fermi.cycles / run.vgiw.cycles
    assert run.efficiency_vs_fermi("core") > 0
    assert run.sgmf_mappable
    assert run.speedup_vs_sgmf is not None


def test_unmappable_kernel_reports_none():
    run = run_kernel("hotspot/hotspot_kernel", scale="tiny")
    assert not run.sgmf_mappable
    assert run.speedup_vs_sgmf is None
    assert run.efficiency_vs_sgmf() is None


def test_all_figures_render(runs):
    for fn in (
        fig3_lvc_vs_rf, fig7_speedup_vs_fermi, fig8_speedup_vs_sgmf,
        fig9_energy_vs_fermi, fig10_energy_levels, fig11_energy_vs_sgmf,
        sec32_reconfiguration_overhead,
    ):
        table = fn(runs)
        text = table.render()
        assert table.experiment in text
        assert len(table.rows) >= 1


def test_table1_static():
    t = table1_configuration()
    text = t.render()
    assert "108" in text
    assert "34 cycles" in text


def test_table2_includes_block_counts(runs):
    t = table2_benchmarks(runs)
    row = next(r for r in t.rows if r[2] == "euclid")
    assert row[3] == 2      # paper's block count
    assert row[4] is not None  # ours


def test_fig8_excludes_unmappable(runs):
    t = fig8_speedup_vs_sgmf(runs)
    names = [r[0] for r in t.rows]
    assert "hotspot/hotspot_kernel" not in names
    assert any("hotspot" in n for n in t.notes[-1].split())


def test_means():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert arithmean([1.0, 3.0]) == 2.0
    assert geomean([2.0, None]) == 2.0
    assert math.isnan(geomean([]))


def test_characterization_table(runs):
    from repro.evalharness.experiments import workload_characterization

    t = workload_characterization(runs)
    assert len(t.rows) == len(runs)
    for row in t.rows:
        assert row[1] > 0          # warp instructions
        assert 0 <= row[2] <= 100  # mem %
        assert 0 < row[4] <= 1     # SIMD efficiency
        assert row[7] is None or 1 <= row[7] <= 8  # max replicas


def test_bar_rendering(runs):
    t = fig7_speedup_vs_fermi(runs)
    bars = t.render_bars("Speedup", "Kernel")
    assert "#" in bars
    for name in runs:
        assert name in bars
    # Values annotate each bar.
    assert any(ch.isdigit() for ch in bars.splitlines()[-1])


def test_table_rendering_formats():
    t = ExperimentTable("Test", "title", ["A", "B"])
    t.add("x", 1.2345)
    t.add("y", None)
    t.add("z", 123456.0)
    text = t.render()
    assert "1.23" in text
    assert "-" in text
    assert "1.23e+05" in text
    assert t.column("A") == ["x", "y", "z"]
