"""Energy accounting for the three architectures.

Produces an :class:`EnergyBreakdown` per run, with the three aggregation
levels of the paper's Figure 10:

* **core** — the compute engine: datapath + (Fermi) pipeline/RF or
  (VGIW) token buffers/switches/LVC/CVT/configuration;
* **die**  — core + L1 + L2 + core-memory interconnect;
* **system** — die + DRAM.

Energy efficiency is defined exactly as the paper does (§5):
``performance/watt = work/energy``, and since every architecture
executes the same kernel on the same data, the efficiency ratio of two
architectures is the inverse ratio of their total energies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.power.energy_table import DEFAULT_ENERGY, EnergyTable
from repro.sgmf.core import SGMFRunResult
from repro.simt.sm import FermiRunResult
from repro.vgiw.core import VGIWRunResult


@dataclass
class EnergyBreakdown:
    """Per-component energy (picojoules) of one kernel launch."""

    components: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, pj: float) -> None:
        self.components[name] = self.components.get(name, 0.0) + pj

    # -- aggregation levels (paper Figure 10) ---------------------------
    _CORE_KEYS = (
        "datapath", "pipeline", "rf", "token_buffer", "switch",
        "lvc", "cvt", "config", "core_static", "rf_static",
        "lvc_static", "cvt_static",
    )
    _DIE_EXTRA = ("l1", "l2", "noc", "l1_static", "l2_static", "noc_static")
    _SYSTEM_EXTRA = ("dram", "dram_static")

    @property
    def core(self) -> float:
        return sum(self.components.get(k, 0.0) for k in self._CORE_KEYS)

    @property
    def die(self) -> float:
        return self.core + sum(
            self.components.get(k, 0.0) for k in self._DIE_EXTRA
        )

    @property
    def system(self) -> float:
        return self.die + sum(
            self.components.get(k, 0.0) for k in self._SYSTEM_EXTRA
        )

    @property
    def total(self) -> float:
        return self.system

    def average_power_watts(self, cycles: float, core_ghz: float = 1.4,
                            level: str = "system") -> float:
        """Average power over a run: energy / wall time.

        ``cycles`` at ``core_ghz`` gives the wall time; energy is the
        chosen aggregation level (pJ / ns = mW; returned in watts)."""
        if cycles <= 0:
            return 0.0
        ns = cycles / core_ghz
        return getattr(self, level) / ns / 1000.0


def _memory_energy(bd: EnergyBreakdown, l1, l2, dram, cycles: float,
                   t: EnergyTable, scalar_l1: bool = False) -> None:
    l1_pj = t.l1_word_access if scalar_l1 else t.l1_access
    bd.add("l1", l1_pj * l1.accesses)
    bd.add("l2", t.l2_access * l2.accesses)
    bd.add("noc", t.noc_transfer * (l2.accesses + dram.accesses))
    bd.add("dram", t.dram_access * dram.accesses)
    bd.add("l1_static", t.l1_static * cycles)
    bd.add("l2_static", t.l2_static * cycles)
    bd.add("noc_static", t.noc_static * cycles)
    bd.add("dram_static", t.dram_static * cycles)


def energy_vgiw(result: VGIWRunResult, table: EnergyTable = DEFAULT_ENERGY
                ) -> EnergyBreakdown:
    """Energy of a VGIW run from its event counters."""
    t = table
    bd = EnergyBreakdown()
    ops = result.fabric.ops
    bd.add("datapath",
           t.alu_op * ops.get("alu", 0)
           + t.fpu_op * ops.get("fpu", 0)
           + t.sfu_op * ops.get("scu", 0)
           + t.ldst_issue * (ops.get("ldst", 0) + ops.get("lvu", 0))
           + t.sju_op * ops.get("sju", 0)
           + t.cvu_op * ops.get("cvu", 0))
    bd.add("token_buffer", t.token_buffer * result.fabric.tokens)
    bd.add("switch", t.switch_hop * result.fabric.token_hops)
    bd.add("lvc", t.lvc_access * result.lvc_bank_accesses
           + t.lvu_buffer * result.lvc_buffered)
    bd.add("cvt", t.cvt_word * result.cvt.accesses)
    n_units = 108 if result.fabric is None else 108
    bd.add("config", t.unit_config * result.bbs.reconfigurations * n_units)
    bd.add("core_static", t.core_static * result.cycles)
    bd.add("lvc_static", t.lvc_static * result.cycles)
    bd.add("cvt_static", t.cvt_static * result.cycles)
    _memory_energy(bd, result.l1, result.l2, result.dram, result.cycles, t,
                   scalar_l1=True)
    return bd


def energy_fermi(result: FermiRunResult, table: EnergyTable = DEFAULT_ENERGY
                 ) -> EnergyBreakdown:
    """Energy of a Fermi run from its event counters."""
    t = table
    bd = EnergyBreakdown()
    sm = result.sm
    bd.add("datapath",
           t.alu_op * sm.lane_alu_ops
           + t.fpu_op * sm.lane_fpu_ops
           + t.sfu_op * sm.lane_sfu_ops
           + t.ldst_issue * sm.lane_mem_ops)
    bd.add("datapath", t.idle_lane * sm.wasted_lane_slots)
    bd.add("pipeline", t.instr_issue * sm.instructions_issued)
    bd.add("rf", t.rf_access * sm.rf_accesses)
    bd.add("core_static", t.core_static * result.cycles)
    bd.add("rf_static", t.rf_static * result.cycles)
    _memory_energy(bd, result.l1, result.l2, result.dram, result.cycles, t)
    return bd


def energy_sgmf(result: SGMFRunResult, table: EnergyTable = DEFAULT_ENERGY
                ) -> EnergyBreakdown:
    """Energy of an SGMF run.  Predicated (wasted) fires are charged at
    full datapath cost — that is the power cost of mapping every control
    path (paper §2)."""
    t = table
    bd = EnergyBreakdown()
    ops = result.fabric.ops
    bd.add("datapath",
           t.alu_op * ops.get("alu", 0)
           + t.fpu_op * ops.get("fpu", 0)
           + t.sfu_op * ops.get("scu", 0)
           + t.ldst_issue * ops.get("ldst", 0)
           + t.sju_op * ops.get("sju", 0)
           + t.cvu_op * ops.get("cvu", 0))
    bd.add("token_buffer", t.token_buffer * result.fabric.tokens)
    bd.add("switch", t.switch_hop * result.fabric.token_hops)
    bd.add("config", t.unit_config * 108)  # configured once
    bd.add("core_static", t.core_static * result.cycles)
    _memory_energy(bd, result.l1, result.l2, result.dram, result.cycles, t,
                   scalar_l1=True)
    return bd


def efficiency_ratio(baseline: EnergyBreakdown, candidate: EnergyBreakdown,
                     level: str = "system") -> float:
    """Energy-efficiency of ``candidate`` relative to ``baseline`` at an
    aggregation level ('core', 'die', or 'system'): > 1 means the
    candidate does the same work with less energy."""
    return getattr(baseline, level) / getattr(candidate, level)
