"""Tests for the calibration diff tool and the utilisation report."""

import copy

import pytest

from repro.arch import FabricSpec
from repro.evalharness.compare import biggest_movers, compare_runs
from repro.evalharness.runner import run_kernel
from repro.evalharness.serialize import runs_to_dict
from repro.kernels import make_fig1_workload
from repro.vgiw import VGIWCore


@pytest.fixture(scope="module")
def archived():
    runs = {
        "nn/euclid": run_kernel("nn/euclid", "tiny"),
        "gaussian/Fan2": run_kernel("gaussian/Fan2", "tiny"),
    }
    return runs_to_dict(runs)


def test_compare_identical_runs_is_flat(archived):
    table = compare_runs(archived, archived)
    gm = table.rows[-1][3]
    assert gm == pytest.approx(1.0)
    for row in table.rows[:-1]:
        assert row[3] == pytest.approx(1.0)


def test_compare_detects_movement(archived):
    moved = copy.deepcopy(archived)
    moved["nn/euclid"]["speedup_vs_fermi"] *= 2.0
    moved["nn/euclid"]["vgiw"]["cycles"] /= 2.0
    table = compare_runs(archived, moved)
    row = next(r for r in table.rows if r[0] == "nn/euclid")
    assert row[3] == pytest.approx(2.0)
    assert row[4] == pytest.approx(0.5)

    movers = biggest_movers(archived, moved)
    assert movers[0][0] == "nn/euclid"
    assert movers[0][1] == pytest.approx(2.0)


def test_compare_notes_missing_kernels(archived):
    partial = {k: v for k, v in archived.items() if k == "nn/euclid"}
    table = compare_runs(archived, partial)
    assert any("only one run" in n for n in table.notes)


def test_utilization_report():
    kernel, mem, params = make_fig1_workload(n_threads=512)
    result = VGIWCore().run(kernel, mem, params, 512)
    util = result.fabric.utilization(result.cycles, FabricSpec())
    assert set(util) >= {"alu", "fpu", "scu", "ldst", "lvu", "sju",
                         "cvu", "compute", "overall"}
    for kind, value in util.items():
        assert 0.0 <= value <= 1.0, f"{kind} utilisation {value} out of range"
    assert util["overall"] > 0.0
    # Zero cycles edge case.
    empty = result.fabric.utilization(0, FabricSpec())
    assert all(v == 0.0 for v in empty.values())
