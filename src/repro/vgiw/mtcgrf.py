"""MT-CGRF execution engine: streams thread vectors through a configured
basic-block dataflow graph.

The model is event-ordered per thread over the placed graph:

* threads are injected by the initiator CVUs, one per cycle per replica
  (paper §2: "a new thread can thus be injected into the computational
  fabric on every cycle");
* the token buffer bounds the threads in flight per replica (virtual
  execution channels, paper §3.5) — injection stalls until a window slot
  frees, which is exactly what back-pressure through full token buffers
  does;
* each node issues on its physical unit (one issue per cycle — the units
  are pipelined, II = 1), SCU operations additionally occupy one of the
  unit's non-pipelined instances for the operation latency, and LDST /
  LVU operations occupy a reservation-buffer entry until the memory
  system answers (this is what lets later threads overtake memory-stalled
  ones: dynamic, tagged-token dataflow);
* results travel to consumer units over the switched interconnect at one
  cycle per hop, with hop counts from the placement.

Functional values are computed alongside timing, so the executor is also
an exact functional model (asserted against the interpreter in tests).
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.arch.config import UnitKind, VGIWConfig, op_latency_for
from repro.compiler.dfg import (
    BlockDFG,
    ImmSrc,
    NodeKind,
    NodeSrc,
    ParamSrc,
    TidSrc,
)
from repro.compiler.pipeline import CompiledBlock
import numpy as np

from repro.ir.instr import EVAL, Op, TermKind, coerce_i64
from repro.ir.vecops import (
    addr_batch,
    as_value_array,
    f2i_array,
    f64_batch,
    hazard_key,
    scalar_exec_requested,
    stores_after_loads,
    vec_eval,
    vec_eval_raw,
)
from repro.ir.types import DType
from repro.memory.calendar import claim_slot
from repro.memory.hierarchy import LiveValueCache, MemorySystem
from repro.memory.image import MemoryImage
from repro.resilience.errors import SimulationError
from repro.resilience.faults import FaultInjector
from repro.resilience.watchdog import (
    DiagnosticSnapshot,
    snapshot_from_replicas,
)

Number = Union[int, float, bool]


@dataclass
class FabricStats:
    """Event counts accumulated by the fabric (feeds the energy model)."""

    ops: Counter = field(default_factory=Counter)  # 'alu','fpu','scu',...
    tokens: int = 0        # token-buffer write+read pairs
    token_hops: int = 0    # switch traversals
    threads: int = 0
    node_fires: int = 0

    def merge(self, other: "FabricStats") -> None:
        """Accumulate another block execution's counters into this one."""
        self.ops.update(other.ops)
        self.tokens += other.tokens
        self.token_hops += other.token_hops
        self.threads += other.threads
        self.node_fires += other.node_fires

    def utilization(self, cycles: float, spec) -> Dict[str, float]:
        """Average per-kind unit utilisation over a run.

        Every node fire occupies its unit for one issue cycle (II = 1),
        so utilisation = fires / (cycles x units of that kind).  This is
        the quantity behind the paper's "the VGIW spatial design can
        operate all its 108 functional units concurrently" argument —
        and behind Figure 1c/1d's under-utilisation story.
        """
        from repro.arch.config import UnitKind

        kind_units = {
            "alu": spec.counts[UnitKind.COMPUTE],
            "fpu": spec.counts[UnitKind.COMPUTE],
            "scu": spec.counts[UnitKind.SPECIAL],
            "ldst": spec.counts[UnitKind.LDST],
            "lvu": spec.counts[UnitKind.LVU],
            "sju": spec.counts[UnitKind.SJU],
            "cvu": spec.counts[UnitKind.CVU],
        }
        if cycles <= 0:
            return {k: 0.0 for k in kind_units}
        out: Dict[str, float] = {}
        for kind, units in kind_units.items():
            out[kind] = self.ops.get(kind, 0) / (cycles * units)
        # The compute units serve both ALU and FPU fires.
        compute = (self.ops.get("alu", 0) + self.ops.get("fpu", 0)) / (
            cycles * spec.counts[UnitKind.COMPUTE]
        )
        out["compute"] = compute
        out["overall"] = self.node_fires / (cycles * spec.total_units)
        return out


@dataclass
class ThreadOutcome:
    """Result of streaming one thread through a block."""

    tid: int
    next_block: Optional[str]
    completion: float
    replica: int = 0  # which replica's terminator CVU produced this


_FLOAT_OPS_PREFIX = "f"


# ----------------------------------------------------------------------
# Precompiled execution plans
# ----------------------------------------------------------------------
# The per-thread walk over a block's dataflow graph is the hottest loop
# in the repository (it runs once per node per thread).  Everything
# about a node that does not depend on the thread — its placed unit,
# routed hop distances, operation latency, semantics function, energy
# class, and the resolution of its operand sources (immediates and
# kernel parameters are configuration-time constants, paper §3.5) — is
# therefore *precompiled* once per (block, replica) into an
# :class:`ExecPlan` of flat tuples, and the inner loop dispatches on an
# integer tag.  Cycle counts are bit-identical to the direct walk (the
# same floating-point max/issue sequence in the same order); only the
# host-side Python overhead changes.  ``docs/performance.md`` has the
# measurements.

#: row tags (``row[0]``) for the plan interpreter's dispatch
T_INIT, T_LVLOAD, T_LVSTORE, T_LOAD, T_STORE, T_TERM, T_SJ, T_OP, T_SCU = (
    range(9)
)

#: operand-source modes: resolved constant / upstream node value / tid
SRC_CONST, SRC_NODE, SRC_TID = range(3)

#: sentinel distinguishing "live value never stored" from stored falsy
_MISSING = object()


def resolve_src(src, params: Dict[str, Number]) -> Tuple[int, Number]:
    """Fold one DFG operand source into a ``(mode, payload)`` pair."""
    if isinstance(src, NodeSrc):
        return (SRC_NODE, src.node)
    if isinstance(src, ImmSrc):
        return (SRC_CONST, src.value)
    if isinstance(src, ParamSrc):
        return (SRC_CONST, params[src.name])
    return (SRC_TID, 0)  # TidSrc


class ExecPlan:
    """A block's dataflow graph, precompiled for one replica placement.

    ``rows`` drive the interpreter loop in
    :meth:`MTCGRFExecutor._run_thread` (and its SGMF sibling);
    ``n_nodes`` / ``total_hops`` / ``ops_counts`` let the per-node
    statistics be accumulated in O(1) per thread instead of O(nodes).
    """

    __slots__ = (
        "rows", "n_nodes", "total_hops", "ops_counts", "sinks",
        "block_name", "term_kind", "true_target", "false_target",
        "term_nid", "timing_fn",
    )

    def __init__(self, rows, n_nodes, total_hops, ops_counts, sinks,
                 block_name, term_kind, true_target, false_target,
                 term_nid):
        #: lazily compiled straight-line timing walk (vectorized mode)
        self.timing_fn = None
        self.rows = rows
        self.n_nodes = n_nodes
        self.total_hops = total_hops
        self.ops_counts = ops_counts
        self.sinks = sinks
        self.block_name = block_name
        self.term_kind = term_kind
        self.true_target = true_target
        self.false_target = false_target
        self.term_nid = term_nid


def build_exec_plan(
    dfg: BlockDFG,
    unit_of: Dict[int, int],
    edge_hops: Dict[Tuple[int, int], int],
    params: Dict[str, Number],
    op_latency: Dict[str, int],
    count_pseudo_ops: bool = True,
) -> ExecPlan:
    """Precompile ``dfg`` (placed via ``unit_of``/``edge_hops``).

    ``count_pseudo_ops=False`` excludes pseudo nodes from the energy
    accounting (the SGMF convention: wired live values occupy no
    physical unit); timing rows are emitted for every node either way.
    """
    rows = []
    total_hops = 0
    ops_counts: Counter = Counter()
    split_latency = op_latency["split"]
    for nid in dfg.topo_order():
        node = dfg.node(nid)
        # Pseudo nodes (SGMF wires) occupy no physical unit; they never
        # issue, so the placeholder uid is never dereferenced.
        uid = unit_of.get(nid, -1)
        inputs = tuple(
            (up, edge_hops[(up, nid)]) for up in node.input_nodes()
        )
        total_hops += sum(h for _, h in inputs)
        if count_pseudo_ops or not node.pseudo:
            ops_counts[_op_energy_class(node, node.op)] += 1
        kind = node.kind
        if kind is NodeKind.INIT:
            rows.append((T_INIT, nid))
        elif kind is NodeKind.LVLOAD:
            rows.append((T_LVLOAD, nid, uid, inputs, node.lv_id, node))
        elif kind is NodeKind.LVSTORE:
            rows.append((
                T_LVSTORE, nid, uid, inputs, node.lv_id,
                resolve_src(node.srcs[0], params), node,
            ))
        elif kind is NodeKind.LOAD:
            rows.append((
                T_LOAD, nid, uid, inputs,
                resolve_src(node.srcs[0], params),
                node.dtype is DType.INT,
            ))
        elif kind is NodeKind.STORE:
            rows.append((
                T_STORE, nid, uid, inputs,
                resolve_src(node.srcs[0], params),
                resolve_src(node.srcs[1], params),
            ))
        elif kind is NodeKind.TERM:
            cond = (
                resolve_src(node.srcs[0], params)
                if dfg.term_kind is TermKind.BR else None
            )
            rows.append((T_TERM, nid, uid, inputs, cond))
        elif kind in (NodeKind.SPLIT, NodeKind.JOIN):
            passthrough = (
                resolve_src(node.srcs[0], params)
                if kind is NodeKind.SPLIT else None
            )
            rows.append((T_SJ, nid, uid, inputs, split_latency, passthrough))
        else:  # OP
            latency = op_latency_for(node.op, op_latency)
            tag = T_SCU if node.unit_kind is UnitKind.SPECIAL else T_OP
            dt = (
                1 if node.dtype is DType.INT
                else 2 if node.dtype is DType.FLOAT else 0
            )
            rows.append((
                tag, nid, uid, inputs, latency, EVAL[node.op],
                tuple(resolve_src(s, params) for s in node.srcs), dt,
                node.op,
            ))
    return ExecPlan(
        rows=rows,
        n_nodes=len(dfg.nodes),
        total_hops=total_hops,
        ops_counts=ops_counts,
        sinks=tuple(dfg.sink_nodes()),
        block_name=dfg.block_name,
        term_kind=dfg.term_kind,
        true_target=dfg.true_target,
        false_target=dfg.false_target,
        term_nid=dfg.term_node,
    )


def _emit_issue(L, u: int) -> None:
    """Emit the unit-calendar claim (``_ReplicaState.issue``) inline:
    the path-compressed ``claim_slot`` probe, same ``unit_wait``
    accounting, no call frame."""
    L.append("    q = int(r)")
    L.append("    if q != r:")
    L.append("        q += 1")
    L.append(f"    s = nf_{u}.get(q)")
    L.append("    if s is None:")
    L.append(f"        nf_{u}[q] = q + 1")
    L.append("        s = q")
    L.append("    else:")
    L.append(f"        j = nf_{u}.get(s)")
    L.append("        while j is not None:")
    L.append("            s = j")
    L.append(f"            j = nf_{u}.get(s)")
    L.append(f"        nf_{u}[s] = e = s + 1")
    L.append("        p = q")
    L.append("        while p != s:")
    L.append(f"            pn = nf_{u}[p]")
    L.append(f"            nf_{u}[p] = e")
    L.append("            p = pn")
    L.append(f"        uw[{u}] = uw.get({u}, 0.0) + (s - q)")


def compile_timing(plan: ExecPlan, entries: int, scu_instances: int,
                   sgmf: bool = False):
    """Generate the straight-line timing walk for one plan.

    The vectorized engines split each block into a batched functional
    pass and a per-thread timing replay; this compiles the replay into
    one specialised Python function per (block, replica): rows are
    unrolled, unit IDs / latencies / hop counts are constant-folded,
    ``done`` times live in locals, and the
    :meth:`_ReplicaState.issue` / :meth:`_ReplicaState.issue_mem` /
    :meth:`_ReplicaState.issue_scu` calendars are inlined with per-unit
    state hoisted into locals.  The arithmetic is the interpreted
    walk's, in the same order, so cycle counts stay bit-identical
    (asserted by the golden-cycle gate and the differential fuzzer).

    VGIW flavour (``sgmf=False``)::

        fn(rep, mem_access, lvc_access, tid, inject, ti, alists) -> completion

    SGMF flavour (``sgmf=True`` — wired live values, no LVC)::

        fn(rep, mem_access, tid, entry, ti, alists, rr)
            -> (completion, term_done)

    ``ti`` indexes this thread inside the batch; ``alists`` maps a
    memory row's index to its per-thread address list; ``rr`` is the
    SGMF thread's ``regs_ready`` wire-timing dict.
    """
    issue_uids = set()
    mem_uids = set()
    scu_uids = set()
    mem_rows = []
    for ri, row in enumerate(plan.rows):
        tag = row[0]
        if tag in (T_OP, T_SJ, T_TERM):
            issue_uids.add(row[2])
        elif tag == T_SCU:
            issue_uids.add(row[2])
            scu_uids.add(row[2])
        elif tag in (T_LOAD, T_STORE):
            issue_uids.add(row[2])
            mem_uids.add(row[2])
            mem_rows.append(ri)
        elif tag in (T_LVLOAD, T_LVSTORE) and not sgmf:
            issue_uids.add(row[2])
            mem_uids.add(row[2])

    L = []
    if sgmf:
        L.append("def __timing(rep, mem_access, tid, entry, ti, alists,"
                 " rr):")
        L.append("    inject = entry")
    else:
        L.append("def __timing(rep, mem_access, lvc_access, tid, inject,"
                 " ti, alists):")
    L.append("    un = rep.unit_next")
    L.append("    uw = rep.unit_wait")
    for u in sorted(issue_uids):
        L.append(f"    nf_{u} = un.get({u})")
        L.append(f"    if nf_{u} is None:")
        L.append(f"        nf_{u} = un[{u}] = {{}}")
    for u in sorted(mem_uids):
        L.append(f"    out_{u} = rep.ldst_outstanding.setdefault({u}, [])")
    for u in sorted(scu_uids):
        L.append(f"    pool_{u} = rep.scu_pool.setdefault"
                 f"({u}, [0.0] * {scu_instances})")
    for ri in mem_rows:
        L.append(f"    a_{ri} = alists[{ri}]")

    def emit_ready(row):
        L.append("    r = inject")
        for up, hop in row[3]:
            if hop:
                L.append(f"    t = d{up} + {float(hop)!r}")
            else:
                L.append(f"    t = d{up}")
            L.append("    if t > r:")
            L.append("        r = t")

    def emit_mem_preamble(u):
        L.append(f"    if len(out_{u}) >= {entries}:")
        L.append(f"        old = heappop(out_{u})")
        L.append("        if old > r:")
        L.append(f"            uw[{u}] = uw.get({u}, 0.0) + (old - r)")
        L.append("            r = old")

    for ri, row in enumerate(plan.rows):
        tag = row[0]
        if tag == T_INIT:
            L.append(f"    d{row[1]} = inject")
            continue
        nid, u = row[1], row[2]
        if tag == T_OP:
            emit_ready(row)
            _emit_issue(L, u)
            L.append(f"    d{nid} = s + {float(row[4])!r}")
        elif tag == T_SCU:
            emit_ready(row)
            L.append(f"    e = heappop(pool_{u})")
            L.append("    if e > r:")
            L.append("        r = e")
            _emit_issue(L, u)
            L.append(f"    heappush(pool_{u}, s + {float(row[4])!r})")
            L.append(f"    d{nid} = s + {float(row[4])!r}")
        elif tag in (T_LOAD, T_STORE):
            emit_ready(row)
            emit_mem_preamble(u)
            _emit_issue(L, u)
            rw = "True" if tag == T_STORE else "False"
            L.append(f"    c = mem_access(float(s), a_{ri}[ti], {rw})")
            L.append(f"    heappush(out_{u}, c)")
            L.append(f"    d{nid} = c")
        elif tag == T_LVLOAD:
            if sgmf:
                # Wired live value: a one-cycle hop from the producer
                # (the interpreted walk ignores ``ready`` here too).
                L.append(f"    t = rr[{row[5].out_reg!r}] + 1")
                L.append(f"    d{nid} = inject if inject >= t else t")
            else:
                emit_ready(row)
                emit_mem_preamble(u)
                _emit_issue(L, u)
                L.append(f"    c = lvc_access(float(s), {row[4]}, tid,"
                         f" False, port={u})")
                L.append(f"    heappush(out_{u}, c)")
                L.append(f"    d{nid} = c")
        elif tag == T_LVSTORE:
            if sgmf:
                emit_ready(row)
                L.append(f"    d{nid} = r")
                L.append(f"    rr[{row[6].out_reg!r}] = r")
            else:
                emit_ready(row)
                emit_mem_preamble(u)
                _emit_issue(L, u)
                L.append(f"    c = lvc_access(float(s), {row[4]}, tid,"
                         f" True, port={u})")
                L.append(f"    heappush(out_{u}, c)")
                L.append(f"    d{nid} = c")
        elif tag == T_SJ:
            emit_ready(row)
            _emit_issue(L, u)
            L.append(f"    d{nid} = s + {float(row[4])!r}")
        else:  # T_TERM
            emit_ready(row)
            _emit_issue(L, u)
            L.append(f"    d{nid} = s + 1.0")

    sinks = plan.sinks
    L.append(f"    c = d{sinks[0]}")
    for snk in sinks[1:]:
        L.append(f"    if d{snk} > c:")
        L.append(f"        c = d{snk}")
    if sgmf:
        L.append(f"    return c, d{plan.term_nid}")
    else:
        L.append("    return c")

    ns = {"heappush": heapq.heappush, "heappop": heapq.heappop}
    exec(compile("\n".join(L), f"<timing:{plan.block_name}>", "exec"), ns)
    return ns["__timing"]


def _op_energy_class(node, op: Optional[Op]) -> str:
    kind = node.kind
    if kind in (NodeKind.INIT, NodeKind.TERM):
        return "cvu"
    if kind in (NodeKind.LVLOAD, NodeKind.LVSTORE):
        return "lvu"
    if kind in (NodeKind.LOAD, NodeKind.STORE):
        return "ldst"
    if kind in (NodeKind.SPLIT, NodeKind.JOIN):
        return "sju"
    if node.unit_kind is UnitKind.SPECIAL:
        return "scu"
    if op is not None and op.value.startswith(_FLOAT_OPS_PREFIX):
        return "fpu"
    return "alu"


class _ReplicaState:
    """Per-replica physical resource timelines.

    Units issue one operation per cycle (II = 1), modelled as per-unit
    *calendars* (path-compressed next-free-pointer maps,
    :mod:`repro.memory.calendar`) rather than monotone free pointers:
    the simulators process whole threads sequentially, so a
    late-processed thread's early tokens must be able to claim idle
    unit cycles that logically preceded already-recorded traffic —
    exactly what tagged-token hardware does.
    """

    def __init__(self, config: VGIWConfig):
        self.unit_next: Dict[int, Dict[int, int]] = {}
        self.scu_pool: Dict[int, List[float]] = {}
        self.ldst_outstanding: Dict[int, List[float]] = {}
        self.config = config
        self.next_inject: float = 0.0
        self.window: List[float] = []  # completion times, injection order
        #: injection time per thread, parallel to ``window`` (lets the
        #: watchdog compute the oldest in-flight thread's age)
        self.inject_times: List[float] = []
        #: accumulated issue-stall cycles per unit (watchdog histogram)
        self.unit_wait: Dict[int, float] = {}
        #: cycles injection stalled on a full token-buffer window
        self.inject_wait: float = 0.0

    def issue(self, uid: int, ready: float) -> float:
        """Claim the unit's first free issue cycle at or after ``ready``.

        The issue port doubles as the output port: one result per cycle
        leaves the unit, and the switch replicates it to all consumers
        (the fanout bound is enforced statically by split insertion).

        This is the hottest call of both dataflow simulators (one call
        per non-memory token), so the calendar probe is written flat:
        single ``unit_high`` lookup, no helper frame.
        """
        ti = int(ready)
        t = ti if ti == ready else ti + 1
        nf = self.unit_next.get(uid)
        if nf is None:
            nf = self.unit_next[uid] = {}
        start = claim_slot(nf, t)
        if start > t:
            # Queueing delay behind earlier traffic on this unit — the
            # per-unit stall histogram the hang diagnostics report.
            self.unit_wait[uid] = self.unit_wait.get(uid, 0.0) + (start - t)
        return float(start)

    def issue_scu(self, uid: int, ready: float, latency: int) -> float:
        pool = self.scu_pool.setdefault(
            uid, [0.0] * self.config.scu_instances
        )
        earliest = heapq.heappop(pool)
        start = self.issue(uid, max(ready, earliest))
        heapq.heappush(pool, start + latency)
        return start

    def issue_mem(self, uid: int, ready: float, entries: int) -> float:
        out = self.ldst_outstanding.setdefault(uid, [])
        if len(out) >= entries:
            oldest = heapq.heappop(out)
            if oldest > ready:
                # Reservation buffer full: the unit is blocked waiting
                # for an outstanding memory response (this is where a
                # dropped response shows up in the stall histogram).
                self.unit_wait[uid] = (
                    self.unit_wait.get(uid, 0.0) + (oldest - ready)
                )
                ready = oldest
        return self.issue(uid, ready)

    def retire_mem(self, uid: int, completion: float) -> None:
        heapq.heappush(self.ldst_outstanding[uid], completion)


class MTCGRFExecutor:
    """Executes compiled blocks for vectors of threads."""

    def __init__(
        self,
        config: VGIWConfig,
        memsys: MemorySystem,
        lvc: LiveValueCache,
        memory: MemoryImage,
        params: Dict[str, Number],
        faults: Optional[FaultInjector] = None,
        fabric=None,
    ):
        self.config = config
        self.memsys = memsys
        self.lvc = lvc
        self.memory = memory
        self.params = params
        self.faults = faults
        self.fabric = fabric  # optional: names units in hang snapshots
        self.stats = FabricStats()
        #: precompiled per-(block, replica) execution plans
        self._plans: Dict[Tuple[str, int], ExecPlan] = {}
        #: functional live-value matrix: (lv_id, tid) -> value
        self.lv_values: Dict[Tuple[int, int], Number] = {}
        #: watchdog diagnostics: the block/replicas being streamed now
        self.last_block: Optional[CompiledBlock] = None
        self.last_replicas: List[_ReplicaState] = []

    # ------------------------------------------------------------------
    def __getstate__(self):
        """Engine-snapshot support: the exec-plan cache holds
        :data:`repro.ir.instr.EVAL` lambdas, which cannot be pickled.
        The plans are pure functions of ``(block placement, params,
        op_latency)``, all of which *are* in the snapshot, so
        :meth:`_plan_for` rebuilds them bit-identically on demand after
        a restore."""
        state = self.__dict__.copy()
        state["_plans"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._plans = {}

    # ------------------------------------------------------------------
    def unit_name(self, uid: int) -> str:
        """``unit{uid}[{kind}]`` when the fabric is known (snapshots)."""
        if self.fabric is not None and uid < len(self.fabric.units):
            kind = self.fabric.units[uid].kind
            return f"unit{uid}[{getattr(kind, 'name', kind).lower()}]"
        return f"unit{uid}"

    def diagnostic_snapshot(self, now: float, sim: str = "vgiw",
                            kernel: str = "?",
                            detail=None) -> DiagnosticSnapshot:
        """State of the block currently streaming through the fabric."""
        extra = dict(detail or {})
        if self.last_block is not None:
            extra.setdefault("current_block", self.last_block.name)
        extra.setdefault("lvc_word_requests", self.lvc.accesses)
        extra.setdefault("l1_misses", self.memsys.l1_stats.misses)
        return snapshot_from_replicas(
            sim=sim,
            kernel=kernel,
            now=now,
            replicas=self.last_replicas,
            unit_name=self.unit_name,
            block=None if self.last_block is None else self.last_block.name,
            detail=extra,
        )

    # ------------------------------------------------------------------
    def execute_block(
        self,
        cb: CompiledBlock,
        thread_ids: List[int],
        start_time: float,
    ) -> Tuple[List[ThreadOutcome], float]:
        """Stream ``thread_ids`` through block ``cb`` starting at
        ``start_time``; return per-thread outcomes and the cycle at
        which the whole vector has drained."""
        n_replicas = cb.n_replicas
        replicas = [_ReplicaState(self.config) for _ in range(n_replicas)]
        for r in replicas:
            r.next_inject = start_time
        self.last_block = cb
        self.last_replicas = replicas
        if self.faults is not None:
            self.faults.maybe_abort(f"vgiw/{cb.name}", start_time)

        outcomes: List[ThreadOutcome] = []
        end_time = start_time
        depth = self.config.token_buffer_depth
        plans = [self._plan_for(cb, ridx) for ridx in range(n_replicas)]
        hop_total = 0

        # Functional pass: evaluate every plan row across the whole
        # thread vector at once (replica plans share functional content
        # — only unit IDs and hop counts differ — so plans[0] stands in
        # for all of them).  ``None`` means some construct needs the
        # scalar walk (in-batch memory hazard, fault hooks, undefined
        # operand, out-of-range address, ...); nothing has been
        # committed at that point, so the scalar path reruns from
        # untouched state and reproduces exact values and errors.
        batch = None
        if (self.faults is None and len(thread_ids) >= 4
                and not scalar_exec_requested()):
            batch = self._functional_batch(plans[0], thread_ids)
        if batch is not None:
            # Per-thread python address lists (one conversion per batch)
            # and the compiled straight-line timing walks.
            alists = {ri: a.tolist() for ri, a in batch["addrs"].items()}
            mem_access = self.memsys.access_word
            lvc_access = self.lvc.access
            entries = self.config.ldst_reservation_entries
            scu_n = self.config.scu_instances
            nb = batch["next"]
            for plan in plans:
                if plan.timing_fn is None:
                    plan.timing_fn = compile_timing(plan, entries, scu_n)

        for i, tid in enumerate(thread_ids):
            # The BBS hands out whole 64-thread batch packets to the
            # replicas' initiator CVUs (paper section 3.2), so replicas
            # see runs of consecutive thread IDs, not an interleave.
            ridx = (i // 64) % n_replicas
            rep = replicas[ridx]
            plan = plans[ridx]
            inject = rep.next_inject
            if len(rep.window) >= depth:
                bound = rep.window[len(rep.window) - depth]
                if bound > inject:
                    # Token-buffer back-pressure: the virtual-channel
                    # window is full until an older thread drains.
                    rep.inject_wait += bound - inject
                    inject = bound
            rep.inject_times.append(inject)
            if batch is None:
                outcome, completion = self._run_thread(plan, rep, tid, inject)
            else:
                completion = plan.timing_fn(
                    rep, mem_access, lvc_access, tid, inject, i, alists
                )
                outcome = ThreadOutcome(
                    tid, nb[i] if isinstance(nb, list) else nb, completion
                )
            outcome.replica = ridx
            hop_total += plan.total_hops
            rep.next_inject = inject + 1.0
            rep.window.append(completion)
            outcomes.append(outcome)
            end_time = max(end_time, completion)

        if batch is not None:
            self._commit_batch(batch, thread_ids)

        # Per-thread event counts are static per block, so the stats
        # are accumulated batch-wise (O(1) per vector, not O(nodes) per
        # thread).  The totals are identical to per-node counting.
        n_thr = len(thread_ids)
        stats = self.stats
        stats.threads += n_thr
        stats.node_fires += plans[0].n_nodes * n_thr
        stats.tokens += plans[0].n_nodes * n_thr
        stats.token_hops += hop_total
        ops = stats.ops
        for cls, count in plans[0].ops_counts.items():
            ops[cls] += count * n_thr
        return outcomes, end_time

    def _plan_for(self, cb: CompiledBlock, ridx: int) -> ExecPlan:
        """The (cached) precompiled plan for one replica of ``cb``."""
        key = (cb.name, ridx)
        plan = self._plans.get(key)
        if plan is None:
            placed = cb.placement.replicas[ridx]
            plan = build_exec_plan(
                cb.dfg, placed.unit_of, placed.edge_hops, self.params,
                self.config.op_latency,
            )
            self._plans[key] = plan
        return plan

    # ------------------------------------------------------------------
    def _functional_batch(self, plan: ExecPlan, thread_ids: List[int]):
        """Evaluate ``plan``'s rows over the whole thread vector.

        Returns ``None`` when any row needs the per-thread scalar walk:
        a stored address was loaded at an earlier-or-equal ``(thread,
        row)`` position (:func:`stores_after_loads` — private
        load-then-store patterns stay on the batch path), a live value is
        fetched before any block stored it (the scalar walk raises the
        diagnostic mid-vector, after earlier threads' side effects), an
        address is invalid, or an operand is undefined.  No state is
        mutated before returning, so the fallback reruns from scratch.

        On success returns the per-row address arrays (consumed by
        :meth:`_run_thread_timing` — cache timing depends on the exact
        address stream), the per-thread successor blocks, and the
        buffered memory / live-value writes for :meth:`_commit_batch`.
        """
        n = len(thread_ids)
        tids = np.asarray(thread_ids, np.int64)
        size = self.memory.size
        data = self.memory.data
        lv_values = self.lv_values
        value: List[object] = [None] * plan.n_nodes
        addrs_of: Dict[int, np.ndarray] = {}
        load_parts = []  # (row_index, addrs)
        store_parts = []  # (row_index, addrs, float64 values)
        lv_overlay: Dict[int, object] = {}
        next_blocks: object = None

        def operand(src):
            m, p = src
            if m == SRC_CONST:
                return p
            if m == SRC_NODE:
                return value[p]
            return tids

        try:
            for ri, row in enumerate(plan.rows):
                tag = row[0]
                if tag == T_INIT:
                    value[row[1]] = tids
                elif tag == T_OP or tag == T_SCU:
                    args = []
                    for s in row[6]:
                        v = operand(s)
                        if v is None and s[0] == SRC_NODE:
                            return None
                        args.append(v)
                    dt = row[7]
                    if dt == 0:
                        # VGIW stores predicate results uncoerced (the
                        # scalar walk leaves dt==0 results raw).
                        value[row[1]] = vec_eval_raw(row[8], tuple(args), n)
                    else:
                        value[row[1]] = vec_eval(row[8], tuple(args), dt, n)
                elif tag == T_LOAD:
                    a = operand(row[4])
                    if a is None and row[4][0] == SRC_NODE:
                        return None
                    addrs = addr_batch(a, n, size)
                    if addrs is None:
                        return None
                    load_parts.append((ri, addrs))
                    addrs_of[ri] = addrs
                    raw = data[addrs]
                    value[row[1]] = f2i_array(raw) if row[5] else raw
                elif tag == T_STORE:
                    a = operand(row[4])
                    if a is None and row[4][0] == SRC_NODE:
                        return None
                    addrs = addr_batch(a, n, size)
                    if addrs is None:
                        return None
                    addrs_of[ri] = addrs
                    v = operand(row[5])
                    if v is None and row[5][0] == SRC_NODE:
                        return None
                    fvals = f64_batch(v, n)
                    if fvals is None:
                        return None
                    store_parts.append((ri, addrs, fvals))
                elif tag == T_LVLOAD:
                    lv_id = row[4]
                    if lv_id in lv_overlay:
                        value[row[1]] = lv_overlay[lv_id]
                    else:
                        out = []
                        for t in thread_ids:
                            lv = lv_values.get((lv_id, t), _MISSING)
                            if lv is _MISSING:
                                return None
                            out.append(lv)
                        value[row[1]] = as_value_array(out, n)
                elif tag == T_LVSTORE:
                    v = operand(row[5])
                    if v is None and row[5][0] == SRC_NODE:
                        return None
                    lv_overlay[row[4]] = v
                elif tag == T_TERM:
                    kind = plan.term_kind
                    if kind is TermKind.RET:
                        next_blocks = None
                    elif kind is TermKind.JMP:
                        next_blocks = plan.true_target
                    else:
                        c = operand(row[4])
                        if c is None and row[4][0] == SRC_NODE:
                            return None
                        if isinstance(c, np.ndarray):
                            if c.dtype.kind == "O":
                                taken = [bool(x) for x in c.tolist()]
                            else:
                                taken = (c != 0).tolist()
                            next_blocks = [
                                plan.true_target if t else plan.false_target
                                for t in taken
                            ]
                        else:
                            next_blocks = (
                                plan.true_target if c
                                else plan.false_target
                            )
                # T_SJ passthrough forwards its operand unchanged.
                elif row[5] is not None:
                    v = operand(row[5])
                    if v is None and row[5][0] == SRC_NODE:
                        return None
                    value[row[1]] = v
        except (TypeError, ValueError, OverflowError, ZeroDivisionError):
            # The scalar walk raises mid-vector with earlier threads'
            # side effects applied; rerun it to reproduce that exactly.
            return None

        if store_parts and load_parts:
            # One block = one plan: the row index is the per-thread
            # program position, the batch slot is the thread-major rank.
            pos = np.arange(n, dtype=np.int64)
            if not stores_after_loads(
                np.concatenate([a for _, a in load_parts]),
                np.concatenate([hazard_key(pos, ri)
                                for ri, _ in load_parts]),
                np.concatenate([a for _, a, _ in store_parts]),
                np.concatenate([hazard_key(pos, ri)
                                for ri, _, _ in store_parts]),
            ):
                return None

        return {
            "addrs": addrs_of,
            "next": next_blocks,
            "stores": store_parts,
            "lv": lv_overlay,
        }

    def _commit_batch(self, batch, thread_ids: List[int]) -> None:
        """Apply a functional batch's buffered writes.

        Memory stores commit in scalar order — thread-major, then row
        order — via a stable lexsort with fancy assignment (documented
        last-wins for duplicate indices), so repeated addresses resolve
        exactly as the interleaved scalar walk would.  Live values are
        materialised back to plain Python scalars (``tolist``) so the
        ``lv_values`` dict stays type-identical for later blocks that
        may run the scalar path.
        """
        parts = batch["stores"]
        if len(parts) == 1:
            # Ascending fancy assignment == ascending thread order.
            _, addrs, fvals = parts[0]
            self.memory.data[addrs] = fvals
        elif parts:
            n = len(thread_ids)
            all_a = np.concatenate([p[1] for p in parts])
            all_v = np.concatenate([p[2] for p in parts])
            all_t = np.concatenate([np.arange(n)] * len(parts))
            all_r = np.concatenate(
                [np.full(n, p[0], np.int64) for p in parts]
            )
            order = np.lexsort((all_r, all_t))
            self.memory.data[all_a[order]] = all_v[order]

        lv_values = self.lv_values
        for lv_id, vals in batch["lv"].items():
            if isinstance(vals, np.ndarray):
                for t, v in zip(thread_ids, vals.tolist()):
                    lv_values[(lv_id, t)] = v
            else:
                for t in thread_ids:
                    lv_values[(lv_id, t)] = vals

    # ------------------------------------------------------------------
    def _run_thread(
        self,
        plan: ExecPlan,
        rep: _ReplicaState,
        tid: int,
        inject: float,
    ) -> Tuple[ThreadOutcome, float]:
        """Interpret one thread over a precompiled plan.

        Hot loop: ``done`` / ``value`` are flat lists indexed by node
        ID, operand sources are pre-resolved ``(mode, payload)`` pairs,
        and the frequently used bound methods are hoisted to locals.
        The arithmetic (the ``max`` over input arrivals, the issue /
        latency sums) is exactly the direct walk's, in the same order,
        so cycle counts are bit-identical.
        """
        n = plan.n_nodes
        done: List[float] = [0.0] * n
        value: List[Number] = [None] * n
        next_block: Optional[str] = None
        faults = self.faults
        block_name = plan.block_name

        issue = rep.issue
        issue_mem = rep.issue_mem
        issue_scu = rep.issue_scu
        retire_mem = rep.retire_mem
        entries = self.config.ldst_reservation_entries
        lvc_access = self.lvc.access
        mem_access = self.memsys.access_word
        mem_read = self.memory.read
        mem_write = self.memory.write
        lv_values = self.lv_values

        for row in plan.rows:
            tag = row[0]
            if tag == T_INIT:
                nid = row[1]
                done[nid] = inject
                value[nid] = tid
                continue
            nid = row[1]
            uid = row[2]
            # Arrival of the latest input token.  A producer's switch
            # replicates one token to all of its (fanout-bounded, see
            # the compiler's split insertion) consumers in the same
            # cycle, so delivery costs only the routed hop latency.
            ready = inject
            for up, hop in row[3]:
                t = done[up] + hop
                if t > ready:
                    ready = t

            if tag == T_OP:
                start = issue(uid, ready)
                done[nid] = start + row[4]
                args = [
                    p if m == 0 else value[p] if m == 1 else tid
                    for m, p in row[6]
                ]
                result = row[5](*args)
                dt = row[7]
                if dt == 1:
                    result = coerce_i64(result)
                elif dt == 2:
                    result = float(result)
                if faults is not None:
                    result = faults.corrupt_token(
                        block_name, uid, tid, start, result
                    )
                value[nid] = result
            elif tag == T_LOAD:
                m, p = row[4]
                addr = int(p if m == 0 else value[p] if m == 1 else tid)
                start = issue_mem(uid, ready, entries)
                completion = mem_access(start, addr, False)
                retire_mem(uid, completion)
                done[nid] = completion
                raw = mem_read(addr)
                value[nid] = coerce_i64(raw) if row[5] else raw
            elif tag == T_STORE:
                m, p = row[4]
                addr = int(p if m == 0 else value[p] if m == 1 else tid)
                start = issue_mem(uid, ready, entries)
                completion = mem_access(start, addr, True)
                retire_mem(uid, completion)
                done[nid] = completion
                m, p = row[5]
                mem_write(addr, p if m == 0 else value[p] if m == 1 else tid)
            elif tag == T_LVLOAD:
                lv_id = row[4]
                start = issue_mem(uid, ready, entries)
                completion = lvc_access(start, lv_id, tid, False, port=uid)
                retire_mem(uid, completion)
                done[nid] = completion
                try:
                    lv_value = lv_values[(lv_id, tid)]
                except KeyError:
                    raise SimulationError(
                        f"thread {tid} fetches live value {lv_id} "
                        f"(%{row[5].out_reg}) before any block stored it",
                        block=block_name,
                        thread=tid,
                        live_value=lv_id,
                    ) from None
                if faults is not None:
                    lv_value = faults.corrupt_lv(
                        lv_id, tid, completion, lv_value
                    )
                value[nid] = lv_value
            elif tag == T_LVSTORE:
                lv_id = row[4]
                start = issue_mem(uid, ready, entries)
                completion = lvc_access(start, lv_id, tid, True, port=uid)
                retire_mem(uid, completion)
                done[nid] = completion
                m, p = row[5]
                lv_values[(lv_id, tid)] = (
                    p if m == 0 else value[p] if m == 1 else tid
                )
            elif tag == T_SCU:
                start = issue_scu(uid, ready, row[4])
                done[nid] = start + row[4]
                args = [
                    p if m == 0 else value[p] if m == 1 else tid
                    for m, p in row[6]
                ]
                result = row[5](*args)
                dt = row[7]
                if dt == 1:
                    result = coerce_i64(result)
                elif dt == 2:
                    result = float(result)
                if faults is not None:
                    result = faults.corrupt_token(
                        block_name, uid, tid, start, result
                    )
                value[nid] = result
            elif tag == T_SJ:
                start = issue(uid, ready)
                done[nid] = start + row[4]
                if row[5] is not None:
                    m, p = row[5]
                    value[nid] = (
                        p if m == 0 else value[p] if m == 1 else tid
                    )
            else:  # T_TERM
                start = issue(uid, ready)
                done[nid] = start + 1.0
                kind = plan.term_kind
                if kind is TermKind.RET:
                    next_block = None
                elif kind is TermKind.JMP:
                    next_block = plan.true_target
                else:
                    m, p = row[4]
                    taken = bool(
                        p if m == 0 else value[p] if m == 1 else tid
                    )
                    next_block = (
                        plan.true_target if taken else plan.false_target
                    )

        completion = max(done[s] for s in plan.sinks)
        return ThreadOutcome(tid, next_block, completion), completion
