"""Tests for CFG analyses: RPO, dominators, post-dominators, loops."""

from repro.compiler import (
    immediate_dominators,
    immediate_post_dominators,
    loop_depth,
    natural_loops,
    reverse_post_order,
)
from repro.ir import KernelBuilder
from repro.kernels import fig1_kernel, loop_sum_kernel, saxpy_kernel


def test_rpo_starts_at_entry_and_covers_all_blocks():
    k = fig1_kernel()
    order = reverse_post_order(k)
    assert order[0] == "entry"
    assert set(order) == set(k.blocks)


def test_rpo_back_edges_target_smaller_ids():
    k = loop_sum_kernel()
    order = reverse_post_order(k)
    pos = {n: i for i, n in enumerate(order)}
    for name, block in k.blocks.items():
        for succ in block.successors():
            if pos[succ] <= pos[name]:
                # This must be a back edge: the target dominates the source.
                idom = immediate_dominators(k)
                node = name
                while node is not None and node != succ:
                    node = idom[node]
                assert node == succ, f"forward edge {name}->{succ} goes backwards"


def test_idom_of_diamond():
    k = fig1_kernel()
    idom = immediate_dominators(k)
    assert idom["entry"] is None
    # Both arms of the outer conditional are dominated by entry.
    t, f = k.blocks["entry"].terminator.targets()
    assert idom[t] == "entry"
    assert idom[f] == "entry"


def test_ipdom_diamond_reconverges_at_merge():
    k = fig1_kernel()
    ipdom = immediate_post_dominators(k)
    exit_block = k.exit_blocks()[0]
    t, f = k.blocks["entry"].terminator.targets()
    assert ipdom["entry"] == exit_block
    assert ipdom[t] == exit_block
    assert ipdom[exit_block] is None


def test_ipdom_of_straightline():
    k = saxpy_kernel()
    ipdom = immediate_post_dominators(k)
    exit_block = k.exit_blocks()[0]
    assert ipdom["entry"] == exit_block


def test_natural_loop_membership():
    k = loop_sum_kernel()
    loops = natural_loops(k)
    assert len(loops) == 1
    ((header, loop),) = loops.items()
    assert header in loop.body
    assert len(loop.back_edges) == 1
    latch, target = loop.back_edges[0]
    assert target == header
    assert latch in loop.body
    # The entry and the epilogue are outside the loop.
    assert "entry" not in loop.body
    exit_block = k.exit_blocks()[0]
    assert exit_block not in loop.body


def test_no_loops_in_acyclic_kernels():
    assert natural_loops(fig1_kernel()) == {}
    assert natural_loops(saxpy_kernel()) == {}


def test_nested_loop_depth():
    kb = KernelBuilder("nested", params=["out", "n"])
    acc = kb.var("acc", 0)
    with kb.for_range(0, kb.param("n")) as i:
        with kb.for_range(0, kb.param("n")) as j:
            kb.assign(acc, acc + i + j)
    kb.store(kb.param("out"), acc)
    k = kb.build()
    depth = loop_depth(k)
    assert max(depth.values()) == 2
    assert depth["entry"] == 0
    loops = natural_loops(k)
    assert len(loops) == 2
    bodies = sorted(loops.values(), key=lambda l: len(l.body))
    assert bodies[0].body < bodies[1].body  # inner nested in outer
