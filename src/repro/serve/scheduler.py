"""Batching scheduler: admission control + request coalescing.

The scheduler owns the bounded submission queue and decides which
requests share one execution.  Two requests are *compatible* when they
name the same kernel and their options have equal
:meth:`~repro.evalharness.RunOptions.fingerprint` — same scale, same
verification/optimisation settings, same architecture configs, same
watchdog — because ``run_kernel`` is deterministic over exactly those
inputs.  A dispatch pops *every* queued request with the chosen key
into one :class:`Batch`; the pool executes the kernel once and the
service fans the result out to all members.  On the single-core hosts
the simulator targets, this coalescing — not parallelism — is the
serving layer's main throughput lever.

Policies
--------

``"fifo"``
    Dispatch the key of the oldest queued request.  Arrival-order fair.
``"sjf"``
    Shortest-kernel-first: dispatch the key with the smallest expected
    execution time, learned online as an exponentially-weighted moving
    average of observed ``execute_s`` per key (unseen keys estimate
    0.0, so new kernels are probed eagerly; ties break by arrival).
    Improves mean latency under mixed workloads at the cost of
    fairness; the classic starvation caveat applies under sustained
    overload, which is what ``deadline_s`` shedding is for.

Thread safety: every public method takes the internal lock; the service
calls :meth:`offer` from client threads and :meth:`next_batch` /
:meth:`requeue` from its dispatcher thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Batch", "BatchScheduler", "QueueEntry", "SCHED_POLICIES"]

SCHED_POLICIES: Tuple[str, ...] = ("fifo", "sjf")

#: EWMA smoothing for the SJF execution-time estimates.
_EWMA_ALPHA = 0.5


@dataclass
class QueueEntry:
    """One queued submission (service-internal)."""

    request: object  # SubmitRequest
    ticket: object  # Ticket
    key: Tuple[str, str]  # (kernel, options.fingerprint())
    opts: object  # service-resolved RunOptions (pure, retry set)
    enqueued_mono: float  # time.monotonic() at admission
    deadline_mono: Optional[float]  # absolute monotonic expiry, or None
    crash_budget: int  # remaining worker-crash requeues
    seq: int = 0  # admission order (set by the scheduler)
    cache_key: Optional[str] = None  # result-cache key (cache armed)
    expected_digest: Optional[str] = None  # cache-validation expectation

    def expired(self, now: float) -> bool:
        return self.deadline_mono is not None and now > self.deadline_mono


@dataclass
class Batch:
    """A coalesced execution: compatible requests served by one run."""

    batch_id: int
    key: Tuple[str, str]
    entries: List[QueueEntry]
    dispatch_mono: float = 0.0  # stamped by the service at dispatch

    @property
    def kernel(self) -> str:
        return self.key[0]

    def __len__(self) -> int:
        return len(self.entries)


class BatchScheduler:
    """Bounded queue + batching policy (see module docstring)."""

    def __init__(self, policy: str = "fifo", queue_limit: int = 64):
        if policy not in SCHED_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; "
                f"choose from: {', '.join(SCHED_POLICIES)}"
            )
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.policy = policy
        self.queue_limit = queue_limit
        self._queue: List[QueueEntry] = []  # admission order
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._estimates: Dict[Tuple[str, str], float] = {}
        self._seq = 0
        self._batch_counter = 0
        #: high-water mark of the queue depth (reported by stats())
        self.peak_depth = 0

    # -- admission ------------------------------------------------------
    def offer(self, entry: QueueEntry) -> bool:
        """Admit ``entry``; ``False`` when the queue is full (the
        service turns that into a typed ``"rejected"`` response)."""
        with self._nonempty:
            if len(self._queue) >= self.queue_limit:
                return False
            self._seq += 1
            entry.seq = self._seq
            self._queue.append(entry)
            self.peak_depth = max(self.peak_depth, len(self._queue))
            self._nonempty.notify()
            return True

    def requeue(self, entries: List[QueueEntry]) -> None:
        """Put crash-requeued entries back at the *front* (they already
        waited their turn); exempt from the queue limit so recovery
        cannot itself be shed."""
        if not entries:
            return
        with self._nonempty:
            self._queue[0:0] = entries
            self.peak_depth = max(self.peak_depth, len(self._queue))
            self._nonempty.notify()

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- lazy deadline shedding -----------------------------------------
    def pop_expired(self, now: float) -> List[QueueEntry]:
        """Remove and return every queued entry whose deadline has
        expired.

        The dispatcher calls this at the top of every loop iteration,
        so under a saturated pool an expired request is shed (and its
        ``"deadline"`` response lands) within one dispatcher beat of
        expiry instead of sitting in the queue until its compatibility
        group happens to be pulled."""
        with self._lock:
            expired = [e for e in self._queue if e.expired(now)]
            if expired:
                self._queue = [e for e in self._queue if not e.expired(now)]
            return expired

    def take_if_expired(self, request_id: int, now: float):
        """Lazy shed at the waiter: ``(entry, deadline_mono)``.

        If the request is still queued and its deadline has expired,
        the entry is removed and returned (the service finishes it as
        ``"deadline"`` immediately — the caller is observing it *now*).
        Otherwise returns ``(None, deadline)`` where ``deadline`` is
        the queued entry's absolute monotonic expiry (``None`` when the
        request is deadline-free, already dispatched, or finished) so
        the waiter can bound its sleep and re-check on time."""
        with self._lock:
            for i, entry in enumerate(self._queue):
                if entry.ticket.request_id == request_id:
                    if entry.expired(now):
                        del self._queue[i]
                        return entry, None
                    return None, entry.deadline_mono
            return None, None

    # -- learning (SJF) -------------------------------------------------
    def observe(self, key: Tuple[str, str], execute_s: float) -> None:
        """Feed an observed execution time into the SJF estimates."""
        with self._lock:
            old = self._estimates.get(key)
            self._estimates[key] = (
                execute_s if old is None
                else _EWMA_ALPHA * execute_s + (1 - _EWMA_ALPHA) * old
            )

    def estimate(self, key: Tuple[str, str]) -> float:
        with self._lock:
            return self._estimates.get(key, 0.0)

    # -- dispatch -------------------------------------------------------
    def _pick_key(self) -> Tuple[str, str]:
        """The key to dispatch next (lock held, queue non-empty)."""
        if self.policy == "fifo":
            return self._queue[0].key
        # sjf: smallest estimated execution time; arrival order breaks
        # ties (and orders the never-seen keys among themselves).
        first_seq: Dict[Tuple[str, str], int] = {}
        for entry in self._queue:
            first_seq.setdefault(entry.key, entry.seq)
        return min(
            first_seq,
            key=lambda k: (self._estimates.get(k, 0.0), first_seq[k]),
        )

    def next_batch(self, timeout: Optional[float] = None) -> Optional[Batch]:
        """Pop the next batch, waiting up to ``timeout`` seconds for the
        queue to become non-empty; ``None`` on timeout."""
        with self._nonempty:
            if not self._queue:
                self._nonempty.wait(timeout)
            if not self._queue:
                return None
            key = self._pick_key()
            members = [e for e in self._queue if e.key == key]
            self._queue = [e for e in self._queue if e.key != key]
            self._batch_counter += 1
            return Batch(self._batch_counter, key, members)

    def wake(self) -> None:
        """Wake a dispatcher blocked in :meth:`next_batch` (shutdown)."""
        with self._nonempty:
            self._nonempty.notify_all()

    def __repr__(self) -> str:
        return (f"BatchScheduler(policy={self.policy!r}, "
                f"depth={self.depth()}/{self.queue_limit})")
