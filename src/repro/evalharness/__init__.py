"""Evaluation harness: suite runner, experiment tables, report generator."""

from repro.evalharness.experiments import (
    ALL_EXPERIMENTS,
    degraded_kernels,
    fig3_lvc_vs_rf,
    fig7_speedup_vs_fermi,
    fig8_speedup_vs_sgmf,
    fig9_energy_vs_fermi,
    fig10_energy_levels,
    fig11_energy_vs_sgmf,
    sec32_reconfiguration_overhead,
    table1_configuration,
    table2_benchmarks,
)
from repro.evalharness.journal import JournalEntry, RunJournal
from repro.evalharness.options import RunOptions, option_key
from repro.evalharness.report import generate_report
from repro.evalharness.resultcache import (
    RESULT_CACHE_VERSION,
    ResultCache,
    ResultCacheEntry,
    workload_digests,
)
from repro.evalharness.runner import (
    KernelRun,
    SuiteResult,
    VerificationError,
    checkpoint_file_for,
    run_kernel,
    run_suite,
    trace_file_for,
)
from repro.evalharness.serialize import run_to_dict, runs_to_dict, runs_to_json
from repro.evalharness.tables import ExperimentTable, arithmean, geomean

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentTable",
    "JournalEntry",
    "KernelRun",
    "RESULT_CACHE_VERSION",
    "ResultCache",
    "ResultCacheEntry",
    "RunJournal",
    "RunOptions",
    "SuiteResult",
    "VerificationError",
    "arithmean",
    "checkpoint_file_for",
    "degraded_kernels",
    "fig10_energy_levels",
    "fig11_energy_vs_sgmf",
    "fig3_lvc_vs_rf",
    "fig7_speedup_vs_fermi",
    "fig8_speedup_vs_sgmf",
    "fig9_energy_vs_fermi",
    "generate_report",
    "geomean",
    "option_key",
    "run_kernel",
    "run_suite",
    "run_to_dict",
    "runs_to_dict",
    "runs_to_json",
    "sec32_reconfiguration_overhead",
    "table1_configuration",
    "table2_benchmarks",
    "trace_file_for",
    "workload_digests",
]
