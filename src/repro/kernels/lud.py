"""LUD — blocked LU decomposition (Rodinia), paper Table 2:
``lud_diagonal`` (11 blocks), ``lud_perimeter`` (22), ``lud_internal`` (3).

Rodinia factorises an N×N matrix in B×B tiles; within a step, the
diagonal tile is factorised, the perimeter strips are triangular-solved
against it, and the interior tiles receive a rank-B update.  The
originals synchronise inside the kernel with ``__syncthreads``; the
barrier-free substitutions here keep each launch race-free while
preserving the loop/branch structure (see DESIGN.md):

* ``lud_diagonal`` — one elimination step ``k`` of the diagonal tile
  (the host loops over ``k``, exactly like the Gaussian pair): thread
  ``i`` scales its pivot-column element and updates its row, guarded by
  ``i > k``;
* ``lud_perimeter`` — threads 0..B-1 forward-solve one column of the row
  strip against the factorised diagonal's unit-lower part; threads
  B..2B-1 right-solve one row of the column strip against its upper
  part (two arms with doubly-nested loops);
* ``lud_internal`` — the rank-B inner-product update of interior tiles.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ir import DType, Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage


def lud_diagonal_kernel() -> Kernel:
    """One elimination step ``k`` inside every B×B diagonal tile.

    Thread ``t`` owns row ``t % B`` of tile ``t // B``; the launch
    covers a *batch* of independent diagonal tiles (Rodinia factorises
    one tile per step with B threads; batching keeps the identical
    per-thread control flow while giving the data-parallel machines a
    realistic launch size — see DESIGN.md)."""
    kb = KernelBuilder("lud_diagonal", params=["tiles", "b", "k", "n"])
    t = kb.tid()
    b = kb.param("b")
    k = kb.param("k")
    with kb.if_(t < kb.param("n")):
        i = t % b
        base = kb.param("tiles") + (t // b) * b * b
        with kb.if_(i > k):
            pivot = kb.load(base + k * b + k)
            lik = kb.load(base + i * b + k) / pivot
            kb.store(base + i * b + k, lik)
            with kb.for_range(0, b, name="col") as j:
                with kb.if_(j > k):
                    akj = kb.load(base + k * b + j)
                    aij = kb.load(base + i * b + j)
                    kb.store(base + i * b + j, aij - lik * akj)
    return kb.build()


def lud_perimeter_kernel() -> Kernel:
    """Triangular solves of the perimeter strips against the factorised
    diagonal tile (two divergent thread groups per strip pair).

    The launch covers every perimeter tile pair of the step, exactly as
    Rodinia's grid does: thread ``t`` works on tile ``t // 2B``; within
    a tile, threads 0..B-1 forward-solve a row-strip column against the
    diagonal's unit-lower part, threads B..2B-1 right-solve a col-strip
    row against its upper part."""
    kb = KernelBuilder(
        "lud_perimeter",
        params=["diag", "row_strips", "col_strips", "b", "n"],
    )
    t = kb.tid()
    b = kb.param("b")
    with kb.if_(t < kb.param("n")):
        tile = t // (2 * b)
        local = t % (2 * b)
        rs_base = kb.param("row_strips") + tile * b * b
        cs_base = kb.param("col_strips") + tile * b * b
        with kb.if_(local < b):
            # Forward-solve column `local` of the row strip: L y = a.
            c = local
            with kb.for_range(0, b, name="rk") as k:
                s = kb.var("s", 0.0)
                kb.assign(s, kb.load(rs_base + k * b + c))
                with kb.for_range(0, k, name="rm") as m:
                    lkm = kb.load(kb.param("diag") + k * b + m)
                    ym = kb.load(rs_base + m * b + c)
                    kb.assign(s, s - lkm * ym)
                kb.store(rs_base + k * b + c, s)
        with kb.else_():
            # Right-solve row (local-b) of the column strip: x U = a.
            r = local - b
            with kb.for_range(0, b, name="ck") as k:
                s = kb.var("s2", 0.0)
                kb.assign(s, kb.load(cs_base + r * b + k))
                with kb.for_range(0, k, name="cm") as m:
                    xm = kb.load(cs_base + r * b + m)
                    umk = kb.load(kb.param("diag") + m * b + k)
                    kb.assign(s, s - xm * umk)
                ukk = kb.load(kb.param("diag") + k * b + k)
                kb.store(cs_base + r * b + k, s / ukk)
    return kb.build()


def lud_internal_kernel() -> Kernel:
    """Rank-B update of interior tiles: c -= row_strip · col_strip."""
    kb = KernelBuilder(
        "lud_internal",
        params=["row_strip", "col_strip", "tiles", "b", "n_cells"],
    )
    t = kb.tid()
    b = kb.param("b")
    with kb.if_(t < kb.param("n_cells")):
        cell = t % (b * b)
        tile = t // (b * b)
        r = cell // b
        c = cell % b
        acc = kb.var("acc", 0.0)
        with kb.for_range(0, b, name="ik") as k:
            lv = kb.load(kb.param("col_strip") + tile * b * b + r * b + k)
            uv = kb.load(kb.param("row_strip") + tile * b * b + k * b + c)
            kb.assign(acc, acc + lv * uv)
        addr = kb.param("tiles") + t
        kb.store(addr, kb.load(addr) - acc)
    return kb.build()


# ----------------------------------------------------------------------
# Golden models
# ----------------------------------------------------------------------
def diagonal_step_reference(tile: np.ndarray, k: int) -> np.ndarray:
    out = tile.copy()
    b = tile.shape[0]
    for i in range(k + 1, b):
        lik = out[i, k] / out[k, k]
        out[i, k] = lik
        for j in range(k + 1, b):
            out[i, j] = out[i, j] - lik * out[k, j]
    return out


def perimeter_reference(diag, row_strip, col_strip):
    b = diag.shape[0]
    rs = row_strip.copy()
    cs = col_strip.copy()
    for c in range(b):
        for k in range(b):
            s = rs[k, c]
            for m in range(k):
                s -= diag[k, m] * rs[m, c]
            rs[k, c] = s
    for r in range(b):
        for k in range(b):
            s = cs[r, k]
            for m in range(k):
                s -= cs[r, m] * diag[m, k]
            cs[r, k] = s / diag[k, k]
    return rs, cs


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _tile(b: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.5, 1.5, (b, b)) + np.eye(b) * b


def make_diagonal_workload(scale: str = "small", seed: int = 111) -> Workload:
    b = pick(scale, 16, 16, 16)  # Rodinia's tile size
    n_tiles = pick(scale, 8, 128, 512)
    k = 1
    tiles = np.stack([_tile(b, seed + i) for i in range(n_tiles)])
    mem = MemoryImage(n_tiles * b * b + 64)
    b_tiles = mem.alloc_array("tiles", tiles.ravel())
    expected = np.stack(
        [diagonal_step_reference(tiles[i], k) for i in range(n_tiles)]
    )
    n = n_tiles * b
    return Workload(
        name="lud/lud_diagonal",
        app="LUD",
        kernel=lud_diagonal_kernel(),
        memory=mem,
        params={"tiles": b_tiles, "b": b, "k": k, "n": n},
        n_threads=n,
        expected={"tiles": expected.ravel()},
        paper_blocks=11,
    )


def make_perimeter_workload(scale: str = "small", seed: int = 112) -> Workload:
    b = pick(scale, 8, 16, 16)
    n_tiles = pick(scale, 4, 32, 128)
    rng = np.random.default_rng(seed)
    diag = _tile(b, seed)
    row_strips = rng.normal(size=(n_tiles, b, b))
    col_strips = rng.normal(size=(n_tiles, b, b))

    mem = MemoryImage((2 * n_tiles + 1) * b * b + 64)
    b_diag = mem.alloc_array("diag", diag.ravel())
    b_rs = mem.alloc_array("row_strips", row_strips.ravel())
    b_cs = mem.alloc_array("col_strips", col_strips.ravel())

    e_rs = np.empty_like(row_strips)
    e_cs = np.empty_like(col_strips)
    for i in range(n_tiles):
        e_rs[i], e_cs[i] = perimeter_reference(
            diag, row_strips[i], col_strips[i]
        )
    return Workload(
        name="lud/lud_perimeter",
        app="LUD",
        kernel=lud_perimeter_kernel(),
        memory=mem,
        params={"diag": b_diag, "row_strips": b_rs, "col_strips": b_cs,
                "b": b, "n": n_tiles * 2 * b},
        n_threads=n_tiles * 2 * b,
        expected={"row_strips": e_rs.ravel(), "col_strips": e_cs.ravel()},
        paper_blocks=22,
    )


def make_internal_workload(scale: str = "small", seed: int = 113) -> Workload:
    b = 8
    n_tiles = pick(scale, 4, 64, 256)
    rng = np.random.default_rng(seed)
    row_strip = rng.normal(size=(n_tiles, b, b))
    col_strip = rng.normal(size=(n_tiles, b, b))
    tiles = rng.normal(size=(n_tiles, b, b))

    mem = MemoryImage(3 * n_tiles * b * b + 64)
    b_rs = mem.alloc_array("row_strip", row_strip.ravel())
    b_cs = mem.alloc_array("col_strip", col_strip.ravel())
    b_tl = mem.alloc_array("tiles", tiles.ravel())

    expected = tiles - np.matmul(col_strip, row_strip)
    n_cells = n_tiles * b * b
    return Workload(
        name="lud/lud_internal",
        app="LUD",
        kernel=lud_internal_kernel(),
        memory=mem,
        params={
            "row_strip": b_rs, "col_strip": b_cs, "tiles": b_tl,
            "b": b, "n_cells": n_cells,
        },
        n_threads=n_cells,
        expected={"tiles": expected.ravel()},
        paper_blocks=3,
    )
