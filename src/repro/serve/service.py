"""The execution service: a warm worker pool behind a batching queue.

:class:`ExecutionService` accepts :class:`~repro.serve.api.SubmitRequest`
submissions, coalesces compatible ones (same kernel, same
``RunOptions.fingerprint()``) into batches, executes each batch *once*
on a pool of persistent worker processes, and fans the result out to
every member request.  The workers stay warm: each keeps a module-level
:class:`~repro.compiler.CompileCache`, so after the first execution of
a (kernel, options) point the optimisation pipeline, VGIW place &
route, SGMF mapping and Fermi CFG analyses are all cache hits — on the
single-core hosts this simulator targets, batching + warm caches (not
parallelism) are what make the service beat a serial ``run_kernel``
loop.

Failure containment mirrors the sweep harness:

* a kernel that fails *in-process* (verification, hang, fault) comes
  back as a ``"degraded"`` response via the same
  :func:`~repro.evalharness.runner._run_one` retry machinery sweeps
  use;
* a worker that dies *hard* (SIGKILL, OOM, segfault) breaks the pool —
  the dispatcher respawns it and requeues every in-flight request
  under a bounded per-request crash budget, after which the request
  degrades with :class:`~repro.resilience.WorkerCrashError`;
* overload is shed, not raised: a full queue rejects at admission, and
  a request whose ``deadline_s`` expires while queued is dropped with
  status ``"deadline"`` (a dispatched request's execution is bounded
  by its remaining budget through
  :func:`~repro.resilience.wall_clock_limit`).

Observability: with a :class:`repro.obs.Metrics` registry attached the
service publishes counters, queue-depth gauges and latency histograms
under the ``serve/`` scope, keeps raw-sample
:class:`~repro.serve.api.LatencyStats` for true p50/p99, and (with a
:class:`repro.obs.Tracer`) emits one Chrome-trace span per request on
the ``serve`` process lane, so a load run opens directly in Perfetto.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional

from repro.compiler.cache import CompileCache, cached_optimize_kernel
from repro.evalharness.options import RunOptions
from repro.evalharness.resultcache import ResultCache
from repro.evalharness.runner import _maybe_kill_for_test, _run_one
from repro.kernels.registry import all_names, make_workload
from repro.resilience import OptionKeyError, RetryPolicy, WorkerCrashError
from repro.serve.api import (
    LatencyStats,
    RunResponse,
    SubmitRequest,
    Ticket,
    result_digest,
    run_summary,
)
from repro.serve.scheduler import Batch, BatchScheduler, QueueEntry

__all__ = ["ExecutionService"]


# ----------------------------------------------------------------------
# The pool worker (module top level: picklable under every start method)
# ----------------------------------------------------------------------
#: Per-worker-process warm compile caches, keyed by cache_dir.  This is
#: the "persistent worker" in persistent worker pool: the process (and
#: this cache) survives across batches, so repeat kernels skip the
#: whole compile pipeline.
_WARM_CACHES: Dict[str, CompileCache] = {}


def _warm_cache(cache_dir: Optional[str]) -> CompileCache:
    key = cache_dir or ""
    cache = _WARM_CACHES.get(key)
    if cache is None:
        cache = _WARM_CACHES[key] = CompileCache(cache_dir)
    return cache


def _serve_worker(payload):
    """Execute one batch's kernel once; ship back result + timing split.

    ``payload`` is ``(batch_id, kernel, opts, budget_s)`` where ``opts``
    is a pure, resolved :class:`RunOptions` (live fields ``None``,
    ``retry`` materialised, ``isolate=True``) and ``budget_s`` is the
    batch's tightest remaining deadline (bounds the execution through
    ``opts.timeout`` → :func:`~repro.resilience.wall_clock_limit`).

    Returns ``(batch_id, run, failure, compile_s, execute_s, digest,
    summary, cache_delta)`` — ``run``/``failure`` exactly as
    :func:`~repro.evalharness.runner._run_one` reports them, and
    ``cache_delta`` the compile-cache counter *increments* this batch
    caused (the parent folds them into its aggregate).
    """
    (batch_id, kernel, opts, budget_s) = payload
    _maybe_kill_for_test(kernel)
    cache = _warm_cache(opts.cache_dir)
    before = cache.stats()

    # Compile phase, timed separately: build the workload and warm the
    # optimisation pipeline through the cache (the execution below then
    # hits it, so execute_s measures simulation, not compilation).
    t0 = time.monotonic()
    workload = make_workload(kernel, opts.scale)
    if opts.optimize:
        cached_optimize_kernel(workload.kernel, params=workload.params,
                               cache=cache)
        cached_optimize_kernel(workload.kernel, params=workload.params,
                               unroll=False, cache=cache)
    compile_s = time.monotonic() - t0

    timeout = opts.timeout
    if budget_s is not None:
        timeout = budget_s if timeout is None else min(timeout, budget_s)

    t1 = time.monotonic()
    run, failure = _run_one(kernel, opts.replace(timeout=timeout), None,
                            cache)
    execute_s = time.monotonic() - t1

    digest = None if run is None else result_digest(run)
    summary = {} if run is None else run_summary(run)
    after = cache.stats()
    cache_delta = {k: after[k] - before.get(k, 0)
                   for k in after if k != "entries"}
    return (batch_id, run, failure, compile_s, execute_s, digest,
            summary, cache_delta)


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class ExecutionService:
    """Batched multi-device execution service (see module docstring).

    Parameters
    ----------
    workers:
        Worker-process pool width (also the in-flight batch bound).
    policy:
        Batch dispatch order: ``"fifo"`` or ``"sjf"``
        (:mod:`repro.serve.scheduler`).
    queue_limit:
        Admission bound; a submission past it is *rejected* (typed
        response), never queued unboundedly.
    crash_budget:
        How many worker crashes one request may survive (requeues)
        before degrading with :class:`WorkerCrashError`.
    cache_dir:
        Optional persistent compile-cache tier shared by the workers
        (atomic disk writes — concurrent workers are safe).
    result_cache / result_cache_dir:
        Arm the content-addressed result cache
        (:class:`repro.evalharness.ResultCache`): a request whose
        content key — kernel IR hash, options fingerprint, input
        digest — was answered before is completed *at admission* with
        status ``"cached"``, never touching the queue or the worker
        pool; every batch completion populates the cache.  Pass a live
        :class:`ResultCache` to share one across services, or
        ``result_cache_dir`` for a fresh disk-backed one.
    validate_cache_fraction / validate_cache_seed:
        Trust-but-verify sampling: the selected (seeded,
        deterministic) fraction of cache hits is *not* short-circuited
        — it executes normally and the fresh digest is compared
        against the cached one.  A match counts as a validation; a
        mismatch degrades the response with
        ``ResultCacheDivergenceError`` and bumps the ``divergences``
        counter (the service's typed-response contract holds even for
        this hard failure).
    retention_limit:
        Bound on responses held for pickup.  :meth:`wait` *consumes*
        its response; a response never picked up is evicted LRU-first
        past this bound (``evicted`` counter), after which its ticket
        is unknown.  :meth:`result` stays a non-consuming peek.
    tracer / metrics:
        Optional :class:`repro.obs.Tracer` / :class:`repro.obs.Metrics`;
        the service records into the ``serve/`` metric scope (plus
        ``resultcache/`` when the cache is armed) and one trace span
        per request.

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with ExecutionService(workers=2) as svc:
            t = svc.submit(SubmitRequest("nn/euclid",
                                         RunOptions(scale="tiny")))
            resp = svc.wait(t)
    """

    def __init__(self, workers: int = 2, policy: str = "fifo",
                 queue_limit: int = 64, crash_budget: int = 2,
                 cache_dir: Optional[str] = None,
                 result_cache: Optional[ResultCache] = None,
                 result_cache_dir: Optional[str] = None,
                 validate_cache_fraction: float = 0.0,
                 validate_cache_seed: int = 0,
                 retention_limit: int = 1024, tracer=None,
                 metrics=None):
        self.workers = max(1, int(workers))
        self.scheduler = BatchScheduler(policy=policy,
                                        queue_limit=queue_limit)
        self.crash_budget = max(1, int(crash_budget))
        self.cache_dir = cache_dir
        self.result_cache = result_cache
        if self.result_cache is None and result_cache_dir is not None:
            self.result_cache = ResultCache(result_cache_dir)
        self.validate_cache_fraction = float(validate_cache_fraction)
        self.validate_cache_seed = int(validate_cache_seed)
        self.retention_limit = max(1, int(retention_limit))
        self.tracer = tracer
        self.metrics = metrics
        self._scope = metrics.scope("serve") if metrics is not None else None
        self._rscope = (metrics.scope("resultcache")
                        if metrics is not None
                        and self.result_cache is not None else None)
        self._known = frozenset(all_names(include_extras=True))

        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: landed responses awaiting pickup, oldest first (bounded by
        #: ``retention_limit``; wait() pops, result() peeks)
        self._responses: "OrderedDict[int, RunResponse]" = OrderedDict()
        self._events: Dict[int, threading.Event] = {}
        self._evicted = 0

        self._running = False
        self._stopping = threading.Event()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._t0_mono = 0.0
        self._t0_wall = 0.0

        #: raw-sample latency accumulators (true p50/p99; the metric
        #: histograms only keep count/sum/min/max)
        self.latency: Dict[str, LatencyStats] = {
            "total_s": LatencyStats(),
            "queue_s": LatencyStats(),
            "compile_s": LatencyStats(),
            "execute_s": LatencyStats(),
            "cached_s": LatencyStats(),
        }
        self._counts: Dict[str, int] = {
            "submitted": 0, "ok": 0, "cached": 0, "degraded": 0,
            "rejected": 0, "deadline": 0,
        }
        self._batch_sizes: List[int] = []
        self._worker_crashes = 0
        self.cache_stats: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ExecutionService":
        if self._running:
            return self
        self._stopping.clear()
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._t0_mono = time.monotonic()
        self._t0_wall = time.time()
        self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True)
        self._dispatcher.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the service.  ``drain=True`` (default) finishes every
        queued and in-flight request first; ``drain=False`` sheds the
        queue as ``"rejected"`` and finishes only the in-flight work."""
        if not self._running:
            return
        if not drain:
            while True:
                batch = self.scheduler.next_batch(timeout=0)
                if batch is None:
                    break
                for entry in batch.entries:
                    self._finish(entry, RunResponse(
                        request_id=entry.ticket.request_id,
                        kernel=entry.request.kernel, status="rejected",
                        client=entry.request.client,
                        error="service is stopping",
                        error_type="ServiceStopped"))
        self._stopping.set()
        self.scheduler.wake()
        if self._dispatcher is not None:
            self._dispatcher.join()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self._running = False

    def __enter__(self) -> "ExecutionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client surface -------------------------------------------------
    def submit(self, request: SubmitRequest) -> Ticket:
        """Admit one request.  Always returns a :class:`Ticket`;
        admission failures surface as an (immediately available)
        ``"rejected"`` response, never an exception."""
        rid = next(self._ids)
        ticket = Ticket(rid, request.kernel, time.time())
        with self._lock:
            self._events[rid] = threading.Event()
        self._counts["submitted"] += 1
        if self._scope is not None:
            self._scope.inc("requests_submitted")

        def reject(message: str, error_type: str) -> Ticket:
            self._finish(None, RunResponse(
                request_id=rid, kernel=request.kernel, status="rejected",
                client=request.client, error=message,
                error_type=error_type))
            return ticket

        live = request.options.live_fields_set()
        if live:
            return reject(
                f"options carry live object fields ({', '.join(live)}); "
                f"the service owns its own registries and caches",
                "LiveOptionsError")
        if request.kernel not in self._known:
            return reject(f"unknown kernel {request.kernel!r}",
                          "UnknownKernelError")
        if not self._running or self._stopping.is_set():
            return reject("service is not accepting submissions",
                          "ServiceStopped")

        opts = request.options.replace(
            isolate=True,
            retry=request.options.retry or RetryPolicy(),
            cache_dir=(self.cache_dir
                       if request.options.cache_dir is None
                       else request.options.cache_dir),
        )
        try:
            fingerprint = opts.fingerprint()
        except OptionKeyError as exc:
            # An unkeyable config can neither batch nor cache; keep the
            # typed-response contract instead of raising at the caller.
            return reject(str(exc), "OptionKeyError")

        cache_key: Optional[str] = None
        expected_digest: Optional[str] = None
        admit_mono = time.monotonic()
        if self.result_cache is not None:
            cache_key = ResultCache.key_for(request.kernel, opts)
            hit = self.result_cache.get(cache_key)
            if self._rscope is not None:
                self._rscope.inc("hits" if hit is not None else "misses")
            if hit is not None:
                if self.result_cache.should_validate(
                        cache_key, self.validate_cache_fraction,
                        self.validate_cache_seed):
                    # Trust-but-verify: this hit executes normally; the
                    # fresh digest is checked against this expectation
                    # when its batch completes.
                    expected_digest = hit.digest
                else:
                    run = hit.run
                    self._finish(None, RunResponse(
                        request_id=rid, kernel=request.kernel,
                        status="cached", client=request.client,
                        digest=hit.digest, summary=run_summary(run),
                        run=run if request.want_run else None,
                        total_s=time.monotonic() - admit_mono))
                    return ticket
        now = time.monotonic()
        entry = QueueEntry(
            request=request, ticket=ticket,
            key=(request.kernel, fingerprint), opts=opts,
            enqueued_mono=now,
            deadline_mono=(None if request.deadline_s is None
                           else now + request.deadline_s),
            crash_budget=self.crash_budget,
            cache_key=cache_key, expected_digest=expected_digest,
        )
        if not self.scheduler.offer(entry):
            return reject(
                f"queue full (limit {self.scheduler.queue_limit})",
                "QueueFullError")
        if self._scope is not None:
            self._scope.gauge("queue_depth", self.scheduler.depth())
        return ticket

    def wait(self, ticket: Ticket,
             timeout: Optional[float] = None) -> Optional[RunResponse]:
        """Block until ``ticket``'s response lands, then *consume* it;
        ``None`` on timeout.

        Pickup evicts the response from the retention map — each ticket
        is waited at most once (a second ``wait`` raises ``KeyError``,
        as does a ticket whose un-picked-up response aged past
        ``retention_limit``).  If the request is still queued with an
        expired ``deadline_s``, it is shed *here*: the caller observing
        the ticket is exactly when the ``"deadline"`` status must fire,
        not whenever the dispatcher would next have pulled its batch.
        """
        rid = ticket.request_id
        with self._lock:
            event = self._events.get(rid)
        if event is None:
            raise KeyError(
                f"unknown ticket {rid} (never submitted, already "
                f"picked up, or evicted past the retention limit)")
        budget_end = (None if timeout is None
                      else time.monotonic() + timeout)
        while True:
            now = time.monotonic()
            expired, queued_deadline = \
                self.scheduler.take_if_expired(rid, now)
            if expired is not None:
                self._finish_deadline(expired, now, batch_id=None)
            wait_s = (None if budget_end is None
                      else max(0.0, budget_end - now))
            if queued_deadline is not None:
                # Sleep only to the request's own expiry, so the lazy
                # shed above re-runs right when it becomes due.
                until = max(0.0, queued_deadline - now) + 0.005
                wait_s = until if wait_s is None else min(wait_s, until)
            if event.wait(wait_s):
                with self._lock:
                    response = self._responses.pop(rid, None)
                    self._events.pop(rid, None)
                return response
            if budget_end is not None and time.monotonic() >= budget_end:
                return None

    def result(self, ticket: Ticket) -> Optional[RunResponse]:
        """Non-consuming peek: the response if it landed and has not
        been picked up by :meth:`wait` (or evicted), else ``None``."""
        with self._lock:
            return self._responses.get(ticket.request_id)

    # -- dispatcher -----------------------------------------------------
    def _dispatch_loop(self) -> None:
        in_flight: Dict[Any, Batch] = {}
        while True:
            # Lazy deadline sweep: shed *every* expired queued request
            # each beat, not just the ones whose batch is pulled — an
            # expired request must never consume dispatch capacity.
            now = time.monotonic()
            for entry in self.scheduler.pop_expired(now):
                self._finish_deadline(entry, now, batch_id=None)
            while len(in_flight) < self.workers:
                timeout = 0.0 if in_flight or self._stopping.is_set() \
                    else 0.1
                batch = self.scheduler.next_batch(timeout=timeout)
                if batch is None:
                    break
                self._shed_expired(batch)
                if not batch.entries:
                    continue
                self._dispatch(in_flight, batch)
            if not in_flight:
                if self._stopping.is_set() and self.scheduler.depth() == 0:
                    return
                continue
            done, _ = wait(list(in_flight), timeout=0.25,
                           return_when=FIRST_COMPLETED)
            crashed: List[Batch] = []
            for future in done:
                batch = in_flight.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    crashed.append(batch)
                except Exception as exc:  # noqa: BLE001 — typed rows
                    self._finish_batch_error(batch, exc)
                else:
                    self._finish_batch(batch, payload)
            if crashed:
                # The executor is broken: every other in-flight future
                # is poisoned too.  Blame them all (like _run_jobs).
                crashed.extend(in_flight.values())
                in_flight.clear()
                self._recover(crashed)

    def _finish_deadline(self, entry: QueueEntry, now: float,
                         batch_id: Optional[int]) -> None:
        """Complete one still-queued entry as ``"deadline"``."""
        waited = now - entry.enqueued_mono
        self._finish(entry, RunResponse(
            request_id=entry.ticket.request_id,
            kernel=entry.request.kernel, status="deadline",
            client=entry.request.client,
            error=(f"deadline of {entry.request.deadline_s:.3f}s "
                   f"expired after {waited:.3f}s in queue"),
            error_type="DeadlineExceeded",
            queue_s=waited, total_s=waited,
            batch_id=batch_id))

    def _shed_expired(self, batch: Batch) -> None:
        now = time.monotonic()
        kept: List[QueueEntry] = []
        for entry in batch.entries:
            if entry.expired(now):
                self._finish_deadline(entry, now, batch.batch_id)
            else:
                kept.append(entry)
        batch.entries = kept

    def _dispatch(self, in_flight: Dict[Any, Batch], batch: Batch) -> None:
        batch.dispatch_mono = time.monotonic()
        budgets = [e.deadline_mono - batch.dispatch_mono
                   for e in batch.entries if e.deadline_mono is not None]
        budget_s = max(0.001, min(budgets)) if budgets else None
        opts: RunOptions = batch.entries[0].opts
        future = self._pool.submit(
            _serve_worker, (batch.batch_id, batch.kernel, opts, budget_s))
        in_flight[future] = batch
        self._batch_sizes.append(len(batch.entries))
        if self._scope is not None:
            self._scope.inc("batches")
            self._scope.observe("batch_size", len(batch.entries))
            self._scope.gauge("queue_depth", self.scheduler.depth())
            self._scope.gauge("in_flight", len(in_flight))

    def _finish_batch(self, batch: Batch, payload) -> None:
        (_, run, failure, compile_s, execute_s, digest, summary,
         cache_delta) = payload
        now = time.monotonic()
        self.scheduler.observe(batch.key, execute_s)
        for k, v in cache_delta.items():
            self.cache_stats[k] = self.cache_stats.get(k, 0) + v
        # One healthy execution populates the result cache for every
        # entry in the batch (they share one content key, so one store
        # answers all future equals at admission).
        stored_key = batch.entries[0].cache_key if batch.entries else None
        if (self.result_cache is not None and failure is None
                and run is not None and stored_key is not None):
            self.result_cache.put(stored_key, batch.kernel, run)
            if self._rscope is not None:
                self._rscope.inc("stores")
                self._rscope.gauge("entries", len(self.result_cache))
        for entry in batch.entries:
            request: SubmitRequest = entry.request
            if failure is None and entry.expected_digest is not None \
                    and digest != entry.expected_digest:
                # Trust-but-verify tripped: the fresh execution does
                # not match what the cache would have answered.  Typed
                # degraded response (the service never raises), loud
                # counters — every cached answer is now suspect.
                self.result_cache.validations += 1
                self.result_cache.divergences += 1
                if self._rscope is not None:
                    self._rscope.inc("validations")
                    self._rscope.inc("divergences")
                response = RunResponse(
                    request_id=entry.ticket.request_id,
                    kernel=request.kernel, status="degraded",
                    client=request.client,
                    error=(f"cached digest {entry.expected_digest[:12]} "
                           f"diverges from fresh execution "
                           f"{(digest or 'none')[:12]}"),
                    error_type="ResultCacheDivergenceError")
            elif failure is None:
                if entry.expected_digest is not None:
                    self.result_cache.validations += 1
                    if self._rscope is not None:
                        self._rscope.inc("validations")
                response = RunResponse(
                    request_id=entry.ticket.request_id,
                    kernel=request.kernel, status="ok",
                    client=request.client, digest=digest,
                    summary=dict(summary),
                    run=run if request.want_run else None)
            else:
                response = RunResponse(
                    request_id=entry.ticket.request_id,
                    kernel=request.kernel, status="degraded",
                    client=request.client, error=failure.message,
                    error_type=failure.error_type)
            response.queue_s = batch.dispatch_mono - entry.enqueued_mono
            response.compile_s = compile_s
            response.execute_s = execute_s
            response.total_s = now - entry.enqueued_mono
            response.batch_id = batch.batch_id
            response.batch_size = len(batch.entries)
            self._finish(entry, response)

    def _finish_batch_error(self, batch: Batch, exc: Exception) -> None:
        """A worker raised instead of reporting (harness bug): degrade
        the batch's requests rather than killing the service."""
        now = time.monotonic()
        for entry in batch.entries:
            self._finish(entry, RunResponse(
                request_id=entry.ticket.request_id,
                kernel=entry.request.kernel, status="degraded",
                client=entry.request.client, error=str(exc),
                error_type=type(exc).__name__,
                queue_s=batch.dispatch_mono - entry.enqueued_mono,
                total_s=now - entry.enqueued_mono,
                batch_id=batch.batch_id, batch_size=len(batch.entries)))

    def _recover(self, batches: List[Batch]) -> None:
        """Worker died hard: respawn the pool, requeue the in-flight
        requests under their crash budgets (mirrors ``_run_jobs``)."""
        self._worker_crashes += 1
        if self._scope is not None:
            self._scope.inc("worker_crashes")
        self._pool.shutdown(wait=False)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        requeue: List[QueueEntry] = []
        now = time.monotonic()
        for batch in batches:
            for entry in batch.entries:
                entry.crash_budget -= 1
                if entry.crash_budget > 0:
                    requeue.append(entry)
                    continue
                exc = WorkerCrashError(
                    "worker process died (SIGKILL/OOM/segfault) while "
                    "this request was in flight; crash budget exhausted",
                    kernel=entry.request.kernel)
                self._finish(entry, RunResponse(
                    request_id=entry.ticket.request_id,
                    kernel=entry.request.kernel, status="degraded",
                    client=entry.request.client, error=str(exc),
                    error_type="WorkerCrashError",
                    queue_s=batch.dispatch_mono - entry.enqueued_mono,
                    total_s=now - entry.enqueued_mono,
                    batch_id=batch.batch_id))
        self.scheduler.requeue(requeue)

    # -- completion -----------------------------------------------------
    def _finish(self, entry: Optional[QueueEntry],
                response: RunResponse) -> None:
        self._counts[response.status] = \
            self._counts.get(response.status, 0) + 1
        executed = response.status in ("ok", "degraded") \
            and response.batch_id is not None
        self.latency["total_s"].observe(response.total_s)
        if executed:
            self.latency["queue_s"].observe(response.queue_s)
            self.latency["compile_s"].observe(response.compile_s)
            self.latency["execute_s"].observe(response.execute_s)
        elif response.status == "cached":
            # Cache hits get their own latency series: admission-time
            # answers would otherwise drown the execution percentiles.
            self.latency["cached_s"].observe(response.total_s)
        if self._scope is not None:
            self._scope.inc(f"requests_{response.status}")
            self._scope.observe("total_s", response.total_s)
            if executed:
                self._scope.observe("queue_s", response.queue_s)
                self._scope.observe("compile_s", response.compile_s)
                self._scope.observe("execute_s", response.execute_s)
            elif response.status == "cached":
                self._scope.observe("cached_s", response.total_s)
        if self.tracer is not None and entry is not None:
            # One span per request on the "serve" lane, in µs since
            # service start (the native Chrome-trace time base).
            start_us = (entry.enqueued_mono - self._t0_mono) * 1e6
            self.tracer.complete(
                f"{response.kernel} #{response.request_id}", "serve",
                start_us, response.total_s * 1e6, pid="serve",
                tid=0, status=response.status,
                batch=response.batch_id, client=response.client)
        evicted = 0
        with self._lock:
            self._responses[response.request_id] = response
            event = self._events.get(response.request_id)
            # Bounded retention: responses nobody picks up age out
            # LRU-first (landed order) once past the cap, events too —
            # a long-lived service no longer leaks one response per
            # request forever.
            while len(self._responses) > self.retention_limit:
                old_rid, _ = self._responses.popitem(last=False)
                self._events.pop(old_rid, None)
                evicted += 1
        if evicted:
            self._evicted += evicted
            if self._scope is not None:
                self._scope.inc("responses_evicted", evicted)
        if event is not None:
            event.set()

    # -- reporting ------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-able service report (counts, batching, latency split)."""
        sizes = self._batch_sizes
        uptime = (time.monotonic() - self._t0_mono) if self._t0_mono else 0.0
        completed = sum(self._counts.get(s, 0)
                        for s in ("ok", "cached", "degraded",
                                  "rejected", "deadline"))
        report = {
            "workers": self.workers,
            "policy": self.scheduler.policy,
            "uptime_s": uptime,
            "requests": dict(self._counts),
            "throughput_rps": (completed / uptime) if uptime > 0 else 0.0,
            "batches": {
                "count": len(sizes),
                "batched_requests": sum(sizes),
                "mean_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
                "max_size": max(sizes) if sizes else 0,
            },
            "queue": {
                "limit": self.scheduler.queue_limit,
                "peak_depth": self.scheduler.peak_depth,
            },
            "latency": {name: stats.summary()
                        for name, stats in self.latency.items()},
            "retention": {
                "limit": self.retention_limit,
                "held": len(self._responses),
                "evicted": self._evicted,
            },
            "worker_crashes": self._worker_crashes,
            "compile_cache": dict(self.cache_stats),
        }
        if self.result_cache is not None:
            report["result_cache"] = self.result_cache.stats()
        return report
