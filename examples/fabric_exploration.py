"""Design-space exploration beyond the paper: MT-CGRF grid size sweep.

The paper fixes the fabric at 108 units (matching an SM's logic budget,
section 4).  This example asks the question a follow-up study would:
how does VGIW performance scale with fabric size?  We sweep half-size,
paper-size, and double-size grids on a divergent kernel and report
cycles and replication factors.

Run:  python examples/fabric_exploration.py
"""

from repro.arch import FabricSpec, UnitKind, VGIWConfig
from repro.compiler import compile_kernel
from repro.kernels import make_fig1_workload
from repro.vgiw import VGIWCore

#: name -> (width, height, unit counts)
GRIDS = {
    "half (54)": (9, 6, {
        UnitKind.COMPUTE: 16, UnitKind.SPECIAL: 6, UnitKind.LDST: 8,
        UnitKind.LVU: 8, UnitKind.SJU: 8, UnitKind.CVU: 8,
    }),
    "paper (108)": (12, 9, {
        UnitKind.COMPUTE: 32, UnitKind.SPECIAL: 12, UnitKind.LDST: 16,
        UnitKind.LVU: 16, UnitKind.SJU: 16, UnitKind.CVU: 16,
    }),
    # The double grid is laid out long and thin so its perimeter still
    # hosts all the memory units.
    "double (216)": (24, 9, {
        UnitKind.COMPUTE: 64, UnitKind.SPECIAL: 24, UnitKind.LDST: 28,
        UnitKind.LVU: 28, UnitKind.SJU: 32, UnitKind.CVU: 40,
    }),
}

N = 4096


def main():
    print(f"fig1 (nested conditional) on {N} threads\n")
    print(f"{'grid':14s} {'cycles':>10s} {'max replicas':>13s} "
          f"{'mean hops/edge':>15s}")
    baseline = None
    for name, (w, h, counts) in GRIDS.items():
        spec = FabricSpec(width=w, height=h, counts=dict(counts))
        config = VGIWConfig(fabric=spec)
        kernel, mem, params = make_fig1_workload(n_threads=N)
        compiled = compile_kernel(kernel, spec)
        result = VGIWCore(config).run(compiled, mem, params, N)

        max_reps = max(cb.n_replicas for cb in compiled.blocks.values())
        hops = [
            h
            for cb in compiled.blocks.values()
            for r in cb.placement.replicas
            for h in r.edge_hops.values()
        ]
        mean_hops = sum(hops) / len(hops)
        if baseline is None:
            baseline = result.cycles
        print(f"{name:14s} {result.cycles:10.0f} {max_reps:13d} "
              f"{mean_hops:15.2f}  ({baseline / result.cycles:.2f}x)")

    print("\nbigger grids buy replication-limited kernels more injection "
          "bandwidth,\nbut wire distances grow with the grid — the same "
          "tension the paper's\nfolded-hypercube interconnect addresses "
          "(section 3.5).")


if __name__ == "__main__":
    main()
