"""Compilation driver: kernel -> configured, placed, scheduled blocks.

``compile_kernel`` runs the full VGIW compilation flow of paper §3.1:

1. liveness analysis and live-value ID allocation,
2. per-block dataflow-graph extraction (with split/join insertion),
3. oversized-block partitioning until every block fits the fabric,
4. block-ID scheduling (RPO; entry = 0; back edges to smaller IDs),
5. replication and place & route of each block onto the MT-CGRF grid.

The result, :class:`CompiledKernel`, is everything the VGIW core needs
to execute: it is the analogue of the per-block configuration bitstreams
the real toolchain would emit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.config import FabricSpec
from repro.compiler.dfg import BlockDFG, build_kernel_dfgs
from repro.compiler.livevalues import LiveValueMap, allocate_live_values
from repro.compiler.partition import split_block
from repro.compiler.placement import (
    CapacityError,
    Fabric,
    PlacedBlock,
    max_replicas,
    place_block,
)
from repro.compiler.schedule import BlockSchedule, schedule_blocks
from repro.ir.kernel import Kernel
from repro.ir.validate import validate_kernel


@dataclass
class CompiledBlock:
    """One basic block, ready to configure onto the fabric."""

    name: str
    block_id: int
    dfg: BlockDFG
    placement: PlacedBlock

    @property
    def n_replicas(self) -> int:
        return self.placement.n_replicas


@dataclass
class CompiledKernel:
    """A fully compiled kernel (possibly with partitioned blocks)."""

    kernel: Kernel
    schedule: BlockSchedule
    lv_map: LiveValueMap
    blocks: Dict[str, CompiledBlock]
    fabric: Fabric
    spec: FabricSpec

    @property
    def n_blocks(self) -> int:
        return self.schedule.n_blocks

    @property
    def n_live_values(self) -> int:
        return self.lv_map.n_live_values

    def block_by_id(self, block_id: int) -> CompiledBlock:
        return self.blocks[self.schedule.name_of(block_id)]


def compile_kernel(
    kernel: Kernel,
    spec: Optional[FabricSpec] = None,
    replicate: bool = True,
    replica_cap: int = 8,
    max_partition_rounds: int = 64,
) -> CompiledKernel:
    """Compile ``kernel`` for a VGIW core with fabric ``spec``.

    ``replicate=False`` disables block replication (used by the
    replication ablation benchmark); the replica count is otherwise
    capped by ``replica_cap`` (each replica needs an initiator and a
    terminator CVU, so 16 CVUs support at most 8 replicas).
    """
    spec = spec or FabricSpec()

    for _ in range(max_partition_rounds):
        lv_map = allocate_live_values(kernel)
        dfgs = build_kernel_dfgs(kernel, lv_map)
        oversized = [
            name for name, dfg in dfgs.items() if max_replicas(dfg, spec, 1) == 0
        ]
        if not oversized:
            break
        kernel = split_block(kernel, oversized[0])
        validate_kernel(kernel)
    else:
        raise CapacityError(
            f"kernel {kernel.name} still has oversized blocks after "
            f"{max_partition_rounds} partition rounds"
        )

    schedule = schedule_blocks(kernel)
    fabric = Fabric(spec)
    blocks: Dict[str, CompiledBlock] = {}
    for name, dfg in dfgs.items():
        cap = replica_cap if replicate else 1
        n = max(1, max_replicas(dfg, spec, cap))
        placement = place_block(dfg, fabric, n)
        blocks[name] = CompiledBlock(
            name=name,
            block_id=schedule.id_of(name),
            dfg=dfg,
            placement=placement,
        )
    return CompiledKernel(
        kernel=kernel,
        schedule=schedule,
        lv_map=lv_map,
        blocks=blocks,
        fabric=fabric,
        spec=spec,
    )
