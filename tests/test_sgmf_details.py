"""Detail tests for the SGMF model: fire accounting and mapping order."""

import numpy as np

from repro.interp import interpret
from repro.kernels import make_fig1_workload, saxpy_kernel
from repro.sgmf import SGMFCore, build_sgmf_dfgs, map_kernel


def test_useful_fire_fraction_bounds():
    kernel, mem, params = make_fig1_workload(n_threads=128)
    r = SGMFCore().run(kernel, mem, params, 128)
    assert 0.0 < r.useful_fire_fraction < 1.0
    assert r.waste_fires == r.fabric.node_fires - (
        r.fabric.node_fires - r.waste_fires
    )


def test_fire_counts_scale_with_divergence():
    # The fig1 kernel: every thread skips one outer arm and, on the else
    # path, one inner arm — waste is proportional to threads.
    counts = []
    for n in (64, 128):
        kernel, mem, params = make_fig1_workload(n_threads=n)
        r = SGMFCore().run(kernel, mem, params, n)
        counts.append(r.waste_fires)
    # Roughly linear in threads (the extra threads' paths are random).
    assert 1.7 <= counts[1] / counts[0] <= 2.3


def test_convergent_kernel_has_zero_waste():
    n = 64
    from repro.memory import MemoryImage

    mem = MemoryImage(1024)
    bx = mem.alloc_array("x", np.arange(float(n)))
    by = mem.alloc_array("y", np.ones(n))
    bo = mem.alloc("out", n)
    params = {"a": 1.0, "x": bx, "y": by, "out": bo, "n": n}
    r = SGMFCore().run(saxpy_kernel(), mem, params, n)
    assert r.waste_fires == 0
    assert r.useful_fire_fraction == 1.0


def test_mapping_places_blocks_in_schedule_order():
    mapping = map_kernel(saxpy_kernel())
    assert mapping.schedule.order[0] == "entry"
    for replica in mapping.replicas:
        assert set(replica) == set(mapping.kernel.blocks)


def test_wire_nodes_have_no_units():
    dfgs = build_sgmf_dfgs(make_fig1_workload(16)[0])
    mapping = map_kernel(make_fig1_workload(16)[0])
    for name, dfg in mapping.dfgs.items():
        placed = mapping.replicas[0][name]
        for node in dfg.nodes:
            if node.pseudo:
                assert node.nid not in placed.unit_of
            else:
                assert node.nid in placed.unit_of


def test_sgmf_deterministic():
    kernel, mem, params = make_fig1_workload(n_threads=64)
    mem2 = mem.clone()
    r1 = SGMFCore().run(kernel, mem, params, 64)
    r2 = SGMFCore().run(kernel, mem2, params, 64)
    assert r1.cycles == r2.cycles
    assert r1.waste_fires == r2.waste_fires
