"""Control Vector Table (paper §3.3).

The CVT associates each basic-block ID with a bit vector indexed by
thread ID; a set bit means that thread must execute that block next.
The structure delivers 64-bit words, is partitioned into 8 banks, and
uses a *read-and-reset* policy (reads clear the word, avoiding a second
write port).  Updates from the terminator CVUs are OR-ed into the table
because a block may be reached over multiple control-flow paths.

The model keeps each block vector as one Python integer bitmap and
counts word-granularity reads/writes for the energy model.  The defining
invariant — a thread ID's bit is set in at most one entry at any time —
is checked on demand (and continuously by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.resilience.errors import SimulationError


@dataclass
class CVTStats:
    word_reads: int = 0
    word_writes: int = 0

    @property
    def accesses(self) -> int:
        """Total CVT word accesses (reads + writes)."""
        return self.word_reads + self.word_writes


class CVTError(SimulationError):
    """Protocol violation (double registration, bad thread ID)."""


class ControlVectorTable:
    """Per-block thread bit vectors with batch-granularity access."""

    def __init__(self, n_blocks: int, n_threads: int, banks: int = 8,
                 word_bits: int = 64):
        if n_blocks < 1 or n_threads < 1:
            raise CVTError("CVT needs at least one block and one thread")
        self.n_blocks = n_blocks
        self.n_threads = n_threads
        self.banks = banks
        self.word_bits = word_bits
        self._vectors: List[int] = [0] * n_blocks
        self.stats = CVTStats()

    # ------------------------------------------------------------------
    def activate_all(self, block_id: int) -> None:
        """Set every thread's bit in ``block_id`` (kernel launch: the
        runtime signals the BBS to set all bits of entry vector 0)."""
        mask = (1 << self.n_threads) - 1
        self._vectors[block_id] = mask
        self.stats.word_writes += -(-self.n_threads // self.word_bits)

    def or_batch(self, block_id: int, base_tid: int, bitmap: int) -> None:
        """OR a ⟨base thread ID, bitmap⟩ batch into a block's vector."""
        if bitmap == 0:
            return
        if bitmap >> self.word_bits:
            raise CVTError(f"bitmap wider than {self.word_bits} bits")
        if base_tid % self.word_bits:
            raise CVTError("batch base must be word-aligned")
        top = base_tid + bitmap.bit_length()
        if top > self.n_threads:
            raise CVTError(f"thread {top - 1} out of range")
        self._vectors[block_id] |= bitmap << base_tid
        self.stats.word_writes += 1

    def pop_batches(self, block_id: int) -> Iterator[Tuple[int, int]]:
        """Yield and clear the block's ⟨base, bitmap⟩ batches
        (read-and-reset, word by word)."""
        vec = self._vectors[block_id]
        self._vectors[block_id] = 0
        base = 0
        word_mask = (1 << self.word_bits) - 1
        while vec:
            word = vec & word_mask
            if word:
                self.stats.word_reads += 1
                yield base, word
            vec >>= self.word_bits
            base += self.word_bits

    # ------------------------------------------------------------------
    def is_empty(self, block_id: int) -> bool:
        """True when no thread is pending for ``block_id``."""
        return self._vectors[block_id] == 0

    def first_nonempty(self) -> Optional[int]:
        """The paper's BBS scheduling policy: smallest block ID with
        pending threads (paper §3.1)."""
        for block_id, vec in enumerate(self._vectors):
            if vec:
                return block_id
        return None

    def largest_vector(self) -> Optional[int]:
        """Alternative policy (ablation): the block with the most
        pending threads, maximising injection-bandwidth amortisation."""
        best: Optional[int] = None
        best_count = 0
        for block_id, vec in enumerate(self._vectors):
            count = bin(vec).count("1")
            if count > best_count:
                best, best_count = block_id, count
        return best

    def next_nonempty(self, after: Optional[int]) -> Optional[int]:
        """Alternative policy (ablation): round-robin over block IDs
        starting just past the previously executed block."""
        start = 0 if after is None else (after + 1) % self.n_blocks
        for offset in range(self.n_blocks):
            block_id = (start + offset) % self.n_blocks
            if self._vectors[block_id]:
                return block_id
        return None

    def pending_count(self, block_id: int) -> int:
        """Number of threads pending for ``block_id`` (popcount)."""
        return bin(self._vectors[block_id]).count("1")

    def check_invariant(self) -> None:
        """A thread bit may be set in at most one block vector."""
        seen = 0
        for block_id, vec in enumerate(self._vectors):
            overlap = seen & vec
            if overlap:
                tid = (overlap & -overlap).bit_length() - 1
                raise CVTError(
                    f"thread {tid} registered in multiple block vectors "
                    f"(second: block {block_id})"
                )
            seen |= vec
