"""JSON serialisation of suite results.

``runs_to_dict`` flattens a suite run into plain JSON-compatible data
(per-kernel cycles, event counts, energy components) so results can be
archived, diffed across calibrations, or plotted externally.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.evalharness.runner import KernelRun


def _cache_stats(stats) -> Dict:
    return {
        "accesses": stats.accesses,
        "misses": stats.misses,
        "hit_rate": stats.hit_rate,
        "writebacks": stats.writebacks,
        "bank_wait_cycles": stats.bank_wait_cycles,
    }


def run_to_dict(run: KernelRun) -> Dict:
    """One kernel's measurements as a JSON-compatible dict."""
    out = {
        "name": run.name,
        "app": run.app,
        "n_threads": run.n_threads,
        "n_blocks": run.n_blocks,
        "speedup_vs_fermi": run.speedup_vs_fermi,
        "speedup_vs_sgmf": run.speedup_vs_sgmf,
        "sgmf_mappable": run.sgmf_mappable,
        "fermi": {
            "cycles": run.fermi.cycles,
            "instructions": run.fermi.sm.instructions_issued,
            "rf_accesses": run.fermi.sm.rf_accesses,
            "simd_efficiency": run.fermi.sm.simd_efficiency,
            "divergences": run.fermi.sm.divergences,
            "mem_transactions": run.fermi.sm.mem_transactions,
            "l1": _cache_stats(run.fermi.l1),
            "dram_accesses": run.fermi.dram.accesses,
            "energy": dict(run.fermi_energy.components),
            "energy_levels": {
                "core": run.fermi_energy.core,
                "die": run.fermi_energy.die,
                "system": run.fermi_energy.system,
            },
        },
        "vgiw": {
            "cycles": run.vgiw.cycles,
            "node_fires": run.vgiw.fabric.node_fires,
            "reconfigurations": run.vgiw.bbs.reconfigurations,
            "config_overhead": run.vgiw.config_overhead,
            "lvc_word_requests": run.vgiw.lvc_accesses,
            "lvc_bank_accesses": run.vgiw.lvc_bank_accesses,
            "cvt_accesses": run.vgiw.cvt.accesses,
            "tiles": run.vgiw.tiles,
            "l1": _cache_stats(run.vgiw.l1),
            "dram_accesses": run.vgiw.dram.accesses,
            "energy": dict(run.vgiw_energy.components),
            "energy_levels": {
                "core": run.vgiw_energy.core,
                "die": run.vgiw_energy.die,
                "system": run.vgiw_energy.system,
            },
        },
    }
    if run.sgmf is not None:
        out["sgmf"] = {
            "cycles": run.sgmf.cycles,
            "replicas": run.sgmf.n_replicas,
            "waste_fires": run.sgmf.waste_fires,
            "useful_fire_fraction": run.sgmf.useful_fire_fraction,
            "energy_levels": {
                "core": run.sgmf_energy.core,
                "die": run.sgmf_energy.die,
                "system": run.sgmf_energy.system,
            },
        }
    return out


def runs_to_dict(runs: Dict[str, KernelRun]) -> Dict:
    """A whole suite's measurements as a JSON-compatible dict.

    Accepts either a plain ``{name: KernelRun}`` mapping or a
    :class:`~repro.evalharness.runner.SuiteResult`; degraded kernels (if
    any) appear as ``{"failed": true, ...}`` entries carrying the full
    structured failure log, so an archive of a partially-failed sweep is
    self-describing.
    """
    out = {name: run_to_dict(run) for name, run in runs.items()}
    for name, failure in getattr(runs, "failures", {}).items():
        out[name] = failure.to_dict()
    return out


def runs_to_json(runs: Dict[str, KernelRun], indent: int = 2) -> str:
    """A whole suite's measurements as a JSON string."""
    return json.dumps(runs_to_dict(runs), indent=indent, sort_keys=True)
